//! F-IVM (§3.1, Figure 4 right): maintain the covariance matrix of the
//! retailer features under a live insert stream and refresh the regression
//! model continuously — "keeping models fresh" (§1.5).
//!
//! ```bash
//! cargo run --release --example incremental_maintenance
//! ```

use fdb::datasets::{retailer, RetailerConfig};
use fdb::ivm::{Fivm, StreamDb, TreeShape, Update};
use fdb::ml::linalg::cholesky_solve;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = retailer(RetailerConfig::scaled(0.3));
    let names: Vec<&str> = ds.relation_refs();
    let schemas: Vec<_> = names.iter().map(|n| ds.db.get(n).unwrap().schema().clone()).collect();
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();
    let shape = Arc::new(TreeShape::build(schemas.clone(), &names, 0).unwrap());
    let mut db = StreamDb::new(schemas);
    shape.register_indices(&mut db);
    let mut fivm = Fivm::new(Arc::clone(&shape), &cont).unwrap();

    // Stream all tuples, bulk of 1000 as in the paper; after each bulk,
    // refresh the model from the maintained triple.
    let (_, _, stream) = {
        // Rebuild the stream the bench harness uses.
        fdb_bench_stream(&ds)
    };
    println!("Streaming {} inserts in bulks of 1000...", stream.len());
    let t0 = Instant::now();
    let mut refreshes = 0;
    for bulk in stream.chunks(1000) {
        for up in bulk {
            db.apply(up).unwrap();
            fivm.apply(&db, up);
        }
        // Refresh: solve the ridge normal equations from the triple.
        let triple = fivm.result();
        if triple.c > 1.0 {
            let n = cont.len();
            let d = n; // features (last one is the response)
            let mut a = vec![0.0; (d - 1 + 1) * (d - 1 + 1)];
            let dd = d - 1 + 1; // weights + intercept
            for i in 0..d - 1 {
                for j in 0..d - 1 {
                    a[i * dd + j] = triple.q_at(i, j) / triple.c;
                }
                a[i * dd + dd - 1] = triple.s[i] / triple.c;
                a[(dd - 1) * dd + i] = triple.s[i] / triple.c;
                a[i * dd + i] += 1e-3;
            }
            a[(dd - 1) * dd + (dd - 1)] = 1.0;
            let mut b = vec![0.0; dd];
            for (i, bi) in b.iter_mut().enumerate().take(d - 1) {
                *bi = triple.q_at(i, d - 1) / triple.c;
            }
            b[dd - 1] = triple.s[d - 1] / triple.c;
            if cholesky_solve(&a, &b, dd).is_some() {
                refreshes += 1;
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let triple = fivm.result();
    println!(
        "maintained covariance over {} features; count = {}, {} model refreshes",
        cont.len(),
        triple.c,
        refreshes
    );
    println!(
        "throughput: {:.0} tuples/sec including a model refresh per 1000 inserts",
        stream.len() as f64 / secs
    );
}

/// The same round-robin stream the Figure 4 harness uses.
fn fdb_bench_stream(
    ds: &fdb::datasets::Dataset,
) -> (Vec<fdb::data::Schema>, Vec<&str>, Vec<Update>) {
    let names: Vec<&str> = ds.relation_refs();
    let schemas: Vec<_> = names.iter().map(|n| ds.db.get(n).unwrap().schema().clone()).collect();
    let mut cursors = vec![0usize; names.len()];
    let mut stream = Vec::new();
    loop {
        let mut progressed = false;
        for (ri, name) in names.iter().enumerate() {
            let rel = ds.db.get(name).unwrap();
            if cursors[ri] < rel.len() {
                stream.push(Update::insert(ri, rel.row_vec(cursors[ri])));
                cursors[ri] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    (schemas, names, stream)
}
