//! Incremental view maintenance through the unified delta layer (§3.1,
//! Figure 4 right; "keeping models fresh", §1.5): stream the retailer
//! dataset into an initially empty database as [`Delta`] batches and keep
//! a ridge regression model fresh the whole way — no retraining scan,
//! ever.
//!
//! The model lives in [`fdb::ml::OnlineRidge`], which pairs a
//! `MaintainableEngine` (here F-IVM: a covariance-ring view tree) with
//! the covariance aggregate batch: `apply_delta` folds each update bulk
//! into the maintained ring payloads, and `model()` refits from the
//! maintained statistics with one `d×d` Cholesky solve.
//!
//! ```bash
//! cargo run --release --example incremental_maintenance
//! ```

use fdb::datasets::{retailer, RetailerConfig};
use fdb::ivm::FivmEngine;
use fdb::ml::linreg::RidgeConfig;
use fdb::ml::OnlineRidge;
use fdb::prelude::*;
use std::time::Instant;

fn main() {
    let ds = retailer(RetailerConfig::scaled(0.3));
    let names: Vec<&str> = ds.relation_refs();
    let cont: Vec<&str> = ds.features.continuous_with_response_refs();

    // Empty catalog with the dataset's schemas: the stream starts at zero.
    let mut empty = Database::new();
    for n in &names {
        empty.add(*n, Relation::new(ds.db.get(n).unwrap().schema().clone()));
    }
    let mut online =
        OnlineRidge::new(&empty, &names, &cont, &[], Box::new(FivmEngine), RidgeConfig::default())
            .expect("covariance query prepares on the empty catalog");

    // Round-robin single-row deltas (every base relation grows together),
    // grouped into bulks of 1000 as in the paper's experiment.
    let mut updates: Vec<Delta> = Vec::new();
    let mut cursors = vec![0usize; names.len()];
    loop {
        let mut progressed = false;
        for (ri, name) in names.iter().enumerate() {
            let rel = ds.db.get(name).unwrap();
            if cursors[ri] < rel.len() {
                updates.push(Delta::insert(*name, rel.row_vec(cursors[ri])));
                cursors[ri] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    println!("Streaming {} inserts in bulks of 1000...", updates.len());
    let t0 = Instant::now();
    let mut refreshes = 0;
    for bulk in updates.chunks(1000) {
        for d in bulk {
            online.apply_delta(d).expect("valid update");
        }
        // Refresh the model from the maintained statistics alone.
        if online.count() > 1.0 && online.model().is_ok() {
            refreshes += 1;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "maintained covariance over {} features; count = {}, {} model refreshes",
        cont.len(),
        online.count(),
        refreshes
    );
    println!(
        "throughput: {:.0} tuples/sec including a model refresh per 1000 inserts",
        updates.len() as f64 / secs
    );
    let model = online.model().expect("final model");
    println!(
        "final model: {} weights, intercept {:.3} — refit cost is one {}x{} solve",
        model.weights.len(),
        model.intercept,
        model.weights.len() + 1,
        model.weights.len() + 1,
    );
}
