//! IFAQ staged compilation (§5.3): watch the optimiser turn the naive
//! gradient-program aggregate into its factorized form, with measured
//! operation counts at each stage.
//!
//! ```bash
//! cargo run --example ifaq_compilation
//! ```

use fdb::data::{AttrType, Database, Relation, Schema, Value};
use fdb::ifaq::derivation::{mcp_factorized, mcp_naive};
use fdb::ifaq::{factor_out_of_sums, optimize, Interp};

fn main() {
    // The paper's S(i, s, u) ⋈ R(s, c) ⋈ I(i, p).
    let mut db = Database::new();
    let mut s = Relation::new(Schema::of(&[
        ("i", AttrType::Int),
        ("s", AttrType::Int),
        ("u", AttrType::Double),
    ]));
    for k in 0..60i64 {
        s.push_row(&[Value::Int(k % 12), Value::Int(k % 7), Value::F64(k as f64)]).unwrap();
    }
    let mut r = Relation::new(Schema::of(&[("s", AttrType::Int), ("c", AttrType::Double)]));
    for k in 0..7i64 {
        r.push_row(&[Value::Int(k), Value::F64(10.0 + k as f64)]).unwrap();
    }
    let mut i = Relation::new(Schema::of(&[("i", AttrType::Int), ("p", AttrType::Double)]));
    for k in 0..12i64 {
        i.push_row(&[Value::Int(k), Value::F64(2.0 * k as f64)]).unwrap();
    }
    db.add("S", s);
    db.add("R", r);
    db.add("I", i);

    let naive = mcp_naive();
    let one_pass = factor_out_of_sums(&naive);
    let optimized = optimize(&naive);
    let target = mcp_factorized();

    println!("M_cp = SUM over S ⋈ R ⋈ I of c * p, four ways:\n");
    for (name, prog) in [
        ("naive (cross product)", &naive),
        ("one factorization pass", &one_pass),
        ("fully optimized", &optimized),
        ("hand-derived target", &target),
    ] {
        let mut interp = Interp::new(&db);
        let v = interp.eval(prog).unwrap();
        println!(
            "{name:>24}: result={v:?}  iterations={:<6} muls={:<6} lookups={:<6} AST size={}",
            interp.counter.iterations,
            interp.counter.muls,
            interp.counter.lookups,
            prog.size()
        );
    }
    println!(
        "\nAll four agree; the optimized program does |S|·(|R|+|I|) work instead of |S|·|R|·|I|."
    );
}
