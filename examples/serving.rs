//! Epoch-based concurrent serving (§1.5 "keeping models fresh", read
//! side): many reader threads answer aggregate queries against pinned
//! snapshots while one writer streams deltas through the transactional
//! maintenance path — readers never block on maintenance, and every
//! answer is tagged with the epoch it reflects.
//!
//! A [`ServingEngine`] wraps any `MaintainableEngine`. The single writer
//! applies each delta under the engine's all-or-nothing contract and then
//! atomically publishes the new epoch's snapshot; readers grab the
//! current `Arc` and compute entirely on it, so a reader that starts at
//! epoch *e* finishes at epoch *e* no matter how many publications happen
//! meanwhile.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use fdb::datasets::{retailer, RetailerConfig};
use fdb::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn main() {
    let ds = retailer(RetailerConfig::scaled(0.2));
    let rels: Vec<&str> = ds.relation_refs();

    // A small grouped batch over the natural join of the whole schema.
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("inventoryunits").by(&["category"]));
    let q = AggQuery::new(&rels, batch);

    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let serving = ServingEngine::new(engine, &ds.db, &q).expect("prepare");
    println!("serving epoch {} ({} relations joined)", serving.epoch(), rels.len());

    // The writer's stream: single-row fact inserts (every committed delta
    // bumps the published epoch by exactly one).
    let fact = ds.db.get("Inventory").expect("fact relation");
    let updates: Vec<Delta> =
        (0..200).map(|i| Delta::insert("Inventory", fact.row_vec(i % fact.len()))).collect();

    let readers = 4;
    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let (serving, done) = (&serving, &done);
        for r in 0..readers {
            s.spawn(move || {
                let mut answered = 0u64;
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                while !done.load(Ordering::Acquire) {
                    let (epoch, res) = serving.query().expect("read");
                    lo = lo.min(epoch);
                    hi = hi.max(epoch);
                    // The count at epoch e is exactly base + e: a torn or
                    // stale snapshot would break this equality.
                    assert_eq!(res.scalar(0), fact.len() as f64 + epoch as f64);
                    answered += 1;
                }
                println!("reader {r}: {answered} queries across epochs {lo}..={hi}");
            });
        }
        s.spawn(move || {
            for d in &updates {
                serving.apply_delta(d).expect("maintain + publish");
            }
            done.store(true, Ordering::Release);
        });
    });

    let stats = serving.stats();
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "published {} epochs while serving {} queries ({:.0} qps on {readers} readers)",
        stats.deltas_applied,
        stats.queries,
        stats.queries as f64 / secs
    );

    // A snapshot pinned now keeps answering at its epoch even after
    // further deltas land.
    let pinned = serving.snapshot();
    serving.apply_delta(&Delta::insert("Inventory", fact.row_vec(0))).expect("one more");
    let at_pin = serving.query_at(&pinned).expect("pinned read");
    println!(
        "pinned epoch {} still answers count {} while the live epoch is {}",
        pinned.epoch(),
        at_pin.scalar(0),
        serving.epoch()
    );
}
