//! Quickstart: the paper's Figure 7–10 walk-through in a few lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use fdb::datasets::dish_database;
use fdb::factorized::FRep;
use fdb::prelude::*;
use fdb::ring::{F64Ring, I64Ring, KeyedRing};

fn main() {
    // The Orders / Dish / Items database of Figure 7.
    let db = dish_database();
    println!("Relations: {:?}", db.names());

    // Build the factorized representation of the natural join (Figure 8).
    let frep = FRep::build(&db, &["Orders", "Dish", "Items"]).unwrap();
    let flat = frep.enumerate().unwrap();
    println!(
        "Flat join: {} tuples ({} values). Factorized: {} values.",
        flat.len(),
        flat.len() * flat.schema().arity(),
        frep.size_values()
    );

    // Aggregates in one pass over the factorization (Figure 9).
    let count = frep.eval(&I64Ring, &mut |_, _| 1);
    println!("SUM(1) over the join = {count}");

    let hg = frep.hypergraph();
    let dish = hg.var_id("dish").unwrap();
    let price = hg.var_id("price").unwrap();
    let ring = KeyedRing::new(F64Ring, 1);
    let by_dish = frep.eval(&ring, &mut |var, value| {
        if var == dish {
            ring.tag(0, value, 1.0)
        } else if var == price {
            ring.scalar(value.as_f64())
        } else {
            ring.one()
        }
    });
    println!("SUM(price) GROUP BY dish:");
    for (key, total) in by_dish.sorted_pairs() {
        let name = db.dict("dish").unwrap().decode(key[0].as_int()).unwrap().to_string();
        println!("  {name:>7} -> {total}");
    }

    // The covariance ring computes count, sums, and second moments at
    // once (Figure 10).
    let cov = CovRing::new(1);
    let triple = frep.eval(&cov, &mut |var, value| {
        if var == price {
            cov.lift(&[value.as_f64()])
        } else {
            cov.one()
        }
    });
    println!(
        "Covariance ring: count={}, SUM(price)={}, SUM(price²)={}",
        triple.c,
        triple.s[0],
        triple.q_at(0, 0)
    );
}
