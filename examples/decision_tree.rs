//! In-database CART: train a regression tree on Favorita where every
//! node's split costs come from one LMFAO batch with conjunctive path
//! filters (§2.2) — the data matrix is never materialized.
//!
//! ```bash
//! cargo run --release --example decision_tree
//! ```

use fdb::datasets::{favorita, FavoritaConfig};
use fdb::lmfao::{EngineConfig, LmfaoEngine};
use fdb::ml::tree::{DecisionTree, Node, TreeConfig};
use fdb::query::natural_join_all;

fn print_tree(node: &Node, indent: usize) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Leaf { prediction, count } => {
            println!("{pad}-> predict {prediction:.2} ({count} tuples)");
        }
        Node::Split { split, left, right } => {
            println!("{pad}if {split:?}:");
            print_tree(left, indent + 1);
            println!("{pad}else:");
            print_tree(right, indent + 1);
        }
    }
}

fn main() {
    let ds = favorita(FavoritaConfig::default());
    let rels: Vec<&str> = ds.relation_refs();
    println!("Favorita: {} sales rows", ds.db.get("Sales").unwrap().len());
    let tree = DecisionTree::fit_regression(
        &ds.db,
        &rels,
        &["txns", "oilprize"],
        &["onpromotion", "holidaytype", "perishable"],
        "unitsales",
        TreeConfig { max_depth: 3, min_samples: 50.0, thresholds: 8, min_gain: 1e-6 },
        &LmfaoEngine::with_config(EngineConfig { threads: 4, ..Default::default() }),
    )
    .unwrap();
    println!(
        "Trained a {}-leaf tree with {} LMFAO batches (one per node):",
        tree.leaves(),
        tree.batches_run
    );
    print_tree(&tree.root, 0);

    // Evaluate against predicting the global mean.
    let flat = natural_join_all(&ds.db, &rels).unwrap();
    let ycol = flat.schema().require("unitsales").unwrap();
    let mean: f64 =
        (0..flat.len()).map(|r| flat.value_f64(r, ycol)).sum::<f64>() / flat.len() as f64;
    let (mut sse_tree, mut sse_mean) = (0.0, 0.0);
    for r in 0..flat.len() {
        let y = flat.value_f64(r, ycol);
        sse_tree += (y - tree.predict_row(&flat, r).unwrap()).powi(2);
        sse_mean += (y - mean).powi(2);
    }
    println!(
        "variance explained: {:.1}% (tree SSE {:.0} vs mean SSE {:.0})",
        100.0 * (1.0 - sse_tree / sse_mean),
        sse_tree,
        sse_mean
    );
}
