//! Rk-means (§3.3): cluster the Yelp reviews' feature space via the grid
//! coreset and compare against full-data Lloyd's — constant-factor quality
//! at a fraction of the points.
//!
//! ```bash
//! cargo run --release --example kmeans_clustering
//! ```

use fdb::datasets::{yelp, YelpConfig};
use fdb::ml::kmeans::{grid_coreset, lloyd, rk_means};
use fdb::ml::DataMatrix;
use fdb::query::natural_join_all;
use std::time::Instant;

fn main() {
    let ds = yelp(YelpConfig::default());
    let rels: Vec<&str> = ds.relation_refs();
    let flat = natural_join_all(&ds.db, &rels).unwrap();
    let cont: Vec<&str> = ds.features.continuous.iter().map(String::as_str).collect();
    let m = DataMatrix::from_relation(&flat, &cont, &[], &ds.features.response).unwrap();
    println!("Yelp join: {} rows, {} features", m.rows(), m.dim);

    let k = 5;
    let t0 = Instant::now();
    let points: Vec<Vec<f64>> = (0..m.rows()).map(|r| m.row(r).to_vec()).collect();
    let weights = vec![1.0; points.len()];
    let full = lloyd(&points, &weights, k, 60, 1);
    let full_time = t0.elapsed();

    let t0 = Instant::now();
    let (cells, _) = grid_coreset(&m, 6);
    let rk = rk_means(&m, k, 6, 60, 1);
    let rk_time = t0.elapsed();

    println!("full k-means : cost {:>14.1} in {full_time:?} over {} points", full.cost, m.rows());
    println!(
        "Rk-means     : cost {:>14.1} in {rk_time:?} over {} coreset cells",
        rk.cost,
        cells.len()
    );
    println!(
        "cost ratio {:.3} (constant-factor approximation), speedup {:.1}x",
        rk.cost / full.cost.max(1e-9),
        full_time.as_secs_f64() / rk_time.as_secs_f64()
    );
}
