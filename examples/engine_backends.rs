//! One query, every backend: build a single `AggQuery` and run it through
//! the flat, factorized, LMFAO, and F-IVM engines via the unified
//! `Engine` trait — the API seam that makes the Figure 6 ablation (and
//! any later multi-backend dispatch) an engine swap.
//!
//! ```bash
//! cargo run --release --example engine_backends
//! ```

use fdb::datasets::{retailer, RetailerConfig};
use fdb::ivm::FivmEngine;
use fdb::lmfao::{covariance_batch, AggBatch, AggQuery, Aggregate, Engine};
use fdb::lmfao::{FactorizedEngine, FlatEngine, LmfaoEngine};
use std::time::Instant;

fn main() {
    let ds = retailer(RetailerConfig::tiny());
    let rels: Vec<&str> = ds.relation_refs();

    // A mixed batch: scalar moments plus grouped and filtered aggregates.
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("inventoryunits"));
    batch.push(Aggregate::sum_prod("inventoryunits", "prize"));
    batch.push(Aggregate::sum("inventoryunits").by(&["rain"]));
    batch.push(Aggregate::count().by(&["category", "rain"]));
    let q = AggQuery::new(&rels, batch);

    let engines: Vec<Box<dyn Engine>> =
        vec![Box::new(FlatEngine), Box::new(FactorizedEngine::new()), Box::new(LmfaoEngine::new())];
    println!("{} aggregates over ⋈{:?}\n", q.batch.len(), q.relations);
    for engine in &engines {
        let t0 = Instant::now();
        let res = engine.run(&ds.db, &q).expect("valid query");
        println!(
            "{:>11}: COUNT(*)={:>8}  SUM(units)={:>12.1}  groups(category,rain)={:>3}  [{:?}]",
            engine.name(),
            res.scalar(0),
            res.scalar(1),
            res.grouped(4).len(),
            t0.elapsed(),
        );
    }

    // F-IVM answers the covariance-shaped fragment by streaming updates.
    let cov = AggQuery::new(&rels, covariance_batch(&["inventoryunits", "prize"], &[]));
    let t0 = Instant::now();
    let res = FivmEngine.run(&ds.db, &cov).expect("covariance fragment");
    println!(
        "{:>11}: COUNT(*)={:>8}  SUM(units)={:>12.1}  (streamed tuple-by-tuple)  [{:?}]",
        FivmEngine.name(),
        res.scalar(0),
        res.scalar(1),
        t0.elapsed(),
    );
}
