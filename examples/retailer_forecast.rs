//! Structure-aware vs structure-agnostic learning on the retailer dataset
//! (the Figure 2/3 story): train a ridge regression predicting inventory
//! units both ways and compare time and accuracy.
//!
//! ```bash
//! cargo run --release --example retailer_forecast [scale]
//! ```

use fdb::datasets::{retailer, RetailerConfig};
use fdb::lmfao::{sufficient_stats, EngineConfig, LmfaoEngine};
use fdb::ml::linreg::{LinearRegression, RidgeConfig};
use fdb::ml::sgd::{shuffled, train_linear_sgd, SgdConfig};
use fdb::ml::DataMatrix;
use fdb::query::natural_join_all;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let ds = retailer(RetailerConfig::scaled(scale));
    let rels: Vec<&str> = ds.relation_refs();
    println!(
        "Retailer at scale {scale}: {} inventory rows over {} relations",
        ds.db.get("Inventory").unwrap().len(),
        rels.len()
    );
    let cont: Vec<&str> = ds.features.continuous.iter().map(String::as_str).collect();
    let cat: Vec<&str> = ds.features.categorical.iter().map(String::as_str).collect();
    let cont_resp: Vec<&str> = ds.features.continuous_with_response_refs();

    // Structure-agnostic: materialize, one-hot, SGD.
    let t0 = Instant::now();
    let flat = natural_join_all(&ds.db, &rels).unwrap();
    let dm = DataMatrix::from_relation(&flat, &cont, &cat, &ds.features.response).unwrap();
    let shuffled_dm = shuffled(&dm, 7);
    let (train, test) = shuffled_dm.split(0.02);
    let sgd = train_linear_sgd(&train, &SgdConfig::default());
    let agnostic = t0.elapsed();
    println!(
        "structure-agnostic: {:?} (join {} rows x {} cols), RMSE {:.4}",
        agnostic,
        flat.len(),
        flat.schema().arity(),
        test.rmse(&sgd.weights, sgd.intercept)
    );

    // Structure-aware: LMFAO batch + GD on the covariance matrix.
    let t0 = Instant::now();
    let stats = sufficient_stats(
        &ds.db,
        &rels,
        &cont_resp,
        &cat,
        &LmfaoEngine::with_config(EngineConfig { threads: 4, ..Default::default() }),
    )
    .unwrap();
    let model = LinearRegression::fit_gd(&stats, &RidgeConfig::default()).unwrap();
    let aware = t0.elapsed();
    println!(
        "structure-aware:    {:?} (covariance over {} features), RMSE {:.4}",
        aware,
        stats.cont.len() - 1 + stats.cat.len(),
        test.rmse(&model.weights, model.intercept)
    );
    println!(
        "speedup: {:.1}x; retraining on a feature subset from the same stats:",
        agnostic.as_secs_f64() / aware.as_secs_f64()
    );
    // Model selection (§1.5): three more models, milliseconds each.
    for k in [2usize, 5, 8] {
        let subset: Vec<usize> = (0..k.min(stats.cont.len() - 1)).collect();
        let t0 = Instant::now();
        let m = LinearRegression::fit_gd_subset(&stats, &subset, &RidgeConfig::default()).unwrap();
        println!("  {} features -> {} params in {:?}", k, m.weights.len(), t0.elapsed());
    }
}
