//! The resilient serving front door (§1.5 "keeping models fresh", write
//! side): a bounded admission queue with backpressure in front of the
//! epoch-based [`ServingEngine`], plus a circuit breaker that keeps
//! epochs flowing — degraded to recompute mode — when the incremental
//! maintenance path starts failing, and probes its way back.
//!
//! Two acts:
//!
//! 1. **Backpressure + group commit** — producers race a 4-slot queue
//!    under the `Reject` policy; overflow submits fail fast with
//!    `DataError::Overloaded` instead of stalling, and the writer folds
//!    the admitted burst into far fewer transactional batches than
//!    submits (one published epoch per batch).
//! 2. **Failure burst → breaker → recovery** — a flaky engine fails its
//!    incremental path four times; retries exhaust, the breaker trips
//!    and re-prepares into recompute mode, degraded batches keep
//!    committing, and half-open probes walk it back to Closed. No
//!    admitted delta is lost and readers never see a torn epoch.
//!
//! ```bash
//! cargo run --release --example frontdoor
//! ```

use fdb::data::{DataError, Database, Delta};
use fdb::datasets::{retailer, RetailerConfig};
use fdb::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Wraps [`LmfaoEngine`]: while the fuse is lit every *incremental*
/// maintenance call fails transiently, but degraded recompute (and cold
/// `run`) keeps working — the failure model the breaker exists for.
struct FlakyEngine {
    inner: LmfaoEngine,
    incremental_failures: AtomicU32,
}

impl FlakyEngine {
    fn failing(n: u32) -> Self {
        Self {
            inner: LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() }),
            incremental_failures: AtomicU32::new(n),
        }
    }
}

impl Engine for FlakyEngine {
    fn name(&self) -> &'static str {
        "flaky-lmfao"
    }
    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        self.inner.run(db, q)
    }
}

impl MaintainableEngine for FlakyEngine {
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        self.inner.prepare(db, q)
    }
    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        if !st.is_recompute() && self.incremental_failures.load(Ordering::SeqCst) > 0 {
            self.incremental_failures.fetch_sub(1, Ordering::SeqCst);
            return Err(DataError::Injected("flaky incremental path".into()));
        }
        self.inner.apply_delta_kind(st, delta)
    }
    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        self.inner.eval(st)
    }
}

fn print_stats(tag: &str, s: &ServingStats) {
    println!(
        "  [{tag}] epoch {} | submitted {} rejected {} shed {} timed_out {} | \
         batches {} (+{} coalesced, {} failed) | retries {} | \
         breaker: trips {} probes {} recoveries {}",
        s.epoch,
        s.submitted,
        s.rejected,
        s.shed,
        s.timed_out,
        s.batches_committed,
        s.coalesced,
        s.batches_failed,
        s.retries,
        s.breaker_trips,
        s.breaker_probes,
        s.breaker_recoveries
    );
}

fn main() {
    let ds = retailer(RetailerConfig::scaled(0.1));
    let rels: Vec<&str> = ds.relation_refs();
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    batch.push(Aggregate::sum("inventoryunits").by(&["category"]));
    let q = AggQuery::new(&rels, batch);
    let fact = ds.db.get("Inventory").expect("fact relation");

    // -- Act 1: producers vs a 4-slot queue under the Reject policy -------
    println!("act 1: backpressure (queue_capacity 4, Reject, writer paused mid-burst)");
    let cfg = FrontDoorConfig {
        queue_capacity: 4,
        backpressure: Backpressure::Reject,
        ..Default::default()
    };
    let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
    let fd = FrontDoor::new(engine, &ds.db, &q, cfg).expect("prepare");
    let e0 = fd.epoch();
    print_stats("before", &fd.stats());

    // Pausing the writer makes the overflow deterministic: the burst has
    // nowhere to drain, so exactly `queue_capacity` submits fit.
    fd.pause();
    let burst = 16usize;
    let mut admitted = 0u32;
    let mut overloaded = 0u32;
    for i in 0..burst {
        match fd.submit(Delta::insert("Inventory", fact.row_vec(i % fact.len()))) {
            Ok(()) => admitted += 1,
            Err(e @ DataError::Overloaded { .. }) => {
                if overloaded == 0 {
                    println!("  first refusal: {e}");
                }
                overloaded += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    println!("  burst of {burst}: {admitted} admitted, {overloaded} rejected (fail-fast)");
    fd.flush(); // unpauses; the writer folds the queue into one group commit
    let s = fd.stats();
    print_stats("after", &s);
    println!(
        "  group commit: {} submits -> {} batch(es) ({} coalesced), rejected submits \
         published nothing",
        s.submitted, s.batches_committed, s.coalesced
    );
    assert_eq!(s.epoch, e0 + s.batches_committed, "one epoch per committed batch");
    drop(fd);

    // -- Act 2: failure burst trips the breaker, probes recover ----------
    println!("act 2: breaker (4 injected incremental failures, retry_max 1, threshold 1)");
    let cfg = FrontDoorConfig {
        retry_max: 1,
        backoff_base: Duration::from_micros(50),
        breaker_threshold: 1,
        breaker_probe_after: 2,
        ..Default::default()
    };
    let fd = FrontDoor::new(FlakyEngine::failing(4), &ds.db, &q, cfg).expect("prepare");
    let e0 = fd.epoch();
    print_stats("before", &fd.stats());
    for i in 0..5i64 {
        fd.submit(Delta::insert("Inventory", fact.row_vec(i as usize))).expect("admit");
        fd.flush();
        let (epoch, res) = fd.query().expect("read");
        println!(
            "  batch {}: breaker {:?}{}, epoch {epoch}, count {}",
            i + 1,
            fd.breaker_state(),
            if fd.serving().is_degraded() { " (degraded: recompute mode)" } else { "" },
            res.scalar(0)
        );
    }
    let s = fd.stats();
    print_stats("after", &s);
    assert_eq!(fd.breaker_state(), BreakerState::Closed, "probes walked it back");
    assert_eq!(s.batches_committed, 5, "no admitted delta was lost to the failure burst");
    assert_eq!(fd.epoch(), e0 + 5);
    println!(
        "  survived: {} trips, {} probes, {} recovery; all 5 batches committed and \
         the incremental state is restored",
        s.breaker_trips, s.breaker_probes, s.breaker_recoveries
    );
}
