//! # fdb — Factorized In-Database Machine Learning
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *"The Relational Data Borg is Learning"* (Dan Olteanu,
//! VLDB 2020). See `README.md` for a tour and `DESIGN.md` for the system
//! inventory and per-experiment index.
//!
//! ```
//! use fdb::prelude::*;
//!
//! // The paper's Figure 7 example database.
//! let db = fdb::datasets::dish::dish_database();
//! assert_eq!(db.get("Orders").unwrap().len(), 4);
//! ```

pub use fdb_core as lmfao;
pub use fdb_data as data;
pub use fdb_datasets as datasets;
pub use fdb_factorized as factorized;
pub use fdb_ifaq as ifaq;
pub use fdb_ineq as ineq;
pub use fdb_ivm as ivm;
pub use fdb_ml as ml;
pub use fdb_query as query;
pub use fdb_ring as ring;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use fdb_core::{
        AggBatch, AggQuery, Aggregate, Backpressure, BatchResult, BreakerState, DispatchEngine,
        Engine, EngineChoice, EngineConfig, EpochDb, FactorizedEngine, FilterOp, FlatEngine,
        FrontDoor, FrontDoorConfig, LmfaoEngine, MaintState, MaintainableEngine, ServingEngine,
        ServingStats, ShardedEngine,
    };
    pub use fdb_data::{AttrType, Attribute, Database, Delta, Relation, Schema, Value};
    pub use fdb_ring::{CovRing, Ring, Semiring};
}
