//! The paper's running example (Figure 7): Orders, Dish, Items.
//!
//! Strings are dictionary-encoded with the codes fixed below so tests can
//! assert the exact numbers of Figures 7–10.

use fdb_data::{AttrType, Database, Relation, Schema, Value};

/// Dictionary codes used by [`dish_database`].
pub mod codes {
    /// customer Elise
    pub const ELISE: i64 = 0;
    /// customer Steve
    pub const STEVE: i64 = 1;
    /// customer Joe
    pub const JOE: i64 = 2;
    /// day Monday
    pub const MONDAY: i64 = 0;
    /// day Friday
    pub const FRIDAY: i64 = 1;
    /// dish burger
    pub const BURGER: i64 = 0;
    /// dish hotdog
    pub const HOTDOG: i64 = 1;
    /// item patty
    pub const PATTY: i64 = 0;
    /// item onion
    pub const ONION: i64 = 1;
    /// item bun
    pub const BUN: i64 = 2;
    /// item sausage
    pub const SAUSAGE: i64 = 3;
}

/// Builds the Figure 7 database with registered dictionaries.
pub fn dish_database() -> Database {
    use codes::*;
    let mut db = Database::new();
    for (attr, terms) in [
        ("customer", &["Elise", "Steve", "Joe"][..]),
        ("day", &["Monday", "Friday"][..]),
        ("dish", &["burger", "hotdog"][..]),
        ("item", &["patty", "onion", "bun", "sausage"][..]),
    ] {
        let d = db.dict_mut(attr);
        for t in terms {
            d.encode(t);
        }
    }
    let orders = Relation::from_rows(
        Schema::of(&[
            ("customer", AttrType::Categorical),
            ("day", AttrType::Categorical),
            ("dish", AttrType::Categorical),
        ]),
        vec![
            vec![Value::Int(ELISE), Value::Int(MONDAY), Value::Int(BURGER)],
            vec![Value::Int(ELISE), Value::Int(FRIDAY), Value::Int(BURGER)],
            vec![Value::Int(STEVE), Value::Int(FRIDAY), Value::Int(HOTDOG)],
            vec![Value::Int(JOE), Value::Int(FRIDAY), Value::Int(HOTDOG)],
        ],
    )
    .expect("static data is well-typed");
    let dish = Relation::from_rows(
        Schema::of(&[("dish", AttrType::Categorical), ("item", AttrType::Categorical)]),
        vec![
            vec![Value::Int(BURGER), Value::Int(PATTY)],
            vec![Value::Int(BURGER), Value::Int(ONION)],
            vec![Value::Int(BURGER), Value::Int(BUN)],
            vec![Value::Int(HOTDOG), Value::Int(BUN)],
            vec![Value::Int(HOTDOG), Value::Int(ONION)],
            vec![Value::Int(HOTDOG), Value::Int(SAUSAGE)],
        ],
    )
    .expect("static data is well-typed");
    let items = Relation::from_rows(
        Schema::of(&[("item", AttrType::Categorical), ("price", AttrType::Double)]),
        vec![
            vec![Value::Int(PATTY), Value::F64(6.0)],
            vec![Value::Int(ONION), Value::F64(2.0)],
            vec![Value::Int(BUN), Value::F64(2.0)],
            vec![Value::Int(SAUSAGE), Value::F64(4.0)],
        ],
    )
    .expect("static data is well-typed");
    db.add("Orders", orders);
    db.add("Dish", dish);
    db.add("Items", items);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_figure7() {
        let db = dish_database();
        assert_eq!(db.get("Orders").unwrap().len(), 4);
        assert_eq!(db.get("Dish").unwrap().len(), 6);
        assert_eq!(db.get("Items").unwrap().len(), 4);
        assert_eq!(db.dict("item").unwrap().decode(codes::SAUSAGE), Some("sausage"));
    }
}
