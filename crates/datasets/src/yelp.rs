//! The Yelp-style dataset: review ratings over users and businesses.

use crate::features::FeatureSet;
use crate::util::{gauss, skewed_index, uniform};
use crate::Dataset;
use fdb_data::{AttrType, DataError, Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the Yelp generator.
#[derive(Debug, Clone, Copy)]
pub struct YelpConfig {
    /// Number of users.
    pub users: usize,
    /// Number of businesses.
    pub businesses: usize,
    /// Number of reviews.
    pub reviews: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YelpConfig {
    fn default() -> Self {
        Self { users: 2_000, businesses: 600, reviews: 60_000, seed: 0x1E19 }
    }
}

impl YelpConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        Self { users: 30, businesses: 10, reviews: 200, seed: 11 }
    }
}

/// Generates the Yelp-style dataset.
///
/// The generator emits schema-conformant rows by construction, so the
/// fallible [`try_yelp`] cannot actually fail — the single `expect` here
/// documents that invariant instead of scattering one per row.
pub fn yelp(cfg: YelpConfig) -> Dataset {
    try_yelp(cfg).expect("generator rows match their declared schemas")
}

/// Fallible variant of [`yelp`]: surfaces any row/schema mismatch as a
/// [`DataError`] instead of panicking mid-build.
pub fn try_yelp(cfg: YelpConfig) -> Result<Dataset, DataError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut users = Relation::new(Schema::of(&[
        ("user", AttrType::Int),
        ("user_avg", AttrType::Double),
        ("user_count", AttrType::Double),
        ("fans", AttrType::Double),
        ("elite", AttrType::Categorical),
    ]));
    let mut user_avg = Vec::with_capacity(cfg.users);
    for u in 0..cfg.users as i64 {
        let avg = uniform(&mut rng, 2.0, 4.8);
        user_avg.push(avg);
        users.push_row(&[
            Value::Int(u),
            Value::F64(avg),
            Value::F64(uniform(&mut rng, 1.0, 300.0)),
            Value::F64(uniform(&mut rng, 0.0, 50.0)),
            Value::Int(i64::from(rng.gen_bool(0.1))),
        ])?;
    }

    let mut businesses = Relation::new(Schema::of(&[
        ("business", AttrType::Int),
        ("b_avg", AttrType::Double),
        ("b_count", AttrType::Double),
        ("is_open", AttrType::Categorical),
        ("city", AttrType::Categorical),
        ("price_range", AttrType::Categorical),
    ]));
    let mut b_avg = Vec::with_capacity(cfg.businesses);
    for b in 0..cfg.businesses as i64 {
        let avg = uniform(&mut rng, 2.0, 4.8);
        b_avg.push(avg);
        businesses.push_row(&[
            Value::Int(b),
            Value::F64(avg),
            Value::F64(uniform(&mut rng, 5.0, 2_000.0)),
            Value::Int(i64::from(rng.gen_bool(0.85))),
            Value::Int(rng.gen_range(0..20)),
            Value::Int(rng.gen_range(1..5)),
        ])?;
    }

    let mut reviews = Relation::new(Schema::of(&[
        ("user", AttrType::Int),
        ("business", AttrType::Int),
        ("useful", AttrType::Double),
        ("stars", AttrType::Double),
    ]));
    for _ in 0..cfg.reviews {
        let u = skewed_index(&mut rng, cfg.users, 1.5);
        let b = skewed_index(&mut rng, cfg.businesses, 1.5);
        let stars =
            0.5 * user_avg[u as usize] + 0.5 * b_avg[b as usize] + gauss(&mut rng, 0.0, 0.6);
        reviews.push_row(&[
            Value::Int(u),
            Value::Int(b),
            Value::F64(uniform(&mut rng, 0.0, 30.0)),
            Value::F64(stars.clamp(1.0, 5.0)),
        ])?;
    }

    let mut db = Database::new();
    db.add("Review", reviews);
    db.add("User", users);
    db.add("Business", businesses);

    Ok(Dataset {
        db,
        relations: ["Review", "User", "Business"].iter().map(|s| s.to_string()).collect(),
        features: FeatureSet::new(
            &["user_avg", "user_count", "fans", "b_avg", "b_count", "useful"],
            &["elite", "is_open", "city", "price_range"],
            "stars",
        ),
        name: "Yelp",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_bounds() {
        let ds = yelp(YelpConfig::tiny());
        let r = ds.db.get("Review").unwrap();
        assert_eq!(r.len(), 200);
        let stars_col = r.schema().require("stars").unwrap();
        for &s in r.f64_col(stars_col) {
            assert!((1.0..=5.0).contains(&s));
        }
    }

    #[test]
    fn determinism() {
        let a = yelp(YelpConfig::tiny());
        let b = yelp(YelpConfig::tiny());
        assert_eq!(a.db.get("Review").unwrap(), b.db.get("Review").unwrap());
    }
}
