//! Shared generator helpers: skewed samplers and noise.

use rand::rngs::StdRng;
use rand::Rng;

/// A power-law-skewed index in `0..n` (smaller indices more likely);
/// `skew = 0` is uniform, larger values concentrate mass on few indices —
/// the "heavy/light key" degree structure §3.2 discusses.
pub fn skewed_index(rng: &mut StdRng, n: usize, skew: f64) -> i64 {
    debug_assert!(n > 0);
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let x = u.powf(1.0 + skew);
    ((x * n as f64) as usize).min(n - 1) as i64
}

/// Approximately normal noise via the sum of uniforms (Irwin–Hall with 12
/// terms has unit variance) — good enough for synthetic responses and free
/// of extra dependencies.
pub fn gauss(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
    mean + std * s
}

/// A uniform float in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skewed_index_in_range_and_skews_low() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100;
        let mut low = 0;
        for _ in 0..2000 {
            let i = skewed_index(&mut rng, n, 2.0);
            assert!((0..n as i64).contains(&i));
            if i < 20 {
                low += 1;
            }
        }
        // With skew 2.0, far more than 20% of samples land in the lowest 20%.
        assert!(low > 800, "low bucket got {low}");
    }

    #[test]
    fn gauss_moments_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..5000).map(|_| gauss(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }
}
