//! Feature-set metadata: which attributes feed the models.

/// The features of a learning task over a feature extraction query.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// Continuous feature attribute names (excluding the response).
    pub continuous: Vec<String>,
    /// Categorical feature attribute names (dictionary-encoded `Int`s).
    pub categorical: Vec<String>,
    /// The response/label attribute (continuous).
    pub response: String,
}

impl FeatureSet {
    /// Builds a feature set from string slices.
    pub fn new(continuous: &[&str], categorical: &[&str], response: &str) -> Self {
        Self {
            continuous: continuous.iter().map(|s| s.to_string()).collect(),
            categorical: categorical.iter().map(|s| s.to_string()).collect(),
            response: response.to_string(),
        }
    }

    /// All continuous attributes *including* the response — the column set
    /// of the regression covariance matrix.
    pub fn continuous_with_response(&self) -> Vec<String> {
        let mut v = self.continuous.clone();
        v.push(self.response.clone());
        v
    }

    /// Leaked-free `&str` view of [`Self::continuous_with_response`] —
    /// engines take `&[&str]`. The returned strings borrow from `self`.
    pub fn continuous_with_response_refs(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.continuous.iter().map(String::as_str).collect();
        v.push(self.response.as_str());
        v
    }

    /// Total feature count (continuous + categorical), excluding response.
    pub fn len(&self) -> usize {
        self.continuous.len() + self.categorical.len()
    }

    /// True if there are no features.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let f = FeatureSet::new(&["a", "b"], &["c"], "y");
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.continuous_with_response(), vec!["a", "b", "y"]);
        assert_eq!(f.response, "y");
    }
}
