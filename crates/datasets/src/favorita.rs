//! The Favorita-style dataset: grocery sales forecasting.
//!
//! Six relations as in the public Kaggle dataset the paper evaluates on:
//! Sales (fact), Stores, Items, Transactions, Oil, Holiday, joined on
//! date / store / item.

use crate::features::FeatureSet;
use crate::util::{gauss, skewed_index, uniform};
use crate::Dataset;
use fdb_data::{AttrType, DataError, Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the Favorita generator.
#[derive(Debug, Clone, Copy)]
pub struct FavoritaConfig {
    /// Number of dates.
    pub dates: usize,
    /// Number of stores.
    pub stores: usize,
    /// Number of items.
    pub items: usize,
    /// Expected items sold per (store, date).
    pub basket: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FavoritaConfig {
    fn default() -> Self {
        Self { dates: 90, stores: 30, items: 200, basket: 40, seed: 0xFAE }
    }
}

impl FavoritaConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        Self { dates: 10, stores: 4, items: 25, basket: 8, seed: 3 }
    }
}

/// Generates the Favorita-style dataset.
///
/// The generator emits schema-conformant rows by construction, so the
/// fallible [`try_favorita`] cannot actually fail — the single `expect`
/// here documents that invariant instead of scattering one per row.
pub fn favorita(cfg: FavoritaConfig) -> Dataset {
    try_favorita(cfg).expect("generator rows match their declared schemas")
}

/// Fallible variant of [`favorita`]: surfaces any row/schema mismatch as
/// a [`DataError`] instead of panicking mid-build.
pub fn try_favorita(cfg: FavoritaConfig) -> Result<Dataset, DataError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut stores = Relation::new(Schema::of(&[
        ("store", AttrType::Int),
        ("city", AttrType::Categorical),
        ("state", AttrType::Categorical),
        ("stype", AttrType::Categorical),
        ("cluster", AttrType::Categorical),
    ]));
    for s in 0..cfg.stores as i64 {
        stores.push_row(&[
            Value::Int(s),
            Value::Int(rng.gen_range(0..12)),
            Value::Int(rng.gen_range(0..6)),
            Value::Int(rng.gen_range(0..4)),
            Value::Int(rng.gen_range(0..8)),
        ])?;
    }

    let mut items = Relation::new(Schema::of(&[
        ("item", AttrType::Int),
        ("family", AttrType::Categorical),
        ("itemclass", AttrType::Categorical),
        ("perishable", AttrType::Categorical),
    ]));
    for i in 0..cfg.items as i64 {
        items.push_row(&[
            Value::Int(i),
            Value::Int(rng.gen_range(0..15)),
            Value::Int(rng.gen_range(0..30)),
            Value::Int(i64::from(rng.gen_bool(0.25))),
        ])?;
    }

    let mut oil =
        Relation::new(Schema::of(&[("date", AttrType::Int), ("oilprize", AttrType::Double)]));
    let mut oil_prices = Vec::with_capacity(cfg.dates);
    let mut p = 55.0;
    for d in 0..cfg.dates as i64 {
        p += gauss(&mut rng, 0.0, 0.8);
        oil_prices.push(p);
        oil.push_row(&[Value::Int(d), Value::F64(p)])?;
    }

    let mut holiday = Relation::new(Schema::of(&[
        ("date", AttrType::Int),
        ("holidaytype", AttrType::Categorical),
        ("transferred", AttrType::Categorical),
    ]));
    let mut is_holiday = vec![0i64; cfg.dates];
    for d in 0..cfg.dates as i64 {
        let h = i64::from(rng.gen_bool(0.1));
        is_holiday[d as usize] = h;
        holiday.push_row(&[
            Value::Int(d),
            Value::Int(if h == 1 { rng.gen_range(1..4) } else { 0 }),
            Value::Int(i64::from(rng.gen_bool(0.05))),
        ])?;
    }

    let mut transactions = Relation::new(Schema::of(&[
        ("date", AttrType::Int),
        ("store", AttrType::Int),
        ("txns", AttrType::Double),
    ]));
    let mut txn_count = vec![0.0f64; cfg.dates * cfg.stores];
    for d in 0..cfg.dates as i64 {
        for s in 0..cfg.stores as i64 {
            let t = uniform(&mut rng, 500.0, 3_000.0)
                * if is_holiday[d as usize] == 1 { 1.4 } else { 1.0 };
            txn_count[d as usize * cfg.stores + s as usize] = t;
            transactions.push_row(&[Value::Int(d), Value::Int(s), Value::F64(t)])?;
        }
    }

    let mut sales = Relation::new(Schema::of(&[
        ("date", AttrType::Int),
        ("store", AttrType::Int),
        ("item", AttrType::Int),
        ("onpromotion", AttrType::Categorical),
        ("unitsales", AttrType::Double),
    ]));
    for d in 0..cfg.dates as i64 {
        for s in 0..cfg.stores as i64 {
            let txns = txn_count[d as usize * cfg.stores + s as usize];
            for _ in 0..cfg.basket {
                let item = skewed_index(&mut rng, cfg.items, 1.0);
                let promo = i64::from(rng.gen_bool(0.15));
                let units =
                    2.0 + 0.002 * txns + 3.0 * promo as f64 + 1.5 * is_holiday[d as usize] as f64
                        - 0.03 * oil_prices[d as usize]
                        + gauss(&mut rng, 0.0, 1.0);
                sales.push_row(&[
                    Value::Int(d),
                    Value::Int(s),
                    Value::Int(item),
                    Value::Int(promo),
                    Value::F64(units.max(0.0)),
                ])?;
            }
        }
    }

    let mut db = Database::new();
    db.add("Sales", sales);
    db.add("Stores", stores);
    db.add("Items", items);
    db.add("Transactions", transactions);
    db.add("Oil", oil);
    db.add("Holiday", holiday);

    Ok(Dataset {
        db,
        relations: ["Sales", "Stores", "Items", "Transactions", "Oil", "Holiday"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        features: FeatureSet::new(
            &["txns", "oilprize"],
            &[
                "onpromotion",
                "family",
                "perishable",
                "stype",
                "cluster",
                "holidaytype",
                "transferred",
            ],
            "unitsales",
        ),
        name: "Favorita",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = favorita(FavoritaConfig::tiny());
        assert_eq!(a.db.len(), 6);
        assert_eq!(a.db.get("Sales").unwrap().len(), 10 * 4 * 8);
        assert_eq!(a.db.get("Oil").unwrap().len(), 10);
        let b = favorita(FavoritaConfig::tiny());
        assert_eq!(a.db.get("Sales").unwrap(), b.db.get("Sales").unwrap());
    }

    #[test]
    fn transactions_cover_all_store_dates() {
        let ds = favorita(FavoritaConfig::tiny());
        assert_eq!(ds.db.get("Transactions").unwrap().len(), 10 * 4);
    }
}
