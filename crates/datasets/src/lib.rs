//! # fdb-datasets
//!
//! Seeded synthetic dataset generators with the schema shape of the paper's
//! four evaluation datasets (Retailer, Favorita, Yelp, TPC-DS) plus the
//! Figure 7 Orders/Dish/Items example. Scale factors are laptop-sized by
//! default and configurable; the join/aggregate *structure* matches the
//! originals, which is what the experiments exercise (see DESIGN.md §1 for
//! the substitution rationale).

pub mod dish;
pub mod favorita;
pub mod features;
pub mod retailer;
pub mod synthetic;
pub mod tpcds;
pub mod util;
pub mod yelp;

pub use dish::dish_database;
pub use favorita::{favorita, try_favorita, FavoritaConfig};
pub use features::FeatureSet;
pub use retailer::{retailer, try_retailer, RetailerConfig};
pub use synthetic::{zipf_snowflake, ZipfConfig};
pub use tpcds::{tpcds, try_tpcds, TpcdsConfig};
pub use yelp::{try_yelp, yelp, YelpConfig};

/// A generated dataset: the database, the relations participating in the
/// feature extraction query (in join order), and its feature set.
pub struct Dataset {
    /// The generated database.
    pub db: fdb_data::Database,
    /// Relation names of the feature extraction query.
    pub relations: Vec<String>,
    /// Features for the learning tasks.
    pub features: FeatureSet,
    /// Short dataset name for reports ("Retailer", …).
    pub name: &'static str,
}

impl Dataset {
    /// Relation names as `&str` slices (the engines take `&[&str]`).
    pub fn relation_refs(&self) -> Vec<&str> {
        self.relations.iter().map(String::as_str).collect()
    }
}
