//! The Retailer dataset generator (paper Figures 2 and 3).
//!
//! Schema shape follows the LMFAO evaluation: a large Inventory fact table
//! joined with Location, Census (demographics by zip), Item, and Weather.
//! The response `inventoryunits` is a noisy linear function of price,
//! weather, and demographics so regression models have signal to find.

use crate::features::FeatureSet;
use crate::util::{gauss, skewed_index, uniform};
use crate::Dataset;
use fdb_data::{AttrType, DataError, Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the retailer generator.
#[derive(Debug, Clone, Copy)]
pub struct RetailerConfig {
    /// Number of store locations.
    pub locations: usize,
    /// Number of dates.
    pub dates: usize,
    /// Number of stock-keeping numbers (items).
    pub items: usize,
    /// Expected fraction of items stocked per (location, date).
    pub fill: f64,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl Default for RetailerConfig {
    fn default() -> Self {
        // ≈ 120k inventory rows: laptop-scale, same shape as the paper's 84M.
        Self { locations: 40, dates: 60, items: 150, fill: 0.33, seed: 0xFDB }
    }
}

impl RetailerConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        Self { locations: 5, dates: 8, items: 20, fill: 0.5, seed: 7 }
    }

    /// Scales the default config by `f` (rows grow roughly linearly in `f`).
    pub fn scaled(f: f64) -> Self {
        let d = Self::default();
        Self {
            locations: ((d.locations as f64) * f.cbrt()).ceil() as usize,
            dates: ((d.dates as f64) * f.cbrt()).ceil() as usize,
            items: ((d.items as f64) * f.cbrt()).ceil() as usize,
            ..d
        }
    }
}

/// Generates the retailer dataset.
///
/// The generator emits schema-conformant rows by construction, so the
/// fallible [`try_retailer`] cannot actually fail — the single `expect`
/// here documents that invariant instead of scattering one per row.
pub fn retailer(cfg: RetailerConfig) -> Dataset {
    try_retailer(cfg).expect("generator rows match their declared schemas")
}

/// Fallible variant of [`retailer`]: surfaces any row/schema mismatch as
/// a [`DataError`] instead of panicking mid-build.
pub fn try_retailer(cfg: RetailerConfig) -> Result<Dataset, DataError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zips = (cfg.locations / 2).max(1);

    // Location(locn, zip, rgn_cd, clim_zn_nbr, avghhi, sell_area_sq_ft,
    //          supertargetdistance, walmartdistance)
    let mut location = Relation::new(Schema::of(&[
        ("locn", AttrType::Int),
        ("zip", AttrType::Int),
        ("rgn_cd", AttrType::Categorical),
        ("clim_zn_nbr", AttrType::Categorical),
        ("avghhi", AttrType::Double),
        ("sell_area_sq_ft", AttrType::Double),
        ("supertargetdistance", AttrType::Double),
        ("walmartdistance", AttrType::Double),
    ]));
    let mut loc_zip = Vec::with_capacity(cfg.locations);
    for locn in 0..cfg.locations as i64 {
        let zip = rng.gen_range(0..zips as i64);
        loc_zip.push(zip);
        location.push_row(&[
            Value::Int(locn),
            Value::Int(zip),
            Value::Int(rng.gen_range(0..8)),
            Value::Int(rng.gen_range(0..5)),
            Value::F64(gauss(&mut rng, 60_000.0, 15_000.0)),
            Value::F64(uniform(&mut rng, 5_000.0, 50_000.0)),
            Value::F64(uniform(&mut rng, 0.5, 30.0)),
            Value::F64(uniform(&mut rng, 0.5, 30.0)),
        ])?;
    }

    // Census(zip, population, medianage, houseunits, families, males, females)
    let mut census = Relation::new(Schema::of(&[
        ("zip", AttrType::Int),
        ("population", AttrType::Double),
        ("medianage", AttrType::Double),
        ("houseunits", AttrType::Double),
        ("families", AttrType::Double),
        ("males", AttrType::Double),
        ("females", AttrType::Double),
    ]));
    let mut zip_pop = Vec::with_capacity(zips);
    for zip in 0..zips as i64 {
        let pop = uniform(&mut rng, 5_000.0, 120_000.0);
        zip_pop.push(pop);
        census.push_row(&[
            Value::Int(zip),
            Value::F64(pop),
            Value::F64(uniform(&mut rng, 25.0, 55.0)),
            Value::F64(pop * uniform(&mut rng, 0.3, 0.5)),
            Value::F64(pop * uniform(&mut rng, 0.2, 0.35)),
            Value::F64(pop * uniform(&mut rng, 0.47, 0.52)),
            Value::F64(pop * uniform(&mut rng, 0.47, 0.52)),
        ])?;
    }

    // Item(ksn, subcategory, category, categoryCluster, prize)
    let mut item = Relation::new(Schema::of(&[
        ("ksn", AttrType::Int),
        ("subcategory", AttrType::Categorical),
        ("category", AttrType::Categorical),
        ("categoryCluster", AttrType::Categorical),
        ("prize", AttrType::Double),
    ]));
    let mut item_prize = Vec::with_capacity(cfg.items);
    for ksn in 0..cfg.items as i64 {
        let prize = uniform(&mut rng, 1.0, 40.0);
        item_prize.push(prize);
        item.push_row(&[
            Value::Int(ksn),
            Value::Int(rng.gen_range(0..40)),
            Value::Int(rng.gen_range(0..12)),
            Value::Int(rng.gen_range(0..4)),
            Value::F64(prize),
        ])?;
    }

    // Weather(locn, dateid, rain, snow, maxtemp, mintemp, meanwind, thunder)
    let mut weather = Relation::new(Schema::of(&[
        ("locn", AttrType::Int),
        ("dateid", AttrType::Int),
        ("rain", AttrType::Categorical),
        ("snow", AttrType::Categorical),
        ("maxtemp", AttrType::Double),
        ("mintemp", AttrType::Double),
        ("meanwind", AttrType::Double),
        ("thunder", AttrType::Categorical),
    ]));
    let mut weather_info = vec![(0.0f64, 0i64); cfg.locations * cfg.dates];
    for locn in 0..cfg.locations as i64 {
        for dateid in 0..cfg.dates as i64 {
            let maxtemp = gauss(&mut rng, 18.0, 9.0);
            let rain = i64::from(rng.gen_bool(0.3));
            weather_info[locn as usize * cfg.dates + dateid as usize] = (maxtemp, rain);
            weather.push_row(&[
                Value::Int(locn),
                Value::Int(dateid),
                Value::Int(rain),
                Value::Int(i64::from(maxtemp < 2.0)),
                Value::F64(maxtemp),
                Value::F64(maxtemp - uniform(&mut rng, 3.0, 10.0)),
                Value::F64(uniform(&mut rng, 0.0, 25.0)),
                Value::Int(i64::from(rng.gen_bool(0.05))),
            ])?;
        }
    }

    // Inventory(locn, dateid, ksn, inventoryunits): the fact table. The
    // response depends on price, weather, and demographics plus noise.
    let mut inventory = Relation::new(Schema::of(&[
        ("locn", AttrType::Int),
        ("dateid", AttrType::Int),
        ("ksn", AttrType::Int),
        ("inventoryunits", AttrType::Double),
    ]));
    let per_cell = ((cfg.items as f64) * cfg.fill).round() as usize;
    for locn in 0..cfg.locations as i64 {
        let pop = zip_pop[loc_zip[locn as usize] as usize];
        for dateid in 0..cfg.dates as i64 {
            let (maxtemp, rain) = weather_info[locn as usize * cfg.dates + dateid as usize];
            for _ in 0..per_cell {
                let ksn = skewed_index(&mut rng, cfg.items, 1.2);
                let prize = item_prize[ksn as usize];
                let units = 25.0 - 0.45 * prize + 0.12 * maxtemp - 2.0 * rain as f64
                    + 0.00005 * pop
                    + gauss(&mut rng, 0.0, 1.5);
                inventory.push_row(&[
                    Value::Int(locn),
                    Value::Int(dateid),
                    Value::Int(ksn),
                    Value::F64(units.max(0.0)),
                ])?;
            }
        }
    }

    let mut db = Database::new();
    db.add("Inventory", inventory);
    db.add("Location", location);
    db.add("Census", census);
    db.add("Item", item);
    db.add("Weather", weather);

    Ok(Dataset {
        db,
        relations: ["Inventory", "Location", "Census", "Item", "Weather"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        features: FeatureSet::new(
            &[
                "prize",
                "maxtemp",
                "mintemp",
                "meanwind",
                "population",
                "medianage",
                "houseunits",
                "avghhi",
                "sell_area_sq_ft",
                "supertargetdistance",
                "walmartdistance",
            ],
            &["rain", "snow", "thunder", "category", "categoryCluster", "rgn_cd", "clim_zn_nbr"],
            "inventoryunits",
        ),
        name: "Retailer",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tiny_instance_has_expected_shape() {
        let ds = retailer(RetailerConfig::tiny());
        let inv = ds.db.get("Inventory").unwrap();
        assert!(!inv.is_empty());
        assert_eq!(ds.db.get("Weather").unwrap().len(), 5 * 8);
        assert_eq!(ds.db.get("Location").unwrap().len(), 5);
        assert_eq!(ds.relations.len(), 5);
        assert_eq!(ds.features.response, "inventoryunits");
    }

    #[test]
    fn foreign_keys_are_closed() {
        let ds = retailer(RetailerConfig::tiny());
        let inv = ds.db.get("Inventory").unwrap();
        let locs: HashSet<i64> =
            ds.db.get("Location").unwrap().int_col(0).iter().copied().collect();
        let items: HashSet<i64> = ds.db.get("Item").unwrap().int_col(0).iter().copied().collect();
        let zips: HashSet<i64> = ds.db.get("Census").unwrap().int_col(0).iter().copied().collect();
        for &l in inv.int_col(0) {
            assert!(locs.contains(&l));
        }
        for &k in inv.int_col(2) {
            assert!(items.contains(&k));
        }
        for &z in ds.db.get("Location").unwrap().int_col(1) {
            assert!(zips.contains(&z));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = retailer(RetailerConfig::tiny());
        let b = retailer(RetailerConfig::tiny());
        assert_eq!(a.db.get("Inventory").unwrap(), b.db.get("Inventory").unwrap());
        assert_eq!(a.db.get("Census").unwrap(), b.db.get("Census").unwrap());
    }

    #[test]
    fn response_correlates_negatively_with_price() {
        // The planted signal: more expensive items carry fewer units.
        let ds = retailer(RetailerConfig::tiny());
        let inv = ds.db.get("Inventory").unwrap();
        let item = ds.db.get("Item").unwrap();
        let prize: Vec<f64> = item.f64_col(4).to_vec();
        let xs: Vec<f64> = inv.int_col(2).iter().map(|&k| prize[k as usize]).collect();
        let ys: Vec<f64> = inv.f64_col(3).to_vec();
        let n = xs.len() as f64;
        let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / n;
        assert!(cov < 0.0, "covariance {cov} should be negative");
    }
}
