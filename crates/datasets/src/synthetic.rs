//! A skew-controlled synthetic snowflake for scheduler experiments.
//!
//! The paper's generators (Retailer &c.) draw foreign keys i.i.d., so any
//! contiguous row split of the fact table gets statistically identical
//! work. This generator instead *clusters* the fact table by its skewed
//! key: heavy keys occupy long contiguous stretches, so equal-row shards
//! carry very different group structures — the shape that starves a
//! one-thread-per-shard scheduler and that morsel-sized work units are
//! meant to fix (ShardedEngine's over-partitioning).

use crate::features::FeatureSet;
use crate::util::{gauss, skewed_index, uniform};
use crate::Dataset;
use fdb_data::{AttrType, Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale and skew knobs for [`zipf_snowflake`].
#[derive(Debug, Clone, Copy)]
pub struct ZipfConfig {
    /// Fact-table rows.
    pub fact_rows: usize,
    /// Rows per dimension table (key domain size).
    pub dim_rows: usize,
    /// Power-law exponent of the fact→DimA key (0 = uniform; larger
    /// concentrates mass on few keys, see [`skewed_index`]).
    pub skew: f64,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        Self { fact_rows: 40_000, dim_rows: 64, skew: 2.0, seed: 0x51F7 }
    }
}

impl ZipfConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        Self { fact_rows: 600, dim_rows: 12, skew: 2.0, seed: 11 }
    }
}

/// Generates the skewed snowflake: `Fact(k1, k2, v)` clustered by the
/// Zipf-distributed `k1`, with dimensions `DimA(k1, a, grp)` and
/// `DimB(k2, b)`.
pub fn zipf_snowflake(cfg: ZipfConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dims = cfg.dim_rows.max(1);

    // DimA(k1, a, grp)
    let mut dim_a = Relation::new(Schema::of(&[
        ("k1", AttrType::Int),
        ("a", AttrType::Double),
        ("grp", AttrType::Categorical),
    ]));
    let mut a_vals = Vec::with_capacity(dims);
    for k1 in 0..dims as i64 {
        let a = uniform(&mut rng, -2.0, 2.0);
        a_vals.push(a);
        dim_a
            .push_row(&[Value::Int(k1), Value::F64(a), Value::Int(rng.gen_range(0..6))])
            .expect("generator rows are well-typed");
    }

    // DimB(k2, b)
    let mut dim_b = Relation::new(Schema::of(&[("k2", AttrType::Int), ("b", AttrType::Double)]));
    let mut b_vals = Vec::with_capacity(dims);
    for k2 in 0..dims as i64 {
        let b = uniform(&mut rng, 0.0, 5.0);
        b_vals.push(b);
        dim_b.push_row(&[Value::Int(k2), Value::F64(b)]).expect("generator rows are well-typed");
    }

    // Fact(k1, k2, v): k1 power-law-skewed, then *sorted* so heavy keys
    // form contiguous runs — contiguous shards see unequal group structure.
    let mut rows: Vec<(i64, i64, f64)> = (0..cfg.fact_rows)
        .map(|_| {
            let k1 = skewed_index(&mut rng, dims, cfg.skew);
            let k2 = rng.gen_range(0..dims as i64);
            let v =
                3.0 * a_vals[k1 as usize] - 0.7 * b_vals[k2 as usize] + gauss(&mut rng, 0.0, 0.5);
            (k1, k2, v)
        })
        .collect();
    rows.sort_by_key(|&(k1, _, _)| k1);
    let mut fact = Relation::new(Schema::of(&[
        ("k1", AttrType::Int),
        ("k2", AttrType::Int),
        ("v", AttrType::Double),
    ]));
    for (k1, k2, v) in rows {
        fact.push_row(&[Value::Int(k1), Value::Int(k2), Value::F64(v)])
            .expect("generator rows are well-typed");
    }

    let mut db = Database::new();
    db.add("Fact", fact);
    db.add("DimA", dim_a);
    db.add("DimB", dim_b);

    Dataset {
        db,
        relations: ["Fact", "DimA", "DimB"].iter().map(|s| s.to_string()).collect(),
        features: FeatureSet::new(&["a", "b"], &["grp"], "v"),
        name: "ZipfSnowflake",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_instance_has_expected_shape() {
        let ds = zipf_snowflake(ZipfConfig::tiny());
        assert_eq!(ds.db.get("Fact").unwrap().len(), 600);
        assert_eq!(ds.db.get("DimA").unwrap().len(), 12);
        assert_eq!(ds.db.get("DimB").unwrap().len(), 12);
        assert_eq!(ds.features.response, "v");
    }

    #[test]
    fn fact_is_clustered_and_skewed() {
        let ds = zipf_snowflake(ZipfConfig::tiny());
        let k1 = ds.db.get("Fact").unwrap().int_col(0);
        assert!(k1.windows(2).all(|w| w[0] <= w[1]), "fact sorted by k1");
        // Skew 2.0 puts far more than a uniform share on the lowest keys.
        let low = k1.iter().filter(|&&k| k < 3).count();
        assert!(low * 2 > k1.len(), "heavy keys carry {low}/{} rows", k1.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = zipf_snowflake(ZipfConfig::tiny());
        let b = zipf_snowflake(ZipfConfig::tiny());
        assert_eq!(a.db.get("Fact").unwrap(), b.db.get("Fact").unwrap());
        assert_eq!(a.db.get("DimA").unwrap(), b.db.get("DimA").unwrap());
    }
}
