//! A TPC-DS-style star schema: store sales with customer, store, item, and
//! date dimensions.

use crate::features::FeatureSet;
use crate::util::{gauss, skewed_index, uniform};
use crate::Dataset;
use fdb_data::{AttrType, DataError, Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the TPC-DS-style generator.
#[derive(Debug, Clone, Copy)]
pub struct TpcdsConfig {
    /// Number of customers.
    pub customers: usize,
    /// Number of stores.
    pub stores: usize,
    /// Number of items.
    pub items: usize,
    /// Number of dates.
    pub dates: usize,
    /// Number of sales facts.
    pub sales: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpcdsConfig {
    fn default() -> Self {
        Self { customers: 3_000, stores: 25, items: 400, dates: 120, sales: 80_000, seed: 0xD5 }
    }
}

impl TpcdsConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        Self { customers: 40, stores: 4, items: 30, dates: 12, sales: 300, seed: 17 }
    }
}

/// Generates the TPC-DS-style dataset.
///
/// The generator emits schema-conformant rows by construction, so the
/// fallible [`try_tpcds`] cannot actually fail — the single `expect` here
/// documents that invariant instead of scattering one per row.
pub fn tpcds(cfg: TpcdsConfig) -> Dataset {
    try_tpcds(cfg).expect("generator rows match their declared schemas")
}

/// Fallible variant of [`tpcds`]: surfaces any row/schema mismatch as a
/// [`DataError`] instead of panicking mid-build.
pub fn try_tpcds(cfg: TpcdsConfig) -> Result<Dataset, DataError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut customer = Relation::new(Schema::of(&[
        ("customer_sk", AttrType::Int),
        ("c_birth_year", AttrType::Double),
        ("c_income", AttrType::Double),
        ("c_credit_rating", AttrType::Categorical),
        ("c_dep_count", AttrType::Double),
    ]));
    for c in 0..cfg.customers as i64 {
        customer.push_row(&[
            Value::Int(c),
            Value::F64(uniform(&mut rng, 1940.0, 2005.0)),
            Value::F64(gauss(&mut rng, 55_000.0, 20_000.0)),
            Value::Int(rng.gen_range(0..4)),
            Value::F64(rng.gen_range(0..6) as f64),
        ])?;
    }

    let mut store = Relation::new(Schema::of(&[
        ("store_sk", AttrType::Int),
        ("s_floor_space", AttrType::Double),
        ("s_number_employees", AttrType::Double),
        ("s_tax_percentage", AttrType::Double),
        ("s_market", AttrType::Categorical),
    ]));
    for s in 0..cfg.stores as i64 {
        store.push_row(&[
            Value::Int(s),
            Value::F64(uniform(&mut rng, 5_000.0, 90_000.0)),
            Value::F64(uniform(&mut rng, 50.0, 300.0)),
            Value::F64(uniform(&mut rng, 0.0, 0.11)),
            Value::Int(rng.gen_range(0..10)),
        ])?;
    }

    let mut item = Relation::new(Schema::of(&[
        ("item_sk", AttrType::Int),
        ("i_current_price", AttrType::Double),
        ("i_wholesale_cost", AttrType::Double),
        ("i_category", AttrType::Categorical),
        ("i_brand", AttrType::Categorical),
    ]));
    let mut price = Vec::with_capacity(cfg.items);
    for i in 0..cfg.items as i64 {
        let p = uniform(&mut rng, 1.0, 120.0);
        price.push(p);
        item.push_row(&[
            Value::Int(i),
            Value::F64(p),
            Value::F64(p * uniform(&mut rng, 0.4, 0.8)),
            Value::Int(rng.gen_range(0..12)),
            Value::Int(rng.gen_range(0..50)),
        ])?;
    }

    let mut date_dim = Relation::new(Schema::of(&[
        ("date_sk", AttrType::Int),
        ("d_year", AttrType::Double),
        ("d_moy", AttrType::Categorical),
        ("d_dow", AttrType::Categorical),
    ]));
    for d in 0..cfg.dates as i64 {
        date_dim.push_row(&[
            Value::Int(d),
            Value::F64(2002.0 + (d / 365) as f64),
            Value::Int((d / 30) % 12),
            Value::Int(d % 7),
        ])?;
    }

    let mut sales = Relation::new(Schema::of(&[
        ("date_sk", AttrType::Int),
        ("item_sk", AttrType::Int),
        ("customer_sk", AttrType::Int),
        ("store_sk", AttrType::Int),
        ("ss_quantity", AttrType::Double),
        ("ss_net_paid", AttrType::Double),
    ]));
    for _ in 0..cfg.sales {
        let d = rng.gen_range(0..cfg.dates as i64);
        let i = skewed_index(&mut rng, cfg.items, 1.0);
        let c = skewed_index(&mut rng, cfg.customers, 0.8);
        let s = rng.gen_range(0..cfg.stores as i64);
        let q = rng.gen_range(1..12) as f64;
        let paid = q * price[i as usize] * uniform(&mut rng, 0.8, 1.0);
        sales.push_row(&[
            Value::Int(d),
            Value::Int(i),
            Value::Int(c),
            Value::Int(s),
            Value::F64(q),
            Value::F64(paid),
        ])?;
    }

    let mut db = Database::new();
    db.add("StoreSales", sales);
    db.add("Customer", customer);
    db.add("Store", store);
    db.add("Item", item);
    db.add("DateDim", date_dim);

    Ok(Dataset {
        db,
        relations: ["StoreSales", "Customer", "Store", "Item", "DateDim"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        features: FeatureSet::new(
            &[
                "ss_quantity",
                "i_current_price",
                "i_wholesale_cost",
                "c_income",
                "c_birth_year",
                "c_dep_count",
                "s_floor_space",
                "s_number_employees",
                "s_tax_percentage",
                "d_year",
            ],
            &["i_category", "i_brand", "c_credit_rating", "s_market", "d_moy", "d_dow"],
            "ss_net_paid",
        ),
        name: "TPC-DS",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = tpcds(TpcdsConfig::tiny());
        assert_eq!(a.db.get("StoreSales").unwrap().len(), 300);
        assert_eq!(a.db.len(), 5);
        let b = tpcds(TpcdsConfig::tiny());
        assert_eq!(a.db.get("StoreSales").unwrap(), b.db.get("StoreSales").unwrap());
    }

    #[test]
    fn net_paid_tracks_quantity_times_price() {
        let ds = tpcds(TpcdsConfig::tiny());
        let ss = ds.db.get("StoreSales").unwrap();
        let item = ds.db.get("Item").unwrap();
        let price: Vec<f64> = item.f64_col(1).to_vec();
        for r in 0..ss.len() {
            let i = ss.int_col(1)[r] as usize;
            let q = ss.f64_col(4)[r];
            let paid = ss.f64_col(5)[r];
            assert!(paid <= q * price[i] + 1e-9);
            assert!(paid >= 0.8 * q * price[i] - 1e-9);
        }
    }
}
