//! The covariance ring of paper §5.2.
//!
//! An element is a triple `(c, s, Q)`: a count scalar, a sum vector of the
//! `n` continuous features, and the (non-centred) second-moment matrix
//! `Q = Σ x xᵀ`, stored as the lower triangle of a symmetric `n×n` matrix.
//!
//! Operations (verbatim from the paper):
//! ```text
//! (c1,s1,Q1) + (c2,s2,Q2) = (c1+c2, s1+s2, Q1+Q2)
//! (c1,s1,Q1) * (c2,s2,Q2) = (c1·c2, c2·s1 + c1·s2,
//!                            c2·Q1 + c1·Q2 + s1·s2ᵀ + s2·s1ᵀ)
//! 0 = (0, 0ⁿ, 0ⁿˣⁿ)      1 = (1, 0ⁿ, 0ⁿˣⁿ)
//! ```
//! A base tuple with feature vector `x` is *lifted* to `(1, x, x xᵀ)`; the
//! sum-product over a (factorized) join then yields `SUM(1)`, `SUM(xᵢ)` and
//! `SUM(xᵢ·xⱼ)` for all pairs in one pass, sharing the lower-degree
//! aggregates inside the higher-degree ones — the sharing LMFAO and F-IVM
//! exploit (Figure 4).

use crate::{Ring, Semiring};

/// A covariance-ring element `(c, s, Q)` with `Q` stored lower-triangular:
/// entry `(i, j)` for `j <= i` lives at `q[i*(i+1)/2 + j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CovTriple {
    /// Count component `SUM(1)`.
    pub c: f64,
    /// Sum component `SUM(x_i)`, length `n`.
    pub s: Box<[f64]>,
    /// Second moments `SUM(x_i * x_j)`, lower triangle, length `n(n+1)/2`.
    pub q: Box<[f64]>,
}

impl CovTriple {
    /// Number of features `n`.
    pub fn dim(&self) -> usize {
        self.s.len()
    }

    /// The `(i, j)` entry of `Q` (symmetric access).
    #[inline]
    pub fn q_at(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.q[i * (i + 1) / 2 + j]
    }

    /// Dense `n×n` copy of `Q` (row-major), for linear-algebra consumers.
    pub fn q_dense(&self) -> Vec<f64> {
        let n = self.dim();
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                m[i * n + j] = self.q_at(i, j);
            }
        }
        m
    }
}

/// The covariance ring over `n` continuous features. The dimension is
/// runtime state of the ring object, so one generic evaluator serves any
/// feature count.
#[derive(Debug, Clone, Copy)]
pub struct CovRing {
    n: usize,
}

impl CovRing {
    /// A covariance ring over `n` features.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    /// The feature dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn tri_len(&self) -> usize {
        self.n * (self.n + 1) / 2
    }

    /// Lifts a full feature vector `x` to `(1, x, x xᵀ)`.
    pub fn lift(&self, x: &[f64]) -> CovTriple {
        assert_eq!(x.len(), self.n, "lift: wrong feature dimension");
        let mut q = vec![0.0; self.tri_len()];
        let mut k = 0;
        for i in 0..self.n {
            for j in 0..=i {
                q[k] = x[i] * x[j];
                k += 1;
            }
        }
        CovTriple { c: 1.0, s: x.to_vec().into(), q: q.into() }
    }

    /// Lifts a *partial* tuple that only provides the features at positions
    /// `idx` (all others contribute 0). This is how relations in a join each
    /// lift only their own attributes; the ring product assembles the
    /// cross-relation products (§5.2).
    pub fn lift_sparse(&self, idx: &[usize], vals: &[f64]) -> CovTriple {
        debug_assert_eq!(idx.len(), vals.len());
        let mut s = vec![0.0; self.n];
        let mut q = vec![0.0; self.tri_len()];
        for (&i, &v) in idx.iter().zip(vals) {
            s[i] = v;
        }
        for (a, &i) in idx.iter().enumerate() {
            for &j in &idx[..=a] {
                let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
                q[hi * (hi + 1) / 2 + lo] = s[i] * s[j];
            }
        }
        CovTriple { c: 1.0, s: s.into(), q: q.into() }
    }

    /// Accumulates the lift of a partial tuple directly into `acc` —
    /// algebraically `add_assign(acc, lift_sparse(idx, vals))` without
    /// materializing the triple. The factorized leaf loop calls this once
    /// per row, so eliding the two `tri_len`-sized allocations per call is
    /// the covariance payload-update kernel of the batch layer; the
    /// materializing composition stays as the baseline arm.
    pub fn add_lift_sparse(&self, acc: &mut CovTriple, idx: &[usize], vals: &[f64]) {
        debug_assert_eq!(idx.len(), vals.len());
        acc.c += 1.0;
        for (&i, &v) in idx.iter().zip(vals) {
            acc.s[i] += v;
        }
        for (a, (&i, &vi)) in idx.iter().zip(vals).enumerate() {
            for (&j, &vj) in idx[..=a].iter().zip(&vals[..=a]) {
                let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
                acc.q[hi * (hi + 1) / 2 + lo] += vi * vj;
            }
        }
    }

    /// The pre-kernel row-at-a-time product: per-entry triangular indexing
    /// with `k` threading through three arrays. Kept verbatim as the
    /// scalar baseline the vectorized [`Semiring::mul`] is A/B'd against
    /// in `perf_regression`.
    pub fn mul_baseline(&self, a: &CovTriple, b: &CovTriple) -> CovTriple {
        let n = self.n;
        let mut s = vec![0.0; n];
        for i in 0..n {
            s[i] = b.c * a.s[i] + a.c * b.s[i];
        }
        let mut q = vec![0.0; self.tri_len()];
        let mut k = 0;
        for i in 0..n {
            for j in 0..=i {
                q[k] = b.c * a.q[k] + a.c * b.q[k] + a.s[i] * b.s[j] + b.s[i] * a.s[j];
                k += 1;
            }
        }
        CovTriple { c: a.c * b.c, s: s.into(), q: q.into() }
    }
}

impl Semiring for CovRing {
    type Elem = CovTriple;

    fn zero(&self) -> CovTriple {
        CovTriple { c: 0.0, s: vec![0.0; self.n].into(), q: vec![0.0; self.tri_len()].into() }
    }

    fn one(&self) -> CovTriple {
        CovTriple { c: 1.0, s: vec![0.0; self.n].into(), q: vec![0.0; self.tri_len()].into() }
    }

    fn add(&self, a: &CovTriple, b: &CovTriple) -> CovTriple {
        let mut out = a.clone();
        self.add_assign(&mut out, b);
        out
    }

    fn add_assign(&self, a: &mut CovTriple, b: &CovTriple) {
        a.c += b.c;
        for (x, y) in a.s.iter_mut().zip(b.s.iter()) {
            *x += *y;
        }
        for (x, y) in a.q.iter_mut().zip(b.q.iter()) {
            *x += *y;
        }
    }

    fn mul(&self, a: &CovTriple, b: &CovTriple) -> CovTriple {
        // Row-sliced form of the paper's product: per triangle row `i`,
        // the inner `j` pass runs over three contiguous `i+1`-length
        // slices with the row-invariant scalars hoisted — a fused
        // multiply-add shape the autovectorizer handles, unlike the
        // k-threaded scalar loop kept as [`CovRing::mul_baseline`].
        let n = self.n;
        let mut s = vec![0.0; n];
        for i in 0..n {
            s[i] = b.c * a.s[i] + a.c * b.s[i];
        }
        let mut q = vec![0.0; self.tri_len()];
        for i in 0..n {
            let row = i * (i + 1) / 2;
            let (ai, bi, ac, bc) = (a.s[i], b.s[i], a.c, b.c);
            let (aq, bq) = (&a.q[row..row + i + 1], &b.q[row..row + i + 1]);
            let qo = &mut q[row..row + i + 1];
            for j in 0..=i {
                qo[j] = bc * aq[j] + ac * bq[j] + ai * b.s[j] + bi * a.s[j];
            }
        }
        CovTriple { c: a.c * b.c, s: s.into(), q: q.into() }
    }

    fn is_zero(&self, a: &CovTriple) -> bool {
        a.c == 0.0 && a.s.iter().all(|&x| x == 0.0) && a.q.iter().all(|&x| x == 0.0)
    }
}

impl Ring for CovRing {
    fn neg(&self, a: &CovTriple) -> CovTriple {
        CovTriple {
            c: -a.c,
            s: a.s.iter().map(|x| -x).collect(),
            q: a.q.iter().map(|x| -x).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: &CovTriple, b: &CovTriple, eps: f64) -> bool {
        (a.c - b.c).abs() <= eps
            && a.s.iter().zip(b.s.iter()).all(|(x, y)| (x - y).abs() <= eps)
            && a.q.iter().zip(b.q.iter()).all(|(x, y)| (x - y).abs() <= eps)
    }

    #[test]
    fn lift_full_matches_outer_product() {
        let ring = CovRing::new(3);
        let t = ring.lift(&[1.0, 2.0, 3.0]);
        assert_eq!(t.c, 1.0);
        assert_eq!(&t.s[..], &[1.0, 2.0, 3.0]);
        assert_eq!(t.q_at(0, 0), 1.0);
        assert_eq!(t.q_at(1, 0), 2.0);
        assert_eq!(t.q_at(2, 1), 6.0);
        assert_eq!(t.q_at(1, 2), 6.0); // symmetric access
        assert_eq!(t.q_dense()[2 * 3 + 2], 9.0);
    }

    #[test]
    fn product_of_disjoint_lifts_equals_joint_lift() {
        // A tuple split across two relations: features {0} and {1, 2}.
        let ring = CovRing::new(3);
        let a = ring.lift_sparse(&[0], &[5.0]);
        let b = ring.lift_sparse(&[1, 2], &[2.0, 3.0]);
        let joint = ring.lift(&[5.0, 2.0, 3.0]);
        assert!(approx(&ring.mul(&a, &b), &joint, 1e-12));
    }

    #[test]
    fn paper_figure10_triples() {
        // Figure 10: SUM(1), SUM(price), SUM(price * dish) with one feature
        // "price" (n = 1); the dish indicator is modelled as a second
        // feature with f(burger) = 1.
        // Left branch under burger: 2 day-customer combinations -> (2, 0, 0).
        // Right branch: items patty/bun/onion with prices 6, 2, 2 ->
        // (3, 10, ...). Product: (6, 20, ...); matches the paper's numbers.
        let ring = CovRing::new(1);
        let left = crate::sum(&ring, [ring.lift_sparse(&[], &[]), ring.lift_sparse(&[], &[])]);
        assert_eq!(left.c, 2.0);
        let right = crate::sum(&ring, [6.0, 2.0, 2.0].iter().map(|&p| ring.lift(&[p])));
        assert_eq!(right.c, 3.0);
        assert_eq!(right.s[0], 10.0);
        let burger = ring.mul(&left, &right);
        assert_eq!(burger.c, 6.0);
        assert_eq!(burger.s[0], 20.0); // SUM(price) under burger
    }

    proptest! {
        #[test]
        fn ring_laws_exact_on_integer_floats(
            av in proptest::collection::vec(-9i32..9, 3),
            bv in proptest::collection::vec(-9i32..9, 3),
            cv in proptest::collection::vec(-9i32..9, 3),
        ) {
            let ring = CovRing::new(3);
            let a = ring.lift(&av.iter().map(|&x| x as f64).collect::<Vec<_>>());
            let b = ring.lift(&bv.iter().map(|&x| x as f64).collect::<Vec<_>>());
            let c = ring.lift(&cv.iter().map(|&x| x as f64).collect::<Vec<_>>());
            // + laws
            prop_assert!(approx(&ring.add(&a, &b), &ring.add(&b, &a), 0.0));
            prop_assert!(approx(
                &ring.add(&ring.add(&a, &b), &c),
                &ring.add(&a, &ring.add(&b, &c)),
                0.0
            ));
            prop_assert!(approx(&ring.add(&a, &ring.zero()), &a, 0.0));
            // * laws
            prop_assert!(approx(&ring.mul(&a, &b), &ring.mul(&b, &a), 0.0));
            prop_assert!(approx(
                &ring.mul(&ring.mul(&a, &b), &c),
                &ring.mul(&a, &ring.mul(&b, &c)),
                0.0
            ));
            prop_assert!(approx(&ring.mul(&a, &ring.one()), &a, 0.0));
            prop_assert!(ring.is_zero(&ring.mul(&a, &ring.zero())));
            // distributivity
            prop_assert!(approx(
                &ring.mul(&a, &ring.add(&b, &c)),
                &ring.add(&ring.mul(&a, &b), &ring.mul(&a, &c)),
                0.0
            ));
            // additive inverse
            prop_assert!(ring.is_zero(&ring.add(&a, &ring.neg(&a))));
        }

        /// The row-sliced product is the same arithmetic as the k-threaded
        /// baseline, term for term — exact equality, not just tolerance.
        #[test]
        fn vectorized_mul_matches_baseline(
            av in proptest::collection::vec(-9i32..9, 4),
            bv in proptest::collection::vec(-9i32..9, 4),
        ) {
            let ring = CovRing::new(4);
            let a = ring.lift(&av.iter().map(|&x| x as f64).collect::<Vec<_>>());
            let b = ring.lift(&bv.iter().map(|&x| x as f64).collect::<Vec<_>>());
            prop_assert!(approx(&ring.mul(&a, &b), &ring.mul_baseline(&a, &b), 0.0));
        }

        /// Fused accumulate ≡ materialize-then-add, on random sparse rows
        /// (distinct feature positions, as the evaluator guarantees).
        #[test]
        fn add_lift_sparse_matches_composition(
            rows in proptest::collection::vec(
                proptest::collection::vec((0usize..5, -9i32..9), 0..5), 0..8),
        ) {
            let ring = CovRing::new(5);
            let mut fused = ring.zero();
            let mut composed = ring.zero();
            for row in &rows {
                // Dedupe positions (last write wins, as in a BTreeMap):
                // the evaluator only ever lifts distinct feature columns.
                let dedup: std::collections::BTreeMap<usize, i32> =
                    row.iter().copied().collect();
                let idx: Vec<usize> = dedup.keys().copied().collect();
                let vals: Vec<f64> = dedup.values().map(|&v| v as f64).collect();
                ring.add_lift_sparse(&mut fused, &idx, &vals);
                ring.add_assign(&mut composed, &ring.lift_sparse(&idx, &vals));
            }
            prop_assert!(approx(&fused, &composed, 0.0));
        }

        #[test]
        fn sum_of_lifts_matches_moments(
            rows in proptest::collection::vec(proptest::collection::vec(-10i32..10, 2), 1..20)
        ) {
            let ring = CovRing::new(2);
            let total = crate::sum(&ring, rows.iter().map(|r| {
                ring.lift(&[r[0] as f64, r[1] as f64])
            }));
            let count = rows.len() as f64;
            let s0: f64 = rows.iter().map(|r| r[0] as f64).sum();
            let q01: f64 = rows.iter().map(|r| (r[0] * r[1]) as f64).sum();
            prop_assert_eq!(total.c, count);
            prop_assert_eq!(total.s[0], s0);
            prop_assert_eq!(total.q_at(0, 1), q01);
        }
    }
}
