//! The dense keyed (group-by) ring.
//!
//! Semantically identical to [`crate::KeyedRing`], but the group-by key —
//! one slot per group-by variable, each *bound* to a dictionary code or
//! still *free* — is packed into a **mixed-radix composite code** instead
//! of a `Box<[Value]>`: slot `i` bound to `v` contributes
//! `(v − minᵢ) · strideᵢ`, free slots contribute nothing, and a bitmask
//! records which slots are bound. Elements are sorted `(mask, code) →
//! payload` lists, so addition is a linear merge and multiplication adds
//! codes — no hashing, no per-key heap allocation, no `Value` boxing in
//! the factorized engine's innermost loops.
//!
//! The representation requires the per-slot code ranges up front (the
//! dictionary domains exposed by `fdb_data`); [`DenseKeyedRing::new`]
//! fails when they are unknown or their product overflows, in which case
//! callers fall back to the hash-map [`crate::KeyedRing`].

use crate::{Ring, Semiring};

/// Key layout of a [`DenseKeyedRing`]: per-slot `(min, domain size,
/// stride)` in a shared mixed-radix code space.
///
/// The layout parallels `fdb-core`'s `KeySpace` (which cannot be shared
/// from here without inverting the crate dependency), but the invariants
/// differ deliberately: ring elements are sparse sorted lists, so there is
/// no size budget — only overflow checks and a 32-slot mask cap — whereas
/// `KeySpace` enforces a code-count limit because its consumers allocate
/// `size`-proportional storage. Keep the stride/overflow logic in sync.
#[derive(Debug, Clone)]
pub struct DenseKeyedRing<R> {
    inner: R,
    mins: Vec<i64>,
    dims: Vec<u64>,
    strides: Vec<u64>,
}

/// An element of the dense keyed ring: sorted `(mask, code, payload)`
/// entries, zero payloads pruned.
pub struct DenseGrouped<R: Semiring> {
    /// `(bound-slot bitmask, composite code, payload)`, sorted by
    /// `(mask, code)`.
    entries: Vec<(u32, u64, R::Elem)>,
}

impl<R: Semiring> Clone for DenseGrouped<R> {
    fn clone(&self) -> Self {
        Self { entries: self.entries.clone() }
    }
}

impl<R: Semiring> std::fmt::Debug for DenseGrouped<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.entries.iter()).finish()
    }
}

impl<R: Semiring> DenseKeyedRing<R> {
    /// A dense keyed ring over the inclusive per-slot `(min, max)` code
    /// ranges. `None` if a range is malformed, there are more than 32
    /// slots, or the code space overflows `u64`.
    pub fn new(inner: R, ranges: &[(i64, i64)]) -> Option<Self> {
        if ranges.len() > 32 {
            return None;
        }
        let mut dims = Vec::with_capacity(ranges.len());
        let mut total: u64 = 1;
        for &(lo, hi) in ranges {
            let d = hi.checked_sub(lo)?.checked_add(1)?;
            if d <= 0 {
                return None;
            }
            dims.push(d as u64);
            total = total.checked_mul(d as u64)?;
        }
        let mut strides = vec![1u64; ranges.len()];
        for i in (0..ranges.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Some(Self { inner, mins: ranges.iter().map(|&(lo, _)| lo).collect(), dims, strides })
    }

    /// The payload ring.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Number of group-by slots.
    pub fn slots(&self) -> usize {
        self.mins.len()
    }

    /// Lifts a payload with slot `slot` bound to code `v` (group-by
    /// tagging). `v` must lie in the slot's declared range.
    pub fn tag(&self, slot: usize, v: i64, payload: R::Elem) -> DenseGrouped<R> {
        let d = v.wrapping_sub(self.mins[slot]) as u64;
        assert!(d < self.dims[slot], "code {v} outside slot {slot}'s declared range");
        if self.inner.is_zero(&payload) {
            return self.zero();
        }
        DenseGrouped { entries: vec![(1 << slot, d * self.strides[slot], payload)] }
    }

    /// Lifts a plain payload with no slots bound.
    pub fn scalar(&self, payload: R::Elem) -> DenseGrouped<R> {
        if self.inner.is_zero(&payload) {
            return self.zero();
        }
        DenseGrouped { entries: vec![(0, 0, payload)] }
    }

    /// The code of `slot` inside composite `code` (meaningful only when
    /// the slot is bound in the entry's mask).
    #[inline]
    fn slot_code(&self, code: u64, slot: usize) -> u64 {
        (code / self.strides[slot]) % self.dims[slot]
    }

    /// Merges two keys; `None` if both bind a slot to different codes (the
    /// annihilating product, as in [`crate::KeyedRing`]).
    fn merge_keys(&self, a: (u32, u64), b: (u32, u64)) -> Option<(u32, u64)> {
        let shared = a.0 & b.0;
        let mut b_rest = b.1;
        if shared != 0 {
            for slot in 0..self.slots() {
                if shared & (1 << slot) != 0 {
                    let (da, db) = (self.slot_code(a.1, slot), self.slot_code(b.1, slot));
                    if da != db {
                        return None;
                    }
                    b_rest -= db * self.strides[slot];
                }
            }
        }
        Some((a.0 | b.0, a.1 + b_rest))
    }

    /// Decodes a fully-bound entry key into slot codes, replacing `out`.
    /// Panics if any slot is free — engine extractions only see elements
    /// whose every group-by variable was bound along the evaluation.
    pub fn decode(&self, mask: u32, code: u64, out: &mut Vec<i64>) {
        assert_eq!(mask, ((1u64 << self.slots()) - 1) as u32, "decode requires all slots bound");
        out.clear();
        for slot in 0..self.slots() {
            out.push(self.mins[slot] + self.slot_code(code, slot) as i64);
        }
    }
}

impl<R: Semiring> DenseGrouped<R> {
    /// Number of non-zero groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if this is the zero element.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(mask, code, payload)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64, &R::Elem)> {
        self.entries.iter().map(|(m, c, v)| (*m, *c, v))
    }
}

impl<R: Semiring> Semiring for DenseKeyedRing<R> {
    type Elem = DenseGrouped<R>;

    fn zero(&self) -> DenseGrouped<R> {
        DenseGrouped { entries: Vec::new() }
    }

    fn one(&self) -> DenseGrouped<R> {
        self.scalar(self.inner.one())
    }

    fn add(&self, a: &DenseGrouped<R>, b: &DenseGrouped<R>) -> DenseGrouped<R> {
        // Linear merge of the sorted entry lists.
        let mut out = Vec::with_capacity(a.entries.len() + b.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < a.entries.len() && j < b.entries.len() {
            let (ka, kb) = ((a.entries[i].0, a.entries[i].1), (b.entries[j].0, b.entries[j].1));
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    out.push(a.entries[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b.entries[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let sum = self.inner.add(&a.entries[i].2, &b.entries[j].2);
                    if !self.inner.is_zero(&sum) {
                        out.push((ka.0, ka.1, sum));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a.entries[i..]);
        out.extend_from_slice(&b.entries[j..]);
        DenseGrouped { entries: out }
    }

    /// In-place batched merge — the optimized twin of [`Semiring::add`]'s
    /// allocating linear merge, which remains the baseline arm of the
    /// kernel A/B (fold with `add`). Two fast paths matter in the evaluator:
    /// an empty side is free, and key-disjoint *appends* (the common case
    /// when leapfrog emits group codes in ascending order) extend the
    /// entry vector instead of re-merging it, turning the repeated
    /// `total += acc` accumulation from quadratic to amortized linear.
    fn add_assign(&self, a: &mut DenseGrouped<R>, b: &DenseGrouped<R>) {
        if b.entries.is_empty() {
            return;
        }
        if a.entries.is_empty() {
            a.entries = b.entries.clone();
            return;
        }
        let a_last = {
            let e = a.entries.last().expect("non-empty");
            (e.0, e.1)
        };
        let b_first = (b.entries[0].0, b.entries[0].1);
        if a_last < b_first {
            a.entries.extend_from_slice(&b.entries);
            return;
        }
        // General case: take the old entries and re-merge. Same zero
        // pruning as `add`, same key order, no second allocation for the
        // common grow-in-place pattern.
        let old = std::mem::take(&mut a.entries);
        let merged = self.add(&DenseGrouped { entries: old }, b);
        a.entries = merged.entries;
    }

    fn mul(&self, a: &DenseGrouped<R>, b: &DenseGrouped<R>) -> DenseGrouped<R> {
        let mut out: Vec<(u32, u64, R::Elem)> =
            Vec::with_capacity(a.entries.len() * b.entries.len());
        for (ma, ca, va) in a.iter() {
            for (mb, cb, vb) in b.iter() {
                if let Some((m, c)) = self.merge_keys((ma, ca), (mb, cb)) {
                    let v = self.inner.mul(va, vb);
                    if !self.inner.is_zero(&v) {
                        out.push((m, c, v));
                    }
                }
            }
        }
        // In factorized plans the factors bind disjoint slot sets, so the
        // cross product is already key-sorted per `a`-entry run; coalesce
        // generically anyway to stay a lawful ring on any input.
        out.sort_by_key(|&(m, c, _)| (m, c));
        let mut coalesced: Vec<(u32, u64, R::Elem)> = Vec::with_capacity(out.len());
        for (m, c, v) in out {
            match coalesced.last_mut() {
                Some(last) if last.0 == m && last.1 == c => {
                    self.inner.add_assign(&mut last.2, &v);
                    if self.inner.is_zero(&last.2) {
                        coalesced.pop();
                    }
                }
                _ => coalesced.push((m, c, v)),
            }
        }
        DenseGrouped { entries: coalesced }
    }

    fn is_zero(&self, a: &DenseGrouped<R>) -> bool {
        a.entries.is_empty()
    }
}

impl<R: Ring> Ring for DenseKeyedRing<R> {
    fn neg(&self, a: &DenseGrouped<R>) -> DenseGrouped<R> {
        DenseGrouped {
            entries: a.entries.iter().map(|(m, c, v)| (*m, *c, self.inner.neg(v))).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::I64Ring;

    fn ring() -> DenseKeyedRing<I64Ring> {
        DenseKeyedRing::new(I64Ring, &[(0, 9), (5, 7)]).unwrap()
    }

    #[test]
    fn construction_limits() {
        assert!(DenseKeyedRing::new(I64Ring, &[]).is_some());
        assert!(DenseKeyedRing::new(I64Ring, &[(3, 2)]).is_none(), "empty range");
        assert!(DenseKeyedRing::new(I64Ring, &[(i64::MIN, i64::MAX)]).is_none(), "overflow");
        assert!(DenseKeyedRing::new(I64Ring, &vec![(0, 1); 33]).is_none(), "> 32 slots");
    }

    #[test]
    fn tag_and_cross_product() {
        let r = ring();
        let a = r.tag(0, 7, 2);
        let b = r.tag(1, 6, 5);
        let ab = r.mul(&a, &b);
        assert_eq!(ab.len(), 1);
        let (mask, code, v) = ab.iter().next().unwrap();
        assert_eq!(*v, 10);
        let mut key = Vec::new();
        r.decode(mask, code, &mut key);
        assert_eq!(key, vec![7, 6]);
    }

    #[test]
    fn identity_annihilator_and_zero_pruning() {
        let r = ring();
        let a = r.tag(0, 1, 3);
        assert_eq!(r.mul(&a, &r.one()).entries, a.entries);
        assert!(r.is_zero(&r.mul(&a, &r.zero())));
        assert_eq!(r.add(&a, &r.zero()).entries, a.entries);
        // Payload sums to zero → the group disappears (multiset deletes).
        let sum = r.add(&a, &r.neg(&a));
        assert!(r.is_zero(&sum));
        assert!(r.is_zero(&r.tag(0, 1, 0)), "zero payloads never enter");
    }

    #[test]
    fn addition_merges_same_keys() {
        let r = ring();
        let c = r.add(&r.tag(0, 1, 3), &r.tag(0, 1, 4));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.iter().next().unwrap().2, 7);
        // Different keys stay separate and sorted.
        let d = r.add(&r.tag(0, 2, 1), &r.tag(0, 1, 1));
        let codes: Vec<u64> = d.iter().map(|(_, c, _)| c).collect();
        assert_eq!(codes.len(), 2);
        assert!(codes[0] < codes[1]);
    }

    #[test]
    fn overlapping_masks_agree_or_annihilate() {
        let r = ring();
        let a = r.tag(0, 1, 2);
        assert!(r.is_zero(&r.mul(&a, &r.tag(0, 2, 3))), "clash annihilates");
        let same = r.mul(&a, &r.tag(0, 1, 3));
        assert_eq!(same.len(), 1);
        assert_eq!(*same.iter().next().unwrap().2, 6, "equal binding multiplies payloads");
    }

    #[test]
    fn distributivity_on_sample() {
        let r = ring();
        let a = r.tag(0, 1, 2);
        let b = r.tag(1, 5, 3);
        let c = r.tag(1, 6, 4);
        let lhs = r.mul(&a, &r.add(&b, &c));
        let rhs = r.add(&r.mul(&a, &b), &r.mul(&a, &c));
        assert_eq!(lhs.entries, rhs.entries);
    }

    #[test]
    fn add_assign_matches_add_on_every_merge_shape() {
        use crate::Ring as _;
        let r = DenseKeyedRing::new(I64Ring, &[(0, 9)]).unwrap();
        let elems = [
            r.zero(),
            r.tag(0, 1, 3),
            r.tag(0, 5, -3),
            r.add(&r.tag(0, 1, 2), &r.tag(0, 7, 4)), // two entries
            r.neg(&r.tag(0, 1, 3)),                  // cancels elems[1]
            r.add(&r.tag(0, 0, 1), &r.tag(0, 9, 1)), // brackets everything
        ];
        for a in &elems {
            for b in &elems {
                let expect = r.add(a, b);
                let mut got = a.clone();
                r.add_assign(&mut got, b);
                assert_eq!(got.entries, expect.entries, "a={a:?} b={b:?}");
            }
        }
        // The append fast path specifically: ascending disjoint keys.
        let mut acc = r.zero();
        for v in 0..10 {
            r.add_assign(&mut acc, &r.tag(0, v, 1));
        }
        assert_eq!(acc.len(), 10);
        let codes: Vec<u64> = acc.iter().map(|(_, c, _)| c).collect();
        assert!(codes.windows(2).all(|w| w[0] < w[1]), "sorted order preserved");
    }

    #[test]
    fn matches_keyed_ring_on_grouped_sums() {
        // The same little sum-product computed in both keyed rings.
        use crate::{KeyedRing, Semiring as _};
        use fdb_data::Value;
        let dr = DenseKeyedRing::new(I64Ring, &[(0, 3), (0, 3)]).unwrap();
        let hr = KeyedRing::new(I64Ring, 2);
        let data = [(0i64, 1i64, 2), (0, 1, 3), (1, 0, 4), (3, 2, 5)];
        let mut dtot = dr.zero();
        let mut htot = hr.zero();
        for &(x, y, w) in &data {
            dr.add_assign(&mut dtot, &dr.mul(&dr.tag(0, x, w), &dr.tag(1, y, 1)));
            hr.add_assign(
                &mut htot,
                &hr.mul(&hr.tag(0, Value::Int(x), w), &hr.tag(1, Value::Int(y), 1)),
            );
        }
        assert_eq!(dtot.len(), htot.len());
        let mut key = Vec::new();
        for (mask, code, v) in dtot.iter() {
            dr.decode(mask, code, &mut key);
            let hkey: Box<[Value]> = key.iter().map(|&k| Value::Int(k)).collect();
            assert_eq!(htot.get(&hkey), Some(v), "key {key:?}");
        }
    }
}
