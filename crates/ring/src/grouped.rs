//! Keyed ring values: the payload of group-by aggregates and views.
//!
//! A [`Grouped`] maps group-by keys to ring elements. It is the "generalised
//! multiset relation" of the incremental-maintenance literature (§3.1): a
//! relation mapping tuples to payloads, where summing payloads merges
//! duplicates and zero payloads disappear — which is exactly how deletes
//! (negative multiplicities) erase tuples from views.

use crate::Semiring;
use fdb_data::Value;
use std::collections::HashMap;

/// A map from group-by keys to ring elements.
pub struct Grouped<S: Semiring> {
    entries: HashMap<Box<[Value]>, S::Elem>,
}

// Manual impls: the derives would demand `S: Clone + Debug`, but only the
// element type needs those bounds.
impl<S: Semiring> Clone for Grouped<S> {
    fn clone(&self) -> Self {
        Self { entries: self.entries.clone() }
    }
}

impl<S: Semiring> std::fmt::Debug for Grouped<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.entries.iter()).finish()
    }
}

impl<S: Semiring> Default for Grouped<S> {
    fn default() -> Self {
        Self { entries: HashMap::new() }
    }
}

impl<S: Semiring> Grouped<S> {
    /// An empty grouped value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elem` to the entry at `key`, inserting if absent. Entries that
    /// become zero are removed so multiset semantics stay exact.
    pub fn add(&mut self, ring: &S, key: Box<[Value]>, elem: S::Elem) {
        use std::collections::hash_map::Entry;
        match self.entries.entry(key) {
            Entry::Vacant(v) => {
                if !ring.is_zero(&elem) {
                    v.insert(elem);
                }
            }
            Entry::Occupied(mut o) => {
                ring.add_assign(o.get_mut(), &elem);
                if ring.is_zero(o.get()) {
                    o.remove();
                }
            }
        }
    }

    /// Merges all entries of `other` into `self`.
    pub fn merge(&mut self, ring: &S, other: &Grouped<S>) {
        for (k, v) in &other.entries {
            self.add(ring, k.clone(), v.clone());
        }
    }

    /// Multiplies every payload by `factor` (right multiplication).
    pub fn scale(&mut self, ring: &S, factor: &S::Elem) {
        self.entries.retain(|_, v| {
            *v = ring.mul(v, factor);
            !ring.is_zero(v)
        });
    }

    /// Looks up the payload for `key`.
    pub fn get(&self, key: &[Value]) -> Option<&S::Elem> {
        self.entries.get(key)
    }

    /// Number of non-zero groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], &S::Elem)> {
        self.entries.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Consumes the map into `(key, payload)` pairs.
    pub fn into_iter_pairs(self) -> impl Iterator<Item = (Box<[Value]>, S::Elem)> {
        self.entries.into_iter()
    }

    /// The total of all payloads (drops the keys).
    pub fn total(&self, ring: &S) -> S::Elem {
        let mut acc = ring.zero();
        for v in self.entries.values() {
            ring.add_assign(&mut acc, v);
        }
        acc
    }

    /// Entries sorted by key — for deterministic test output.
    pub fn sorted_pairs(&self) -> Vec<(Box<[Value]>, S::Elem)> {
        let mut v: Vec<_> = self.entries.iter().map(|(k, e)| (k.clone(), e.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

/// Builds a single-key grouped value.
pub fn singleton<S: Semiring>(ring: &S, key: Box<[Value]>, elem: S::Elem) -> Grouped<S> {
    let mut g = Grouped::new();
    g.add(ring, key, elem);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::I64Ring;

    fn key(vs: &[i64]) -> Box<[Value]> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn add_merges_and_prunes_zeros() {
        let r = I64Ring;
        let mut g = Grouped::new();
        g.add(&r, key(&[1]), 2);
        g.add(&r, key(&[1]), 3);
        g.add(&r, key(&[2]), 7);
        assert_eq!(g.get(&key(&[1])), Some(&5));
        assert_eq!(g.len(), 2);
        // A delete with multiplicity -5 removes the group entirely.
        g.add(&r, key(&[1]), -5);
        assert_eq!(g.get(&key(&[1])), None);
        assert_eq!(g.len(), 1);
        // Inserting an explicit zero is a no-op.
        g.add(&r, key(&[3]), 0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn merge_and_total() {
        let r = I64Ring;
        let mut a = singleton(&r, key(&[1]), 4);
        let b = singleton(&r, key(&[1, 9]), 6);
        a.merge(&r, &b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total(&r), 10);
    }

    #[test]
    fn scale_multiplies_payloads() {
        let r = I64Ring;
        let mut g = Grouped::new();
        g.add(&r, key(&[1]), 2);
        g.add(&r, key(&[2]), 3);
        g.scale(&r, &10);
        assert_eq!(g.get(&key(&[1])), Some(&20));
        assert_eq!(g.get(&key(&[2])), Some(&30));
        // Scaling by zero empties the map.
        g.scale(&r, &0);
        assert!(g.is_empty());
    }

    #[test]
    fn sorted_pairs_deterministic() {
        let r = I64Ring;
        let mut g = Grouped::new();
        g.add(&r, key(&[2]), 1);
        g.add(&r, key(&[1]), 1);
        let pairs = g.sorted_pairs();
        assert_eq!(pairs[0].0, key(&[1]));
        assert_eq!(pairs[1].0, key(&[2]));
    }
}
