//! Composite rings: direct products and direct powers.
//!
//! The direct product of rings is itself a ring with component-wise
//! operations. LMFAO's "compute many aggregates in one pass" is, abstractly,
//! evaluation in a direct power — though the engine specializes the
//! representation; these types also serve the property-test suite as
//! structurally different ring instances.

use crate::{Ring, Semiring};

/// The direct product of two (semi)rings, with component-wise operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairRing<A, B> {
    /// First component ring.
    pub a: A,
    /// Second component ring.
    pub b: B,
}

impl<A, B> PairRing<A, B> {
    /// Builds the product of `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: Semiring, B: Semiring> Semiring for PairRing<A, B> {
    type Elem = (A::Elem, B::Elem);

    fn zero(&self) -> Self::Elem {
        (self.a.zero(), self.b.zero())
    }

    fn one(&self) -> Self::Elem {
        (self.a.one(), self.b.one())
    }

    fn add(&self, x: &Self::Elem, y: &Self::Elem) -> Self::Elem {
        (self.a.add(&x.0, &y.0), self.b.add(&x.1, &y.1))
    }

    fn mul(&self, x: &Self::Elem, y: &Self::Elem) -> Self::Elem {
        (self.a.mul(&x.0, &y.0), self.b.mul(&x.1, &y.1))
    }

    fn is_zero(&self, x: &Self::Elem) -> bool {
        self.a.is_zero(&x.0) && self.b.is_zero(&x.1)
    }
}

impl<A: Ring, B: Ring> Ring for PairRing<A, B> {
    fn neg(&self, x: &Self::Elem) -> Self::Elem {
        (self.a.neg(&x.0), self.b.neg(&x.1))
    }
}

/// The direct power `R^k`: fixed-length vectors with component-wise ops.
#[derive(Debug, Clone, Copy)]
pub struct VecRing<R> {
    inner: R,
    k: usize,
}

impl<R> VecRing<R> {
    /// `k` independent copies of `inner`.
    pub fn new(inner: R, k: usize) -> Self {
        Self { inner, k }
    }

    /// The width `k`.
    pub fn width(&self) -> usize {
        self.k
    }
}

impl<R: Semiring> Semiring for VecRing<R> {
    type Elem = Vec<R::Elem>;

    fn zero(&self) -> Self::Elem {
        (0..self.k).map(|_| self.inner.zero()).collect()
    }

    fn one(&self) -> Self::Elem {
        (0..self.k).map(|_| self.inner.one()).collect()
    }

    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        debug_assert_eq!(a.len(), self.k);
        a.iter().zip(b).map(|(x, y)| self.inner.add(x, y)).collect()
    }

    fn add_assign(&self, a: &mut Self::Elem, b: &Self::Elem) {
        for (x, y) in a.iter_mut().zip(b) {
            self.inner.add_assign(x, y);
        }
    }

    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        a.iter().zip(b).map(|(x, y)| self.inner.mul(x, y)).collect()
    }

    fn is_zero(&self, a: &Self::Elem) -> bool {
        a.iter().all(|x| self.inner.is_zero(x))
    }
}

impl<R: Ring> Ring for VecRing<R> {
    fn neg(&self, a: &Self::Elem) -> Self::Elem {
        a.iter().map(|x| self.inner.neg(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoolSemiring, I64Ring};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pair_ring_laws(
            a in (-100i64..100, any::<bool>()),
            b in (-100i64..100, any::<bool>()),
            c in (-100i64..100, any::<bool>()),
        ) {
            let r = PairRing::new(I64Ring, BoolSemiring);
            prop_assert_eq!(r.add(&a, &b), r.add(&b, &a));
            prop_assert_eq!(r.mul(&r.mul(&a, &b), &c), r.mul(&a, &r.mul(&b, &c)));
            prop_assert_eq!(r.add(&a, &r.zero()), a);
            prop_assert_eq!(r.mul(&a, &r.one()), a);
            prop_assert!(r.is_zero(&r.mul(&a, &r.zero())));
            prop_assert_eq!(
                r.mul(&a, &r.add(&b, &c)),
                r.add(&r.mul(&a, &b), &r.mul(&a, &c))
            );
        }

        #[test]
        fn vec_ring_laws(
            a in proptest::collection::vec(-100i64..100, 4),
            b in proptest::collection::vec(-100i64..100, 4),
            c in proptest::collection::vec(-100i64..100, 4),
        ) {
            let r = VecRing::new(I64Ring, 4);
            prop_assert_eq!(r.add(&a, &b), r.add(&b, &a));
            prop_assert_eq!(r.mul(&r.mul(&a, &b), &c), r.mul(&a, &r.mul(&b, &c)));
            prop_assert_eq!(r.add(&a, &r.zero()), a.clone());
            prop_assert_eq!(r.mul(&a, &r.one()), a.clone());
            prop_assert_eq!(
                r.mul(&a, &r.add(&b, &c)),
                r.add(&r.mul(&a, &b), &r.mul(&a, &c))
            );
            let na = r.neg(&a);
            prop_assert!(r.is_zero(&r.add(&a, &na)));
        }
    }

    #[test]
    fn vec_ring_add_assign_in_place() {
        let r = VecRing::new(I64Ring, 2);
        let mut a = vec![1, 2];
        r.add_assign(&mut a, &vec![10, 20]);
        assert_eq!(a, vec![11, 22]);
        assert_eq!(r.width(), 2);
    }
}
