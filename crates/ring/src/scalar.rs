//! Scalar (semi)rings: integers, floats, naturals, Booleans, min-plus.

use crate::{Ring, Semiring};

/// The ring of 64-bit integers `(Z, +, ·, 0, 1)`.
///
/// This is the ring used for tuple multiplicities: an insert maps a tuple to
/// `+1`, a delete to `-1` (paper §3.1, "Additive inverse").
#[derive(Debug, Clone, Copy, Default)]
pub struct I64Ring;

impl Semiring for I64Ring {
    type Elem = i64;

    fn zero(&self) -> i64 {
        0
    }

    fn one(&self) -> i64 {
        1
    }

    fn add(&self, a: &i64, b: &i64) -> i64 {
        a + b
    }

    fn mul(&self, a: &i64, b: &i64) -> i64 {
        a * b
    }

    fn is_zero(&self, a: &i64) -> bool {
        *a == 0
    }
}

impl Ring for I64Ring {
    fn neg(&self, a: &i64) -> i64 {
        -a
    }
}

/// The (approximate) ring of 64-bit floats.
///
/// Floating-point addition is not exactly associative; the ring laws hold up
/// to rounding, which is the standard working assumption for sum-product
/// aggregate engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct F64Ring;

impl Semiring for F64Ring {
    type Elem = f64;

    fn zero(&self) -> f64 {
        0.0
    }

    fn one(&self) -> f64 {
        1.0
    }

    fn add(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a * b
    }

    fn is_zero(&self, a: &f64) -> bool {
        *a == 0.0
    }
}

impl Ring for F64Ring {
    fn neg(&self, a: &f64) -> f64 {
        -a
    }
}

/// The semiring of natural numbers (no additive inverse): plain counting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NatSemiring;

impl Semiring for NatSemiring {
    type Elem = u64;

    fn zero(&self) -> u64 {
        0
    }

    fn one(&self) -> u64 {
        1
    }

    fn add(&self, a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a * b
    }

    fn is_zero(&self, a: &u64) -> bool {
        *a == 0
    }
}

/// The Boolean semiring `({false, true}, ∨, ∧, false, true)`: query
/// satisfiability / Boolean conjunctive queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;

    fn zero(&self) -> bool {
        false
    }

    fn one(&self) -> bool {
        true
    }

    fn add(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }

    fn mul(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }

    fn is_zero(&self, a: &bool) -> bool {
        !*a
    }
}

/// The min-plus (tropical) semiring `(R ∪ {∞}, min, +, ∞, 0)`: shortest
/// paths and dynamic programs over the same factorized structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = f64;

    fn zero(&self) -> f64 {
        f64::INFINITY
    }

    fn one(&self) -> f64 {
        0.0
    }

    fn add(&self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }

    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn is_zero(&self, a: &f64) -> bool {
        *a == f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ring;
    use proptest::prelude::*;

    /// Checks semiring laws for exact element types.
    fn semiring_laws<S: Semiring>(ring: &S, a: S::Elem, b: S::Elem, c: S::Elem)
    where
        S::Elem: PartialEq,
    {
        let add = |x: &S::Elem, y: &S::Elem| ring.add(x, y);
        let mul = |x: &S::Elem, y: &S::Elem| ring.mul(x, y);
        // commutativity
        assert!(add(&a, &b) == add(&b, &a));
        assert!(mul(&a, &b) == mul(&b, &a));
        // associativity
        assert!(add(&add(&a, &b), &c) == add(&a, &add(&b, &c)));
        assert!(mul(&mul(&a, &b), &c) == mul(&a, &mul(&b, &c)));
        // identities
        assert!(add(&a, &ring.zero()) == a);
        assert!(mul(&a, &ring.one()) == a);
        // annihilation
        assert!(ring.is_zero(&mul(&a, &ring.zero())));
        // distributivity
        assert!(mul(&a, &add(&b, &c)) == add(&mul(&a, &b), &mul(&a, &c)));
    }

    proptest! {
        #[test]
        fn i64_ring_laws(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            semiring_laws(&I64Ring, a, b, c);
            // additive inverse
            prop_assert_eq!(I64Ring.add(&a, &I64Ring.neg(&a)), 0);
            prop_assert_eq!(I64Ring.sub(&a, &b), a - b);
        }

        #[test]
        fn f64_ring_laws_on_exact_values(a in -50i32..50, b in -50i32..50, c in -50i32..50) {
            // Small integers are exactly representable: laws hold exactly.
            let (a, b, c) = (a as f64, b as f64, c as f64);
            semiring_laws(&F64Ring, a, b, c);
            prop_assert_eq!(F64Ring.add(&a, &F64Ring.neg(&a)), 0.0);
        }

        #[test]
        fn nat_semiring_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
            semiring_laws(&NatSemiring, a, b, c);
        }

        #[test]
        fn bool_semiring_laws(a: bool, b: bool, c: bool) {
            semiring_laws(&BoolSemiring, a, b, c);
        }

        #[test]
        fn minplus_semiring_laws(a in -100i32..100, b in -100i32..100, c in -100i32..100) {
            semiring_laws(&MinPlus, a as f64, b as f64, c as f64);
        }
    }

    #[test]
    fn minplus_identities() {
        assert_eq!(MinPlus.add(&MinPlus.zero(), &3.0), 3.0);
        assert_eq!(MinPlus.mul(&MinPlus.one(), &3.0), 3.0);
        assert!(MinPlus.is_zero(&f64::INFINITY));
    }
}
