//! The keyed (group-by) ring.
//!
//! `SELECT X, agg FROM Q GROUP BY X` (paper §2.1) is sum-product evaluation
//! in a ring whose elements are maps from partial group-by keys to payloads:
//!
//! * a key is a fixed-width slot vector, one slot per group-by variable,
//!   where a slot is either *bound* to a value or still *free*;
//! * addition merges maps, summing payloads of equal keys;
//! * multiplication is the cross join: payloads multiply and keys merge
//!   slot-wise (a slot bound on both sides must agree — in a factorized
//!   evaluation each group-by variable is bound on exactly one branch).
//!
//! This is the sparse-tensor encoding of categorical interactions: only key
//! combinations that occur in the data are represented (§2.1).

use crate::grouped::Grouped;
use crate::{Ring, Semiring};
use fdb_data::Value;

/// Sentinel marking a free (not yet bound) group-by slot.
///
/// `i64::MIN` is not a legal dictionary code or key value in this workspace
/// (codes are dense non-negatives; generated keys are small), which the
/// data generators and engines uphold.
pub const FREE_SLOT: Value = Value::Int(i64::MIN);

/// The keyed ring over payload ring `R` with `slots` group-by variables.
#[derive(Debug, Clone, Copy)]
pub struct KeyedRing<R> {
    inner: R,
    slots: usize,
}

impl<R: Semiring> KeyedRing<R> {
    /// A keyed ring with the given payload ring and slot count.
    pub fn new(inner: R, slots: usize) -> Self {
        Self { inner, slots }
    }

    /// The payload ring.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Number of group-by slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// An all-free key.
    pub fn free_key(&self) -> Box<[Value]> {
        vec![FREE_SLOT; self.slots].into()
    }

    /// Lifts a payload with slot `slot` bound to `v` (group-by tagging).
    pub fn tag(&self, slot: usize, v: Value, payload: R::Elem) -> Grouped<R> {
        let mut key = self.free_key();
        key[slot] = v;
        crate::grouped::singleton(&self.inner, key, payload)
    }

    /// Lifts a plain payload with no slots bound.
    pub fn scalar(&self, payload: R::Elem) -> Grouped<R> {
        crate::grouped::singleton(&self.inner, self.free_key(), payload)
    }

    /// Merges two keys slot-wise; `None` if both bind a slot to different
    /// values (cannot happen in well-formed factorized plans, but the ring
    /// stays total by treating the clash as an annihilating product).
    fn merge_keys(&self, a: &[Value], b: &[Value]) -> Option<Box<[Value]>> {
        let mut out = Vec::with_capacity(self.slots);
        for (x, y) in a.iter().zip(b) {
            let v = if *x == FREE_SLOT {
                *y
            } else if *y == FREE_SLOT || x == y {
                *x
            } else {
                return None;
            };
            out.push(v);
        }
        Some(out.into())
    }
}

impl<R: Semiring> Semiring for KeyedRing<R> {
    type Elem = Grouped<R>;

    fn zero(&self) -> Grouped<R> {
        Grouped::new()
    }

    fn one(&self) -> Grouped<R> {
        self.scalar(self.inner.one())
    }

    fn add(&self, a: &Grouped<R>, b: &Grouped<R>) -> Grouped<R> {
        let mut out = a.clone();
        out.merge(&self.inner, b);
        out
    }

    fn add_assign(&self, a: &mut Grouped<R>, b: &Grouped<R>) {
        a.merge(&self.inner, b);
    }

    fn mul(&self, a: &Grouped<R>, b: &Grouped<R>) -> Grouped<R> {
        let mut out = Grouped::new();
        for (ka, va) in a.iter() {
            for (kb, vb) in b.iter() {
                if let Some(key) = self.merge_keys(ka, kb) {
                    out.add(&self.inner, key, self.inner.mul(va, vb));
                }
            }
        }
        out
    }

    fn is_zero(&self, a: &Grouped<R>) -> bool {
        a.is_empty()
    }
}

impl<R: Ring> Ring for KeyedRing<R> {
    fn neg(&self, a: &Grouped<R>) -> Grouped<R> {
        let mut out = Grouped::new();
        for (k, v) in a.iter() {
            out.add(&self.inner, k.into(), self.inner.neg(v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::I64Ring;

    fn ring() -> KeyedRing<I64Ring> {
        KeyedRing::new(I64Ring, 2)
    }

    #[test]
    fn tag_and_cross_product() {
        let r = ring();
        // Branch A binds slot 0 = 7 with payload 2; branch B binds slot 1.
        let a = r.tag(0, Value::Int(7), 2);
        let b = r.tag(1, Value::Int(9), 5);
        let ab = r.mul(&a, &b);
        let key: Box<[Value]> = vec![Value::Int(7), Value::Int(9)].into();
        assert_eq!(ab.get(&key), Some(&10));
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn identity_and_annihilator() {
        let r = ring();
        let a = r.tag(0, Value::Int(1), 3);
        assert_eq!(r.mul(&a, &r.one()).sorted_pairs(), a.sorted_pairs());
        assert!(r.is_zero(&r.mul(&a, &r.zero())));
        assert_eq!(r.add(&a, &r.zero()).sorted_pairs(), a.sorted_pairs());
    }

    #[test]
    fn addition_merges_same_keys() {
        let r = ring();
        let a = r.tag(0, Value::Int(1), 3);
        let b = r.tag(0, Value::Int(1), 4);
        let c = r.add(&a, &b);
        assert_eq!(c.len(), 1);
        let key: Box<[Value]> = vec![Value::Int(1), FREE_SLOT].into();
        assert_eq!(c.get(&key), Some(&7));
    }

    #[test]
    fn distributivity_on_sample() {
        let r = ring();
        let a = r.tag(0, Value::Int(1), 2);
        let b = r.tag(1, Value::Int(5), 3);
        let c = r.tag(1, Value::Int(6), 4);
        let lhs = r.mul(&a, &r.add(&b, &c));
        let rhs = r.add(&r.mul(&a, &b), &r.mul(&a, &c));
        assert_eq!(lhs.sorted_pairs(), rhs.sorted_pairs());
    }

    #[test]
    fn clashing_slots_annihilate() {
        let r = ring();
        let a = r.tag(0, Value::Int(1), 2);
        let b = r.tag(0, Value::Int(2), 3);
        assert!(r.is_zero(&r.mul(&a, &b)));
    }

    #[test]
    fn negation_supports_deletes() {
        let r = ring();
        let a = r.tag(0, Value::Int(1), 2);
        let sum = r.add(&a, &r.neg(&a));
        assert!(r.is_zero(&sum));
    }
}
