//! # fdb-ring
//!
//! The (semi)ring abstraction behind factorized computation (paper §3.1):
//! one aggregation engine, parameterized by a ring, computes counts, sums,
//! grouped maps, probabilistic inference-style products — and, with the
//! **covariance ring** of §5.2, entire covariance matrices in a single pass.
//!
//! Rings are *objects*, not just types: a ring instance carries runtime
//! context such as the feature dimension of the covariance ring. This is the
//! "ring as interpreter" style of the FAQ framework — swapping the ring
//! object swaps the semantics of the same sum-product computation.
//!
//! * [`Semiring`] — `(D, +, *, 0, 1)` with distributivity.
//! * [`Ring`] — a semiring with additive inverses; the additive inverse is
//!   what lets incremental view maintenance treat inserts and deletes
//!   uniformly (multiplicity `+1` / `-1`, §3.1 "Additive inverse").
//!
//! Implementations: integer/float scalar rings, the natural-number and
//! Boolean and min-plus (tropical) semirings, direct products, fixed-width
//! vector rings, and the covariance ring `(c, s, Q)`.

pub mod covariance;
pub mod dense;
pub mod grouped;
pub mod keyed;
pub mod product;
pub mod scalar;

pub use covariance::{CovRing, CovTriple};
pub use dense::{DenseGrouped, DenseKeyedRing};
pub use grouped::Grouped;
pub use keyed::{KeyedRing, FREE_SLOT};
pub use product::{PairRing, VecRing};
pub use scalar::{BoolSemiring, F64Ring, I64Ring, MinPlus, NatSemiring};

/// A commutative semiring `(D, +, *, 0, 1)`.
///
/// Implementors must satisfy, for all `a, b, c`:
/// associativity and commutativity of `+` and `*`, identity laws for
/// [`Semiring::zero`] and [`Semiring::one`], annihilation `0 * a = 0`, and
/// distributivity `a * (b + c) = a*b + a*c`. The property tests in this
/// crate check these laws on randomized elements for every implementation.
pub trait Semiring {
    /// The element type.
    type Elem: Clone + std::fmt::Debug;

    /// The additive identity.
    fn zero(&self) -> Self::Elem;

    /// The multiplicative identity.
    fn one(&self) -> Self::Elem;

    /// Addition.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Multiplication.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// In-place addition; override when avoiding the temporary matters
    /// (the covariance ring does).
    fn add_assign(&self, a: &mut Self::Elem, b: &Self::Elem) {
        *a = self.add(a, b);
    }

    /// True if `a` is the additive identity. Used to prune zero entries
    /// from keyed maps so deleted tuples vanish from views.
    fn is_zero(&self, a: &Self::Elem) -> bool;
}

/// A semiring with additive inverses.
pub trait Ring: Semiring {
    /// The additive inverse of `a`.
    fn neg(&self, a: &Self::Elem) -> Self::Elem;

    /// `a - b`, defaulting to `a + (-b)`.
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let nb = self.neg(b);
        self.add(a, &nb)
    }
}

/// Sums an iterator of elements in the given (semi)ring.
pub fn sum<S: Semiring>(ring: &S, items: impl IntoIterator<Item = S::Elem>) -> S::Elem {
    let mut acc = ring.zero();
    for x in items {
        ring.add_assign(&mut acc, &x);
    }
    acc
}

/// Sums elements by balanced pairwise (tree) merging instead of a serial
/// left fold.
///
/// For scalar rings this is just `+` in a different association. For
/// sorted-list elements like [`DenseGrouped`], where `add` is a linear
/// merge, the association is the whole point: a serial fold over `k`
/// interleaved-key parts re-walks the growing accumulator every step —
/// `O(total·k)` — while the tree touches each entry once per round,
/// `O(total·log k)`. This is the merge shape the parallel engines use for
/// shard and morsel partials; here it is the sequential kernel those
/// paths (and the `parallel-merge` microbench arm) share.
///
/// Commutativity and associativity of `+` make the result semantically
/// equal to [`sum`]; for non-associative payload floats the rounding may
/// differ, which is why callers that promise bit-stable output pin one
/// association and keep it.
pub fn tree_sum<S: Semiring>(ring: &S, items: impl IntoIterator<Item = S::Elem>) -> S::Elem {
    let mut parts: Vec<S::Elem> = items.into_iter().collect();
    while parts.len() > 1 {
        // Pair (0,1), (2,3), ... each round; an odd tail rides along
        // unmerged, exactly like the engine-side tree merge.
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.drain(..);
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                ring.add_assign(&mut a, &b);
            }
            next.push(a);
        }
        drop(it);
        parts = next;
    }
    parts.pop().unwrap_or_else(|| ring.zero())
}

/// Multiplies an iterator of elements in the given (semi)ring.
pub fn prod<S: Semiring>(ring: &S, items: impl IntoIterator<Item = S::Elem>) -> S::Elem {
    let mut acc = ring.one();
    for x in items {
        acc = ring.mul(&acc, &x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_prod_helpers() {
        let r = I64Ring;
        assert_eq!(sum(&r, [1, 2, 3]), 6);
        assert_eq!(prod(&r, [2, 3, 4]), 24);
        assert_eq!(sum(&r, std::iter::empty()), 0);
        assert_eq!(prod(&r, std::iter::empty()), 1);
    }

    #[test]
    fn tree_sum_matches_serial_fold() {
        let r = I64Ring;
        for k in [0usize, 1, 2, 3, 5, 8, 17] {
            let items: Vec<i64> = (0..k as i64).map(|i| i * 3 - 4).collect();
            assert_eq!(tree_sum(&r, items.clone()), sum(&r, items), "k = {k}");
        }
        // Interleaved keys in the dense keyed ring: the tree association
        // must produce the same sorted entry list as the serial fold.
        let dr = DenseKeyedRing::new(I64Ring, &[(0, 63)]).unwrap();
        let parts: Vec<DenseGrouped<I64Ring>> = (0..8)
            .map(|p| {
                let mut e = dr.zero();
                for v in 0..8 {
                    dr.add_assign(&mut e, &dr.tag(0, v * 8 + p, p + v + 1));
                }
                e
            })
            .collect();
        let tree = tree_sum(&dr, parts.clone());
        let serial = sum(&dr, parts);
        assert_eq!(tree.len(), 64);
        let (t, s): (Vec<_>, Vec<_>) = (
            tree.iter().map(|(m, c, v)| (m, c, *v)).collect(),
            serial.iter().map(|(m, c, v)| (m, c, *v)).collect(),
        );
        assert_eq!(t, s);
    }
}
