//! Additive-inequality aggregates over a two-way join.
//!
//! The input is the two sides of a join (already grouped/reduced to the
//! vectors that matter): side one contributes `x_i` with payload `f_i`,
//! side two `y_j` with payload `g_j`. The aggregates compute
//! `Σ_{x_i + y_j > c} f_i · g_j` (and counts, and grouped variants).
//!
//! * `*_naive` — the classical nested loop: `O(n·m)`.
//! * the sort + suffix-sum algorithm: `O((n + m) log(n + m))`.

/// `|{(i, j) : x_i + y_j > c}|` by nested loops (the baseline).
pub fn count_pairs_gt_naive(x: &[f64], y: &[f64], c: f64) -> u64 {
    let mut n = 0;
    for &xi in x {
        for &yj in y {
            if xi + yj > c {
                n += 1;
            }
        }
    }
    n
}

/// `Σ_{x_i + y_j > c} f_i · g_j` by nested loops (the baseline).
pub fn sum_pairs_gt_naive(x: &[f64], f: &[f64], y: &[f64], g: &[f64], c: f64) -> f64 {
    let mut acc = 0.0;
    for (xi, fi) in x.iter().zip(f) {
        for (yj, gj) in y.iter().zip(g) {
            if xi + yj > c {
                acc += fi * gj;
            }
        }
    }
    acc
}

/// `|{(i, j) : x_i + y_j > c}|` in `O((n+m) log m)`: sort `y`, then for
/// each `x_i` count the suffix `y_j > c - x_i` by binary search.
pub fn count_pairs_gt(x: &[f64], y: &[f64], c: f64) -> u64 {
    let mut ys: Vec<f64> = y.to_vec();
    ys.sort_by(f64::total_cmp);
    let mut n = 0u64;
    for &xi in x {
        let t = c - xi;
        // First index with y > t.
        let lo = ys.partition_point(|&v| v <= t);
        n += (ys.len() - lo) as u64;
    }
    n
}

/// `Σ_{x_i + y_j > c} f_i · g_j` in `O((n+m) log m)`: sort `y` with its
/// payloads, suffix-sum `g`, then each `x_i` contributes
/// `f_i · suffix(c - x_i)`.
pub fn sum_pairs_gt(x: &[f64], f: &[f64], y: &[f64], g: &[f64], c: f64) -> f64 {
    assert_eq!(x.len(), f.len());
    assert_eq!(y.len(), g.len());
    let mut order: Vec<usize> = (0..y.len()).collect();
    order.sort_by(|&a, &b| y[a].total_cmp(&y[b]));
    let ys: Vec<f64> = order.iter().map(|&i| y[i]).collect();
    // suffix[i] = Σ_{j >= i} g[order[j]]
    let mut suffix = vec![0.0; ys.len() + 1];
    for i in (0..ys.len()).rev() {
        suffix[i] = suffix[i + 1] + g[order[i]];
    }
    let mut acc = 0.0;
    for (xi, fi) in x.iter().zip(f) {
        let t = c - xi;
        let lo = ys.partition_point(|&v| v <= t);
        acc += fi * suffix[lo];
    }
    acc
}

/// Grouped variant: `SUM(f_i · g_j) WHERE x_i + y_j > c GROUP BY z_i`
/// where `z_i` is a categorical attribute on the `x` side. One sorted
/// suffix structure serves every group — the per-group work stays
/// `O(|group| log m)`.
pub fn sum_pairs_gt_grouped(
    x: &[f64],
    f: &[f64],
    z: &[i64],
    y: &[f64],
    g: &[f64],
    c: f64,
) -> std::collections::HashMap<i64, f64> {
    assert_eq!(x.len(), z.len());
    let mut order: Vec<usize> = (0..y.len()).collect();
    order.sort_by(|&a, &b| y[a].total_cmp(&y[b]));
    let ys: Vec<f64> = order.iter().map(|&i| y[i]).collect();
    let mut suffix = vec![0.0; ys.len() + 1];
    for i in (0..ys.len()).rev() {
        suffix[i] = suffix[i + 1] + g[order[i]];
    }
    let mut out: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
    for ((xi, fi), zi) in x.iter().zip(f).zip(z) {
        let lo = ys.partition_point(|&v| v <= c - xi);
        *out.entry(*zi).or_insert(0.0) += fi * suffix[lo];
    }
    out.retain(|_, v| *v != 0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_example() {
        let x = [1.0, 2.0];
        let y = [0.5, 3.0];
        // pairs > 2.5: (1,3)=4>2.5 yes, (2,0.5)=2.5 no (strict), (2,3) yes,
        // (1,0.5) no  => 2 pairs
        assert_eq!(count_pairs_gt(&x, &y, 2.5), 2);
        assert_eq!(count_pairs_gt_naive(&x, &y, 2.5), 2);
        let f = [10.0, 100.0];
        let g = [1.0, 2.0];
        // matching pairs: (x=1,y=3): 10*2=20; (x=2,y=3): 100*2=200
        assert_eq!(sum_pairs_gt(&x, &f, &y, &g, 2.5), 220.0);
    }

    #[test]
    fn empty_sides() {
        assert_eq!(count_pairs_gt(&[], &[1.0], 0.0), 0);
        assert_eq!(count_pairs_gt(&[1.0], &[], 0.0), 0);
        assert_eq!(sum_pairs_gt(&[], &[], &[1.0], &[1.0], 0.0), 0.0);
    }

    #[test]
    fn grouped_matches_per_group_naive() {
        let x = [1.0, 2.0, 1.5];
        let f = [1.0, 1.0, 2.0];
        let z = [7, 8, 7];
        let y = [0.0, 1.0, 2.0];
        let g = [1.0, 10.0, 100.0];
        let got = sum_pairs_gt_grouped(&x, &f, &z, &y, &g, 2.0);
        // group 7: rows 0 (x=1,f=1) and 2 (x=1.5,f=2)
        let g7 = sum_pairs_gt_naive(&[1.0, 1.5], &[1.0, 2.0], &y, &g, 2.0);
        let g8 = sum_pairs_gt_naive(&[2.0], &[1.0], &y, &g, 2.0);
        assert_eq!(got.get(&7).copied().unwrap_or(0.0), g7);
        assert_eq!(got.get(&8).copied().unwrap_or(0.0), g8);
    }

    proptest! {
        #[test]
        fn fast_count_matches_naive(
            x in proptest::collection::vec(-10i32..10, 0..30),
            y in proptest::collection::vec(-10i32..10, 0..30),
            c in -15i32..15,
        ) {
            let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
            let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
            prop_assert_eq!(
                count_pairs_gt(&xf, &yf, c as f64 + 0.5),
                count_pairs_gt_naive(&xf, &yf, c as f64 + 0.5)
            );
        }

        #[test]
        fn fast_sum_matches_naive(
            rows_x in proptest::collection::vec((-10i32..10, -5i32..5), 0..25),
            rows_y in proptest::collection::vec((-10i32..10, -5i32..5), 0..25),
            c in -15i32..15,
        ) {
            let x: Vec<f64> = rows_x.iter().map(|&(v, _)| v as f64).collect();
            let f: Vec<f64> = rows_x.iter().map(|&(_, v)| v as f64).collect();
            let y: Vec<f64> = rows_y.iter().map(|&(v, _)| v as f64).collect();
            let g: Vec<f64> = rows_y.iter().map(|&(_, v)| v as f64).collect();
            let fast = sum_pairs_gt(&x, &f, &y, &g, c as f64 + 0.5);
            let naive = sum_pairs_gt_naive(&x, &f, &y, &g, c as f64 + 0.5);
            prop_assert!((fast - naive).abs() < 1e-9, "{fast} vs {naive}");
        }

        #[test]
        fn ties_are_strict(
            v in -5i32..5,
            n in 1usize..5,
        ) {
            // x_i + y_j == c exactly must NOT count (strict >).
            let x = vec![v as f64; n];
            let y = vec![0.0; n];
            prop_assert_eq!(count_pairs_gt(&x, &y, v as f64), 0);
            prop_assert_eq!(count_pairs_gt(&x, &y, v as f64 - 1.0), (n * n) as u64);
        }
    }
}
