//! # fdb-ineq
//!
//! Aggregates over theta joins with **additive inequality** conditions
//! (paper §2.3):
//!
//! ```text
//! SUM(e)  WHERE  w1·X1 + … + wn·Xn > c  [GROUP BY Z]
//! ```
//!
//! These arise in the (sub)gradients of non-polynomial loss functions
//! (SVM hinge, Huber, scalene) and in k-means. A classical engine iterates
//! over the whole data matrix and tests the inequality per tuple; when the
//! weighted sum splits additively across the two sides of a join, sorting
//! one side and prefix-summing its payloads answers every probe in
//! `O(log)` — polynomially better than the nested-loop evaluation
//! (Abo Khamis et al., PODS 2019).

pub mod pairs;

pub use pairs::{
    count_pairs_gt, count_pairs_gt_naive, sum_pairs_gt, sum_pairs_gt_grouped, sum_pairs_gt_naive,
};
