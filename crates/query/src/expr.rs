//! Scalar expressions and predicates over relation rows.

use fdb_data::{DataError, Relation, Schema, Value};

/// A scalar expression evaluated per tuple, yielding `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// The constant 1.0 (the COUNT lift).
    One,
    /// A constant.
    Const(f64),
    /// An attribute's value as `f64` (integer codes convert).
    Col(String),
    /// Product of sub-expressions.
    Mul(Vec<ScalarExpr>),
}

impl ScalarExpr {
    /// The product `x * y` of two attributes — the covariance-matrix entry.
    pub fn col_product(x: &str, y: &str) -> ScalarExpr {
        ScalarExpr::Mul(vec![ScalarExpr::Col(x.into()), ScalarExpr::Col(y.into())])
    }

    /// Binds attribute names to column indices for fast evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr, DataError> {
        Ok(match self {
            ScalarExpr::One => BoundExpr::Const(1.0),
            ScalarExpr::Const(c) => BoundExpr::Const(*c),
            ScalarExpr::Col(name) => BoundExpr::Col(schema.require(name)?),
            ScalarExpr::Mul(parts) => {
                BoundExpr::Mul(parts.iter().map(|p| p.bind(schema)).collect::<Result<_, _>>()?)
            }
        })
    }

    /// Attribute names referenced by this expression.
    pub fn columns(&self) -> Vec<String> {
        match self {
            ScalarExpr::One | ScalarExpr::Const(_) => vec![],
            ScalarExpr::Col(c) => vec![c.clone()],
            ScalarExpr::Mul(ps) => ps.iter().flat_map(|p| p.columns()).collect(),
        }
    }
}

/// A [`ScalarExpr`] with resolved column indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// A constant.
    Const(f64),
    /// Column index.
    Col(usize),
    /// Product.
    Mul(Vec<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates on row `row` of `rel`.
    #[inline]
    pub fn eval(&self, rel: &Relation, row: usize) -> f64 {
        match self {
            BoundExpr::Const(c) => *c,
            BoundExpr::Col(i) => rel.value_f64(row, *i),
            BoundExpr::Mul(ps) => ps.iter().map(|p| p.eval(rel, row)).product(),
        }
    }
}

/// A per-tuple filter predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attr >= threshold` (numeric comparison).
    Ge(String, f64),
    /// `attr < threshold`.
    Lt(String, f64),
    /// `attr = value` (exact, typed).
    Eq(String, Value),
    /// `attr != value` (exact, typed).
    Ne(String, Value),
    /// `attr IN (values)` for categorical codes.
    In(String, Vec<i64>),
    /// Conjunction.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Binds attribute names to column indices.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, DataError> {
        Ok(match self {
            Predicate::Ge(a, t) => BoundPredicate::Ge(schema.require(a)?, *t),
            Predicate::Lt(a, t) => BoundPredicate::Lt(schema.require(a)?, *t),
            Predicate::Eq(a, v) => BoundPredicate::Eq(schema.require(a)?, *v),
            Predicate::Ne(a, v) => BoundPredicate::Ne(schema.require(a)?, *v),
            Predicate::In(a, vs) => {
                let mut sorted = vs.clone();
                sorted.sort_unstable();
                BoundPredicate::In(schema.require(a)?, sorted)
            }
            Predicate::And(ps) => {
                BoundPredicate::And(ps.iter().map(|p| p.bind(schema)).collect::<Result<_, _>>()?)
            }
        })
    }
}

/// A [`Predicate`] with resolved column indices.
#[derive(Debug, Clone)]
pub enum BoundPredicate {
    /// `col >= t`.
    Ge(usize, f64),
    /// `col < t`.
    Lt(usize, f64),
    /// `col = v`.
    Eq(usize, Value),
    /// `col != v`.
    Ne(usize, Value),
    /// `col IN (sorted values)`.
    In(usize, Vec<i64>),
    /// Conjunction.
    And(Vec<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluates on row `row` of `rel`.
    #[inline]
    pub fn eval(&self, rel: &Relation, row: usize) -> bool {
        match self {
            BoundPredicate::Ge(i, t) => rel.value_f64(row, *i) >= *t,
            BoundPredicate::Lt(i, t) => rel.value_f64(row, *i) < *t,
            BoundPredicate::Eq(i, v) => rel.value(row, *i) == *v,
            BoundPredicate::Ne(i, v) => rel.value(row, *i) != *v,
            BoundPredicate::In(i, vs) => {
                let x = rel.value(row, *i).as_int();
                vs.binary_search(&x).is_ok()
            }
            BoundPredicate::And(ps) => ps.iter().all(|p| p.eval(rel, row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::AttrType;

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]),
            vec![vec![Value::Int(1), Value::F64(2.0)], vec![Value::Int(2), Value::F64(3.0)]],
        )
        .unwrap()
    }

    #[test]
    fn scalar_expr_eval() {
        let r = rel();
        let e = ScalarExpr::Mul(vec![
            ScalarExpr::Col("k".into()),
            ScalarExpr::Col("x".into()),
            ScalarExpr::Const(2.0),
        ])
        .bind(r.schema())
        .unwrap();
        assert_eq!(e.eval(&r, 0), 4.0);
        assert_eq!(e.eval(&r, 1), 12.0);
        assert_eq!(ScalarExpr::One.bind(r.schema()).unwrap().eval(&r, 0), 1.0);
        assert!(ScalarExpr::Col("zzz".into()).bind(r.schema()).is_err());
    }

    #[test]
    fn col_product_columns() {
        let e = ScalarExpr::col_product("a", "b");
        assert_eq!(e.columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn predicates() {
        let r = rel();
        let p = Predicate::And(vec![
            Predicate::Ge("x".into(), 2.5),
            Predicate::In("k".into(), vec![2, 7]),
        ])
        .bind(r.schema())
        .unwrap();
        assert!(!p.eval(&r, 0));
        assert!(p.eval(&r, 1));
        let q = Predicate::Eq("k".into(), Value::Int(1)).bind(r.schema()).unwrap();
        assert!(q.eval(&r, 0));
        let lt = Predicate::Lt("x".into(), 2.5).bind(r.schema()).unwrap();
        assert!(lt.eval(&r, 0));
        assert!(!lt.eval(&r, 1));
    }
}
