//! # fdb-query
//!
//! A deliberately *classical* relational engine: binary hash joins over
//! materialized intermediates and one scan per aggregate query. This is the
//! structure-agnostic baseline of the paper (§1.2) — the PostgreSQL /
//! "commercial DBX" stand-in in the Figure 3 and Figure 4 reproductions.
//!
//! It is competent (hash joins, greedy connected join ordering, columnar
//! storage) but intentionally lacks what LMFAO adds: cross-aggregate
//! sharing, aggregate pushdown past joins, and factorized evaluation.

pub mod agg;
pub mod exec;
pub mod expr;

pub use agg::{eval_agg, eval_agg_batch, AggResult, ScanQuery};
pub use exec::{hash_join, natural_join_all};
pub use expr::{Predicate, ScalarExpr};
