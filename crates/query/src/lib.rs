//! # fdb-query
//!
//! The *classical* join layer: binary hash joins over materialized
//! intermediates, plus the scalar expression / predicate IR the classical
//! scan queries are written in. This is the structure-agnostic substrate
//! of the paper's baselines (§1.2) — the PostgreSQL / "commercial DBX"
//! stand-in's storage-facing half in the Figure 3 and 4 reproductions.
//!
//! Aggregate **evaluation** deliberately does not live here: the one
//! evaluation stack is `fdb-core` (`fdb_core::classical` for the naive
//! one-scan-per-aggregate baseline, `fdb_core::FlatEngine` for the shared
//! scan, `fdb_core::exec` for LMFAO), which consumes this crate's joins
//! and expressions. Keeping a second evaluation loop here was pure
//! duplication and is gone.

pub mod exec;
pub mod expr;

pub use exec::{hash_join, natural_join_all};
pub use expr::{Predicate, ScalarExpr};
