//! Binary hash joins and join ordering — the classical execution model.
//!
//! `natural_join_all` materializes every intermediate, exactly the
//! behaviour whose cost Figure 3 quantifies (the join result is an order of
//! magnitude larger than the input for the retailer dataset).

use fdb_data::{DataError, Database, Relation, Schema, Value};
use std::collections::HashMap;

/// Hash-joins two relations on their shared attributes (natural join).
/// The output schema is `left ++ (right \ shared)`.
pub fn hash_join(left: &Relation, right: &Relation) -> Result<Relation, DataError> {
    let shared: Vec<String> = left.schema().common_attrs(right.schema());
    let lkeys: Vec<usize> =
        shared.iter().map(|a| left.schema().require(a)).collect::<Result<_, _>>()?;
    let rkeys: Vec<usize> =
        shared.iter().map(|a| right.schema().require(a)).collect::<Result<_, _>>()?;
    // Right payload columns: those not shared.
    let rpayload: Vec<usize> = (0..right.schema().arity())
        .filter(|i| !shared.contains(&right.schema().attr(*i).name))
        .collect();
    let mut attrs: Vec<_> = left.schema().attrs().to_vec();
    attrs.extend(rpayload.iter().map(|&i| right.schema().attr(i).clone()));
    let schema = Schema::new(attrs)?;

    // Build on the smaller side. For simplicity build on `right` keyed by
    // join key; cartesian behaviour (no shared attrs) uses the unit key.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for r in 0..right.len() {
        let key: Vec<Value> = rkeys.iter().map(|&c| right.value(r, c)).collect();
        table.entry(key).or_default().push(r);
    }
    let mut out = Relation::with_capacity(schema, left.len());
    let mut row: Vec<Value> = Vec::with_capacity(out.schema().arity());
    for l in 0..left.len() {
        let key: Vec<Value> = lkeys.iter().map(|&c| left.value(l, c)).collect();
        if let Some(matches) = table.get(&key) {
            for &r in matches {
                row.clear();
                for c in 0..left.schema().arity() {
                    row.push(left.value(l, c));
                }
                for &c in &rpayload {
                    row.push(right.value(r, c));
                }
                out.push_row(&row)?;
            }
        }
    }
    Ok(out)
}

/// Materializes the natural join of `relations`, ordering them greedily so
/// each join shares at least one attribute with the accumulated result
/// (avoiding accidental cartesian products when the join graph is
/// connected).
pub fn natural_join_all(db: &Database, relations: &[&str]) -> Result<Relation, DataError> {
    if relations.is_empty() {
        return Err(DataError::Invalid("natural_join_all needs >= 1 relation".into()));
    }
    let mut pending: Vec<&str> = relations.to_vec();
    // Start from the largest relation (typically the fact table) so
    // dimension tables stream into it.
    let mut start_idx = 0;
    let mut best = 0;
    for (i, name) in pending.iter().enumerate() {
        let n = db.get(name)?.len();
        if n > best {
            best = n;
            start_idx = i;
        }
    }
    let first = pending.remove(start_idx);
    let mut acc: Relation = db.get(first)?.clone();
    while !pending.is_empty() {
        // Prefer a relation sharing attributes with the accumulator.
        let pos = pending
            .iter()
            .position(|name| {
                db.get(name)
                    .map(|r| !acc.schema().common_attrs(r.schema()).is_empty())
                    .unwrap_or(false)
            })
            .unwrap_or(0);
        let name = pending.remove(pos);
        acc = hash_join(&acc, db.get(name)?)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::AttrType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(
            "R",
            Relation::from_rows(
                Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int)]),
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(10)],
                    vec![Value::Int(3), Value::Int(20)],
                ],
            )
            .unwrap(),
        );
        db.add(
            "S",
            Relation::from_rows(
                Schema::of(&[("b", AttrType::Int), ("x", AttrType::Double)]),
                vec![
                    vec![Value::Int(10), Value::F64(0.5)],
                    vec![Value::Int(10), Value::F64(1.5)],
                    vec![Value::Int(30), Value::F64(9.0)],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn hash_join_matches_nested_loops() {
        let db = db();
        let j = hash_join(db.get("R").unwrap(), db.get("S").unwrap()).unwrap();
        // b=10 matches: rows a=1,a=2 × two S rows = 4 tuples.
        assert_eq!(j.len(), 4);
        assert_eq!(j.schema().names().collect::<Vec<_>>(), vec!["a", "b", "x"]);
        let mut pairs: Vec<(i64, f64)> =
            (0..j.len()).map(|r| (j.value(r, 0).as_int(), j.value_f64(r, 2))).collect();
        pairs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        assert_eq!(pairs, vec![(1, 0.5), (1, 1.5), (2, 0.5), (2, 1.5)]);
    }

    #[test]
    fn join_all_connected_order() {
        let mut db = db();
        db.add(
            "T",
            Relation::from_rows(
                Schema::of(&[("a", AttrType::Int), ("y", AttrType::Int)]),
                vec![vec![Value::Int(1), Value::Int(7)], vec![Value::Int(2), Value::Int(8)]],
            )
            .unwrap(),
        );
        // Listing T before S must still avoid a cartesian product.
        let j = natural_join_all(&db, &["T", "S", "R"]).unwrap();
        assert_eq!(j.len(), 4);
        assert_eq!(j.schema().arity(), 4); // a, b, x, y in some order
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let mut db = db();
        db.add("S", Relation::new(Schema::of(&[("b", AttrType::Int), ("x", AttrType::Double)])));
        let j = natural_join_all(&db, &["R", "S"]).unwrap();
        assert!(j.is_empty());
    }

    #[test]
    fn disjoint_schemas_form_cartesian_product() {
        let mut db = Database::new();
        db.add(
            "A",
            Relation::from_rows(
                Schema::of(&[("a", AttrType::Int)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            )
            .unwrap(),
        );
        db.add(
            "B",
            Relation::from_rows(
                Schema::of(&[("b", AttrType::Int)]),
                vec![vec![Value::Int(3)], vec![Value::Int(4)], vec![Value::Int(5)]],
            )
            .unwrap(),
        );
        let j = natural_join_all(&db, &["A", "B"]).unwrap();
        assert_eq!(j.len(), 6);
    }
}
