//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! crate this workspace's benches use. The build environment is offline,
//! so the real `criterion` cannot be fetched; bench targets depend on this
//! package under the name `criterion`
//! (`criterion = { package = "fdb-benchstub", ... }`).
//!
//! Semantics: each `bench_function` runs a short warm-up, then a fixed
//! number of timed iterations, and prints mean wall-clock time per
//! iteration. Good enough for the relative comparisons the workspace's
//! benches make (LMFAO vs classical, WCOJ vs binary joins, IVM variants).

use std::fmt::Display;
use std::time::Instant;

/// Re-export for parity with `criterion::black_box` call sites.
pub use std::hint::black_box;

/// The benchmark driver handed to registered bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _c: self, sample_size: 20 }
    }
}

/// A named benchmark id with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        Self { name: format!("{name}/{parameter}") }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(name);
        self
    }

    /// Registers and runs a benchmark parameterized by an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&id.name);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times the closure: one warm-up call, then `sample_size` timed calls.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("  {name}: no samples");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("  {name}: mean {} (min {}, {} samples)", fmt(mean), fmt(min), self.samples.len());
    }
}

fn fmt(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running every
/// listed benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("p", 7), &7, |b, i| b.iter(|| *i * 2));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
