//! A minimal, dependency-free drop-in for the subset of `proptest` this
//! workspace's unit tests use: the `proptest!` macro over range / tuple /
//! `collection::vec` strategies, `any::<bool>()`, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! The build environment is offline, so the real `proptest` cannot be
//! fetched; crates depend on this package under the name `proptest`
//! (`proptest = { package = "fdb-proptest-stub", ... }`). Unlike the real
//! crate there is no shrinking and no persisted failure corpus — each test
//! runs a fixed number of cases drawn from a deterministic generator
//! seeded by the test's name, so failures reproduce on re-run.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Default number of cases per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: DEFAULT_CASES }
    }
}

/// Deterministic per-test generator: the seed is a hash of the test name.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. The workspace's tests only need sampling, not
/// shrinking, so this is the whole interface.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// A length drawn from `lo..hi`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `elem`, length per `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => rng.gen_range(lo..hi.max(lo + 1)),
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// In-body assertion; identical to `assert!` here (no shrinking to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// In-body equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The property-test macro: each `fn` becomes a `#[test]` running its body
/// over `cases` sampled inputs. Supports `pat in strategy` arguments and
/// `name: type` arguments (via [`Arbitrary`]), plus an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    () => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    // Entry without config: default case count.
    ($(#[$meta:meta])* fn $name:ident $($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $(#[$meta])* fn $name $($rest)* }
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ($($arg:ident : $ty:ty),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut __rng);)+
                $body
            }
        }
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! Everything a `proptest!` test body needs, one `use` away.
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            a in -5i64..5,
            v in collection::vec(0i32..10, 0..8),
            pair in (0usize..4, any::<bool>()),
        ) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn typed_args(a: bool, b: bool) {
            prop_assert_eq!(a && b, b && a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_respected(x in 0i64..100) {
            // 3 cases run; nothing to assert beyond the range.
            prop_assert!((0..100).contains(&x));
        }
    }

    #[test]
    fn deterministic_rng() {
        use crate::Strategy;
        let s = 0i64..1000;
        let mut r1 = crate::test_rng("t");
        let mut r2 = crate::test_rng("t");
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
