//! CART decision trees trained **in-database** (§2.2).
//!
//! Every node's split costs come from one LMFAO aggregate batch: for each
//! candidate condition, `SUM(1)`, `SUM(y)`, `SUM(y²)` (regression,
//! variance) or class counts (classification, Gini) — all filtered by the
//! node's conjunctive path condition, all evaluated in a single shared pass
//! over the join. The data matrix is never materialized.
//!
//! Candidate thresholds are fixed up-front from the global feature
//! distribution, "decided in advance based on the distribution of values"
//! exactly as the paper prescribes.

use crate::reuse::ViewReuse;
use fdb_core::{AggBatch, AggQuery, Aggregate, Engine, FilterOp};
use fdb_data::{DataError, Database, Relation};

/// Tree-fitting configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum join tuples per leaf.
    pub min_samples: f64,
    /// Candidate thresholds per continuous feature.
    pub thresholds: usize,
    /// Minimum cost improvement to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 4, min_samples: 32.0, thresholds: 8, min_gain: 1e-6 }
    }
}

/// A split condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Split {
    /// `attr >= t` (left = yes).
    Ge(String, f64),
    /// `attr = code` (left = yes).
    Eq(String, i64),
}

impl Split {
    fn yes(&self) -> (String, FilterOp) {
        match self {
            Split::Ge(a, t) => (a.clone(), FilterOp::Ge(*t)),
            Split::Eq(a, v) => (a.clone(), FilterOp::Eq(*v)),
        }
    }

    fn no(&self) -> (String, FilterOp) {
        match self {
            Split::Ge(a, t) => (a.clone(), FilterOp::Lt(*t)),
            Split::Eq(a, v) => (a.clone(), FilterOp::Ne(*v)),
        }
    }
}

/// A tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// A leaf predicting a value (regression: mean; classification: the
    /// majority class code as `f64`).
    Leaf {
        /// Predicted value.
        prediction: f64,
        /// Join tuples that reached this leaf during training.
        count: f64,
    },
    /// An internal split node.
    Split {
        /// The condition; `left` is the yes-branch.
        split: Split,
        /// Yes branch.
        left: Box<Node>,
        /// No branch.
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// The root node.
    pub root: Node,
    /// Number of engine batches run during training (one per tree node).
    pub batches_run: usize,
    /// View-cache reuse observed across the whole training: per-node
    /// batches share every subtree view a node's split filters do not
    /// touch (residual-filter reuse), so with the LMFAO engine the
    /// trainer rescans strictly fewer views than
    /// `batches × views-per-batch`. Zero on engines that do not use the
    /// view cache.
    pub view_reuse: ViewReuse,
}

struct Fitter<'a> {
    db: &'a Database,
    rels: Vec<&'a str>,
    response: &'a str,
    candidates: Vec<Split>,
    cfg: TreeConfig,
    engine: &'a dyn Engine,
    batches_run: usize,
    classification: bool,
}

impl DecisionTree {
    /// Fits a regression tree over the natural join of `relations`.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_regression(
        db: &Database,
        relations: &[&str],
        continuous: &[&str],
        categorical: &[&str],
        response: &str,
        cfg: TreeConfig,
        engine: &dyn Engine,
    ) -> Result<Self, DataError> {
        Self::fit_impl(db, relations, continuous, categorical, response, cfg, engine, false)
    }

    /// Fits a classification tree; `response` must be a categorical
    /// attribute (class codes). Costs use the Gini index from grouped
    /// counts.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_classification(
        db: &Database,
        relations: &[&str],
        continuous: &[&str],
        categorical: &[&str],
        response: &str,
        cfg: TreeConfig,
        engine: &dyn Engine,
    ) -> Result<Self, DataError> {
        Self::fit_impl(db, relations, continuous, categorical, response, cfg, engine, true)
    }

    /// Shared trainer body: candidate construction + recursive node
    /// fitting, wrapped in view-reuse accounting.
    #[allow(clippy::too_many_arguments)]
    fn fit_impl(
        db: &Database,
        relations: &[&str],
        continuous: &[&str],
        categorical: &[&str],
        response: &str,
        cfg: TreeConfig,
        engine: &dyn Engine,
        classification: bool,
    ) -> Result<Self, DataError> {
        let (fitted, view_reuse) = ViewReuse::measure(|| -> Result<_, DataError> {
            let candidates =
                candidate_splits(db, relations, continuous, categorical, cfg.thresholds, engine)?;
            let mut fitter = Fitter {
                db,
                rels: relations.to_vec(),
                response,
                candidates,
                cfg,
                engine,
                batches_run: 0,
                classification,
            };
            let root = fitter.fit_node(vec![], 0)?;
            Ok((root, fitter.batches_run))
        });
        let (root, batches_run) = fitted?;
        Ok(Self { root, batches_run, view_reuse })
    }

    /// Predicts for row `row` of a flat relation carrying the feature
    /// attributes.
    pub fn predict_row(&self, rel: &Relation, row: usize) -> Result<f64, DataError> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prediction, .. } => return Ok(*prediction),
                Node::Split { split, left, right } => {
                    let yes = match split {
                        Split::Ge(a, t) => rel.value_f64(row, rel.schema().require(a)?) >= *t,
                        Split::Eq(a, v) => rel.value(row, rel.schema().require(a)?).as_int() == *v,
                    };
                    node = if yes { left } else { right };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }
}

/// Builds the global candidate split list: equi-spaced thresholds within
/// mean ± 2σ per continuous attribute (from one statistics batch), plus
/// per-category equality conditions for categorical attributes.
fn candidate_splits(
    db: &Database,
    relations: &[&str],
    continuous: &[&str],
    categorical: &[&str],
    thresholds: usize,
    engine: &dyn Engine,
) -> Result<Vec<Split>, DataError> {
    let mut batch = AggBatch::new();
    batch.push(Aggregate::count());
    for c in continuous {
        batch.push(Aggregate::sum(c));
        batch.push(Aggregate::sum_prod(c, c));
    }
    for x in categorical {
        batch.push(Aggregate::count().by(&[x]));
    }
    let res = engine.run(db, &AggQuery::new(relations, batch))?;
    let n = res.scalar(0).max(1.0);
    let mut out = Vec::new();
    for (i, c) in continuous.iter().enumerate() {
        let mean = res.scalar(1 + 2 * i) / n;
        let var = (res.scalar(2 + 2 * i) / n - mean * mean).max(0.0);
        let std = var.sqrt();
        for j in 0..thresholds {
            let frac = (j as f64 + 1.0) / (thresholds as f64 + 1.0);
            let t = mean - 2.0 * std + 4.0 * std * frac;
            out.push(Split::Ge(c.to_string(), t));
        }
    }
    for (k, x) in categorical.iter().enumerate() {
        let idx = 1 + 2 * continuous.len() + k;
        let mut codes: Vec<i64> = res.grouped(idx).keys().map(|key| key[0]).collect();
        codes.sort_unstable();
        codes.truncate(16);
        for v in codes {
            out.push(Split::Eq(x.to_string(), v));
        }
    }
    Ok(out)
}

impl<'a> Fitter<'a> {
    /// Fits the node whose population satisfies `path` (a conjunction of
    /// split conditions), using one LMFAO batch for all candidates.
    fn fit_node(&mut self, path: Vec<(String, FilterOp)>, depth: usize) -> Result<Node, DataError> {
        if self.classification {
            self.fit_node_gini(path, depth)
        } else {
            self.fit_node_variance(path, depth)
        }
    }

    fn with_path(&self, mut agg: Aggregate, path: &[(String, FilterOp)]) -> Aggregate {
        for (a, op) in path {
            agg = agg.filtered(a, op.clone());
        }
        agg
    }

    fn fit_node_variance(
        &mut self,
        path: Vec<(String, FilterOp)>,
        depth: usize,
    ) -> Result<Node, DataError> {
        let y = self.response;
        // Batch: node totals + per-candidate yes-side moments.
        let mut batch = AggBatch::new();
        batch.push(self.with_path(Aggregate::count(), &path));
        batch.push(self.with_path(Aggregate::sum(y), &path));
        batch.push(self.with_path(Aggregate::sum_prod(y, y), &path));
        for cand in &self.candidates {
            let (a, op) = cand.yes();
            batch.push(self.with_path(Aggregate::count().filtered(&a, op.clone()), &path));
            batch.push(self.with_path(Aggregate::sum(y).filtered(&a, op.clone()), &path));
            batch.push(self.with_path(Aggregate::sum_prod(y, y).filtered(&a, op), &path));
        }
        let res = self.engine.run(self.db, &AggQuery::new(&self.rels, batch))?;
        self.batches_run += 1;
        let (n, s, ss) = (res.scalar(0), res.scalar(1), res.scalar(2));
        let sse = |n: f64, s: f64, ss: f64| if n > 0.0 { ss - s * s / n } else { 0.0 };
        let node_sse = sse(n, s, ss);
        let prediction = if n > 0.0 { s / n } else { 0.0 };
        let leaf = Node::Leaf { prediction, count: n };
        if depth >= self.cfg.max_depth || n < 2.0 * self.cfg.min_samples {
            return Ok(leaf);
        }
        // Pick the best candidate by total SSE of the two sides.
        let mut best: Option<(usize, f64)> = None;
        for (ci, _) in self.candidates.iter().enumerate() {
            let (ny, sy, ssy) =
                (res.scalar(3 + 3 * ci), res.scalar(4 + 3 * ci), res.scalar(5 + 3 * ci));
            let (nn, sn, ssn) = (n - ny, s - sy, ss - ssy);
            if ny < self.cfg.min_samples || nn < self.cfg.min_samples {
                continue;
            }
            let cost = sse(ny, sy, ssy) + sse(nn, sn, ssn);
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((ci, cost));
            }
        }
        let Some((ci, cost)) = best else {
            return Ok(leaf);
        };
        if node_sse - cost < self.cfg.min_gain * node_sse.max(1.0) {
            return Ok(leaf);
        }
        let split = self.candidates[ci].clone();
        let mut left_path = path.clone();
        left_path.push(split.yes());
        let mut right_path = path;
        right_path.push(split.no());
        let left = self.fit_node(left_path, depth + 1)?;
        let right = self.fit_node(right_path, depth + 1)?;
        Ok(Node::Split { split, left: Box::new(left), right: Box::new(right) })
    }

    fn fit_node_gini(
        &mut self,
        path: Vec<(String, FilterOp)>,
        depth: usize,
    ) -> Result<Node, DataError> {
        let y = self.response;
        let mut batch = AggBatch::new();
        batch.push(self.with_path(Aggregate::count().by(&[y]), &path));
        for cand in &self.candidates {
            let (a, op) = cand.yes();
            batch.push(self.with_path(Aggregate::count().by(&[y]).filtered(&a, op), &path));
        }
        let res = self.engine.run(self.db, &AggQuery::new(&self.rels, batch))?;
        self.batches_run += 1;
        let class_counts = |i: usize| -> std::collections::HashMap<i64, f64> {
            res.grouped(i).iter().map(|(k, v)| (k[0], *v)).collect()
        };
        let totals = class_counts(0);
        let n: f64 = totals.values().sum();
        let gini = |counts: &std::collections::HashMap<i64, f64>| -> f64 {
            let m: f64 = counts.values().sum();
            if m <= 0.0 {
                return 0.0;
            }
            m * (1.0 - counts.values().map(|c| (c / m).powi(2)).sum::<f64>())
        };
        let majority =
            totals.iter().max_by(|a, b| a.1.total_cmp(b.1)).map(|(k, _)| *k).unwrap_or(0) as f64;
        let leaf = Node::Leaf { prediction: majority, count: n };
        if depth >= self.cfg.max_depth || n < 2.0 * self.cfg.min_samples {
            return Ok(leaf);
        }
        let node_gini = gini(&totals);
        let mut best: Option<(usize, f64)> = None;
        for (ci, _) in self.candidates.iter().enumerate() {
            let yes = class_counts(1 + ci);
            let ny: f64 = yes.values().sum();
            let no: std::collections::HashMap<i64, f64> =
                totals.iter().map(|(k, v)| (*k, v - yes.get(k).copied().unwrap_or(0.0))).collect();
            let nn: f64 = no.values().sum();
            if ny < self.cfg.min_samples || nn < self.cfg.min_samples {
                continue;
            }
            let cost = gini(&yes) + gini(&no);
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((ci, cost));
            }
        }
        let Some((ci, cost)) = best else {
            return Ok(leaf);
        };
        if node_gini - cost < self.cfg.min_gain * node_gini.max(1.0) {
            return Ok(leaf);
        }
        let split = self.candidates[ci].clone();
        let mut left_path = path.clone();
        left_path.push(split.yes());
        let mut right_path = path;
        right_path.push(split.no());
        let left = self.fit_node(left_path, depth + 1)?;
        let right = self.fit_node(right_path, depth + 1)?;
        Ok(Node::Split { split, left: Box::new(left), right: Box::new(right) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_datasets::{retailer, RetailerConfig};
    use fdb_query::natural_join_all;

    #[test]
    fn regression_tree_reduces_sse_over_mean() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let tree = DecisionTree::fit_regression(
            &ds.db,
            &rels,
            &["prize", "maxtemp"],
            &["rain"],
            "inventoryunits",
            TreeConfig { max_depth: 3, min_samples: 8.0, thresholds: 6, min_gain: 1e-9 },
            &fdb_core::LmfaoEngine::default(),
        )
        .unwrap();
        assert!(tree.leaves() >= 2, "tree must split at least once");
        assert!(tree.batches_run >= 3);
        // Evaluate on the materialized join.
        let flat = natural_join_all(&ds.db, &rels).unwrap();
        let ycol = flat.schema().require("inventoryunits").unwrap();
        let mean: f64 =
            (0..flat.len()).map(|r| flat.value_f64(r, ycol)).sum::<f64>() / flat.len() as f64;
        let mut sse_tree = 0.0;
        let mut sse_mean = 0.0;
        for r in 0..flat.len() {
            let y = flat.value_f64(r, ycol);
            let p = tree.predict_row(&flat, r).unwrap();
            sse_tree += (y - p).powi(2);
            sse_mean += (y - mean).powi(2);
        }
        assert!(sse_tree < 0.9 * sse_mean, "tree SSE {sse_tree} must beat mean SSE {sse_mean}");
    }

    #[test]
    fn classification_tree_predicts_rain_from_snowy_temps() {
        // Predict the categorical `rain` from weather features: not
        // perfectly learnable, but the tree must beat always-majority.
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let tree = DecisionTree::fit_classification(
            &ds.db,
            &rels,
            &["maxtemp", "mintemp"],
            &["snow"],
            "rain",
            TreeConfig { max_depth: 2, min_samples: 8.0, thresholds: 4, min_gain: 0.0 },
            &fdb_core::LmfaoEngine::default(),
        )
        .unwrap();
        // Structure sanity: predictions are class codes.
        let flat = natural_join_all(&ds.db, &rels).unwrap();
        for r in (0..flat.len()).step_by(97) {
            let p = tree.predict_row(&flat, r).unwrap();
            assert!(p == 0.0 || p == 1.0);
        }
    }

    #[test]
    fn factorized_fit_sorts_each_relation_at_most_once_per_order() {
        // The trainer runs one aggregate batch per tree node; the sort
        // cache must keep the sort bill independent of the node count:
        // bounded by distinct (relation, column order) pairs — at most one
        // per relation per group-by set — and a repeated fit sorts nothing.
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let cache = fdb_data::SortCache::global();
        // This dataset instance is fresh (new relation identities), so the
        // per-relation stats below are attributable to this test alone.
        // The zero-re-sort assertion additionally relies on this test being
        // the only FactorizedEngine user in the fdb-ml test binary: heavy
        // concurrent churn could FIFO-evict the entries between fits. If
        // another test starts driving the factorized engine, switch this
        // accounting to a private `SortCache` via `EvalSpec::new_with_cache`
        // (see tests/engines_agree.rs).
        let sorts =
            || -> u64 { rels.iter().map(|r| cache.stats_for(ds.db.get(r).unwrap()).1).sum() };
        let cfg = TreeConfig { max_depth: 3, min_samples: 8.0, thresholds: 4, min_gain: 1e-9 };
        let fit = || {
            DecisionTree::fit_regression(
                &ds.db,
                &rels,
                &["prize", "maxtemp"],
                &["rain"],
                "inventoryunits",
                cfg,
                &fdb_core::FactorizedEngine::new(),
            )
            .unwrap()
        };
        let tree = fit();
        let after_first = sorts();
        // Two group-by sets appear (scalar node batches + the per-category
        // candidate stats), so ≤ 2 column orders per relation.
        assert!(tree.batches_run >= 3, "one batch per node");
        assert!(
            after_first <= 2 * rels.len() as u64,
            "sorts ({after_first}) must not scale with the {} batches",
            tree.batches_run
        );
        let tree2 = fit();
        assert_eq!(sorts(), after_first, "an identical fit re-sorts nothing");
        assert_eq!(tree2.leaves(), tree.leaves());
    }

    #[test]
    fn lmfao_fit_reuses_subtree_views_across_nodes_and_fits() {
        // One aggregate batch per tree node over the same join tree: the
        // view cache must serve every subtree a node's split filters do
        // not touch. Attribution uses per-content-id stats on a fresh
        // dataset instance, so concurrent cache users cannot skew it.
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let cache = fdb_core::ViewCache::global();
        let counts = || -> (u64, u64) {
            rels.iter()
                .map(|r| cache.stats_for_id(ds.db.get(r).unwrap().data_id()))
                .fold((0, 0), |(a, b), (h, m)| (a + h, b + m))
        };
        let engine = fdb_core::LmfaoEngine::with_config(fdb_core::EngineConfig {
            threads: 1,
            ..Default::default()
        });
        let cfg = TreeConfig { max_depth: 3, min_samples: 8.0, thresholds: 4, min_gain: 1e-9 };
        let fit = || {
            DecisionTree::fit_regression(
                &ds.db,
                &rels,
                &["prize", "maxtemp"],
                &["rain"],
                "inventoryunits",
                cfg,
                &engine,
            )
            .unwrap()
        };
        let t1 = fit();
        let (reused1, scanned1) = counts();
        assert!(t1.batches_run >= 3, "one batch per node");
        assert!(reused1 > 0, "residual subtrees served from cache across nodes");
        assert!(t1.view_reuse.views_rescanned > 0, "a cold fit scans something");
        // An identical second fit is fully served — zero rescans.
        let t2 = fit();
        let (reused2, scanned2) = counts();
        assert_eq!(scanned2, scanned1, "identical fit rescans nothing");
        assert!(reused2 > reused1, "second fit served from cache");
        assert!(t2.view_reuse.views_reused > 0);
        assert_eq!(t2.leaves(), t1.leaves());
    }

    #[test]
    fn leaf_counts_partition_the_population() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let tree = DecisionTree::fit_regression(
            &ds.db,
            &rels,
            &["prize"],
            &[],
            "inventoryunits",
            TreeConfig { max_depth: 2, min_samples: 4.0, thresholds: 4, min_gain: 0.0 },
            &fdb_core::LmfaoEngine::default(),
        )
        .unwrap();
        fn leaf_total(n: &Node) -> f64 {
            match n {
                Node::Leaf { count, .. } => *count,
                Node::Split { left, right, .. } => leaf_total(left) + leaf_total(right),
            }
        }
        let flat = natural_join_all(&ds.db, &rels).unwrap();
        assert!((leaf_total(&tree.root) - flat.len() as f64).abs() < 1e-6);
    }
}
