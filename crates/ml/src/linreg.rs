//! Ridge linear regression over sufficient statistics (§1.3, §2.1).
//!
//! The normal-equation matrix `XᵀX` and vector `Xᵀy` are assembled directly
//! from [`SufficientStats`] — count, sums, second moments, and the sparse
//! categorical maps — without ever materializing the data matrix. Training
//! is then independent of the data size: batch gradient descent over a
//! `d×d` matrix (the paper's 50 ms retrains) or a Cholesky solve.
//!
//! Model selection (§1.5): any model over a *subset* of the features reuses
//! the same statistics — `fit` again with a different subset, no new scan.

use crate::linalg::{cholesky_solve, dot, matvec, power_iteration};
use crate::reuse::ViewReuse;
use fdb_core::{sufficient_stats, Engine, SufficientStats};
use fdb_data::{DataError, Database};

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct RidgeConfig {
    /// L2 regularization strength (on non-intercept weights).
    pub l2: f64,
    /// Maximum gradient-descent iterations.
    pub max_iters: usize,
    /// Stop when the gradient norm falls below this.
    pub tol: f64,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        Self { l2: 1e-3, max_iters: 2_000, tol: 1e-9 }
    }
}

/// A trained linear model over continuous + one-hot categorical features.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Weights aligned with [`LinearRegression::labels`].
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Feature labels: continuous names, then `cat=code` indicators
    /// (codes ascending) — the same layout as
    /// [`crate::matrix::DataMatrix`].
    pub labels: Vec<String>,
    /// Gradient-descent iterations used (0 for the closed form).
    pub iterations: usize,
}

/// The normal equations assembled from sufficient statistics:
/// `A = XᵀX / N` and `b = Xᵀy / N` over `[features..., intercept]`.
struct Normal {
    a: Vec<f64>,
    b: Vec<f64>,
    d: usize,
    labels: Vec<String>,
}

fn assemble(stats: &SufficientStats, cont_subset: &[usize]) -> Result<Normal, DataError> {
    let n_cont = stats.n_cont();
    if n_cont == 0 {
        return Err(DataError::Invalid("no continuous attributes (need a response)".into()));
    }
    let resp = n_cont - 1;
    if cont_subset.iter().any(|&i| i >= resp) {
        return Err(DataError::Invalid("subset index out of range (response excluded)".into()));
    }
    let count = stats.count;
    if count <= 0.0 {
        return Err(DataError::Invalid("empty join: no training data".into()));
    }
    // Feature layout: subset of continuous, then one-hot per categorical.
    let mut labels: Vec<String> = cont_subset.iter().map(|&i| stats.cont[i].clone()).collect();
    let mut cat_codes: Vec<Vec<i64>> = Vec::with_capacity(stats.cat.len());
    for (k, name) in stats.cat.iter().enumerate() {
        let mut codes: Vec<i64> = stats.cat_counts[k].keys().copied().collect();
        codes.sort_unstable();
        for c in &codes {
            labels.push(format!("{name}={c}"));
        }
        cat_codes.push(codes);
    }
    let p = cont_subset.len();
    let d = labels.len() + 1; // + intercept (last)
    let mut a = vec![0.0; d * d];
    let mut b = vec![0.0; d];
    let put = |a: &mut Vec<f64>, i: usize, j: usize, v: f64| {
        a[i * d + j] = v;
        a[j * d + i] = v;
    };
    // Continuous block.
    for (ii, &i) in cont_subset.iter().enumerate() {
        for (jj, &j) in cont_subset.iter().enumerate().take(ii + 1) {
            put(&mut a, ii, jj, stats.moment(i, j));
        }
        b[ii] = stats.moment(i, resp);
        put(&mut a, ii, d - 1, stats.sum[i]);
    }
    // Categorical blocks.
    let mut off = p;
    let offsets: Vec<usize> = {
        let mut v = Vec::with_capacity(cat_codes.len());
        for codes in &cat_codes {
            v.push(off);
            off += codes.len();
        }
        v
    };
    for (k, codes) in cat_codes.iter().enumerate() {
        for (ci, code) in codes.iter().enumerate() {
            let row = offsets[k] + ci;
            let cnt = stats.cat_counts[k][code];
            put(&mut a, row, row, cnt);
            put(&mut a, row, d - 1, cnt);
            // cat × continuous
            for (ii, &i) in cont_subset.iter().enumerate() {
                put(&mut a, row, ii, stats.cat_cont_sums[k][i].get(code).copied().unwrap_or(0.0));
            }
            // cat × response
            b[row] = stats.cat_cont_sums[k][resp].get(code).copied().unwrap_or(0.0);
        }
        // cat × cat (other attributes)
        for l in k + 1..cat_codes.len() {
            if let Some(pairs) = stats.cat_pair_counts.get(&(k, l)) {
                for ((ck, cl), v) in pairs {
                    let ri = offsets[k] + cat_codes[k].binary_search(ck).expect("known code");
                    let rj = offsets[l] + cat_codes[l].binary_search(cl).expect("known code");
                    put(&mut a, ri, rj, *v);
                }
            }
        }
    }
    // Intercept.
    put(&mut a, d - 1, d - 1, count);
    b[d - 1] = stats.sum[resp];
    // Normalize by N for conditioning.
    for v in a.iter_mut() {
        *v /= count;
    }
    for v in b.iter_mut() {
        *v /= count;
    }
    Ok(Normal { a, b, d, labels })
}

/// Jacobi preconditioning: rescales `A` and `b` so `A` has a unit
/// diagonal (features standardized to unit second moment). Returns the
/// scale factors; solutions in the scaled space map back as `θ_i / d_i`.
/// Both training paths use it, so the ridge penalty acts on standardized
/// features — the statistically sane convention.
fn precondition(nm: &mut Normal) -> Vec<f64> {
    let d = nm.d;
    let scales: Vec<f64> = (0..d).map(|i| nm.a[i * d + i].sqrt().max(1e-12)).collect();
    for i in 0..d {
        for j in 0..d {
            nm.a[i * d + j] /= scales[i] * scales[j];
        }
        nm.b[i] /= scales[i];
    }
    scales
}

impl LinearRegression {
    /// Fits by batch gradient descent over the covariance matrix — the
    /// paper's optimisation loop (Figure 3: "Grad Descent 0.05 secs").
    /// Uses all continuous features plus all categorical features in
    /// `stats`.
    pub fn fit_gd(stats: &SufficientStats, cfg: &RidgeConfig) -> Result<Self, DataError> {
        let subset: Vec<usize> = (0..stats.n_cont().saturating_sub(1)).collect();
        Self::fit_gd_subset(stats, &subset, cfg)
    }

    /// Gradient descent over a *subset* of the continuous features —
    /// model selection reusing the same statistics (§1.5).
    pub fn fit_gd_subset(
        stats: &SufficientStats,
        cont_subset: &[usize],
        cfg: &RidgeConfig,
    ) -> Result<Self, DataError> {
        let mut nm = assemble(stats, cont_subset)?;
        let scales = precondition(&mut nm);
        let d = nm.d;
        // Step size from the dominant eigenvalue (Lipschitz constant).
        let (lmax, _) = power_iteration(&nm.a, d, 50, 42);
        let lr = 1.0 / (lmax + cfg.l2 + 1e-12);
        let mut theta = vec![0.0; d];
        let mut iterations = 0;
        for it in 0..cfg.max_iters {
            iterations = it + 1;
            let mut grad = matvec(&nm.a, &theta, d);
            for i in 0..d {
                grad[i] -= nm.b[i];
                if i != d - 1 {
                    grad[i] += cfg.l2 * theta[i];
                }
            }
            let gnorm = crate::linalg::norm(&grad);
            for i in 0..d {
                theta[i] -= lr * grad[i];
            }
            if gnorm < cfg.tol {
                break;
            }
        }
        for (t, s) in theta.iter_mut().zip(&scales) {
            *t /= s;
        }
        let intercept = theta[d - 1];
        theta.truncate(d - 1);
        Ok(Self { weights: theta, intercept, labels: nm.labels, iterations })
    }

    /// End-to-end in-database training: computes the sufficient
    /// statistics through `engine` (the one data-dependent step — the BGD
    /// iterations afterwards touch only the `d×d` covariance matrix) and
    /// fits by batch gradient descent. Returns the model together with
    /// the view-cache reuse observed while computing the statistics:
    /// retrains and model-selection loops over an unchanged database are
    /// fully served from the cross-batch cache, making the paper's
    /// "50 ms retrain" independent of even the one remaining scan.
    ///
    /// `continuous` must list the response last.
    pub fn fit_gd_indb(
        db: &Database,
        relations: &[&str],
        continuous: &[&str],
        categorical: &[&str],
        engine: &dyn Engine,
        cfg: &RidgeConfig,
    ) -> Result<(Self, ViewReuse), DataError> {
        let (stats, reuse) =
            ViewReuse::measure(|| sufficient_stats(db, relations, continuous, categorical, engine));
        Ok((Self::fit_gd(&stats?, cfg)?, reuse))
    }

    /// The closed-form ridge solution `(XᵀX + λNI)⁻¹ Xᵀy` via Cholesky.
    pub fn fit_closed(stats: &SufficientStats, cfg: &RidgeConfig) -> Result<Self, DataError> {
        let subset: Vec<usize> = (0..stats.n_cont().saturating_sub(1)).collect();
        let mut nm = assemble(stats, &subset)?;
        let scales = precondition(&mut nm);
        let d = nm.d;
        for i in 0..d - 1 {
            nm.a[i * d + i] += cfg.l2;
        }
        let mut theta = cholesky_solve(&nm.a, &nm.b, d)
            .ok_or_else(|| DataError::Invalid("normal matrix not positive definite".into()))?;
        for (t, s) in theta.iter_mut().zip(&scales) {
            *t /= s;
        }
        let intercept = theta[d - 1];
        theta.truncate(d - 1);
        Ok(Self { weights: theta, intercept, labels: nm.labels, iterations: 0 })
    }

    /// Predicts for one feature row (layout per
    /// [`LinearRegression::labels`]).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + dot(&self.weights, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DataMatrix;
    use fdb_core::{sufficient_stats, LmfaoEngine};
    use fdb_datasets::{retailer, RetailerConfig};
    use fdb_query::natural_join_all;

    fn stats_and_matrix() -> (SufficientStats, DataMatrix) {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let cont = ["prize", "maxtemp", "population", "inventoryunits"];
        let cat = ["rain", "categoryCluster"];
        let stats = sufficient_stats(&ds.db, &rels, &cont, &cat, &LmfaoEngine::default()).unwrap();
        let flat = natural_join_all(&ds.db, &rels).unwrap();
        let m = DataMatrix::from_relation(
            &flat,
            &["prize", "maxtemp", "population"],
            &cat,
            "inventoryunits",
        )
        .unwrap();
        (stats, m)
    }

    #[test]
    fn gd_and_closed_form_agree() {
        let (stats, _) = stats_and_matrix();
        let cfg = RidgeConfig { l2: 1e-2, max_iters: 100_000, tol: 1e-13 };
        let gd = LinearRegression::fit_gd(&stats, &cfg).unwrap();
        let cf = LinearRegression::fit_closed(&stats, &cfg).unwrap();
        assert_eq!(gd.labels, cf.labels);
        // GD converges to the closed-form optimum (up to the one-hot
        // near-collinearity's slow tail).
        for (a, b) in gd.weights.iter().zip(&cf.weights) {
            assert!((a - b).abs() < 1e-6 + 1e-3 * b.abs(), "{a} vs {b}");
        }
        assert!((gd.intercept - cf.intercept).abs() < 1e-3 * (1.0 + cf.intercept.abs()));
    }

    #[test]
    fn stats_model_matches_normal_equations_on_matrix() {
        // The stats-trained model must equal ridge regression trained on
        // the materialized one-hot matrix (same normal equations).
        let (stats, m) = stats_and_matrix();
        let cfg = RidgeConfig { l2: 1e-3, ..Default::default() };
        let model = LinearRegression::fit_closed(&stats, &cfg).unwrap();
        assert_eq!(model.labels, m.labels);
        // Normal equations on the matrix.
        let d = m.dim + 1;
        let n = m.rows() as f64;
        let mut a = vec![0.0; d * d];
        let mut b = vec![0.0; d];
        for r in 0..m.rows() {
            let row = m.row(r);
            for i in 0..m.dim {
                for j in 0..m.dim {
                    a[i * d + j] += row[i] * row[j];
                }
                a[i * d + (d - 1)] += row[i];
                a[(d - 1) * d + i] += row[i];
                b[i] += row[i] * m.y[r];
            }
            a[(d - 1) * d + (d - 1)] += 1.0;
            b[d - 1] += m.y[r];
        }
        for v in a.iter_mut() {
            *v /= n;
        }
        for v in b.iter_mut() {
            *v /= n;
        }
        // Mirror the library's Jacobi preconditioning so the ridge penalty
        // acts on standardized features in both computations.
        let scales: Vec<f64> = (0..d).map(|i| a[i * d + i].sqrt().max(1e-12)).collect();
        for i in 0..d {
            for j in 0..d {
                a[i * d + j] /= scales[i] * scales[j];
            }
            b[i] /= scales[i];
        }
        for i in 0..d - 1 {
            a[i * d + i] += cfg.l2;
        }
        let mut theta = cholesky_solve(&a, &b, d).unwrap();
        for (t, s) in theta.iter_mut().zip(&scales) {
            *t /= s;
        }
        for i in 0..m.dim {
            assert!(
                (model.weights[i] - theta[i]).abs() < 1e-6,
                "w[{i}]: {} vs {}",
                model.weights[i],
                theta[i]
            );
        }
        assert!((model.intercept - theta[d - 1]).abs() < 1e-6);
    }

    #[test]
    fn model_recovers_planted_signal_direction() {
        let (stats, m) = stats_and_matrix();
        let model = LinearRegression::fit_closed(&stats, &RidgeConfig::default()).unwrap();
        // prize has a planted negative effect on inventoryunits.
        let prize_idx = model.labels.iter().position(|l| l == "prize").unwrap();
        assert!(model.weights[prize_idx] < 0.0);
        // And the fit beats the constant-mean predictor.
        let mean = m.y.iter().sum::<f64>() / m.rows() as f64;
        let base = (m.y.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / m.rows() as f64).sqrt();
        let rmse = m.rmse(&model.weights, model.intercept);
        assert!(rmse < 0.8 * base, "rmse {rmse} vs baseline {base}");
    }

    #[test]
    fn indb_retrain_is_served_from_the_view_cache() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let cont = ["prize", "maxtemp", "inventoryunits"];
        let cat = ["rain"];
        let cache = fdb_core::ViewCache::global();
        let scans = || -> u64 {
            rels.iter().map(|r| cache.stats_for_id(ds.db.get(r).unwrap().data_id()).1).sum()
        };
        let engine = fdb_core::LmfaoEngine::with_config(fdb_core::EngineConfig {
            threads: 1,
            ..Default::default()
        });
        let cfg = RidgeConfig::default();
        let (m1, _) =
            LinearRegression::fit_gd_indb(&ds.db, &rels, &cont, &cat, &engine, &cfg).unwrap();
        let cold_scans = scans();
        assert!(cold_scans > 0);
        let (m2, reuse) =
            LinearRegression::fit_gd_indb(&ds.db, &rels, &cont, &cat, &engine, &cfg).unwrap();
        assert_eq!(scans(), cold_scans, "retrain over unchanged data rescans nothing");
        assert!(reuse.views_reused > 0, "retrain served from cache");
        assert_eq!(m1.weights, m2.weights, "identical statistics, identical model");
    }

    #[test]
    fn subset_models_reuse_stats() {
        let (stats, _) = stats_and_matrix();
        let cfg = RidgeConfig::default();
        // Train 3 models over feature subsets from the SAME statistics.
        let m0 = LinearRegression::fit_gd_subset(&stats, &[0], &cfg).unwrap();
        let m1 = LinearRegression::fit_gd_subset(&stats, &[0, 1], &cfg).unwrap();
        let m2 = LinearRegression::fit_gd_subset(&stats, &[0, 1, 2], &cfg).unwrap();
        assert!(m0.weights.len() < m1.weights.len());
        assert!(m1.weights.len() < m2.weights.len());
    }

    #[test]
    fn empty_stats_rejected() {
        let (mut stats, _) = stats_and_matrix();
        stats.count = 0.0;
        assert!(LinearRegression::fit_closed(&stats, &RidgeConfig::default()).is_err());
    }
}
