//! Linear support vector machines with hinge loss (§2.3).
//!
//! The subgradient of the hinge loss sums `y·x` over the margin violators
//! `y(w·x) < 1` — an aggregate with an *additive inequality* condition.
//! When the score splits across two join sides (`w·x = u(t_R) + v(t_S)`),
//! `fdb-ineq`'s sort + prefix-sum algorithm counts/sums violators without
//! touching every pair; [`violators_split`] exposes that fast path, and the
//! inequality benchmark measures it against the nested loop.

use crate::matrix::DataMatrix;

/// SVM training configuration (Pegasos-style subgradient descent).
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularization λ.
    pub lambda: f64,
    /// Epochs over the data.
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-3, epochs: 50 }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone)]
pub struct Svm {
    /// Weights.
    pub w: Vec<f64>,
    /// Bias.
    pub b: f64,
}

impl Svm {
    /// Trains on the matrix rows; labels are `matrix.y` values interpreted
    /// as {-1, +1} by sign (0 counts as +1).
    pub fn fit(m: &DataMatrix, cfg: &SvmConfig) -> Svm {
        let d = m.dim;
        let n = m.rows();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        if n == 0 {
            return Svm { w, b };
        }
        // Feature scale for a stable step size.
        let scale = (0..n)
            .map(|r| m.row(r).iter().map(|x| x * x).sum::<f64>())
            .fold(0.0f64, f64::max)
            .max(1.0);
        for epoch in 0..cfg.epochs {
            let lr = 0.5 / (scale * (1.0 + epoch as f64).sqrt());
            for r in 0..n {
                let y = if m.y[r] < 0.0 { -1.0 } else { 1.0 };
                let row = m.row(r);
                let margin = y * (crate::linalg::dot(&w, row) + b);
                for wi in w.iter_mut() {
                    *wi *= 1.0 - lr * cfg.lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(row) {
                        *wi += lr * y * xi;
                    }
                    b += lr * y;
                }
            }
        }
        Svm { w, b }
    }

    /// Predicts the class (−1 or +1) of a feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if crate::linalg::dot(&self.w, x) + self.b >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Classification accuracy on a matrix.
    pub fn accuracy(&self, m: &DataMatrix) -> f64 {
        if m.rows() == 0 {
            return 1.0;
        }
        let hits = (0..m.rows())
            .filter(|&r| {
                let y = if m.y[r] < 0.0 { -1.0 } else { 1.0 };
                self.predict(m.row(r)) == y
            })
            .count();
        hits as f64 / m.rows() as f64
    }
}

/// Counts hinge violators `u_i + v_j < c` when the SVM score decomposes
/// additively across two join sides with partial scores `u` and `v` —
/// via the fast inequality algorithm of `fdb-ineq` (§2.3).
pub fn violators_split(u: &[f64], v: &[f64], c: f64) -> u64 {
    // u + v < c  ⇔  (-u) + (-v) > -c
    let nu: Vec<f64> = u.iter().map(|x| -x).collect();
    let nv: Vec<f64> = v.iter().map(|x| -x).collect();
    fdb_ineq::count_pairs_gt(&nu, &nv, -c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Relation, Schema, Value};

    /// Linearly separable data: y = sign(x0 - x1).
    fn separable(n: usize) -> DataMatrix {
        let mut rel = Relation::new(Schema::of(&[
            ("a", AttrType::Double),
            ("b", AttrType::Double),
            ("y", AttrType::Double),
        ]));
        for i in 0..n {
            let a = ((i * 31) % 17) as f64;
            let b = ((i * 17) % 19) as f64;
            let y = if a - b >= 0.5 { 1.0 } else { -1.0 };
            rel.push_row(&[Value::F64(a), Value::F64(b), Value::F64(y)]).unwrap();
        }
        DataMatrix::from_relation(&rel, &["a", "b"], &[], "y").unwrap()
    }

    #[test]
    fn svm_separates_separable_data() {
        let m = separable(400);
        let svm = Svm::fit(&m, &SvmConfig { lambda: 1e-5, epochs: 300 });
        assert!(svm.accuracy(&m) > 0.95, "accuracy {}", svm.accuracy(&m));
    }

    #[test]
    fn violators_split_matches_naive() {
        let u = [0.5, -1.0, 2.0];
        let v = [0.3, 0.9];
        let c = 1.0;
        let naive =
            u.iter().flat_map(|x| v.iter().map(move |y| x + y)).filter(|s| *s < c).count() as u64;
        assert_eq!(violators_split(&u, &v, c), naive);
    }

    #[test]
    fn empty_training_is_safe() {
        let m = DataMatrix { x: vec![], y: vec![], dim: 2, labels: vec!["a".into(), "b".into()] };
        let svm = Svm::fit(&m, &SvmConfig::default());
        assert_eq!(svm.w, vec![0.0, 0.0]);
        assert_eq!(svm.accuracy(&m), 1.0);
    }
}
