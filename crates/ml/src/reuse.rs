//! Per-training view-cache reuse accounting.
//!
//! The engine-side [`fdb_core::ViewCache`] memoizes materialized subtree
//! views across aggregate batches; the trainers in this crate are its
//! prime beneficiaries (a CART fit issues one batch per tree node over
//! the same join tree). [`ViewReuse`] captures the cache's global-counter
//! delta around one training so callers can report the reuse ratio —
//! "views served from cache vs views actually rescanned" — per fit.
//!
//! The numbers come from process-global counters, so concurrent cache
//! users (other trainings, tests in the same binary) inflate both sides;
//! for exact attribution in tests, use
//! [`fdb_core::ViewCache::stats_for_id`] with the dataset's relation
//! content ids instead.

use fdb_core::ViewCache;

/// View-cache reuse observed during one training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewReuse {
    /// Individual views served from the cache.
    pub views_reused: u64,
    /// Individual views materialized by an actual scan.
    pub views_rescanned: u64,
}

impl ViewReuse {
    /// Runs `f`, returning its result together with the view-cache delta
    /// it produced.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, ViewReuse) {
        let before = ViewCache::global().stats();
        let out = f();
        let after = ViewCache::global().stats();
        (
            out,
            ViewReuse {
                views_reused: after.views_reused - before.views_reused,
                views_rescanned: after.views_rescanned - before.views_rescanned,
            },
        )
    }

    /// Fraction of view lookups served from cache (`0.0` when the
    /// training touched no views — e.g. a non-LMFAO engine).
    pub fn ratio(&self) -> f64 {
        let total = self.views_reused + self.views_rescanned;
        if total == 0 {
            0.0
        } else {
            self.views_reused as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty_and_mixed() {
        assert_eq!(ViewReuse::default().ratio(), 0.0);
        let r = ViewReuse { views_reused: 3, views_rescanned: 1 };
        assert_eq!(r.ratio(), 0.75);
        let (value, delta) = ViewReuse::measure(|| 42);
        assert_eq!(value, 42);
        // A closure that runs no engine produces no *new* activity — both
        // deltas are whatever concurrent tests did, which for a pure
        // closure in this instant is overwhelmingly likely zero, but all
        // we assert is non-negativity (the type guarantees it).
        let _ = delta;
    }
}
