//! The structure-agnostic learner: mini-batch SGD over the materialized
//! data matrix — the TensorFlow stand-in of Figure 3. One epoch over a
//! shuffled matrix, z-score standardization inside (weights are mapped back
//! to raw feature space), L2 regularization.

use crate::matrix::DataMatrix;
use crate::LinearRegression;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Learning rate (on standardized features).
    pub lr: f64,
    /// Mini-batch size (the paper's TensorFlow run used 100k-tuple batches).
    pub batch: usize,
    /// Epochs (the paper's baseline ran one).
    pub epochs: usize,
    /// L2 regularization.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self { lr: 0.1, batch: 1024, epochs: 1, l2: 1e-3, seed: 0x5EED }
    }
}

/// Returns a row-shuffled copy of the matrix (the "Shuffling" row of
/// Figure 3).
pub fn shuffled(m: &DataMatrix, seed: u64) -> DataMatrix {
    let mut order: Vec<usize> = (0..m.rows()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut x = Vec::with_capacity(m.x.len());
    let mut y = Vec::with_capacity(m.rows());
    for &r in &order {
        x.extend_from_slice(m.row(r));
        y.push(m.y[r]);
    }
    DataMatrix { x, y, dim: m.dim, labels: m.labels.clone() }
}

/// Trains a linear model by mini-batch SGD over the matrix rows.
pub fn train_linear_sgd(m: &DataMatrix, cfg: &SgdConfig) -> LinearRegression {
    let d = m.dim;
    let n = m.rows();
    if n == 0 {
        return LinearRegression {
            weights: vec![0.0; d],
            intercept: 0.0,
            labels: m.labels.clone(),
            iterations: 0,
        };
    }
    // Standardize features (one-hot columns keep near-unit scales).
    let nf = n as f64;
    let mut mean = vec![0.0; d];
    let mut var = vec![0.0; d];
    for r in 0..n {
        for (i, v) in m.row(r).iter().enumerate() {
            mean[i] += v;
        }
    }
    for v in mean.iter_mut() {
        *v /= nf;
    }
    for r in 0..n {
        for (i, v) in m.row(r).iter().enumerate() {
            var[i] += (v - mean[i]).powi(2);
        }
    }
    let std: Vec<f64> = var.iter().map(|v| (v / nf).sqrt().max(1e-12)).collect();
    let y_mean = m.y.iter().sum::<f64>() / nf;

    let mut w = vec![0.0; d];
    let mut b = 0.0;
    let mut grad = vec![0.0; d];
    let mut steps = 0usize;
    for _ in 0..cfg.epochs {
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch).min(n);
            let bs = (end - start) as f64;
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0;
            for r in start..end {
                let row = m.row(r);
                let mut pred = b;
                for i in 0..d {
                    pred += w[i] * (row[i] - mean[i]) / std[i];
                }
                let err = pred - (m.y[r] - y_mean);
                for i in 0..d {
                    grad[i] += err * (row[i] - mean[i]) / std[i];
                }
                gb += err;
            }
            for i in 0..d {
                w[i] -= cfg.lr * (grad[i] / bs + cfg.l2 * w[i]);
            }
            b -= cfg.lr * gb / bs;
            steps += 1;
            start = end;
        }
    }
    // Map standardized weights back to raw feature space:
    // y = y_mean + b + Σ w_i (x_i - μ_i)/σ_i.
    let weights: Vec<f64> = (0..d).map(|i| w[i] / std[i]).collect();
    let intercept = y_mean + b - (0..d).map(|i| w[i] * mean[i] / std[i]).sum::<f64>();
    LinearRegression { weights, intercept, labels: m.labels.clone(), iterations: steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Relation, Schema, Value};

    fn synthetic(n: usize) -> DataMatrix {
        // y = 3x - 2z + 1 with two scales.
        let mut rel = Relation::new(Schema::of(&[
            ("x", AttrType::Double),
            ("z", AttrType::Double),
            ("y", AttrType::Double),
        ]));
        for i in 0..n {
            let x = (i % 17) as f64;
            let z = ((i * 7) % 23) as f64 * 100.0;
            rel.push_row(&[Value::F64(x), Value::F64(z), Value::F64(3.0 * x - 0.02 * z + 1.0)])
                .unwrap();
        }
        DataMatrix::from_relation(&rel, &["x", "z"], &[], "y").unwrap()
    }

    #[test]
    fn sgd_recovers_linear_function() {
        let m = synthetic(2000);
        let cfg = SgdConfig { epochs: 60, lr: 0.1, batch: 128, l2: 0.0, ..Default::default() };
        let model = train_linear_sgd(&shuffled(&m, 1), &cfg);
        assert!(m.rmse(&model.weights, model.intercept) < 0.05, "weights {:?}", model.weights);
        assert!((model.weights[0] - 3.0).abs() < 0.05);
        assert!((model.weights[1] + 0.02).abs() < 0.01);
    }

    #[test]
    fn one_epoch_is_less_accurate_than_converged() {
        let m = synthetic(2000);
        let one = train_linear_sgd(&m, &SgdConfig { epochs: 1, ..Default::default() });
        let many = train_linear_sgd(&m, &SgdConfig { epochs: 80, ..Default::default() });
        assert!(
            m.rmse(&many.weights, many.intercept) <= m.rmse(&one.weights, one.intercept) + 1e-9
        );
    }

    #[test]
    fn shuffle_permutes_rows() {
        let m = synthetic(50);
        let s = shuffled(&m, 9);
        assert_eq!(s.rows(), m.rows());
        let sum_a: f64 = m.y.iter().sum();
        let sum_b: f64 = s.y.iter().sum();
        assert!((sum_a - sum_b).abs() < 1e-9);
        assert_ne!(m.y, s.y);
    }

    #[test]
    fn empty_matrix_trains_trivially() {
        let m = DataMatrix { x: vec![], y: vec![], dim: 2, labels: vec!["a".into(), "b".into()] };
        let model = train_linear_sgd(&m, &SgdConfig::default());
        assert_eq!(model.weights, vec![0.0, 0.0]);
    }
}
