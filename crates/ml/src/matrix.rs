//! The materialized data matrix: feature extraction from a flat relation.
//!
//! This is the structure-agnostic path (§1.2): features are pulled out of
//! the materialized join, categorical attributes are **one-hot encoded** —
//! the very blow-up the sparse-tensor encoding avoids — and models train by
//! scanning rows. Used by the baselines and for model validation (RMSE on
//! held-out rows).

use fdb_data::{DataError, Relation};

/// A dense row-major feature matrix plus response vector.
#[derive(Debug, Clone)]
pub struct DataMatrix {
    /// Row-major features, `rows × dim` (intercept NOT included).
    pub x: Vec<f64>,
    /// Response per row.
    pub y: Vec<f64>,
    /// Feature dimension.
    pub dim: usize,
    /// Column labels (continuous names, then `cat=code` one-hot names).
    pub labels: Vec<String>,
}

impl DataMatrix {
    /// Extracts features from a flat relation: continuous attributes as-is,
    /// categorical attributes one-hot encoded over the codes present.
    pub fn from_relation(
        rel: &Relation,
        continuous: &[&str],
        categorical: &[&str],
        response: &str,
    ) -> Result<Self, DataError> {
        let ccols: Vec<usize> =
            continuous.iter().map(|a| rel.schema().require(a)).collect::<Result<_, _>>()?;
        let kcols: Vec<usize> =
            categorical.iter().map(|a| rel.schema().require(a)).collect::<Result<_, _>>()?;
        let ycol = rel.schema().require(response)?;
        // Discover the category codes present per categorical attribute.
        // `try_int_col` rejects a Double attribute passed as categorical
        // with a typed error instead of panicking mid-extraction.
        let kslices: Vec<&[i64]> =
            kcols.iter().map(|&kc| rel.try_int_col(kc)).collect::<Result<_, _>>()?;
        let mut codes: Vec<Vec<i64>> = Vec::with_capacity(kcols.len());
        for &ks in &kslices {
            let mut cs: Vec<i64> = ks.to_vec();
            cs.sort_unstable();
            cs.dedup();
            codes.push(cs);
        }
        let dim = ccols.len() + codes.iter().map(Vec::len).sum::<usize>();
        let mut labels: Vec<String> = continuous.iter().map(|s| s.to_string()).collect();
        for (k, cs) in codes.iter().enumerate() {
            for c in cs {
                labels.push(format!("{}={}", categorical[k], c));
            }
        }
        let rows = rel.len();
        let mut x = vec![0.0; rows * dim];
        let mut y = vec![0.0; rows];
        for r in 0..rows {
            let base = r * dim;
            for (i, &cc) in ccols.iter().enumerate() {
                x[base + i] = rel.value_f64(r, cc);
            }
            let mut off = ccols.len();
            for (k, &ks) in kslices.iter().enumerate() {
                let code = ks[r];
                let pos = codes[k].binary_search(&code).expect("code discovered above");
                x[base + off + pos] = 1.0;
                off += codes[k].len();
            }
            y[r] = rel.value_f64(r, ycol);
        }
        Ok(Self { x, y, dim, labels })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.y.len()
    }

    /// The feature slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.x[r * self.dim..(r + 1) * self.dim]
    }

    /// Splits rows into (train, test) with the last `test_fraction` of rows
    /// held out (callers shuffle first if needed).
    pub fn split(&self, test_fraction: f64) -> (DataMatrix, DataMatrix) {
        let test_rows = ((self.rows() as f64) * test_fraction).round() as usize;
        let train_rows = self.rows() - test_rows;
        let cut = train_rows * self.dim;
        (
            DataMatrix {
                x: self.x[..cut].to_vec(),
                y: self.y[..train_rows].to_vec(),
                dim: self.dim,
                labels: self.labels.clone(),
            },
            DataMatrix {
                x: self.x[cut..].to_vec(),
                y: self.y[train_rows..].to_vec(),
                dim: self.dim,
                labels: self.labels.clone(),
            },
        )
    }

    /// Root mean squared error of a linear model `(weights, intercept)`.
    pub fn rmse(&self, weights: &[f64], intercept: f64) -> f64 {
        if self.rows() == 0 {
            return 0.0;
        }
        let mut se = 0.0;
        for r in 0..self.rows() {
            let pred = intercept + crate::linalg::dot(self.row(r), weights);
            se += (pred - self.y[r]).powi(2);
        }
        (se / self.rows() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Schema, Value};

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::of(&[
                ("u", AttrType::Double),
                ("c", AttrType::Categorical),
                ("y", AttrType::Double),
            ]),
            vec![
                vec![Value::F64(1.0), Value::Int(3), Value::F64(10.0)],
                vec![Value::F64(2.0), Value::Int(5), Value::F64(20.0)],
                vec![Value::F64(3.0), Value::Int(3), Value::F64(30.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn double_attribute_as_categorical_is_a_typed_error() {
        // `u` is Double: one-hot extraction must refuse with a DataError,
        // not panic inside the code-discovery scan.
        let err = DataMatrix::from_relation(&rel(), &[], &["u"], "y").unwrap_err();
        assert!(
            matches!(err, DataError::TypeMismatch { ref attribute, .. } if attribute == "u"),
            "expected type mismatch on `u`, got {err:?}"
        );
    }

    #[test]
    fn one_hot_encoding_shapes() {
        let m = DataMatrix::from_relation(&rel(), &["u"], &["c"], "y").unwrap();
        assert_eq!(m.dim, 3); // u + one-hot over {3, 5}
        assert_eq!(m.labels, vec!["u", "c=3", "c=5"]);
        assert_eq!(m.row(0), &[1.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 0.0, 1.0]);
        assert_eq!(m.row(2), &[3.0, 1.0, 0.0]);
        assert_eq!(m.y, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn split_and_rmse() {
        let m = DataMatrix::from_relation(&rel(), &["u"], &[], "y").unwrap();
        let (train, test) = m.split(1.0 / 3.0);
        assert_eq!(train.rows(), 2);
        assert_eq!(test.rows(), 1);
        // Perfect model y = 10u: rmse 0.
        assert!(m.rmse(&[10.0], 0.0) < 1e-12);
        assert!(m.rmse(&[0.0], 0.0) > 1.0);
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(DataMatrix::from_relation(&rel(), &["nope"], &[], "y").is_err());
    }
}
