//! # fdb-ml
//!
//! Machine learning over relational data (paper §1.3, §2): every model
//! consumes *sufficient statistics* computed in-database by `fdb-core`
//! (LMFAO) instead of a materialized data matrix — plus the
//! structure-agnostic baselines the paper compares against.
//!
//! * [`linreg`] — ridge linear regression over the covariance matrix:
//!   batch gradient descent (50 ms retrains, Figure 3) and the closed-form
//!   Cholesky solution; model selection over feature subsets reuses one
//!   covariance matrix (§1.5).
//! * [`sgd`] — the structure-agnostic baseline: one-epoch mini-batch SGD
//!   over the materialized, shuffled data matrix (the TensorFlow stand-in).
//! * [`tree`] — CART decision trees (regression + classification) trained
//!   fully in-database: each node's costs come from one LMFAO batch with
//!   conjunctive path filters (§2.2).
//! * [`kmeans`] — Lloyd's algorithm and the Rk-means-style grid coreset
//!   (§3.3) with constant-factor approximation tests.
//! * [`svm`] — linear SVM by hinge-loss subgradient descent; the additive
//!   inequality fast path lives in `fdb-ineq` (§2.3).
//! * [`pca`] — principal components by power iteration over the covariance
//!   matrix (§2.1).
//! * [`fm`] — degree-2 factorization machines (SGD).
//! * [`chowliu`] — mutual information and Chow-Liu trees from the
//!   mutual-information batch (Figure 5 workload).
//! * [`fd`] — functional-dependency detection and model reparameterization
//!   (§3.2): train fewer parameters, recover the original model.
//! * [`reuse`] — per-training view-cache reuse accounting: iterative
//!   trainers (CART, BGD retrains, Rk-means grid statistics) report how
//!   many views the engine served from the cross-batch cache vs rescanned.
//! * [`online`] — continuous learning over dynamic data: [`OnlineRidge`]
//!   keeps a ridge model fresh under `Delta` streams by refitting from a
//!   `MaintainableEngine`'s maintained covariance aggregates — a `d×d`
//!   solve per update batch, no retraining scan.

pub mod chowliu;
pub mod fd;
pub mod fm;
pub mod kmeans;
pub mod linalg;
pub mod linreg;
pub mod matrix;
pub mod online;
pub mod pca;
pub mod reuse;
pub mod sgd;
pub mod svm;
pub mod tree;

pub use linreg::LinearRegression;
pub use matrix::DataMatrix;
pub use online::OnlineRidge;
pub use reuse::ViewReuse;
pub use tree::DecisionTree;
