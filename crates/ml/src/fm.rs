//! Degree-2 factorization machines (Rendle; paper §2.1 lists their
//! in-database aggregates alongside polynomial regression).
//!
//! `ŷ(x) = w0 + Σ wᵢxᵢ + Σ_{i<j} ⟨vᵢ, vⱼ⟩ xᵢxⱼ`, computed with the
//! `O(d·k)` reformulation. Training here is SGD over the data matrix — the
//! structure-agnostic path; the paper's structure-aware FM training reuses
//! the same sparse-tensor aggregates as polynomial regression.

use crate::matrix::DataMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct FmConfig {
    /// Latent dimension.
    pub k: usize,
    /// Learning rate.
    pub lr: f64,
    /// Epochs.
    pub epochs: usize,
    /// L2 regularization.
    pub l2: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for FmConfig {
    fn default() -> Self {
        Self { k: 4, lr: 0.02, epochs: 60, l2: 1e-4, seed: 0xF1 }
    }
}

/// A trained degree-2 factorization machine.
#[derive(Debug, Clone)]
pub struct FactorizationMachine {
    /// Global bias.
    pub w0: f64,
    /// Linear weights.
    pub w: Vec<f64>,
    /// Latent factors, row-major `dim × k`.
    pub v: Vec<f64>,
    /// Latent dimension.
    pub k: usize,
}

impl FactorizationMachine {
    /// Predicts with the `O(d·k)` sum-of-squares trick.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let d = x.len();
        let mut y = self.w0;
        for i in 0..d {
            y += self.w[i] * x[i];
        }
        for f in 0..self.k {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for i in 0..d {
                let t = self.v[i * self.k + f] * x[i];
                s += t;
                s2 += t * t;
            }
            y += 0.5 * (s * s - s2);
        }
        y
    }

    /// Trains by SGD on the matrix.
    pub fn fit(m: &DataMatrix, cfg: &FmConfig) -> FactorizationMachine {
        let d = m.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut fm = FactorizationMachine {
            w0: 0.0,
            w: vec![0.0; d],
            v: (0..d * cfg.k).map(|_| rng.gen_range(-0.05..0.05)).collect(),
            k: cfg.k,
        };
        for _ in 0..cfg.epochs {
            for r in 0..m.rows() {
                let x = m.row(r);
                // Cache the per-factor sums.
                let sums: Vec<f64> =
                    (0..cfg.k).map(|f| (0..d).map(|i| fm.v[i * cfg.k + f] * x[i]).sum()).collect();
                let err = fm.predict(x) - m.y[r];
                fm.w0 -= cfg.lr * err;
                for i in 0..d {
                    if x[i] == 0.0 {
                        continue;
                    }
                    fm.w[i] -= cfg.lr * (err * x[i] + cfg.l2 * fm.w[i]);
                    for f in 0..cfg.k {
                        let vif = fm.v[i * cfg.k + f];
                        let grad = err * x[i] * (sums[f] - vif * x[i]) + cfg.l2 * vif;
                        fm.v[i * cfg.k + f] -= cfg.lr * grad;
                    }
                }
            }
        }
        fm
    }

    /// RMSE on a matrix.
    pub fn rmse(&self, m: &DataMatrix) -> f64 {
        if m.rows() == 0 {
            return 0.0;
        }
        let se: f64 = (0..m.rows()).map(|r| (self.predict(m.row(r)) - m.y[r]).powi(2)).sum();
        (se / m.rows() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::{train_linear_sgd, SgdConfig};
    use fdb_data::{AttrType, Relation, Schema, Value};

    /// y = x0 * x1 — a pure interaction no linear model can fit.
    fn interaction_data(n: usize) -> DataMatrix {
        let mut rel = Relation::new(Schema::of(&[
            ("a", AttrType::Double),
            ("b", AttrType::Double),
            ("y", AttrType::Double),
        ]));
        for i in 0..n {
            let a = ((i * 13) % 7) as f64 / 3.0 - 1.0;
            let b = ((i * 29) % 11) as f64 / 5.0 - 1.0;
            rel.push_row(&[Value::F64(a), Value::F64(b), Value::F64(a * b)]).unwrap();
        }
        DataMatrix::from_relation(&rel, &["a", "b"], &[], "y").unwrap()
    }

    #[test]
    fn fm_learns_multiplicative_interaction_linear_cannot() {
        let m = interaction_data(600);
        let fm = FactorizationMachine::fit(&m, &FmConfig { epochs: 150, ..Default::default() });
        let fm_rmse = fm.rmse(&m);
        let lin = train_linear_sgd(&m, &SgdConfig { epochs: 100, ..Default::default() });
        let lin_rmse = m.rmse(&lin.weights, lin.intercept);
        assert!(fm_rmse < 0.5 * lin_rmse, "FM rmse {fm_rmse} must beat linear rmse {lin_rmse}");
    }

    #[test]
    fn predict_matches_explicit_pairwise_formula() {
        let fm = FactorizationMachine {
            w0: 0.5,
            w: vec![1.0, -2.0],
            v: vec![0.3, 0.1, -0.2, 0.4], // 2 features × k=2
            k: 2,
        };
        let x = [2.0, 3.0];
        let explicit = 0.5 + 1.0 * 2.0 - 2.0 * 3.0 + (0.3 * -0.2 + 0.1 * 0.4) * 2.0 * 3.0;
        assert!((fm.predict(&x) - explicit).abs() < 1e-12);
    }
}
