//! Mutual information and Chow-Liu trees (the "Mutual inf." workload of
//! Figure 5): pairwise MI between categorical attributes computed from the
//! mutual-information aggregate batch, and the maximum spanning tree over
//! MI as the best tree-structured graphical model.

use fdb_core::SufficientStats;

/// The pairwise mutual information `I(X_k; X_l)` (in nats) from the
/// sparse joint and marginal counts of `stats`.
pub fn mutual_information(stats: &SufficientStats, k: usize, l: usize) -> f64 {
    let n = stats.count;
    if n <= 0.0 {
        return 0.0;
    }
    let (a, b, swap) = if k < l { (k, l, false) } else { (l, k, true) };
    let Some(joint) = stats.cat_pair_counts.get(&(a, b)) else {
        return 0.0;
    };
    let mut mi = 0.0;
    for (&(ca, cb), &njoint) in joint {
        let (ck, cl) = if swap { (cb, ca) } else { (ca, cb) };
        let pk = stats.cat_counts[k].get(&ck).copied().unwrap_or(0.0) / n;
        let pl = stats.cat_counts[l].get(&cl).copied().unwrap_or(0.0) / n;
        let pkl = njoint / n;
        if pkl > 0.0 && pk > 0.0 && pl > 0.0 {
            mi += pkl * (pkl / (pk * pl)).ln();
        }
    }
    mi.max(0.0)
}

/// A Chow-Liu tree: edges `(k, l, MI)` of the maximum spanning tree over
/// the categorical attributes' pairwise mutual information (Kruskal).
pub fn chow_liu_tree(stats: &SufficientStats) -> Vec<(usize, usize, f64)> {
    let m = stats.cat.len();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for k in 0..m {
        for l in k + 1..m {
            edges.push((k, l, mutual_information(stats, k, l)));
        }
    }
    edges.sort_by(|a, b| b.2.total_cmp(&a.2));
    // Union-find.
    let mut parent: Vec<usize> = (0..m).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let mut tree = Vec::with_capacity(m.saturating_sub(1));
    for (k, l, w) in edges {
        let (rk, rl) = (find(&mut parent, k), find(&mut parent, l));
        if rk != rl {
            parent[rk] = rl;
            tree.push((k, l, w));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Stats over three binary attributes where X0 = X1 (perfectly
    /// dependent) and X2 is independent noise. 100 tuples, half per value.
    fn stats() -> SufficientStats {
        let mut cat_counts = vec![HashMap::new(), HashMap::new(), HashMap::new()];
        for m in cat_counts.iter_mut() {
            m.insert(0i64, 50.0);
            m.insert(1i64, 50.0);
        }
        let mut pair01 = HashMap::new();
        pair01.insert((0i64, 0i64), 50.0);
        pair01.insert((1i64, 1i64), 50.0);
        let mut pair_ind = HashMap::new();
        for a in 0..2i64 {
            for b in 0..2i64 {
                pair_ind.insert((a, b), 25.0);
            }
        }
        let mut cat_pair_counts = HashMap::new();
        cat_pair_counts.insert((0, 1), pair01);
        cat_pair_counts.insert((0, 2), pair_ind.clone());
        cat_pair_counts.insert((1, 2), pair_ind);
        SufficientStats {
            cont: vec!["y".into()],
            cat: vec!["x0".into(), "x1".into(), "x2".into()],
            count: 100.0,
            sum: vec![0.0],
            q: vec![0.0],
            cat_counts,
            cat_cont_sums: vec![vec![HashMap::new()], vec![HashMap::new()], vec![HashMap::new()]],
            cat_pair_counts,
        }
    }

    #[test]
    fn mi_of_identical_attrs_is_ln2() {
        let s = stats();
        let mi = mutual_information(&s, 0, 1);
        assert!((mi - (2.0f64).ln()).abs() < 1e-9, "MI = {mi}");
        // Symmetric.
        assert!((mutual_information(&s, 1, 0) - mi).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_attrs_is_zero() {
        let s = stats();
        assert!(mutual_information(&s, 0, 2).abs() < 1e-9);
    }

    #[test]
    fn chow_liu_picks_the_dependent_edge_first() {
        let s = stats();
        let tree = chow_liu_tree(&s);
        assert_eq!(tree.len(), 2); // spanning tree over 3 nodes
        assert_eq!((tree[0].0, tree[0].1), (0, 1));
    }
}
