//! k-means: Lloyd's algorithm over (weighted) points and the Rk-means-style
//! grid coreset (§3.3, Curtin et al., AISTATS 2020).
//!
//! Rk-means clusters a *coreset* instead of the full feature extraction
//! result: each dimension is quantized into `g` bins, points collapse into
//! weighted grid cells, and weighted k-means over the (few) cells gives a
//! constant-factor approximation of the k-means objective over the full
//! data — at a cost that depends on the number of distinct cells, not the
//! join size.

use crate::matrix::DataMatrix;
use crate::reuse::ViewReuse;
use fdb_core::{kmeans_batch, AggQuery, Engine};
use fdb_data::{DataError, Database};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A clustering result.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centers.
    pub centers: Vec<Vec<f64>>,
    /// Weighted sum of squared distances to the nearest center.
    pub cost: f64,
    /// Lloyd iterations run.
    pub iterations: usize,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest(centers: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let d = dist2(c, p);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// The weighted k-means cost of `centers` on `(points, weights)`.
pub fn cost(points: &[Vec<f64>], weights: &[f64], centers: &[Vec<f64>]) -> f64 {
    points.iter().zip(weights).map(|(p, w)| w * nearest(centers, p).1).sum()
}

/// Weighted Lloyd's algorithm with k-means++ seeding.
pub fn lloyd(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    max_iters: usize,
    seed: u64,
) -> KMeansResult {
    assert_eq!(points.len(), weights.len());
    if points.is_empty() || k == 0 {
        return KMeansResult { centers: vec![], cost: 0.0, iterations: 0 };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.min(points.len());
    // k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    while centers.len() < k {
        let d2: Vec<f64> =
            points.iter().zip(weights).map(|(p, w)| w * nearest(&centers, p).1).collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            centers.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut pick = 0;
        for (i, d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                pick = i;
                break;
            }
        }
        centers.push(points[pick].clone());
    }
    let dim = points[0].len();
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0.0; k];
        for (p, w) in points.iter().zip(weights) {
            let (c, _) = nearest(&centers, p);
            counts[c] += w;
            for (s, x) in sums[c].iter_mut().zip(p) {
                *s += w * x;
            }
        }
        let mut moved = 0.0f64;
        for c in 0..k {
            if counts[c] > 0.0 {
                let newc: Vec<f64> = sums[c].iter().map(|s| s / counts[c]).collect();
                moved += dist2(&centers[c], &newc);
                centers[c] = newc;
            }
        }
        if moved < 1e-12 {
            break;
        }
    }
    let total_cost = cost(points, weights, &centers);
    KMeansResult { centers, cost: total_cost, iterations }
}

/// Per-dimension statistics for the Rk-means grid, computed in-database:
/// the count, mean, and standard deviation of each continuous feature
/// over the feature extraction join ([`fdb_core::kmeans_batch`]).
#[derive(Debug, Clone)]
pub struct GridStats {
    /// `SUM(1)` over the join.
    pub count: f64,
    /// Per-feature mean.
    pub mean: Vec<f64>,
    /// Per-feature standard deviation.
    pub std: Vec<f64>,
}

/// Computes [`GridStats`] through any [`Engine`] backend without
/// materializing the join, returning the view-cache reuse observed: the
/// grid batch is issued once per clustering run (per `k`, per restart,
/// per bin count in model selection), and every run after the first over
/// an unchanged database is served entirely from the cross-batch cache.
pub fn grid_stats_indb(
    db: &Database,
    relations: &[&str],
    features: &[&str],
    engine: &dyn Engine,
) -> Result<(GridStats, ViewReuse), DataError> {
    let q = AggQuery::new(relations, kmeans_batch(features));
    let (res, reuse) = ViewReuse::measure(|| engine.run(db, &q));
    let res = res?;
    let count = res.scalar(0);
    let n = count.max(1.0);
    let mut mean = Vec::with_capacity(features.len());
    let mut std = Vec::with_capacity(features.len());
    for i in 0..features.len() {
        let m = res.scalar(1 + 2 * i) / n;
        let var = (res.scalar(2 + 2 * i) / n - m * m).max(0.0);
        mean.push(m);
        std.push(var.sqrt());
    }
    Ok((GridStats { count, mean, std }, reuse))
}

/// Equi-width variant of [`grid_coreset`]: each dimension is cut into
/// `bins` equal intervals spanning `mean ± 2σ` from in-database
/// [`GridStats`] — no per-dimension sort of the materialized matrix.
/// `stats` must align with the matrix dimensions (`stats.mean.len() ==
/// m.dim`). Returns `(cell centers, cell weights)`.
pub fn grid_coreset_equiwidth(
    m: &DataMatrix,
    bins: usize,
    stats: &GridStats,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = m.rows();
    let d = m.dim;
    if n == 0 || bins == 0 || stats.mean.len() != d {
        return (vec![], vec![]);
    }
    // Per-dimension bounds once, not once per row: `bins / width`, with a
    // degenerate (σ = 0) dimension collapsing to bin 0 via scale 0.
    let lo: Vec<f64> = (0..d).map(|j| stats.mean[j] - 2.0 * stats.std[j]).collect();
    let scale: Vec<f64> = (0..d)
        .map(|j| {
            let width = 4.0 * stats.std[j];
            if width > 0.0 {
                bins as f64 / width
            } else {
                0.0
            }
        })
        .collect();
    let cell_of = |j: usize, x: f64| -> u32 {
        ((x - lo[j]) * scale[j]).floor().clamp(0.0, bins as f64 - 1.0) as u32
    };
    let mut cells: HashMap<Vec<u32>, (Vec<f64>, f64)> = HashMap::new();
    for r in 0..n {
        let row = m.row(r);
        let key: Vec<u32> = (0..d).map(|j| cell_of(j, row[j])).collect();
        let entry = cells.entry(key).or_insert_with(|| (vec![0.0; d], 0.0));
        for (s, x) in entry.0.iter_mut().zip(row) {
            *s += x;
        }
        entry.1 += 1.0;
    }
    let mut centers = Vec::with_capacity(cells.len());
    let mut weights = Vec::with_capacity(cells.len());
    for (_, (sum, w)) in cells {
        centers.push(sum.iter().map(|s| s / w).collect());
        weights.push(w);
    }
    (centers, weights)
}

/// Quantizes each dimension into `bins` equi-quantile bins and collapses
/// the rows into weighted grid-cell representatives — the Rk-means coreset.
/// Returns `(cell centers, cell weights)`.
pub fn grid_coreset(m: &DataMatrix, bins: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = m.rows();
    let d = m.dim;
    if n == 0 || bins == 0 {
        return (vec![], vec![]);
    }
    // Per-dimension quantile boundaries.
    let mut bounds: Vec<Vec<f64>> = Vec::with_capacity(d);
    for j in 0..d {
        let mut col: Vec<f64> = (0..n).map(|r| m.row(r)[j]).collect();
        col.sort_by(f64::total_cmp);
        let mut bs = Vec::with_capacity(bins.saturating_sub(1));
        for b in 1..bins {
            bs.push(col[(b * n / bins).min(n - 1)]);
        }
        bounds.push(bs);
    }
    // Assign rows to cells; cell representative = mean of members.
    let mut cells: HashMap<Vec<u32>, (Vec<f64>, f64)> = HashMap::new();
    for r in 0..n {
        let row = m.row(r);
        let key: Vec<u32> =
            (0..d).map(|j| bounds[j].partition_point(|&b| b <= row[j]) as u32).collect();
        let entry = cells.entry(key).or_insert_with(|| (vec![0.0; d], 0.0));
        for (s, x) in entry.0.iter_mut().zip(row) {
            *s += x;
        }
        entry.1 += 1.0;
    }
    let mut centers = Vec::with_capacity(cells.len());
    let mut weights = Vec::with_capacity(cells.len());
    for (_, (sum, w)) in cells {
        centers.push(sum.iter().map(|s| s / w).collect());
        weights.push(w);
    }
    (centers, weights)
}

/// Rk-means: weighted k-means over the grid coreset.
pub fn rk_means(
    m: &DataMatrix,
    k: usize,
    bins: usize,
    max_iters: usize,
    seed: u64,
) -> KMeansResult {
    let (cells, weights) = grid_coreset(m, bins);
    let mut res = lloyd(&cells, &weights, k, max_iters, seed);
    // Report the cost on the FULL data (that is the objective the
    // approximation guarantee speaks about).
    let points: Vec<Vec<f64>> = (0..m.rows()).map(|r| m.row(r).to_vec()).collect();
    let ones = vec![1.0; points.len()];
    res.cost = cost(&points, &ones, &res.centers);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Relation, Schema, Value};

    /// Three well-separated blobs in 2-d.
    fn blobs() -> DataMatrix {
        let mut rel = Relation::new(Schema::of(&[
            ("x", AttrType::Double),
            ("y", AttrType::Double),
            ("resp", AttrType::Double),
        ]));
        let mut push = |cx: f64, cy: f64, n: usize, phase: usize| {
            for i in 0..n {
                let dx = ((i * 37 + phase) % 11) as f64 / 11.0 - 0.5;
                let dy = ((i * 53 + phase) % 13) as f64 / 13.0 - 0.5;
                rel.push_row(&[Value::F64(cx + dx), Value::F64(cy + dy), Value::F64(0.0)]).unwrap();
            }
        };
        push(0.0, 0.0, 60, 0);
        push(10.0, 0.0, 60, 1);
        push(0.0, 10.0, 60, 2);
        DataMatrix::from_relation(&rel, &["x", "y"], &[], "resp").unwrap()
    }

    #[test]
    fn lloyd_finds_blobs() {
        let m = blobs();
        let points: Vec<Vec<f64>> = (0..m.rows()).map(|r| m.row(r).to_vec()).collect();
        let w = vec![1.0; points.len()];
        let res = lloyd(&points, &w, 3, 100, 7);
        assert_eq!(res.centers.len(), 3);
        // Every blob center must be near one cluster center.
        for blob in [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]] {
            let (_, d) = nearest(&res.centers, &blob);
            assert!(d < 1.0, "blob {blob:?} at distance {d}");
        }
    }

    #[test]
    fn rk_means_is_constant_factor_of_full_kmeans() {
        let m = blobs();
        let points: Vec<Vec<f64>> = (0..m.rows()).map(|r| m.row(r).to_vec()).collect();
        let w = vec![1.0; points.len()];
        let full = lloyd(&points, &w, 3, 100, 7);
        let rk = rk_means(&m, 3, 6, 100, 7);
        assert!(rk.cost <= 3.0 * full.cost.max(1e-9), "rk cost {} vs full {}", rk.cost, full.cost);
    }

    #[test]
    fn coreset_is_smaller_than_data() {
        let m = blobs();
        let (cells, weights) = grid_coreset(&m, 4);
        assert!(cells.len() < m.rows());
        assert!((weights.iter().sum::<f64>() - m.rows() as f64).abs() < 1e-9);
    }

    #[test]
    fn indb_grid_stats_reuse_across_clustering_runs() {
        // The blobs relation as a single-node "join": the grid batch runs
        // through the engine, and repeated clustering runs (restarts,
        // model selection over k) are served from the view cache.
        let mut rel = Relation::new(Schema::of(&[
            ("x", AttrType::Double),
            ("y", AttrType::Double),
            ("resp", AttrType::Double),
        ]));
        for i in 0..50 {
            let x = (i % 7) as f64;
            let y = (i % 5) as f64;
            rel.push_row(&[Value::F64(x), Value::F64(y), Value::F64(0.0)]).unwrap();
        }
        let mut db = fdb_data::Database::new();
        db.add("R", rel);
        let engine = fdb_core::LmfaoEngine::with_config(fdb_core::EngineConfig {
            threads: 1,
            ..Default::default()
        });
        let cache = fdb_core::ViewCache::global();
        let scans = || cache.stats_for_id(db.get("R").unwrap().data_id()).1;
        let (s1, _) = grid_stats_indb(&db, &["R"], &["x", "y"], &engine).unwrap();
        assert_eq!(s1.count, 50.0);
        assert!((s1.mean[0] - 3.0).abs() < 0.2, "mean of i % 7 near 3");
        let cold = scans();
        assert!(cold > 0);
        let (s2, reuse) = grid_stats_indb(&db, &["R"], &["x", "y"], &engine).unwrap();
        assert_eq!(scans(), cold, "second clustering run rescans nothing");
        assert!(reuse.views_reused > 0);
        assert_eq!(s1.mean, s2.mean);
        // The equi-width coreset built on those bounds behaves like the
        // quantile one: weights partition the data, cells ≤ data.
        let m = DataMatrix::from_relation(db.get("R").unwrap(), &["x", "y"], &[], "resp").unwrap();
        let (cells, weights) = grid_coreset_equiwidth(&m, 4, &s1);
        assert!(!cells.is_empty() && cells.len() < m.rows());
        assert!((weights.iter().sum::<f64>() - m.rows() as f64).abs() < 1e-9);
        // Misaligned stats are rejected, not mis-binned.
        let (none, _) = grid_coreset_equiwidth(
            &m,
            4,
            &GridStats { count: 0.0, mean: vec![0.0], std: vec![1.0] },
        );
        assert!(none.is_empty());
    }

    #[test]
    fn degenerate_inputs() {
        let res = lloyd(&[], &[], 3, 10, 0);
        assert!(res.centers.is_empty());
        let m = blobs();
        let (c, _) = grid_coreset(&m, 0);
        assert!(c.is_empty());
        // k larger than the point count clamps.
        let points = vec![vec![1.0], vec![2.0]];
        let res = lloyd(&points, &[1.0, 1.0], 5, 10, 0);
        assert!(res.centers.len() <= 2);
    }
}
