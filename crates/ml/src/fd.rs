//! Functional dependencies and model reparameterization (§3.2).
//!
//! If `city → country` holds, a linear model with one-hot parameters for
//! both attributes is over-parameterized: the pair `(θ_city, θ_country)`
//! can be replaced by one composite parameter
//! `θ'_city = θ_city + θ_country(country(city))`, trained with fewer
//! parameters, and mapped back — predictions are identical on every tuple
//! satisfying the dependency.

use fdb_data::{DataError, Relation};
use std::collections::HashMap;

/// Detects whether `det → dep` holds exactly in `rel` (both attributes
/// must be int-backed). Returns the witness mapping if it holds.
pub fn check_fd(
    rel: &Relation,
    det: &str,
    dep: &str,
) -> Result<Option<HashMap<i64, i64>>, DataError> {
    let d = rel.schema().require(det)?;
    let e = rel.schema().require(dep)?;
    let mut map: HashMap<i64, i64> = HashMap::new();
    for r in 0..rel.len() {
        let k = rel.value(r, d).as_int();
        let v = rel.value(r, e).as_int();
        match map.get(&k) {
            Some(&prev) if prev != v => return Ok(None),
            Some(_) => {}
            None => {
                map.insert(k, v);
            }
        }
    }
    Ok(Some(map))
}

/// Scans all ordered pairs of the given int-backed attributes for exact
/// functional dependencies. Returns `(det, dep)` names.
pub fn detect_fds(rel: &Relation, attrs: &[&str]) -> Result<Vec<(String, String)>, DataError> {
    let mut out = Vec::new();
    for &a in attrs {
        for &b in attrs {
            if a != b && check_fd(rel, a, b)?.is_some() {
                out.push((a.to_string(), b.to_string()));
            }
        }
    }
    Ok(out)
}

/// Folds the `dep` one-hot block of a linear model into the `det` block
/// using the FD mapping: `θ'_det[a] = θ_det[a] + θ_dep[f(a)]`. Given the
/// model's labels (in `attr=code` form), returns the reparameterized
/// `(labels, weights)` with the `dep` block removed.
pub fn fold_parameters(
    labels: &[String],
    weights: &[f64],
    det: &str,
    dep: &str,
    mapping: &HashMap<i64, i64>,
) -> (Vec<String>, Vec<f64>) {
    let dep_prefix = format!("{dep}=");
    let det_prefix = format!("{det}=");
    // Collect dep weights by code.
    let mut dep_w: HashMap<i64, f64> = HashMap::new();
    for (l, w) in labels.iter().zip(weights) {
        if let Some(code) = l.strip_prefix(&dep_prefix) {
            if let Ok(c) = code.parse::<i64>() {
                dep_w.insert(c, *w);
            }
        }
    }
    let mut out_labels = Vec::new();
    let mut out_weights = Vec::new();
    for (l, w) in labels.iter().zip(weights) {
        if l.starts_with(&dep_prefix) {
            continue; // folded away
        }
        let mut w = *w;
        if let Some(code) = l.strip_prefix(&det_prefix) {
            if let Ok(a) = code.parse::<i64>() {
                if let Some(&b) = mapping.get(&a) {
                    w += dep_w.get(&b).copied().unwrap_or(0.0);
                }
            }
        }
        out_labels.push(l.clone());
        out_weights.push(w);
    }
    (out_labels, out_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DataMatrix;
    use fdb_data::{AttrType, Schema, Value};

    /// city (0..4) determines country (city / 2); y depends on both.
    fn rel() -> Relation {
        let mut rel = Relation::new(Schema::of(&[
            ("city", AttrType::Categorical),
            ("country", AttrType::Categorical),
            ("u", AttrType::Double),
            ("y", AttrType::Double),
        ]));
        for i in 0..40 {
            let city = (i % 4) as i64;
            let country = city / 2;
            let u = (i % 7) as f64;
            let y = 2.0 * u + 3.0 * city as f64 + 10.0 * country as f64;
            rel.push_row(&[Value::Int(city), Value::Int(country), Value::F64(u), Value::F64(y)])
                .unwrap();
        }
        rel
    }

    #[test]
    fn fd_detection() {
        let r = rel();
        let fds = detect_fds(&r, &["city", "country"]).unwrap();
        assert!(fds.contains(&("city".to_string(), "country".to_string())));
        // country does NOT determine city.
        assert!(!fds.contains(&("country".to_string(), "city".to_string())));
    }

    #[test]
    fn fd_violated_returns_none() {
        let mut r = rel();
        r.push_row(&[Value::Int(0), Value::Int(1), Value::F64(0.0), Value::F64(0.0)]).unwrap();
        assert!(check_fd(&r, "city", "country").unwrap().is_none());
    }

    #[test]
    fn folded_model_predicts_identically() {
        let r = rel();
        let m = DataMatrix::from_relation(&r, &["u"], &["city", "country"], "y").unwrap();
        // A hand-set model with weights on both blocks.
        let weights: Vec<f64> = (0..m.dim).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let mapping = check_fd(&r, "city", "country").unwrap().unwrap();
        let (labels2, weights2) = fold_parameters(&m.labels, &weights, "city", "country", &mapping);
        assert!(labels2.len() < m.labels.len(), "parameters must shrink");
        // Predictions agree on every (FD-satisfying) row.
        for row in 0..m.rows() {
            let x = m.row(row);
            let full: f64 = x.iter().zip(&weights).map(|(a, b)| a * b).sum();
            let folded: f64 = labels2
                .iter()
                .zip(&weights2)
                .map(|(l, w)| {
                    let pos = m.labels.iter().position(|ml| ml == l).expect("kept label");
                    x[pos] * w
                })
                .sum();
            assert!((full - folded).abs() < 1e-9, "row {row}: {full} vs {folded}");
        }
    }
}
