//! Principal component analysis over sufficient statistics (§2.1).
//!
//! The covariance matrix `Σ = Q/N − μμᵀ` comes straight from the
//! in-database statistics; the top-k eigenpairs are extracted by power
//! iteration with deflation — no data matrix required.

use crate::linalg::{dot, power_iteration};
use fdb_core::SufficientStats;

/// A PCA result: `components[i]` is the i-th principal direction with
/// explained variance `eigenvalues[i]`.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Principal directions (unit vectors), strongest first.
    pub components: Vec<Vec<f64>>,
    /// Corresponding eigenvalues (variances).
    pub eigenvalues: Vec<f64>,
    /// Feature means.
    pub mean: Vec<f64>,
}

/// Runs PCA on the continuous features of `stats` (response included if
/// desired by the caller's choice of feature list when computing stats).
pub fn pca(stats: &SufficientStats, k: usize, iters: usize) -> Pca {
    let n = stats.n_cont();
    let count = stats.count.max(1.0);
    let mean: Vec<f64> = stats.sum.iter().map(|s| s / count).collect();
    // Dense covariance matrix.
    let mut cov = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            cov[i * n + j] = stats.moment(i, j) / count - mean[i] * mean[j];
        }
    }
    let mut components = Vec::with_capacity(k);
    let mut eigenvalues = Vec::with_capacity(k);
    for c in 0..k.min(n) {
        let (lambda, v) = power_iteration(&cov, n, iters, 1000 + c as u64);
        if lambda.abs() < 1e-12 {
            break;
        }
        // Deflate: cov -= λ v vᵀ.
        for i in 0..n {
            for j in 0..n {
                cov[i * n + j] -= lambda * v[i] * v[j];
            }
        }
        components.push(v);
        eigenvalues.push(lambda);
    }
    Pca { components, eigenvalues, mean }
}

impl Pca {
    /// Projects a (raw) feature vector onto the top components.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        self.components.iter().map(|c| dot(c, &centered)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Builds stats for a planted 2-d dataset stretched along (1, 1).
    fn planted_stats() -> SufficientStats {
        let mut count = 0.0;
        let mut sum = vec![0.0; 2];
        let mut q = vec![0.0; 3];
        for i in 0..500 {
            let t = (i as f64 / 500.0 - 0.5) * 10.0; // main direction
            let o = ((i * 7) % 11) as f64 / 11.0 - 0.5; // small orthogonal noise
            let x = [t + o, t - o];
            count += 1.0;
            for a in 0..2 {
                sum[a] += x[a];
                for b in 0..=a {
                    q[a * (a + 1) / 2 + b] += x[a] * x[b];
                }
            }
        }
        SufficientStats {
            cont: vec!["x0".into(), "x1".into()],
            cat: vec![],
            count,
            sum,
            q,
            cat_counts: vec![],
            cat_cont_sums: vec![],
            cat_pair_counts: HashMap::new(),
        }
    }

    #[test]
    fn finds_planted_direction() {
        let stats = planted_stats();
        let p = pca(&stats, 2, 300);
        assert_eq!(p.components.len(), 2);
        // First component ∝ (1, 1)/√2.
        let c = &p.components[0];
        let alignment = (c[0] * c[1]).signum();
        assert!(alignment > 0.0, "components {:?}", c);
        assert!((c[0].abs() - (0.5f64).sqrt()).abs() < 0.05);
        assert!(p.eigenvalues[0] > 5.0 * p.eigenvalues[1]);
        // Eigenvalues are ordered.
        assert!(p.eigenvalues[0] >= p.eigenvalues[1]);
    }

    #[test]
    fn projection_is_centered() {
        let stats = planted_stats();
        let p = pca(&stats, 1, 200);
        let proj = p.project(&p.mean.clone());
        assert!(proj[0].abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_dim_clamps() {
        let stats = planted_stats();
        let p = pca(&stats, 10, 100);
        assert!(p.components.len() <= 2);
    }
}
