//! Small dense linear algebra: just enough for normal equations, PCA, and
//! friends. Matrices are row-major `Vec<f64>`.

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y = A x` for row-major `A` (`n×n`).
pub fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
    (0..n).map(|i| dot(&a[i * n..(i + 1) * n], x)).collect()
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Solves `A x = b` for symmetric positive-definite `A` (row-major `n×n`)
/// by Cholesky decomposition. Returns `None` if `A` is not SPD (e.g. a
/// singular covariance matrix — callers add ridge regularization).
pub fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    // L lower-triangular with A = L Lᵀ.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * z[k];
        }
        z[i] = s / l[i * n + i];
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    Some(x)
}

/// The dominant eigenpair of symmetric `A` by power iteration.
pub fn power_iteration(a: &[f64], n: usize, iters: usize, seed: u64) -> (f64, Vec<f64>) {
    // Deterministic pseudo-random start vector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    if norm(&v) == 0.0 {
        v[0] = 1.0;
    }
    let mut lambda = 0.0;
    for _ in 0..iters {
        let w = matvec(a, &v, n);
        let nw = norm(&w);
        if nw == 0.0 {
            return (0.0, v);
        }
        v = w.iter().map(|x| x / nw).collect();
        lambda = dot(&v, &matvec(a, &v, n));
    }
    (lambda, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4, 2], [2, 3]], b = [8, 7] -> x = [1.25, 1.5]
        let a = [4.0, 2.0, 2.0, 3.0];
        let b = [8.0, 7.0];
        let x = cholesky_solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_singular() {
        let a = [1.0, 1.0, 1.0, 1.0]; // rank 1
        assert!(cholesky_solve(&a, &[1.0, 1.0], 2).is_none());
    }

    #[test]
    fn power_iteration_finds_dominant_eigenpair() {
        // diag(5, 1): eigenvalue 5, eigenvector e1.
        let a = [5.0, 0.0, 0.0, 1.0];
        let (lambda, v) = power_iteration(&a, 2, 200, 3);
        assert!((lambda - 5.0).abs() < 1e-9);
        assert!(v[0].abs() > 0.999);
    }

    proptest! {
        #[test]
        fn cholesky_inverts_spd_matrices(
            vals in proptest::collection::vec(-3.0f64..3.0, 9),
            b in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            // Build SPD A = M Mᵀ + I.
            let n = 3;
            let mut a = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut s = 0.0;
                    for k in 0..n {
                        s += vals[i * n + k] * vals[j * n + k];
                    }
                    a[i * n + j] = s + if i == j { 1.0 } else { 0.0 };
                }
            }
            let x = cholesky_solve(&a, &b, n).expect("SPD");
            let back = matvec(&a, &x, n);
            for i in 0..n {
                prop_assert!((back[i] - b[i]).abs() < 1e-6);
            }
        }
    }
}
