//! Continuous learning over dynamic relational data: a ridge model kept
//! fresh under [`Delta`] streams ("Machine Learning over Static and
//! Dynamic Relational Data", Kara et al.; paper §1.5 "keeping models
//! fresh").
//!
//! [`OnlineRidge`] pairs a [`MaintainableEngine`] with the covariance
//! aggregate batch of its feature set: `new` pays the one-shot
//! `prepare` cost; every [`OnlineRidge::apply_delta`] folds an update
//! batch into the engine's maintained state (cheap delta propagation —
//! for the LMFAO backend, only the owner→root path of the view tree;
//! for F-IVM, pure ring maintenance) and caches the refreshed
//! aggregates. [`OnlineRidge::model`] then refits from those maintained
//! *cogroup* statistics alone — a `d×d` Cholesky solve, no data access —
//! so training cost after an update is independent of both the database
//! size and the delta history.

use crate::linreg::{LinearRegression, RidgeConfig};
use fdb_core::{
    covariance_batch, stats_from_result, AggQuery, BatchResult, MaintState, MaintainableEngine,
    SufficientStats,
};
use fdb_data::{DataError, Database, Delta};

/// A ridge regression kept fresh under deltas via a maintained
/// covariance batch.
pub struct OnlineRidge {
    engine: Box<dyn MaintainableEngine>,
    state: MaintState,
    continuous: Vec<String>,
    categorical: Vec<String>,
    cfg: RidgeConfig,
    /// The maintained covariance aggregates after the last delta.
    last: BatchResult,
}

impl OnlineRidge {
    /// Prepares the maintained covariance batch over the natural join of
    /// `relations`. `continuous` must list the response last;
    /// `categorical` features become sparse-tensor statistics. The
    /// catalog may be empty (streaming from zero) — [`OnlineRidge::model`]
    /// errors until the join is non-empty, then succeeds.
    pub fn new(
        db: &Database,
        relations: &[&str],
        continuous: &[&str],
        categorical: &[&str],
        engine: Box<dyn MaintainableEngine>,
        cfg: RidgeConfig,
    ) -> Result<Self, DataError> {
        let q = AggQuery::new(relations, covariance_batch(continuous, categorical));
        let mut state = engine.prepare(db, &q)?;
        let last = engine.eval(&mut state)?;
        Ok(Self {
            engine,
            state,
            continuous: continuous.iter().map(|s| s.to_string()).collect(),
            categorical: categorical.iter().map(|s| s.to_string()).collect(),
            cfg,
            last,
        })
    }

    /// Folds one delta batch into the maintained aggregates.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<(), DataError> {
        self.last = self.engine.apply_delta(&mut self.state, delta)?;
        Ok(())
    }

    /// `SUM(1)` over the maintained join — the training-set size.
    pub fn count(&self) -> f64 {
        self.last.scalar(0)
    }

    /// The maintained sufficient statistics (no data access).
    pub fn stats(&self) -> Result<SufficientStats, DataError> {
        let cont: Vec<&str> = self.continuous.iter().map(String::as_str).collect();
        let cat: Vec<&str> = self.categorical.iter().map(String::as_str).collect();
        stats_from_result(&self.last, &cont, &cat)
    }

    /// Refits the ridge model from the maintained statistics — the
    /// closed-form `d×d` solve, independent of data size and delta count.
    pub fn model(&self) -> Result<LinearRegression, DataError> {
        LinearRegression::fit_closed(&self.stats()?, &self.cfg)
    }

    /// The maintained database copy (reflects every applied delta).
    pub fn database(&self) -> &Database {
        self.state.database()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_core::{sufficient_stats, EngineConfig, LmfaoEngine};
    use fdb_datasets::{retailer, RetailerConfig};

    fn fact_insert(db: &Database) -> Delta {
        // Duplicate an existing Inventory row — stays within every
        // prepare-time range, so the LMFAO path maintains in place.
        Delta::insert("Inventory", db.get("Inventory").unwrap().row_vec(0))
    }

    #[test]
    fn maintained_model_equals_full_retrain_after_each_delta() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let cont = ["prize", "maxtemp", "inventoryunits"];
        let cat = ["rain"];
        let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let mut online =
            OnlineRidge::new(&ds.db, &rels, &cont, &cat, Box::new(engine), RidgeConfig::default())
                .unwrap();
        let mut shadow = ds.db.clone();
        for step in 0..3 {
            let d = fact_insert(&shadow);
            online.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
            let fresh = online.model().unwrap();
            // Ground truth: full retrain over the mutated database.
            let stats = sufficient_stats(&shadow, &rels, &cont, &cat, &engine).unwrap();
            let full = LinearRegression::fit_closed(&stats, &RidgeConfig::default()).unwrap();
            assert_eq!(fresh.labels, full.labels, "step {step}");
            for (a, b) in fresh.weights.iter().zip(&full.weights) {
                assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "step {step}: {a} vs {b}");
            }
            assert!(
                (fresh.intercept - full.intercept).abs() <= 1e-9 * (1.0 + full.intercept.abs()),
                "step {step}"
            );
        }
        assert_eq!(
            online.database().get("Inventory").unwrap().len(),
            shadow.get("Inventory").unwrap().len()
        );
    }

    #[test]
    fn empty_join_has_no_model_until_data_arrives() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        // Start from an empty fact: the join is empty, so no model.
        let mut empty = ds.db.clone();
        let schema = empty.get("Inventory").unwrap().schema().clone();
        empty.add("Inventory", fdb_data::Relation::new(schema));
        let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let mut online = OnlineRidge::new(
            &empty,
            &rels,
            &["prize", "inventoryunits"],
            &[],
            Box::new(engine),
            RidgeConfig::default(),
        )
        .unwrap();
        assert_eq!(online.count(), 0.0);
        assert!(online.model().is_err(), "no training data yet");
        // Stream the real fact rows back in; the model appears.
        let fact = ds.db.get("Inventory").unwrap();
        let mut d = Delta::new("Inventory");
        for r in 0..fact.len() {
            d.push_insert(fact.row_vec(r));
        }
        online.apply_delta(&d).unwrap();
        assert!(online.count() > 0.0);
        online.model().unwrap();
    }
}
