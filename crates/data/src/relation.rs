//! In-memory columnar relations.
//!
//! A [`Relation`] stores one typed [`Column`] per schema attribute. Integer
//! columns back `Int` and `Categorical` attributes; float columns back
//! `Double` attributes. Engines ask for typed slices ([`Relation::int_col`],
//! [`Relation::f64_col`]) in their hot loops — this is the "specialisation"
//! half of the paper's §4 toolbox, realised through Rust monomorphization
//! instead of C++ code generation.

use crate::error::DataError;
use crate::schema::{AttrType, Schema};
use crate::value::Value;
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counter behind [`Relation::data_id`]: every distinct relation
/// *content state* (fresh build, or any mutation of an existing relation)
/// gets a fresh id, never reused within the process.
static NEXT_DATA_ID: AtomicU64 = AtomicU64::new(1);

fn next_data_id() -> u64 {
    NEXT_DATA_ID.fetch_add(1, Ordering::Relaxed)
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Backing store for `Int` and `Categorical` attributes.
    Int(Vec<i64>),
    /// Backing store for `Double` attributes.
    F64(Vec<f64>),
}

impl Column {
    fn with_capacity(ty: AttrType, cap: usize) -> Self {
        if ty.is_int_backed() {
            Column::Int(Vec::with_capacity(cap))
        } else {
            Column::F64(Vec::with_capacity(cap))
        }
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::F64(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`.
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::F64(v) => Value::F64(v[row]),
        }
    }

    fn push(&mut self, v: Value, attr: &str) -> Result<()> {
        match (self, v) {
            (Column::Int(col), Value::Int(i)) => {
                col.push(i);
                Ok(())
            }
            (Column::F64(col), Value::F64(f)) => {
                col.push(f);
                Ok(())
            }
            (Column::Int(_), got) => Err(DataError::TypeMismatch {
                attribute: attr.to_string(),
                expected: "Int",
                got: format!("{got:?}"),
            }),
            (Column::F64(_), got) => Err(DataError::TypeMismatch {
                attribute: attr.to_string(),
                expected: "F64",
                got: format!("{got:?}"),
            }),
        }
    }

    fn gather(&self, perm: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(perm.iter().map(|&i| v[i]).collect()),
            Column::F64(v) => Column::F64(perm.iter().map(|&i| v[i]).collect()),
        }
    }

    fn truncate(&mut self, len: usize) {
        match self {
            Column::Int(v) => v.truncate(len),
            Column::F64(v) => v.truncate(len),
        }
    }

    fn slice(&self, range: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int(v) => Column::Int(v[range].to_vec()),
            Column::F64(v) => Column::F64(v[range].to_vec()),
        }
    }

    /// `(min, max)` of an integer column; `None` if empty or float-backed.
    pub fn int_min_max(&self) -> Option<(i64, i64)> {
        match self {
            Column::Int(v) => {
                let mut it = v.iter();
                let first = *it.next()?;
                Some(it.fold((first, first), |(lo, hi), &x| (lo.min(x), hi.max(x))))
            }
            Column::F64(_) => None,
        }
    }

    /// Appends all values of `other`; errors (leaving `self` untouched) if
    /// the columns have different backing types. `attr` names the column
    /// in the error.
    pub fn extend_from(&mut self, other: &Column, attr: &str) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
            (Column::Int(_), Column::F64(_)) => {
                return Err(DataError::TypeMismatch {
                    attribute: attr.to_string(),
                    expected: "Int",
                    got: "F64 column".to_string(),
                })
            }
            (Column::F64(_), Column::Int(_)) => {
                return Err(DataError::TypeMismatch {
                    attribute: attr.to_string(),
                    expected: "F64",
                    got: "Int column".to_string(),
                })
            }
        }
        Ok(())
    }
}

/// A borrowed row: the relation plus a row index.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    rel: &'a Relation,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The value of the `col`-th attribute.
    #[inline]
    pub fn value(&self, col: usize) -> Value {
        self.rel.cols[col].value(self.row)
    }

    /// All values of the row, materialized.
    pub fn to_vec(&self) -> Vec<Value> {
        (0..self.rel.schema.arity()).map(|c| self.value(c)).collect()
    }

    /// Index of this row within its relation.
    pub fn index(&self) -> usize {
        self.row
    }
}

/// An in-memory columnar relation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    cols: Vec<Column>,
    nrows: usize,
    /// Content-state identity: two `Relation` values share a `data_id` only
    /// if one is a clone of the other and neither has been mutated since.
    /// Mutating methods assign a fresh id, which is what lets caches keyed
    /// on `(data_id, …)` never serve stale views (see [`crate::sortcache`]).
    data_id: u64,
}

/// Equality is by content (schema + columns); the cache identity
/// [`Relation::data_id`] deliberately does not participate, so a
/// regenerated identical dataset still compares equal in tests.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.nrows == other.nrows && self.cols == other.cols
    }
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// Creates an empty relation, reserving space for `cap` rows.
    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        let cols = schema.attrs().iter().map(|a| Column::with_capacity(a.ty, cap)).collect();
        Self { schema, cols, nrows: 0, data_id: next_data_id() }
    }

    /// The content-state id of this relation (see the field docs). Stable
    /// across clones, refreshed by every mutation.
    #[inline]
    pub fn data_id(&self) -> u64 {
        self.data_id
    }

    /// Builds a relation from rows; validates arity and types.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push_row(&row)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// True if the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Appends a row, validating arity and column types.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch { expected: self.schema.arity(), got: row.len() });
        }
        for (c, &v) in row.iter().enumerate() {
            self.cols[c].push(v, &self.schema.attr(c).name)?;
        }
        self.nrows += 1;
        self.data_id = next_data_id();
        Ok(())
    }

    /// Rolls an append-only mutation back: truncates to `nrows` rows and
    /// restores `data_id` — the id that identified exactly this content
    /// before rows were pushed, so the `(content, data_id)` pairing every
    /// cache relies on stays exact. The delta layer's undo path; only
    /// valid when nothing but `push_row` happened since the snapshot.
    pub(crate) fn rollback_append(&mut self, nrows: usize, data_id: u64) {
        debug_assert!(nrows <= self.nrows, "rollback_append only undoes appends");
        for col in &mut self.cols {
            col.truncate(nrows);
        }
        self.nrows = nrows;
        self.data_id = data_id;
    }

    /// `(min, max)` of the integer-backed attribute `idx`; `None` when the
    /// relation is empty or the attribute is `Double`. Engines use this to
    /// size dense code-indexed accumulators.
    pub fn int_min_max(&self, idx: usize) -> Option<(i64, i64)> {
        self.cols[idx].int_min_max()
    }

    /// The column backing attribute `idx`.
    pub fn col(&self, idx: usize) -> &Column {
        &self.cols[idx]
    }

    /// The integer slice backing attribute `idx`, or a
    /// [`DataError::TypeMismatch`] if the attribute is `Double`-backed.
    /// Engine-facing code routes through this so a type-confused query
    /// surfaces as `Err`, never as a worker-thread abort.
    #[inline]
    pub fn try_int_col(&self, idx: usize) -> Result<&[i64]> {
        match &self.cols[idx] {
            Column::Int(v) => Ok(v),
            Column::F64(_) => Err(DataError::TypeMismatch {
                attribute: self.schema.attr(idx).name.clone(),
                expected: "Int",
                got: "Double column".to_string(),
            }),
        }
    }

    /// The float slice backing attribute `idx`, or a
    /// [`DataError::TypeMismatch`] if the attribute is int-backed.
    #[inline]
    pub fn try_f64_col(&self, idx: usize) -> Result<&[f64]> {
        match &self.cols[idx] {
            Column::F64(v) => Ok(v),
            Column::Int(_) => Err(DataError::TypeMismatch {
                attribute: self.schema.attr(idx).name.clone(),
                expected: "Double",
                got: "Int column".to_string(),
            }),
        }
    }

    /// The integer slice backing attribute `idx`. Panics if `idx` is a
    /// `Double` attribute — callers that cannot guarantee the backing type
    /// statically use [`Relation::try_int_col`] instead.
    #[inline]
    pub fn int_col(&self, idx: usize) -> &[i64] {
        self.try_int_col(idx).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The float slice backing attribute `idx`. Panics if `idx` is
    /// int-backed — fallible callers use [`Relation::try_f64_col`].
    #[inline]
    pub fn f64_col(&self, idx: usize) -> &[f64] {
        self.try_f64_col(idx).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The attribute value at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols[col].value(row)
    }

    /// The attribute value at `row` for the column as an `f64` regardless of
    /// backing type (integer codes convert losslessly for |v| < 2^53).
    #[inline]
    pub fn value_f64(&self, row: usize, col: usize) -> f64 {
        match &self.cols[col] {
            Column::Int(v) => v[row] as f64,
            Column::F64(v) => v[row],
        }
    }

    /// A borrowed view of row `row`.
    pub fn row(&self, row: usize) -> RowRef<'_> {
        RowRef { rel: self, row }
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.nrows).map(move |r| RowRef { rel: self, row: r })
    }

    /// Materializes row `row` as a `Vec<Value>`.
    pub fn row_vec(&self, row: usize) -> Vec<Value> {
        self.row(row).to_vec()
    }

    /// Returns a new relation with rows reordered by `perm`.
    pub fn permuted(&self, perm: &[usize]) -> Relation {
        Relation {
            schema: self.schema.clone(),
            cols: self.cols.iter().map(|c| c.gather(perm)).collect(),
            nrows: perm.len(),
            data_id: next_data_id(),
        }
    }

    /// The contiguous sub-relation holding rows `range` (same schema).
    /// This is the fact-partitioning primitive behind
    /// [`Database::shard`](crate::catalog::Database::shard): columns are
    /// copied as straight slices, so a shard costs one memcpy per column.
    /// The result is new content (fresh [`Relation::data_id`]).
    pub fn row_range(&self, range: std::ops::Range<usize>) -> Relation {
        debug_assert!(range.end <= self.nrows);
        Relation {
            schema: self.schema.clone(),
            cols: self.cols.iter().map(|c| c.slice(range.clone())).collect(),
            nrows: range.len(),
            data_id: next_data_id(),
        }
    }

    /// The permutation that sorts this relation lexicographically by the
    /// given attribute positions, with input order as the final tiebreak
    /// (so applying it is a stable sort).
    ///
    /// Integer-backed key prefixes (the common case: join keys and
    /// categorical codes) sort as packed `(key…, row)` tuples — one typed
    /// unstable sort over contiguous memory instead of a dynamic
    /// per-comparison column dispatch.
    pub fn sort_permutation(&self, attrs: &[usize]) -> Vec<usize> {
        let n = self.nrows;
        let int_cols: Option<Vec<&[i64]>> = attrs
            .iter()
            .map(|&c| match &self.cols[c] {
                Column::Int(v) => Some(v.as_slice()),
                Column::F64(_) => None,
            })
            .collect();
        if let Some(ics) = int_cols {
            return match ics.as_slice() {
                [] => (0..n).collect(),
                [a] => {
                    let mut keyed: Vec<(i64, usize)> = (0..n).map(|i| (a[i], i)).collect();
                    keyed.sort_unstable();
                    keyed.into_iter().map(|(_, i)| i).collect()
                }
                [a, b] => {
                    let mut keyed: Vec<(i64, i64, usize)> =
                        (0..n).map(|i| (a[i], b[i], i)).collect();
                    keyed.sort_unstable();
                    keyed.into_iter().map(|(_, _, i)| i).collect()
                }
                [a, b, c] => {
                    let mut keyed: Vec<(i64, i64, i64, usize)> =
                        (0..n).map(|i| (a[i], b[i], c[i], i)).collect();
                    keyed.sort_unstable();
                    keyed.into_iter().map(|(_, _, _, i)| i).collect()
                }
                _ => {
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.sort_unstable_by(|&x, &y| {
                        ics.iter()
                            .map(|col| col[x].cmp(&col[y]))
                            .find(|o| o.is_ne())
                            .unwrap_or_else(|| x.cmp(&y))
                    });
                    perm
                }
            };
        }
        // Mixed int/float keys: generic comparator (index tiebreak keeps
        // the result identical to a stable sort).
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_unstable_by(|&a, &b| {
            for &c in attrs {
                let ord = match &self.cols[c] {
                    Column::Int(v) => v[a].cmp(&v[b]),
                    Column::F64(v) => v[a].total_cmp(&v[b]),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b)
        });
        perm
    }

    /// Returns this relation sorted lexicographically by the given attribute
    /// positions (stable, so ties keep input order). Always sorts afresh —
    /// for repeated sorts of the same relation state, go through
    /// [`SortCache::sorted_by`](crate::sortcache::SortCache::sorted_by),
    /// which memoizes the result.
    pub fn sorted_by(&self, attrs: &[usize]) -> Relation {
        self.permuted(&self.sort_permutation(attrs))
    }

    /// Projects onto the given attribute positions (duplicates preserved).
    pub fn project(&self, indices: &[usize]) -> Relation {
        Relation {
            schema: self.schema.project(indices),
            cols: indices.iter().map(|&i| self.cols[i].clone()).collect(),
            nrows: self.nrows,
            data_id: next_data_id(),
        }
    }

    /// Projects onto attribute names.
    pub fn project_names(&self, names: &[&str]) -> Result<Relation> {
        let idx: Result<Vec<usize>> = names.iter().map(|n| self.schema.require(n)).collect();
        Ok(self.project(&idx?))
    }

    /// Appends all rows of `other`; schemas must be identical. Any error —
    /// schema mismatch or (unreachable given equal schemas) column-type
    /// mismatch — is reported as a [`DataError`], never a panic.
    pub fn append(&mut self, other: &Relation) -> Result<()> {
        if self.schema != other.schema {
            return Err(DataError::Invalid("append requires identical schemas".into()));
        }
        let schema = &self.schema;
        for (c, (a, b)) in self.cols.iter_mut().zip(&other.cols).enumerate() {
            a.extend_from(b, &schema.attr(c).name)?;
        }
        self.nrows += other.nrows;
        self.data_id = next_data_id();
        Ok(())
    }

    /// Keeps only rows for which `pred` returns true.
    pub fn filter(&self, mut pred: impl FnMut(RowRef<'_>) -> bool) -> Relation {
        let keep: Vec<usize> = (0..self.nrows).filter(|&r| pred(self.row(r))).collect();
        self.permuted(&keep)
    }

    /// Approximate in-memory byte size of the column data.
    pub fn byte_size(&self) -> usize {
        self.nrows * self.schema.arity() * std::mem::size_of::<i64>()
    }
}

/// Given a sorted integer column restricted to `range`, yields maximal
/// sub-ranges of equal values. The factorized and LMFAO engines use this to
/// walk group boundaries without hashing.
pub fn equal_ranges(col: &[i64], range: std::ops::Range<usize>) -> EqualRanges<'_> {
    EqualRanges { col, pos: range.start, end: range.end }
}

/// Iterator over `(value, sub_range)` groups of a sorted column slice.
pub struct EqualRanges<'a> {
    col: &'a [i64],
    pos: usize,
    end: usize,
}

impl<'a> Iterator for EqualRanges<'a> {
    type Item = (i64, std::ops::Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let v = self.col[self.pos];
        let start = self.pos;
        let mut hi = self.pos + 1;
        // Gallop to find the end of the run: runs are often long in
        // fk-sorted fact tables, short in dimension tables.
        let mut step = 1;
        while hi < self.end && self.col[hi] == v {
            hi += step;
            step *= 2;
        }
        let hi = self.col[start..self.end.min(hi)].partition_point(|&x| x == v) + start;
        self.pos = hi;
        Some((v, start..hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn sample() -> Relation {
        let schema = Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]);
        Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(2), Value::F64(1.0)],
                vec![Value::Int(1), Value::F64(2.0)],
                vec![Value::Int(2), Value::F64(3.0)],
                vec![Value::Int(1), Value::F64(4.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_access() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.value(0, 0), Value::Int(2));
        assert_eq!(r.value(3, 1), Value::F64(4.0));
        assert_eq!(r.value_f64(0, 0), 2.0);
        assert_eq!(r.int_col(0), &[2, 1, 2, 1]);
        assert_eq!(r.f64_col(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.row_vec(1), vec![Value::Int(1), Value::F64(2.0)]);
    }

    #[test]
    fn arity_and_type_errors() {
        let mut r = sample();
        assert!(matches!(
            r.push_row(&[Value::Int(1)]),
            Err(DataError::ArityMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            r.push_row(&[Value::F64(1.0), Value::F64(1.0)]),
            Err(DataError::TypeMismatch { .. })
        ));
        // A failed push on a later column must not corrupt row count.
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn sorted_by_is_stable_lexicographic() {
        let r = sample().sorted_by(&[0]);
        assert_eq!(r.int_col(0), &[1, 1, 2, 2]);
        // Stability: within k=1, original order (2.0 then 4.0) preserved.
        assert_eq!(r.f64_col(1), &[2.0, 4.0, 1.0, 3.0]);
    }

    #[test]
    fn sort_permutation_typed_paths_match_generic() {
        // 4 int columns exercises every arm: 1, 2, 3, and the >3 loop;
        // mixing in the float column exercises the generic fallback.
        let schema = Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Int),
            ("c", AttrType::Int),
            ("d", AttrType::Int),
            ("x", AttrType::Double),
        ]);
        let mut rel = Relation::new(schema);
        let mut state = 11u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = |shift: u32| ((state >> shift) % 3) as i64;
            rel.push_row(&[
                Value::Int(v(1)),
                Value::Int(v(11)),
                Value::Int(v(21)),
                Value::Int(v(31)),
                Value::F64(v(41) as f64),
            ])
            .unwrap();
        }
        let reference = |attrs: &[usize]| -> Vec<usize> {
            let mut perm: Vec<usize> = (0..rel.len()).collect();
            perm.sort_by(|&a, &b| {
                for &c in attrs {
                    let ord = match c {
                        4 => rel.value_f64(a, c).total_cmp(&rel.value_f64(b, c)),
                        _ => rel.int_col(c)[a].cmp(&rel.int_col(c)[b]),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                a.cmp(&b)
            });
            perm
        };
        for attrs in
            [vec![], vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3], vec![0, 4], vec![4, 0]]
        {
            assert_eq!(rel.sort_permutation(&attrs), reference(&attrs), "attrs {attrs:?}");
        }
    }

    #[test]
    fn data_id_tracks_mutation_not_clones() {
        let a = sample();
        let clone = a.clone();
        assert_eq!(a.data_id(), clone.data_id(), "clones share content state");
        let mut b = sample();
        assert_ne!(a.data_id(), b.data_id(), "independent builds differ");
        assert_eq!(a, b, "…but still compare equal by content");
        let id = b.data_id();
        b.push_row(&[Value::Int(9), Value::F64(0.0)]).unwrap();
        assert_ne!(b.data_id(), id, "mutation refreshes the id");
        let id = b.data_id();
        b.append(&a).unwrap();
        assert_ne!(b.data_id(), id, "append refreshes the id");
    }

    #[test]
    fn int_min_max_per_column() {
        let r = sample();
        assert_eq!(r.int_min_max(0), Some((1, 2)));
        assert_eq!(r.int_min_max(1), None, "float column has no int range");
        let empty = Relation::new(Schema::of(&[("a", AttrType::Int)]));
        assert_eq!(empty.int_min_max(0), None);
    }

    #[test]
    fn project_and_filter() {
        let r = sample();
        let p = r.project_names(&["x"]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.f64_col(0), &[1.0, 2.0, 3.0, 4.0]);
        let f = r.filter(|row| row.value(0) == Value::Int(1));
        assert_eq!(f.len(), 2);
        assert!(r.project_names(&["nope"]).is_err());
    }

    #[test]
    fn append_checks_schema() {
        let mut a = sample();
        let b = sample();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 8);
        let other = Relation::new(Schema::new(vec![Attribute::int("z")]).unwrap());
        assert!(a.append(&other).is_err());
    }

    #[test]
    fn extend_from_mismatch_is_an_error_not_a_panic() {
        let mut int_col = Column::Int(vec![1, 2]);
        let f64_col = Column::F64(vec![0.5]);
        let err = int_col.extend_from(&f64_col, "k").unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { ref attribute, .. } if attribute == "k"));
        // The failed call left the column untouched.
        assert_eq!(int_col.len(), 2);
        let mut f = Column::F64(vec![0.5]);
        assert!(f.extend_from(&Column::Int(vec![1]), "x").is_err());
        f.extend_from(&Column::F64(vec![1.5]), "x").unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn equal_ranges_walks_runs() {
        let col = [1i64, 1, 1, 3, 5, 5];
        let groups: Vec<_> = equal_ranges(&col, 0..col.len()).collect();
        assert_eq!(groups, vec![(1, 0..3), (3, 3..4), (5, 4..6)]);
        // Sub-range restriction.
        let groups: Vec<_> = equal_ranges(&col, 1..5).collect();
        assert_eq!(groups, vec![(1, 1..3), (3, 3..4), (5, 4..5)]);
        assert_eq!(equal_ranges(&col, 2..2).count(), 0);
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::new(Schema::of(&[("a", AttrType::Int)]));
        assert!(r.is_empty());
        assert_eq!(r.rows().count(), 0);
        assert_eq!(r.sorted_by(&[0]).len(), 0);
        assert_eq!(r.byte_size(), 0);
    }

    #[test]
    #[should_panic(expected = "Double")]
    fn int_col_panics_on_double() {
        let r = sample();
        let _ = r.int_col(1);
    }

    #[test]
    fn try_cols_report_type_mismatch_as_errors() {
        let r = sample();
        assert_eq!(r.try_int_col(0).unwrap(), &[2, 1, 2, 1]);
        assert_eq!(r.try_f64_col(1).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            r.try_int_col(1),
            Err(DataError::TypeMismatch { ref attribute, expected: "Int", .. }) if attribute == "x"
        ));
        assert!(matches!(
            r.try_f64_col(0),
            Err(DataError::TypeMismatch { ref attribute, expected: "Double", .. })
                if attribute == "k"
        ));
    }

    #[test]
    fn row_range_slices_contiguously() {
        let r = sample();
        let mid = r.row_range(1..3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.int_col(0), &[1, 2]);
        assert_eq!(mid.f64_col(1), &[2.0, 3.0]);
        assert_eq!(mid.schema(), r.schema());
        assert_ne!(mid.data_id(), r.data_id(), "a shard is new content");
        let empty = r.row_range(4..4);
        assert!(empty.is_empty());
        // Concatenating the shards reconstructs the relation, content-wise.
        let mut whole = r.row_range(0..1);
        whole.append(&r.row_range(1..4)).unwrap();
        assert_eq!(whole, r);
    }
}
