//! Minimal CSV serialization for relations.
//!
//! Used by the Figure 3 reproduction to simulate the structure-agnostic
//! pipeline's *export / import* step (the paper's "data move" shortcoming):
//! the materialized data matrix is serialized to CSV bytes and parsed back,
//! exactly as a PostgreSQL → TensorFlow hand-off would.

use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use std::io::{BufWriter, Write};

/// Serializes a relation to CSV (no header) into `out`.
pub fn write_csv<W: Write>(rel: &Relation, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    let arity = rel.schema().arity();
    let mut line = String::with_capacity(arity * 12);
    for r in 0..rel.len() {
        line.clear();
        for c in 0..arity {
            if c > 0 {
                line.push(',');
            }
            match rel.value(r, c) {
                Value::Int(i) => {
                    line.push_str(itoa_buf(i).as_str());
                }
                Value::F64(f) => {
                    // `{}` prints shortest-roundtrip for f64.
                    use std::fmt::Write as _;
                    write!(line, "{f}").expect("write to String cannot fail");
                }
            }
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

fn itoa_buf(i: i64) -> String {
    i.to_string()
}

/// Serializes a relation to an in-memory CSV byte buffer and returns it.
pub fn relation_to_csv(rel: &Relation) -> Vec<u8> {
    let mut buf = Vec::with_capacity(rel.len() * rel.schema().arity() * 8);
    write_csv(rel, &mut buf).expect("writing to Vec cannot fail");
    buf
}

/// Parses CSV bytes into a relation with the given schema.
pub fn read_csv(schema: Schema, bytes: &[u8]) -> Result<Relation> {
    let mut rel = Relation::new(schema.clone());
    let arity = schema.arity();
    let mut row: Vec<Value> = Vec::with_capacity(arity);
    for (lineno, line) in bytes.split(|&b| b == b'\n').enumerate() {
        if line.is_empty() {
            continue;
        }
        // An unwind mid-parse would leak a half-built relation to the
        // caller's drop path only, but fault plans still demote panics to
        // `Err` here so an injected ingest failure is always a clean
        // typed error, mirroring the real parse errors below.
        crate::fault::check_err("csv-ingest")?;
        row.clear();
        for (c, field) in line.split(|&b| b == b',').enumerate() {
            if c >= arity {
                return Err(DataError::Csv {
                    line: lineno + 1,
                    message: format!("too many fields (expected {arity})"),
                });
            }
            let text = std::str::from_utf8(field).map_err(|_| DataError::Csv {
                line: lineno + 1,
                message: "non-utf8 field".to_string(),
            })?;
            let v = if schema.attr(c).ty.is_int_backed() {
                Value::Int(text.parse::<i64>().map_err(|e| DataError::Csv {
                    line: lineno + 1,
                    message: format!("bad int `{text}`: {e}"),
                })?)
            } else {
                Value::F64(text.parse::<f64>().map_err(|e| DataError::Csv {
                    line: lineno + 1,
                    message: format!("bad float `{text}`: {e}"),
                })?)
            };
            row.push(v);
        }
        if row.len() != arity {
            return Err(DataError::Csv {
                line: lineno + 1,
                message: format!("expected {arity} fields, got {}", row.len()),
            });
        }
        rel.push_row(&row)?;
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> Schema {
        Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)])
    }

    fn sample() -> Relation {
        Relation::from_rows(
            schema(),
            vec![vec![Value::Int(1), Value::F64(1.5)], vec![Value::Int(-2), Value::F64(0.25)]],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let rel = sample();
        let bytes = relation_to_csv(&rel);
        assert_eq!(String::from_utf8_lossy(&bytes), "1,1.5\n-2,0.25\n");
        let back = read_csv(schema(), &bytes).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn roundtrip_preserves_floats_exactly() {
        let rel = Relation::from_rows(schema(), vec![vec![Value::Int(0), Value::F64(0.1 + 0.2)]])
            .unwrap();
        let back = read_csv(schema(), &relation_to_csv(&rel)).unwrap();
        assert_eq!(back.f64_col(1)[0], 0.1 + 0.2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Malformed input surfaces as a typed `DataError::Csv` carrying the
        // offending line — asserted structurally, no panic-based matching.
        let err = read_csv(schema(), b"1,2.0\nx,3.0\n").unwrap_err();
        assert!(
            matches!(err, DataError::Csv { line: 2, .. }),
            "expected Csv error at line 2, got {err:?}"
        );
        assert!(matches!(read_csv(schema(), b"1\n").unwrap_err(), DataError::Csv { line: 1, .. }));
        assert!(matches!(
            read_csv(schema(), b"1,2.0,3\n").unwrap_err(),
            DataError::Csv { line: 1, .. }
        ));
    }

    #[test]
    fn empty_input_gives_empty_relation() {
        let rel = read_csv(schema(), b"").unwrap();
        assert!(rel.is_empty());
    }
}
