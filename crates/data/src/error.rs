//! Error type for the data layer.

use std::fmt;

/// Errors raised by schema validation, relation construction, and CSV I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A schema lists the same attribute name twice.
    DuplicateAttribute(String),
    /// An attribute name was not found in a schema.
    UnknownAttribute(String),
    /// A relation name was not found in a database.
    UnknownRelation(String),
    /// A row had the wrong arity or a value of the wrong type for its column.
    TypeMismatch { attribute: String, expected: &'static str, got: String },
    /// Row arity differs from schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// CSV parsing failed at a given line.
    Csv { line: usize, message: String },
    /// An I/O error, stringified (keeps the error type `Clone + Eq`).
    Io(String),
    /// Generic invariant violation with context.
    Invalid(String),
    /// A worker thread panicked; the panic was contained and the payload
    /// stringified. The batch that raised it was rolled back or merged
    /// from a degraded retry — the process never aborts.
    WorkerPanic(String),
    /// A fault injected at the named site (`fdb_data::fault`; only raised
    /// with the `fault-injection` feature on and a plan installed).
    Injected(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}` in schema"),
            DataError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            DataError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DataError::TypeMismatch { attribute, expected, got } => {
                write!(f, "type mismatch on `{attribute}`: expected {expected}, got {got}")
            }
            DataError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            DataError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            DataError::Io(m) => write!(f, "io error: {m}"),
            DataError::Invalid(m) => write!(f, "invalid: {m}"),
            DataError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            DataError::Injected(site) => write!(f, "injected fault at `{site}`"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::TypeMismatch {
            attribute: "price".into(),
            expected: "f64",
            got: "Int(3)".into(),
        };
        assert!(e.to_string().contains("price"));
        assert!(DataError::UnknownRelation("R".into()).to_string().contains("R"));
        assert!(DataError::Csv { line: 7, message: "bad".into() }.to_string().contains("7"));
    }
}
