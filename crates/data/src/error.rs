//! Error type for the data layer.

use std::fmt;

/// Errors raised by schema validation, relation construction, CSV I/O,
/// and the serving front door.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so future robustness variants (like `Overloaded` and `Timeout`,
/// added for the front door) are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A schema lists the same attribute name twice.
    DuplicateAttribute(String),
    /// An attribute name was not found in a schema.
    UnknownAttribute(String),
    /// A relation name was not found in a database.
    UnknownRelation(String),
    /// A row had the wrong arity or a value of the wrong type for its column.
    TypeMismatch { attribute: String, expected: &'static str, got: String },
    /// Row arity differs from schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// CSV parsing failed at a given line.
    Csv { line: usize, message: String },
    /// An I/O error, stringified (keeps the error type `Clone + Eq`).
    Io(String),
    /// Generic invariant violation with context.
    Invalid(String),
    /// A worker thread panicked; the panic was contained and the payload
    /// stringified. The batch that raised it was rolled back or merged
    /// from a degraded retry — the process never aborts.
    WorkerPanic(String),
    /// A fault injected at the named site (`fdb_data::fault`; only raised
    /// with the `fault-injection` feature on and a plan installed).
    Injected(String),
    /// The serving front door's bounded delta queue was full and the
    /// backpressure policy rejects rather than blocks or sheds. The
    /// submitted delta was **not** enqueued and will never publish.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// A blocking submit waited past its deadline for queue space. The
    /// submitted delta was **not** enqueued and will never publish.
    Timeout {
        /// How long the submit waited before giving up, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}` in schema"),
            DataError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            DataError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DataError::TypeMismatch { attribute, expected, got } => {
                write!(f, "type mismatch on `{attribute}`: expected {expected}, got {got}")
            }
            DataError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            DataError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            DataError::Io(m) => write!(f, "io error: {m}"),
            DataError::Invalid(m) => write!(f, "invalid: {m}"),
            DataError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            DataError::Injected(site) => write!(f, "injected fault at `{site}`"),
            DataError::Overloaded { capacity } => {
                write!(f, "overloaded: delta queue full at capacity {capacity}")
            }
            DataError::Timeout { waited_ms } => {
                write!(f, "submit timed out after {waited_ms} ms waiting for queue space")
            }
        }
    }
}

// `source()` is intentionally the default `None` for every variant: causes
// are stringified into the variant payloads (see `Io`, `WorkerPanic`) so
// the type stays `Clone + PartialEq + Eq` — which the rollback and
// agreement test machinery rely on.
impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::TypeMismatch {
            attribute: "price".into(),
            expected: "f64",
            got: "Int(3)".into(),
        };
        assert!(e.to_string().contains("price"));
        assert!(DataError::UnknownRelation("R".into()).to_string().contains("R"));
        assert!(DataError::Csv { line: 7, message: "bad".into() }.to_string().contains("7"));
        assert!(DataError::Overloaded { capacity: 8 }.to_string().contains("8"));
        assert!(DataError::Timeout { waited_ms: 250 }.to_string().contains("250"));
    }

    /// One witness per variant. A compile-time reminder lives in the match
    /// below: adding a variant without extending this list fails the test
    /// via the count check, and `#[non_exhaustive]` does not apply inside
    /// the defining crate, so the `match` must stay exhaustive here.
    fn witnesses() -> Vec<DataError> {
        let all = vec![
            DataError::DuplicateAttribute("a".into()),
            DataError::UnknownAttribute("a".into()),
            DataError::UnknownRelation("R".into()),
            DataError::TypeMismatch { attribute: "a".into(), expected: "i64", got: "F64".into() },
            DataError::ArityMismatch { expected: 3, got: 2 },
            DataError::Csv { line: 1, message: "m".into() },
            DataError::Io("m".into()),
            DataError::Invalid("m".into()),
            DataError::WorkerPanic("m".into()),
            DataError::Injected("site".into()),
            DataError::Overloaded { capacity: 4 },
            DataError::Timeout { waited_ms: 10 },
        ];
        for e in &all {
            match e {
                DataError::DuplicateAttribute(_)
                | DataError::UnknownAttribute(_)
                | DataError::UnknownRelation(_)
                | DataError::TypeMismatch { .. }
                | DataError::ArityMismatch { .. }
                | DataError::Csv { .. }
                | DataError::Io(_)
                | DataError::Invalid(_)
                | DataError::WorkerPanic(_)
                | DataError::Injected(_)
                | DataError::Overloaded { .. }
                | DataError::Timeout { .. } => {}
            }
        }
        all
    }

    #[test]
    fn every_variant_renders_a_nonempty_distinct_message() {
        use std::collections::HashSet;
        use std::error::Error;
        let all = witnesses();
        let messages: Vec<String> = all.iter().map(ToString::to_string).collect();
        for (e, m) in all.iter().zip(&messages) {
            assert!(!m.is_empty(), "{e:?} renders empty");
            // Stringified-cause design: no variant hides a source chain.
            assert!(e.source().is_none(), "{e:?} should have no source");
        }
        let distinct: HashSet<&str> = messages.iter().map(String::as_str).collect();
        assert_eq!(distinct.len(), messages.len(), "duplicate Display strings: {messages:?}");
    }
}
