//! # fdb-data
//!
//! Data-layer substrate for the `fdb` workspace: typed values, schemas,
//! dictionary encoding of categorical attributes, in-memory columnar
//! relations, sorted views, databases (catalogs), and CSV import/export.
//!
//! Everything above this crate (the factorized engine, LMFAO, F-IVM, the
//! classical baseline engine) operates on [`Relation`]s described by
//! [`Schema`]s and grouped into a [`Database`].
//!
//! Design decisions (see DESIGN.md §4):
//! * [`Value`] is `Int(i64)` or `F64(f64)` with a *total* order and
//!   bit-pattern hashing so values can be used as group-by keys.
//! * Categorical attributes are dictionary-encoded into `Int` codes at load
//!   time; the [`Dictionary`] lives next to the schema. Join and group-by
//!   attributes are therefore always integers, which the factorized and
//!   LMFAO engines rely on for fast typed kernels.

pub mod catalog;
pub mod csv;
pub mod delta;
pub mod dict;
pub mod error;
pub mod fault;
pub mod relation;
pub mod schema;
pub mod sortcache;
pub mod value;

pub use catalog::Database;
pub use csv::{read_csv, relation_to_csv, write_csv};
pub use delta::{Delta, DeltaUndo};
pub use dict::Dictionary;
pub use error::DataError;
pub use fault::{FaultKind, FaultPlan};
pub use relation::{Column, Relation, RowRef};
pub use schema::{AttrType, Attribute, Schema};
pub use sortcache::{stripe_count, CacheCounters, SortCache};
pub use value::Value;

/// Convenience result alias used across the data layer.
pub type Result<T> = std::result::Result<T, DataError>;
