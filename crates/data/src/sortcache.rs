//! Cross-query memoization of sorted relation views.
//!
//! Every `FactorizedEngine::run` (and any other consumer of
//! [`Relation::sorted_by`]) used to re-sort each relation from scratch —
//! so a CART trainer running one aggregate batch per tree node paid the
//! full sort bill at every node. A [`SortCache`] memoizes the sorted view
//! keyed on `(relation content state, column order)`:
//!
//! * the content state is [`Relation::data_id`], which every mutation
//!   refreshes — so **invalidation is automatic**: a mutated relation
//!   simply never hits the stale entry again (stale entries age out of the
//!   FIFO capacity bound);
//! * the column order is the exact attribute-position sequence passed to
//!   `sorted_by`, so different variable orders coexist.
//!
//! Cached views are shared as `Arc<Relation>`: engines hold them across
//! `Engine::run` calls without copying, and concurrent queries share one
//! sorted copy.

use crate::relation::Relation;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default number of sorted views the global cache retains.
pub const DEFAULT_CAPACITY: usize = 128;

/// Default ceiling on the total approximate bytes of retained views. Both
/// bounds apply: whichever is hit first evicts (so 128 small dimension
/// views can coexist, but a handful of fact-table views already rotate).
pub const DEFAULT_BYTE_BUDGET: usize = 256 << 20;

type Key = (u64, Vec<usize>);

/// A monotone snapshot of a cache's global counters — the observability
/// contract shared by this cache and `fdb-core`'s view cache, surfaced as
/// the `caches` section of `BENCH_engines.json`. Counters survive
/// [`SortCache::clear`] so deltas around a workload stay meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (an actual sort).
    pub misses: u64,
    /// Entries dropped to respect the capacity or byte bound.
    pub evictions: u64,
    /// Entries currently retained.
    pub entries: usize,
    /// Approximate bytes currently retained.
    pub bytes: usize,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<Key, Arc<Relation>>,
    /// Insertion order for FIFO eviction.
    order: Vec<Key>,
    /// Total approximate bytes of retained views.
    bytes: usize,
    /// Per-source-relation `(hits, misses)`, keyed by `data_id`. Bounded:
    /// cleared wholesale when it outgrows the entry map by a wide margin.
    stats: HashMap<u64, (u64, u64)>,
    /// Global monotone counters (survive [`SortCache::clear`]).
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded memo table for [`Relation::sorted_by`] results.
pub struct SortCache {
    inner: Mutex<Inner>,
    capacity: usize,
    byte_budget: usize,
}

impl SortCache {
    /// An empty cache retaining at most `capacity` sorted views within the
    /// default byte budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, DEFAULT_BYTE_BUDGET)
    }

    /// An empty cache bounded by both an entry count and a total byte
    /// budget (approximate, via [`Relation::byte_size`]).
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            byte_budget: byte_budget.max(1),
        }
    }

    /// The process-wide cache used by the engines.
    pub fn global() -> &'static SortCache {
        static GLOBAL: OnceLock<SortCache> = OnceLock::new();
        GLOBAL.get_or_init(|| SortCache::new(DEFAULT_CAPACITY))
    }

    /// `rel` sorted lexicographically by `attrs` (stable), served from the
    /// cache when this exact `(content state, column order)` was sorted
    /// before.
    pub fn sorted_by(&self, rel: &Relation, attrs: &[usize]) -> Arc<Relation> {
        let id = rel.data_id();
        {
            let mut inner = self.lock();
            if let Some(hit) = inner.entries.get(&(id, attrs.to_vec())) {
                let hit = Arc::clone(hit);
                inner.stats.entry(id).or_default().0 += 1;
                inner.hits += 1;
                return hit;
            }
        }
        // Sort outside the lock: concurrent queries may redundantly sort
        // the same view, but never block each other on a large sort.
        let sorted = Arc::new(rel.sorted_by(attrs));
        let mut inner = self.lock();
        inner.stats.entry(id).or_default().1 += 1;
        inner.misses += 1;
        if inner.stats.len() > 32 * self.capacity {
            inner.stats.clear();
        }
        let key = (id, attrs.to_vec());
        if !inner.entries.contains_key(&key) {
            let new_bytes = sorted.byte_size();
            // A view that alone exceeds the whole budget is served but not
            // admitted: caching it would evict every warm entry and still
            // leave the cache over budget.
            if new_bytes > self.byte_budget {
                return sorted;
            }
            while !inner.order.is_empty()
                && (inner.entries.len() >= self.capacity
                    || inner.bytes + new_bytes > self.byte_budget)
            {
                let oldest = inner.order.remove(0);
                if let Some(evicted) = inner.entries.remove(&oldest) {
                    inner.bytes -= evicted.byte_size();
                    inner.evictions += 1;
                }
            }
            inner.order.push(key.clone());
            inner.bytes += new_bytes;
            inner.entries.insert(key, Arc::clone(&sorted));
        }
        sorted
    }

    /// `(hits, misses)` recorded for `rel`'s current content state. A miss
    /// is an actual sort; tests use this to assert that repeated queries
    /// sort each relation at most once.
    pub fn stats_for(&self, rel: &Relation) -> (u64, u64) {
        self.lock().stats.get(&rel.data_id()).copied().unwrap_or((0, 0))
    }

    /// A snapshot of the global counters (monotone across
    /// [`SortCache::clear`]).
    pub fn counters(&self) -> CacheCounters {
        let inner = self.lock();
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            bytes: inner.bytes,
        }
    }

    /// Number of sorted views currently retained.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True if no views are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of retained views.
    pub fn byte_size(&self) -> usize {
        self.lock().bytes
    }

    /// Drops all retained views and statistics.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.order.clear();
        inner.bytes = 0;
        inner.stats.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;

    fn rel(rows: &[(i64, f64)]) -> Relation {
        Relation::from_rows(
            Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]),
            rows.iter().map(|&(k, x)| vec![Value::Int(k), Value::F64(x)]),
        )
        .unwrap()
    }

    #[test]
    fn second_sort_is_a_hit() {
        let cache = SortCache::new(8);
        let r = rel(&[(2, 1.0), (1, 2.0)]);
        let a = cache.sorted_by(&r, &[0]);
        let b = cache.sorted_by(&r, &[0]);
        assert!(Arc::ptr_eq(&a, &b), "same view served twice");
        assert_eq!(cache.stats_for(&r), (1, 1));
        assert_eq!(a.int_col(0), &[1, 2]);
    }

    #[test]
    fn distinct_column_orders_coexist() {
        let cache = SortCache::new(8);
        let r = rel(&[(2, 1.0), (1, 2.0)]);
        let by_k = cache.sorted_by(&r, &[0]);
        let by_x = cache.sorted_by(&r, &[1]);
        assert_eq!(by_k.int_col(0), &[1, 2]);
        assert_eq!(by_x.f64_col(1), &[1.0, 2.0]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn mutation_invalidates_by_identity() {
        let cache = SortCache::new(8);
        let mut r = rel(&[(2, 1.0), (1, 2.0)]);
        let before = cache.sorted_by(&r, &[0]);
        r.push_row(&[Value::Int(0), Value::F64(3.0)]).unwrap();
        let after = cache.sorted_by(&r, &[0]);
        assert_eq!(before.len(), 2, "stale view untouched");
        assert_eq!(after.int_col(0), &[0, 1, 2], "fresh state re-sorted");
        assert_eq!(cache.stats_for(&r), (0, 1), "stats follow the new state");
    }

    #[test]
    fn byte_budget_evicts_before_capacity() {
        // Each view is 2 rows × 2 cols × 8 bytes = 32 bytes; a 64-byte
        // budget holds two views even though the entry capacity is 8.
        let cache = SortCache::with_byte_budget(8, 64);
        let views =
            [rel(&[(1, 0.0), (2, 0.0)]), rel(&[(3, 0.0), (4, 0.0)]), rel(&[(5, 0.0), (6, 0.0)])];
        for v in &views {
            cache.sorted_by(v, &[0]);
        }
        assert_eq!(cache.len(), 2, "third view evicted the first by bytes");
        assert!(cache.byte_size() <= 64);
        cache.sorted_by(&views[0], &[0]);
        assert_eq!(cache.stats_for(&views[0]), (0, 2), "first view was re-sorted");
        assert_eq!(cache.stats_for(&views[2]), (0, 1));
    }

    #[test]
    fn over_budget_view_is_served_but_not_admitted() {
        // Budget 64 bytes; a 5-row view costs 80. It must neither evict
        // the warm entries nor be retained itself.
        let cache = SortCache::with_byte_budget(8, 64);
        let small = rel(&[(2, 0.0), (1, 0.0)]);
        cache.sorted_by(&small, &[0]);
        let big = rel(&[(5, 0.0), (4, 0.0), (3, 0.0), (2, 0.0), (1, 0.0)]);
        let sorted = cache.sorted_by(&big, &[0]);
        assert_eq!(sorted.int_col(0), &[1, 2, 3, 4, 5], "still sorted correctly");
        assert_eq!(cache.len(), 1, "big view not admitted");
        assert_eq!(cache.stats_for(&small), (0, 1), "warm entry survived");
        cache.sorted_by(&small, &[0]);
        assert_eq!(cache.stats_for(&small), (1, 1), "…and still hits");
        cache.sorted_by(&big, &[0]);
        assert_eq!(cache.stats_for(&big), (0, 2), "big view re-sorts every time");
    }

    #[test]
    fn global_counters_track_hits_misses_evictions() {
        let cache = SortCache::new(2);
        let (a, b, c) = (rel(&[(1, 0.0)]), rel(&[(2, 0.0)]), rel(&[(3, 0.0)]));
        cache.sorted_by(&a, &[0]); // miss
        cache.sorted_by(&a, &[0]); // hit
        cache.sorted_by(&b, &[0]); // miss
        cache.sorted_by(&c, &[0]); // miss + evicts `a`
        let k = cache.counters();
        assert_eq!((k.hits, k.misses, k.evictions), (1, 3, 1));
        assert_eq!(k.entries, 2);
        assert!(k.bytes > 0);
        cache.clear();
        let k = cache.counters();
        assert_eq!(k.hits, 1, "history survives clear");
        assert_eq!((k.entries, k.bytes), (0, 0));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = SortCache::new(2);
        let (a, b, c) = (rel(&[(1, 0.0)]), rel(&[(2, 0.0)]), rel(&[(3, 0.0)]));
        cache.sorted_by(&a, &[0]);
        cache.sorted_by(&b, &[0]);
        cache.sorted_by(&c, &[0]); // evicts `a`
        assert_eq!(cache.len(), 2);
        cache.sorted_by(&a, &[0]);
        assert_eq!(cache.stats_for(&a), (0, 2), "evicted entry re-sorts");
        cache.clear();
        assert!(cache.is_empty());
    }
}
