//! Cross-query memoization of sorted relation views.
//!
//! Every `FactorizedEngine::run` (and any other consumer of
//! [`Relation::sorted_by`]) used to re-sort each relation from scratch —
//! so a CART trainer running one aggregate batch per tree node paid the
//! full sort bill at every node. A [`SortCache`] memoizes the sorted view
//! keyed on `(relation content state, column order)`:
//!
//! * the content state is [`Relation::data_id`], which every mutation
//!   refreshes — so **invalidation is automatic**: a mutated relation
//!   simply never hits the stale entry again (stale entries age out of the
//!   FIFO capacity bound);
//! * the column order is the exact attribute-position sequence passed to
//!   `sorted_by`, so different variable orders coexist.
//!
//! Cached views are shared as `Arc<Relation>`: engines hold them across
//! `Engine::run` calls without copying, and concurrent queries share one
//! sorted copy.
//!
//! # Striping
//!
//! The table is split into [`stripe_count`] shards, each behind its own
//! `Mutex`, selected by hashing the source relation's `data_id`. Concurrent
//! readers of *different* relations therefore never serialize on one global
//! lock, while all views (and per-relation stats) of a single relation stay
//! colocated in one stripe. The capacity and byte bounds remain **global**:
//! entry/byte totals live in atomics and eviction always removes the
//! globally oldest entry (per-entry admission sequence numbers, scanning
//! stripe fronts one lock at a time), so the observable FIFO semantics are
//! identical to the former single-lock cache.

use crate::relation::Relation;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default number of sorted views the global cache retains.
pub const DEFAULT_CAPACITY: usize = 128;

/// Default ceiling on the total approximate bytes of retained views. Both
/// bounds apply: whichever is hit first evicts (so 128 small dimension
/// views can coexist, but a handful of fact-table views already rotate).
pub const DEFAULT_BYTE_BUDGET: usize = 256 << 20;

/// Default number of lock stripes for the global caches (this one and
/// `fdb-core`'s view cache). Overridable via the `FDB_CACHE_STRIPES`
/// environment variable, read once at first use.
pub const DEFAULT_STRIPES: usize = 16;

/// Number of lock stripes the global caches use: `FDB_CACHE_STRIPES` when
/// set to a positive integer, else [`DEFAULT_STRIPES`]. Read once.
pub fn stripe_count() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("FDB_CACHE_STRIPES")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_STRIPES)
    })
}

type Key = (u64, Vec<usize>);

/// A monotone snapshot of a cache's global counters — the observability
/// contract shared by this cache and `fdb-core`'s view cache, surfaced as
/// the `caches` section of `BENCH_engines.json`. Counters survive
/// [`SortCache::clear`] so deltas around a workload stay meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (an actual sort).
    pub misses: u64,
    /// Entries dropped to respect the capacity or byte bound.
    pub evictions: u64,
    /// Entries currently retained.
    pub entries: usize,
    /// Approximate bytes currently retained.
    pub bytes: usize,
    /// Lock-stripe acquisitions that found the stripe already held and had
    /// to wait — the serving-path contention signal.
    pub contended: u64,
    /// Number of lock stripes the cache is split across.
    pub stripes: usize,
}

#[derive(Default)]
struct Stripe {
    entries: HashMap<Key, Arc<Relation>>,
    /// Admission order within this stripe, with each entry's global
    /// admission sequence number. Fronts across stripes locate the
    /// globally oldest entry for FIFO eviction.
    order: VecDeque<(Key, u64)>,
    /// Per-source-relation `(hits, misses)`, keyed by `data_id`. Bounded:
    /// cleared wholesale when it outgrows the stripe by a wide margin.
    stats: HashMap<u64, (u64, u64)>,
}

/// A bounded memo table for [`Relation::sorted_by`] results, striped by
/// `data_id` hash so concurrent lookups of different relations don't
/// serialize. Counter reads ([`SortCache::counters`], [`SortCache::len`],
/// [`SortCache::byte_size`]) are lock-free atomics.
pub struct SortCache {
    stripes: Vec<Mutex<Stripe>>,
    capacity: usize,
    byte_budget: usize,
    /// Global admission sequence: orders entries across stripes for FIFO.
    seq: AtomicU64,
    /// Global monotone counters (survive [`SortCache::clear`]).
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    contended: AtomicU64,
    /// Current totals across all stripes.
    entries: AtomicUsize,
    bytes: AtomicUsize,
}

impl SortCache {
    /// An empty cache retaining at most `capacity` sorted views within the
    /// default byte budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, DEFAULT_BYTE_BUDGET)
    }

    /// An empty cache bounded by both an entry count and a total byte
    /// budget (approximate, via [`Relation::byte_size`]).
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        Self::with_stripes(capacity, byte_budget, stripe_count())
    }

    /// An empty cache with an explicit stripe count (tests; the global
    /// cache uses the `FDB_CACHE_STRIPES` knob).
    pub fn with_stripes(capacity: usize, byte_budget: usize, nstripes: usize) -> Self {
        Self {
            stripes: (0..nstripes.max(1)).map(|_| Mutex::new(Stripe::default())).collect(),
            capacity: capacity.max(1),
            byte_budget: byte_budget.max(1),
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// The process-wide cache used by the engines.
    pub fn global() -> &'static SortCache {
        static GLOBAL: OnceLock<SortCache> = OnceLock::new();
        GLOBAL.get_or_init(|| SortCache::new(DEFAULT_CAPACITY))
    }

    /// `rel` sorted lexicographically by `attrs` (stable), served from the
    /// cache when this exact `(content state, column order)` was sorted
    /// before.
    pub fn sorted_by(&self, rel: &Relation, attrs: &[usize]) -> Arc<Relation> {
        let id = rel.data_id();
        let si = self.stripe_of(id);
        {
            let mut stripe = self.lock(si);
            if let Some(hit) = stripe.entries.get(&(id, attrs.to_vec())) {
                let hit = Arc::clone(hit);
                stripe.stats.entry(id).or_default().0 += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        // Sort outside the lock: concurrent queries may redundantly sort
        // the same view, but never block each other on a large sort.
        let sorted = Arc::new(rel.sorted_by(attrs));
        let new_bytes = sorted.byte_size();
        {
            let mut stripe = self.lock(si);
            stripe.stats.entry(id).or_default().1 += 1;
            self.misses.fetch_add(1, Ordering::Relaxed);
            if stripe.stats.len() > 32 * self.capacity {
                stripe.stats.clear();
            }
            let key = (id, attrs.to_vec());
            if !stripe.entries.contains_key(&key) {
                // A view that alone exceeds the whole budget is served but
                // not admitted: caching it would evict every warm entry and
                // still leave the cache over budget.
                if new_bytes > self.byte_budget {
                    return sorted;
                }
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                stripe.order.push_back((key.clone(), seq));
                stripe.entries.insert(key, Arc::clone(&sorted));
                self.entries.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(new_bytes, Ordering::Relaxed);
            }
        }
        // Enforce the global bounds after admission (never holding two
        // stripe locks at once): a transient over-budget window is visible
        // only to concurrent counter polls, never to lookups.
        while self.entries.load(Ordering::Relaxed) > self.capacity
            || self.bytes.load(Ordering::Relaxed) > self.byte_budget
        {
            if !self.evict_oldest() {
                break;
            }
        }
        sorted
    }

    /// Removes the globally oldest entry (minimum admission sequence across
    /// stripe fronts). Returns false when the cache is empty. Locks one
    /// stripe at a time, so it can never deadlock with concurrent inserts.
    fn evict_oldest(&self) -> bool {
        loop {
            let mut best: Option<(usize, u64)> = None;
            for si in 0..self.stripes.len() {
                let stripe = self.lock(si);
                if let Some(&(_, seq)) = stripe.order.front() {
                    if best.is_none_or(|(_, b)| seq < b) {
                        best = Some((si, seq));
                    }
                }
            }
            let Some((si, seq)) = best else { return false };
            let mut stripe = self.lock(si);
            // The front may have changed between the scan and this lock
            // (a concurrent evictor got there first): rescan if so.
            match stripe.order.front() {
                Some(&(_, front)) if front == seq => {
                    let (key, _) = stripe.order.pop_front().expect("non-empty front");
                    if let Some(evicted) = stripe.entries.remove(&key) {
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        self.bytes.fetch_sub(evicted.byte_size(), Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    return true;
                }
                _ => continue,
            }
        }
    }

    /// `(hits, misses)` recorded for `rel`'s current content state. A miss
    /// is an actual sort; tests use this to assert that repeated queries
    /// sort each relation at most once.
    pub fn stats_for(&self, rel: &Relation) -> (u64, u64) {
        let id = rel.data_id();
        self.lock(self.stripe_of(id)).stats.get(&id).copied().unwrap_or((0, 0))
    }

    /// A lock-free snapshot of the global counters (monotone across
    /// [`SortCache::clear`]).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            stripes: self.stripes.len(),
        }
    }

    /// Number of sorted views currently retained (lock-free).
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True if no views are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of retained views (lock-free).
    pub fn byte_size(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Drops all retained views and statistics.
    pub fn clear(&self) {
        for si in 0..self.stripes.len() {
            let mut stripe = self.lock(si);
            let (n, b) = (
                stripe.entries.len(),
                stripe.entries.values().map(|v| v.byte_size()).sum::<usize>(),
            );
            stripe.entries.clear();
            stripe.order.clear();
            stripe.stats.clear();
            self.entries.fetch_sub(n, Ordering::Relaxed);
            self.bytes.fetch_sub(b, Ordering::Relaxed);
        }
    }

    fn stripe_of(&self, id: u64) -> usize {
        // data_ids are a monotone nonce; a multiplicative mix spreads
        // consecutive ids across stripes.
        (id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.stripes.len()
    }

    fn lock(&self, si: usize) -> std::sync::MutexGuard<'_, Stripe> {
        let m = &self.stripes[si];
        match m.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(|p| p.into_inner())
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;

    fn rel(rows: &[(i64, f64)]) -> Relation {
        Relation::from_rows(
            Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]),
            rows.iter().map(|&(k, x)| vec![Value::Int(k), Value::F64(x)]),
        )
        .unwrap()
    }

    #[test]
    fn second_sort_is_a_hit() {
        let cache = SortCache::new(8);
        let r = rel(&[(2, 1.0), (1, 2.0)]);
        let a = cache.sorted_by(&r, &[0]);
        let b = cache.sorted_by(&r, &[0]);
        assert!(Arc::ptr_eq(&a, &b), "same view served twice");
        assert_eq!(cache.stats_for(&r), (1, 1));
        assert_eq!(a.int_col(0), &[1, 2]);
    }

    #[test]
    fn distinct_column_orders_coexist() {
        let cache = SortCache::new(8);
        let r = rel(&[(2, 1.0), (1, 2.0)]);
        let by_k = cache.sorted_by(&r, &[0]);
        let by_x = cache.sorted_by(&r, &[1]);
        assert_eq!(by_k.int_col(0), &[1, 2]);
        assert_eq!(by_x.f64_col(1), &[1.0, 2.0]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn mutation_invalidates_by_identity() {
        let cache = SortCache::new(8);
        let mut r = rel(&[(2, 1.0), (1, 2.0)]);
        let before = cache.sorted_by(&r, &[0]);
        r.push_row(&[Value::Int(0), Value::F64(3.0)]).unwrap();
        let after = cache.sorted_by(&r, &[0]);
        assert_eq!(before.len(), 2, "stale view untouched");
        assert_eq!(after.int_col(0), &[0, 1, 2], "fresh state re-sorted");
        assert_eq!(cache.stats_for(&r), (0, 1), "stats follow the new state");
    }

    #[test]
    fn byte_budget_evicts_before_capacity() {
        // Each view is 2 rows × 2 cols × 8 bytes = 32 bytes; a 64-byte
        // budget holds two views even though the entry capacity is 8.
        let cache = SortCache::with_byte_budget(8, 64);
        let views =
            [rel(&[(1, 0.0), (2, 0.0)]), rel(&[(3, 0.0), (4, 0.0)]), rel(&[(5, 0.0), (6, 0.0)])];
        for v in &views {
            cache.sorted_by(v, &[0]);
        }
        assert_eq!(cache.len(), 2, "third view evicted the first by bytes");
        assert!(cache.byte_size() <= 64);
        cache.sorted_by(&views[0], &[0]);
        assert_eq!(cache.stats_for(&views[0]), (0, 2), "first view was re-sorted");
        assert_eq!(cache.stats_for(&views[2]), (0, 1));
    }

    #[test]
    fn over_budget_view_is_served_but_not_admitted() {
        // Budget 64 bytes; a 5-row view costs 80. It must neither evict
        // the warm entries nor be retained itself.
        let cache = SortCache::with_byte_budget(8, 64);
        let small = rel(&[(2, 0.0), (1, 0.0)]);
        cache.sorted_by(&small, &[0]);
        let big = rel(&[(5, 0.0), (4, 0.0), (3, 0.0), (2, 0.0), (1, 0.0)]);
        let sorted = cache.sorted_by(&big, &[0]);
        assert_eq!(sorted.int_col(0), &[1, 2, 3, 4, 5], "still sorted correctly");
        assert_eq!(cache.len(), 1, "big view not admitted");
        assert_eq!(cache.stats_for(&small), (0, 1), "warm entry survived");
        cache.sorted_by(&small, &[0]);
        assert_eq!(cache.stats_for(&small), (1, 1), "…and still hits");
        cache.sorted_by(&big, &[0]);
        assert_eq!(cache.stats_for(&big), (0, 2), "big view re-sorts every time");
    }

    #[test]
    fn global_counters_track_hits_misses_evictions() {
        let cache = SortCache::new(2);
        let (a, b, c) = (rel(&[(1, 0.0)]), rel(&[(2, 0.0)]), rel(&[(3, 0.0)]));
        cache.sorted_by(&a, &[0]); // miss
        cache.sorted_by(&a, &[0]); // hit
        cache.sorted_by(&b, &[0]); // miss
        cache.sorted_by(&c, &[0]); // miss + evicts `a`
        let k = cache.counters();
        assert_eq!((k.hits, k.misses, k.evictions), (1, 3, 1));
        assert_eq!(k.entries, 2);
        assert!(k.bytes > 0);
        assert!(k.stripes >= 1);
        cache.clear();
        let k = cache.counters();
        assert_eq!(k.hits, 1, "history survives clear");
        assert_eq!((k.entries, k.bytes), (0, 0));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = SortCache::new(2);
        let (a, b, c) = (rel(&[(1, 0.0)]), rel(&[(2, 0.0)]), rel(&[(3, 0.0)]));
        cache.sorted_by(&a, &[0]);
        cache.sorted_by(&b, &[0]);
        cache.sorted_by(&c, &[0]); // evicts `a`
        assert_eq!(cache.len(), 2);
        cache.sorted_by(&a, &[0]);
        assert_eq!(cache.stats_for(&a), (0, 2), "evicted entry re-sorts");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn fifo_holds_across_stripes() {
        // Entries land in different stripes (distinct data_ids), yet the
        // capacity bound still evicts in global admission order.
        let cache = SortCache::with_stripes(3, DEFAULT_BYTE_BUDGET, 4);
        let views: Vec<Relation> = (0..5).map(|k| rel(&[(k, 0.0)])).collect();
        for v in &views {
            cache.sorted_by(v, &[0]);
        }
        assert_eq!(cache.len(), 3);
        // Oldest two were evicted; newest three still hit.
        for v in &views[2..] {
            cache.sorted_by(v, &[0]);
            assert_eq!(cache.stats_for(v), (1, 1), "recent view retained");
        }
        for v in &views[..2] {
            cache.sorted_by(v, &[0]);
            assert_eq!(cache.stats_for(v), (0, 2), "oldest views evicted first");
        }
    }

    #[test]
    fn concurrent_lookups_share_one_cache_consistently() {
        let cache = std::sync::Arc::new(SortCache::with_stripes(64, DEFAULT_BYTE_BUDGET, 4));
        let views: std::sync::Arc<Vec<Relation>> =
            std::sync::Arc::new((0..16).map(|k| rel(&[(k, 0.0), (k - 1, 1.0)])).collect());
        let mut handles = Vec::new();
        for t in 0..4 {
            let (cache, views) = (std::sync::Arc::clone(&cache), std::sync::Arc::clone(&views));
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let v = &views[(t * 7 + round) % views.len()];
                    let sorted = cache.sorted_by(v, &[0]);
                    assert_eq!(sorted.len(), v.len());
                    assert!(sorted.int_col(0).windows(2).all(|w| w[0] <= w[1]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let k = cache.counters();
        assert_eq!(k.hits + k.misses, 200, "every lookup counted exactly once");
        assert!(k.entries <= 16 + k.evictions as usize);
    }
}
