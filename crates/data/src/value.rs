//! Scalar values with a total order and stable hashing.
//!
//! A [`Value`] is either an integer (`Int`) — used for keys, dictionary codes
//! of categorical attributes, and counts — or a double (`F64`) used for
//! numeric measures and features. Doubles are ordered with
//! [`f64::total_cmp`] and hashed by bit pattern so that values can serve as
//! group-by keys in hash maps, something plain `f64` cannot do.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar database value.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// 64-bit integer: join keys, categorical codes, counts.
    Int(i64),
    /// 64-bit float: numeric measures and continuous features.
    F64(f64),
}

impl Value {
    /// Returns the integer payload, or an error message naming the context.
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::F64(f) => f as i64,
        }
    }

    /// Returns the value as a double, converting integers losslessly for
    /// magnitudes below 2^53.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::F64(f) => f,
        }
    }

    /// True if this is an `Int`.
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// A rank used to order values of different types (Int < F64).
    #[inline]
    fn type_rank(self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::F64(_) => 1,
        }
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::F64(a), Value::F64(b)) => a.total_cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                state.write_i64(*i);
            }
            Value::F64(f) => {
                state.write_u8(1);
                state.write_u64(f.to_bits());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::F64(x) => write!(f, "{x}"),
        }
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    #[inline]
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    #[inline]
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn int_ordering_and_equality() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Int(5));
        assert_ne!(Value::Int(5), Value::F64(5.0));
    }

    #[test]
    fn f64_total_order_handles_nan() {
        let nan = Value::F64(f64::NAN);
        let one = Value::F64(1.0);
        // total_cmp puts NaN after all normal numbers.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(one.cmp(&nan), Ordering::Less);
    }

    #[test]
    fn f64_negative_zero_distinct_bits() {
        // Bit-pattern equality distinguishes -0.0 from 0.0: keys stay stable.
        assert_ne!(Value::F64(0.0), Value::F64(-0.0));
        assert!(Value::F64(-0.0) < Value::F64(0.0));
    }

    #[test]
    fn values_usable_as_hash_keys() {
        let mut m: HashMap<Value, u32> = HashMap::new();
        m.insert(Value::Int(3), 1);
        m.insert(Value::F64(3.0), 2);
        assert_eq!(m[&Value::Int(3)], 1);
        assert_eq!(m[&Value::F64(3.0)], 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Int(7).as_f64(), 7.0);
        assert_eq!(Value::F64(7.9).as_int(), 7);
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::F64(2.5));
        assert!(Value::Int(1).is_int());
        assert!(!Value::F64(1.0).is_int());
    }

    #[test]
    fn mixed_type_rank_order() {
        assert!(Value::Int(i64::MAX) < Value::F64(f64::NEG_INFINITY));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
    }
}
