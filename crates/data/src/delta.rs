//! Per-relation update batches with signed multiplicities — the delta
//! layer's data type.
//!
//! A [`Delta`] is the unit of change every maintenance path in the
//! workspace consumes: a batch of inserted and deleted rows against one
//! relation, each row carrying multiplicity `+1` or `-1` (the paper's §3.1
//! "additive inverse": a delete is an insert with negated multiplicity, so
//! every ring-valued view treats both uniformly). [`Database::apply_delta`]
//! is the ground-truth application — it mutates the catalog the way any
//! engine's cold recomputation will observe it, which is exactly the
//! contract the `MaintainableEngine` property tests hold incremental
//! maintenance to: `apply_delta` over a prepared state must agree with a
//! cold `run` over the mutated database.
//!
//! Deltas are *sequential*: rows apply in order, so a delta may delete a
//! row it inserted earlier in the same batch. Deletes of rows the database
//! (plus the delta's earlier inserts) does not hold are rejected with a
//! [`DataError`] — the catalog is a plain multiset and cannot represent
//! negative multiplicities.

use crate::catalog::Database;
use crate::error::DataError;
use crate::fault;
use crate::relation::Relation;
use crate::value::Value;
use crate::Result;
use std::sync::Arc;

/// A batch of signed row updates against one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The updated relation's name.
    pub relation: String,
    /// `(row, multiplicity)` in application order; multiplicity is `+1`
    /// (insert) or `-1` (delete), enforced by the constructors.
    rows: Vec<(Box<[Value]>, i64)>,
}

impl Delta {
    /// An empty delta against `relation`.
    pub fn new(relation: impl Into<String>) -> Self {
        Self { relation: relation.into(), rows: Vec::new() }
    }

    /// A single-row insert.
    pub fn insert(relation: impl Into<String>, row: Vec<Value>) -> Self {
        let mut d = Self::new(relation);
        d.push_insert(row);
        d
    }

    /// A single-row delete.
    pub fn delete(relation: impl Into<String>, row: Vec<Value>) -> Self {
        let mut d = Self::new(relation);
        d.push_delete(row);
        d
    }

    /// Appends an inserted row.
    pub fn push_insert(&mut self, row: Vec<Value>) {
        self.rows.push((row.into(), 1));
    }

    /// Appends a deleted row.
    pub fn push_delete(&mut self, row: Vec<Value>) {
        self.rows.push((row.into(), -1));
    }

    /// Builder-style [`Delta::push_insert`].
    pub fn with_insert(mut self, row: Vec<Value>) -> Self {
        self.push_insert(row);
        self
    }

    /// Builder-style [`Delta::push_delete`].
    pub fn with_delete(mut self, row: Vec<Value>) -> Self {
        self.push_delete(row);
        self
    }

    /// The `(row, ±1)` updates in application order.
    pub fn rows(&self) -> &[(Box<[Value]>, i64)] {
        &self.rows
    }

    /// The inserted rows, in order.
    pub fn inserts(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().filter(|(_, m)| *m > 0).map(|(r, _)| r.as_ref())
    }

    /// The deleted rows, in order.
    pub fn deletes(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().filter(|(_, m)| *m < 0).map(|(r, _)| r.as_ref())
    }

    /// Number of row updates in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the batch carries no updates.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends `other`'s updates after this delta's — group-commit
    /// coalescing for the serving front door. Both deltas must target the
    /// same relation ([`DataError::Invalid`] otherwise).
    ///
    /// Because deltas are *sequential*, the merged batch resolves exactly
    /// like applying `self` then `other` against the same base: a delete
    /// in `other` may now cancel a pending insert from `self` instead of
    /// claiming an already-appended base row, but the resulting multiset —
    /// and therefore every aggregate — is identical. Only the epoch count
    /// differs: one publish instead of two.
    pub fn merge_from(&mut self, other: &Delta) -> Result<()> {
        if self.relation != other.relation {
            return Err(DataError::Invalid(format!(
                "cannot coalesce delta on `{}` into delta on `{}`",
                other.relation, self.relation
            )));
        }
        self.rows.extend(other.rows.iter().cloned());
        Ok(())
    }
}

/// How to roll one applied [`Delta`] back — returned by
/// [`Database::apply_delta_undoable`] so callers that maintain derived
/// state (the `MaintainableEngine` wrapper in `fdb-core`) can restore the
/// pre-delta epoch *exactly* when their own maintenance fails after the
/// database commit succeeded.
///
/// **Restoration contract.** [`Database::undo_delta`] restores all three
/// identities of the pre-delta state, not just the rows:
///
/// * **content** — the relation holds exactly its pre-delta rows, in the
///   pre-delta order;
/// * **`data_id`** — the relation's [`Relation::data_id`] returns to the
///   exact pre-delta value, so every id-keyed cache entry
///   ([`crate::sortcache::SortCache`], `fdb-core`'s view cache) warmed
///   *before* the delta is valid again, and entries admitted under the
///   rolled-back post-delta id can never be served (that id is a nonce —
///   it is never issued twice);
/// * **[`Database::epoch`]** — the epoch counter returns to its
///   pre-delta value, so epoch-pinned snapshots taken before the failed
///   delta compare equal to the restored state and a serving layer never
///   publishes a half-epoch.
///
/// The undo is O(delta) for insert-only batches (truncate the appended
/// rows, restore the id) and O(1) for batches with deletes (the pre-delta
/// relation `Arc` is swapped back wholesale). It is only valid against
/// the state the apply left behind: undo immediately, before any further
/// mutation of the relation.
#[must_use = "dropping a DeltaUndo forfeits the only way to restore the \
              pre-delta epoch; use Database::apply_delta if rollback is \
              not needed"]
#[derive(Debug)]
pub struct DeltaUndo {
    relation: String,
    kind: UndoKind,
    /// The pre-delta [`Database::epoch`], restored on undo.
    epoch: u64,
}

#[derive(Debug)]
enum UndoKind {
    /// Insert-only commit: drop the appended rows, restore the id.
    Truncate { nrows: usize, data_id: u64 },
    /// Delete-path commit: put the pre-delta `Arc` back.
    Swap(Arc<Relation>),
}

impl DeltaUndo {
    /// The updated relation's name.
    pub fn relation(&self) -> &str {
        &self.relation
    }
}

impl Database {
    /// Applies `delta` to this database — the ground truth every
    /// incremental maintenance path is held to.
    ///
    /// Validation happens **before** any mutation, and the commit itself
    /// is atomic (a mid-commit failure — only reachable via injected
    /// faults — rolls the relation back), so a delta that returns `Err`
    /// leaves the database untouched, content and `data_id` both:
    ///
    /// * the relation must exist ([`DataError::UnknownRelation`]);
    /// * every row must match the relation's schema (arity and column
    ///   types — [`DataError::ArityMismatch`] / [`DataError::TypeMismatch`]);
    /// * every delete must match a row present at its point in the
    ///   sequence — a base row not already deleted, or an earlier insert
    ///   of the same batch ([`DataError::Invalid`] otherwise).
    ///
    /// Deletes remove one matching row each (multiset semantics); row
    /// order of the surviving base rows is preserved and inserts append.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<()> {
        self.apply_delta_undoable(delta).map(drop)
    }

    /// [`Database::apply_delta`], additionally returning the token that
    /// [`Database::undo_delta`] consumes to restore the pre-delta epoch —
    /// content, [`Relation::data_id`], **and** [`Database::epoch`] (see
    /// [`DeltaUndo`] for the exact restoration contract). A successful
    /// apply bumps the epoch by one; a failed one leaves it untouched.
    #[must_use = "the returned DeltaUndo is the only rollback token for \
                  this commit; use Database::apply_delta to discard it \
                  deliberately"]
    pub fn apply_delta_undoable(&mut self, delta: &Delta) -> Result<DeltaUndo> {
        fault::check_err("delta-validate")?;
        let rel = self.get(&delta.relation)?;
        let schema = rel.schema();
        let arity = schema.arity();
        // Schema validation for every row, before touching anything.
        for (row, _) in delta.rows() {
            if row.len() != arity {
                return Err(DataError::ArityMismatch { expected: arity, got: row.len() });
            }
            for (c, v) in row.iter().enumerate() {
                let attr = schema.attr(c);
                if attr.ty.is_int_backed() != v.is_int() {
                    return Err(DataError::TypeMismatch {
                        attribute: attr.name.clone(),
                        expected: if attr.ty.is_int_backed() { "Int" } else { "F64" },
                        got: format!("{v:?}"),
                    });
                }
            }
        }
        // Sequential resolution: a delete first cancels the latest pending
        // insert of the same batch, then claims an unclaimed matching base
        // row. All bookkeeping happens on indices so nothing mutates until
        // the whole batch is known to apply.
        let row_eq = |r: usize, row: &[Value]| (0..arity).all(|c| rel.value(r, c) == row[c]);
        let mut deleted_base: Vec<usize> = Vec::new();
        let mut pending: Vec<&[Value]> = Vec::new(); // surviving inserts
        for (row, mult) in delta.rows() {
            if *mult > 0 {
                pending.push(row.as_ref());
                continue;
            }
            if let Some(p) = pending.iter().rposition(|r| *r == row.as_ref()) {
                pending.remove(p);
                continue;
            }
            let base = (0..rel.len()).find(|&r| !deleted_base.contains(&r) && row_eq(r, row));
            match base {
                Some(r) => deleted_base.push(r),
                None => {
                    return Err(DataError::Invalid(format!(
                        "delete of a row not present in `{}`",
                        delta.relation
                    )))
                }
            }
        }
        // Commit. Validation above makes every push infallible; the only
        // other failure mode is an injected `delta-commit` fault, and both
        // paths stay atomic under it.
        let pending: Vec<Vec<Value>> = pending.into_iter().map(|r| r.to_vec()).collect();
        let epoch = self.epoch();
        if deleted_base.is_empty() {
            // Insert-only: append in place, with an O(delta) undo (no
            // copy-on-write of the whole relation just to keep a
            // snapshot). A mid-commit failure truncates back.
            let rel = self.get_mut(&delta.relation)?;
            let (nrows, data_id) = (rel.len(), rel.data_id());
            let commit = (|| {
                for row in &pending {
                    rel.push_row(row)?;
                }
                fault::check_err("delta-commit")
            })();
            if let Err(e) = commit {
                rel.rollback_append(nrows, data_id);
                return Err(e);
            }
            self.bump_epoch();
            Ok(DeltaUndo {
                relation: delta.relation.clone(),
                kind: UndoKind::Truncate { nrows, data_id },
                epoch,
            })
        } else {
            // Deletes rebuild the relation aside and swap it in whole:
            // nothing mutates until the replacement is fully built, and
            // the displaced pre-delta `Arc` is the O(1) undo snapshot.
            let old = self.get_shared(&delta.relation)?;
            let keep: Vec<usize> = (0..old.len()).filter(|r| !deleted_base.contains(r)).collect();
            let mut next = old.permuted(&keep);
            for row in &pending {
                next.push_row(row)?;
            }
            fault::check_err("delta-commit")?;
            self.swap_shared(&delta.relation, Arc::new(next));
            self.bump_epoch();
            Ok(DeltaUndo { relation: delta.relation.clone(), kind: UndoKind::Swap(old), epoch })
        }
    }

    /// Restores the pre-delta epoch an [`Database::apply_delta_undoable`]
    /// call committed past: content, [`Relation::data_id`], and
    /// [`Database::epoch`] return to exactly their pre-delta values, so
    /// signature- and id-keyed caches warmed before the delta are valid
    /// again and epoch-pinned snapshots compare equal to the restored
    /// state. Must run before any further mutation of the relation.
    pub fn undo_delta(&mut self, undo: DeltaUndo) -> Result<()> {
        match undo.kind {
            UndoKind::Truncate { nrows, data_id } => {
                self.get_mut(&undo.relation)?.rollback_append(nrows, data_id);
            }
            UndoKind::Swap(old) => {
                if self.swap_shared(&undo.relation, old).is_none() {
                    return Err(DataError::UnknownRelation(undo.relation));
                }
            }
        }
        self.set_epoch(undo.epoch);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::{AttrType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add(
            "R",
            Relation::from_rows(
                Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]),
                vec![
                    vec![Value::Int(1), Value::F64(1.0)],
                    vec![Value::Int(2), Value::F64(2.0)],
                    vec![Value::Int(1), Value::F64(1.0)],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn undo_restores_epoch_for_both_undo_kinds() {
        let mut db = db();
        assert_eq!(db.epoch(), 0);

        // Insert-only path (UndoKind::Truncate).
        let ins = Delta::new("R").with_insert(vec![Value::Int(7), Value::F64(7.0)]);
        let undo = db.apply_delta_undoable(&ins).unwrap();
        assert_eq!(db.epoch(), 1, "committed insert bumps the epoch");
        db.undo_delta(undo).unwrap();
        assert_eq!(db.epoch(), 0, "undo restores the pre-delta epoch");
        assert_eq!(db.get("R").unwrap().len(), 3);

        // Delete path (UndoKind::Swap).
        let del = Delta::new("R").with_delete(vec![Value::Int(2), Value::F64(2.0)]);
        let id_before = db.get("R").unwrap().data_id();
        let undo = db.apply_delta_undoable(&del).unwrap();
        assert_eq!(db.epoch(), 1);
        db.undo_delta(undo).unwrap();
        assert_eq!(db.epoch(), 0);
        assert_eq!(db.get("R").unwrap().data_id(), id_before, "data_id restored too");
    }

    #[test]
    fn insert_and_delete_apply_in_order() {
        let mut db = db();
        let d = Delta::new("R")
            .with_insert(vec![Value::Int(3), Value::F64(3.0)])
            .with_delete(vec![Value::Int(2), Value::F64(2.0)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.inserts().count(), 1);
        assert_eq!(d.deletes().count(), 1);
        db.apply_delta(&d).unwrap();
        let r = db.get("R").unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.int_col(0), &[1, 1, 3], "delete preserves base order, insert appends");
    }

    #[test]
    fn delete_cancels_same_batch_insert() {
        let mut db = db();
        let row = vec![Value::Int(9), Value::F64(9.0)];
        let d = Delta::new("R").with_insert(row.clone()).with_delete(row);
        db.apply_delta(&d).unwrap();
        assert_eq!(db.get("R").unwrap().len(), 3, "net no-op");
    }

    #[test]
    fn duplicate_rows_delete_one_at_a_time() {
        let mut db = db();
        let row = vec![Value::Int(1), Value::F64(1.0)];
        db.apply_delta(&Delta::delete("R", row.clone())).unwrap();
        assert_eq!(db.get("R").unwrap().len(), 2, "one of the two copies removed");
        db.apply_delta(&Delta::delete("R", row.clone())).unwrap();
        assert_eq!(db.get("R").unwrap().len(), 1);
        let err = db.apply_delta(&Delta::delete("R", row)).unwrap_err();
        assert!(matches!(err, DataError::Invalid(_)), "third delete has nothing to match");
    }

    #[test]
    fn rejected_deltas_leave_the_database_untouched() {
        let mut db = db();
        let id = db.get("R").unwrap().data_id();
        // Unknown relation.
        let err = db.apply_delta(&Delta::insert("Nope", vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, DataError::UnknownRelation(_)));
        // Arity mismatch.
        let err = db.apply_delta(&Delta::insert("R", vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { expected: 2, got: 1 }));
        // Type mismatch.
        let err = db
            .apply_delta(&Delta::insert("R", vec![Value::F64(1.0), Value::F64(1.0)]))
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        // A batch whose *second* update is invalid must not half-apply.
        let d = Delta::new("R")
            .with_insert(vec![Value::Int(7), Value::F64(7.0)])
            .with_delete(vec![Value::Int(42), Value::F64(42.0)]);
        assert!(db.apply_delta(&d).is_err());
        assert_eq!(db.get("R").unwrap().len(), 3);
        assert_eq!(db.get("R").unwrap().data_id(), id, "no mutation happened");
    }

    #[test]
    fn merged_batch_agrees_with_sequential_application() {
        let row = |k: i64, x: f64| vec![Value::Int(k), Value::F64(x)];
        // d2 deletes a row d1 inserted — across the merge boundary the
        // delete cancels the pending insert instead of claiming base rows.
        let d1 = Delta::new("R").with_insert(row(7, 7.0)).with_insert(row(8, 8.0));
        let d2 = Delta::new("R").with_delete(row(7, 7.0)).with_insert(row(9, 9.0));

        let mut sequential = db();
        sequential.apply_delta(&d1).unwrap();
        sequential.apply_delta(&d2).unwrap();

        let mut merged = d1.clone();
        merged.merge_from(&d2).unwrap();
        assert_eq!(merged.len(), d1.len() + d2.len());
        let mut grouped = db();
        grouped.apply_delta(&merged).unwrap();

        let (a, b) = (sequential.get("R").unwrap(), grouped.get("R").unwrap());
        let mut ka = a.int_col(0).to_vec();
        let mut kb = b.int_col(0).to_vec();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb, "same multiset either way");
        assert_eq!(sequential.epoch(), 2);
        assert_eq!(grouped.epoch(), 1, "group commit publishes one epoch");
    }

    #[test]
    fn merge_from_rejects_cross_relation_coalescing() {
        let mut d = Delta::insert("R", vec![Value::Int(1), Value::F64(1.0)]);
        let err = d.merge_from(&Delta::insert("S", vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, DataError::Invalid(_)));
        assert_eq!(d.len(), 1, "failed merge leaves the target untouched");
    }

    #[test]
    fn delta_accessors_roundtrip() {
        let d = Delta::insert("R", vec![Value::Int(1), Value::F64(1.0)]);
        assert!(!d.is_empty());
        assert_eq!(d.rows()[0].1, 1);
        let d = Delta::delete("R", vec![Value::Int(1), Value::F64(1.0)]);
        assert_eq!(d.rows()[0].1, -1);
    }
}
