//! Databases: named relations plus the dictionaries of their categorical
//! attributes, in a stable insertion order.

use crate::dict::Dictionary;
use crate::error::DataError;
use crate::relation::Relation;
use crate::Result;
use std::collections::HashMap;

/// A catalog of named relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    names: Vec<String>,
    relations: HashMap<String, Relation>,
    /// Dictionaries for categorical attributes, keyed by attribute name
    /// (attribute names are global in our star/snowflake schemas).
    dicts: HashMap<String, Dictionary>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a relation under `name`.
    pub fn add(&mut self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        if !self.relations.contains_key(&name) {
            self.names.push(name.clone());
        }
        self.relations.insert(name, rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations.get(name).ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Looks up a relation mutably.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations.get_mut(name).ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Relation names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(name, relation)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.names.iter().map(move |n| (n.as_str(), &self.relations[n]))
    }

    /// Total number of tuples across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Total approximate byte size across all relations.
    pub fn total_bytes(&self) -> usize {
        self.relations.values().map(Relation::byte_size).sum()
    }

    /// The dictionary for categorical attribute `attr`, creating it if absent.
    pub fn dict_mut(&mut self, attr: &str) -> &mut Dictionary {
        self.dicts.entry(attr.to_string()).or_default()
    }

    /// The dictionary for categorical attribute `attr`, if any.
    pub fn dict(&self, attr: &str) -> Option<&Dictionary> {
        self.dicts.get(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;

    #[test]
    fn add_get_and_order() {
        let mut db = Database::new();
        let r = Relation::from_rows(
            Schema::of(&[("a", AttrType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        db.add("R", r.clone());
        db.add("S", r.clone());
        assert_eq!(db.names(), &["R".to_string(), "S".to_string()]);
        assert_eq!(db.get("R").unwrap().len(), 2);
        assert!(db.get("T").is_err());
        assert_eq!(db.total_rows(), 4);
        assert_eq!(db.len(), 2);
        // Replacing keeps order and does not duplicate the name.
        db.add("R", r);
        assert_eq!(db.names().len(), 2);
    }

    #[test]
    fn dictionaries_per_attribute() {
        let mut db = Database::new();
        let c = db.dict_mut("city").encode("zurich");
        assert_eq!(c, 0);
        assert_eq!(db.dict("city").unwrap().decode(0), Some("zurich"));
        assert!(db.dict("country").is_none());
    }
}
