//! Databases: named relations plus the dictionaries of their categorical
//! attributes, in a stable insertion order.
//!
//! Relations are held as `Arc<Relation>` so databases can share unmutated
//! tables structurally: [`Database::shard`] partitions one fact relation
//! into per-shard databases whose dimension tables are the *same* `Arc`s —
//! same memory, same [`Relation::data_id`] — which is what lets the
//! cross-query [`SortCache`](crate::sortcache::SortCache) serve one sorted
//! dimension view to every shard. Mutation through [`Database::get_mut`]
//! is copy-on-write (`Arc::make_mut`), so sharing is never observable.

use crate::dict::Dictionary;
use crate::error::DataError;
use crate::relation::Relation;
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// A catalog of named relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    names: Vec<String>,
    relations: HashMap<String, Arc<Relation>>,
    /// Dictionaries for categorical attributes, keyed by attribute name
    /// (attribute names are global in our star/snowflake schemas).
    /// `Arc`-held for the same reason as relations: shard databases bump
    /// a refcount per dictionary instead of copying string tables, and
    /// [`Database::dict_mut`] is copy-on-write.
    dicts: HashMap<String, Arc<Dictionary>>,
    /// Update-batch epoch: bumped once per successfully committed
    /// [`Database::apply_delta`] (and restored by
    /// [`Database::undo_delta`]). Snapshots pin an epoch, so readers can
    /// tell *which* database state they are serving — the concurrency
    /// story of `fdb-core`'s `ServingEngine`.
    epoch: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a relation under `name`.
    pub fn add(&mut self, name: impl Into<String>, rel: Relation) {
        self.add_shared(name, Arc::new(rel));
    }

    /// Adds (or replaces) a relation under `name`, sharing an existing
    /// `Arc` instead of taking ownership — the sharding primitive: shard
    /// databases alias their dimension tables this way.
    pub fn add_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        let name = name.into();
        if !self.relations.contains_key(&name) {
            self.names.push(name.clone());
        }
        self.relations.insert(name, rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .map(|r| r.as_ref())
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Looks up a relation as a shared handle (no copy).
    pub fn get_shared(&self, name: &str) -> Result<Arc<Relation>> {
        self.relations
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Looks up a relation mutably. Copy-on-write: if the relation is
    /// shared with another database (e.g. across shards), the shared copy
    /// is detached first, so mutation never leaks into siblings.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Swaps the `Arc` stored under an **existing** `name`, returning the
    /// previous handle — the delta layer's wholesale-replace commit and
    /// undo primitive: unlike [`Database::get_mut`] it never detaches
    /// (copies) the old content, so the caller can keep it as an O(1)
    /// rollback snapshot. `None` (and no change) if `name` is absent.
    pub(crate) fn swap_shared(&mut self, name: &str, rel: Arc<Relation>) -> Option<Arc<Relation>> {
        self.relations.get_mut(name).map(|slot| std::mem::replace(slot, rel))
    }

    /// The update-batch epoch: `0` for a freshly built database, `+1`
    /// per committed [`Database::apply_delta`]. Clones (and
    /// [`Database::snapshot`]s) carry the epoch of the state they pin;
    /// ad-hoc mutation through [`Database::get_mut`] does **not** bump it
    /// — the epoch counts *delta batches*, the unit of change the serving
    /// layer publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A consistent snapshot of the current epoch: an O(#relations)
    /// clone of the `Arc<Relation>` map (no row data is copied — the
    /// copy-on-write discipline of [`Database::get_mut`] keeps sharing
    /// unobservable). Readers holding a snapshot see exactly the rows,
    /// [`Relation::data_id`]s, and [`Database::epoch`] of the moment it
    /// was taken, no matter how many deltas a writer applies to the
    /// original afterwards.
    pub fn snapshot(&self) -> Database {
        self.clone()
    }

    /// Bumps the update-batch epoch — the delta layer's commit marker.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Restores a pre-delta epoch (the undo path's twin of
    /// [`Database::bump_epoch`]).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Relation names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(name, relation)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.names.iter().map(move |n| (n.as_str(), self.relations[n].as_ref()))
    }

    /// Total number of tuples across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Total approximate byte size across all relations.
    pub fn total_bytes(&self) -> usize {
        self.relations.values().map(|r| r.byte_size()).sum()
    }

    /// The dictionary for categorical attribute `attr`, creating it if
    /// absent. Copy-on-write when the dictionary is shared across shards.
    pub fn dict_mut(&mut self, attr: &str) -> &mut Dictionary {
        Arc::make_mut(self.dicts.entry(attr.to_string()).or_default())
    }

    /// The dictionary for categorical attribute `attr`, if any.
    pub fn dict(&self, attr: &str) -> Option<&Dictionary> {
        self.dicts.get(attr).map(|d| d.as_ref())
    }

    /// Partitions the fact relation `fact` into `n` contiguous row chunks
    /// and returns one database per chunk. Every other relation (and the
    /// dictionaries) is **shared, not copied**: the shard databases hold
    /// the same `Arc<Relation>`s, so dimension tables keep their
    /// [`Relation::data_id`] and a sort cache warmed by one shard serves
    /// all of them. Each fact chunk is fresh content with a fresh id.
    ///
    /// Chunks differ in size by at most one row; when `n` exceeds the fact
    /// cardinality the trailing shards hold an empty fact relation (a join
    /// over an empty relation is empty, which every engine handles).
    ///
    /// Because every aggregate the engines evaluate is a sum over the
    /// join and the join is linear in each input relation, the results of
    /// the shards merge additively — see `fdb-core::shard`.
    pub fn shard(&self, fact: &str, n: usize) -> Result<Vec<Database>> {
        if n == 0 {
            return Err(DataError::Invalid("shard count must be >= 1".into()));
        }
        let fact_rel = self.get_shared(fact)?;
        let rows = fact_rel.len();
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            // Balanced contiguous ranges: the first `rows % n` chunks get
            // one extra row.
            let lo = (rows * k) / n;
            let hi = (rows * (k + 1)) / n;
            let mut db = Database {
                names: self.names.clone(),
                relations: self.relations.clone(),
                dicts: self.dicts.clone(),
                epoch: self.epoch,
            };
            db.relations.insert(fact.to_string(), Arc::new(fact_rel.row_range(lo..hi)));
            shards.push(db);
        }
        Ok(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;

    fn int_rel(vals: &[i64]) -> Relation {
        Relation::from_rows(
            Schema::of(&[("a", AttrType::Int)]),
            vals.iter().map(|&v| vec![Value::Int(v)]),
        )
        .unwrap()
    }

    #[test]
    fn add_get_and_order() {
        let mut db = Database::new();
        let r = int_rel(&[1, 2]);
        db.add("R", r.clone());
        db.add("S", r.clone());
        assert_eq!(db.names(), &["R".to_string(), "S".to_string()]);
        assert_eq!(db.get("R").unwrap().len(), 2);
        assert!(db.get("T").is_err());
        assert_eq!(db.total_rows(), 4);
        assert_eq!(db.len(), 2);
        // Replacing keeps order and does not duplicate the name.
        db.add("R", r);
        assert_eq!(db.names().len(), 2);
    }

    #[test]
    fn dictionaries_per_attribute() {
        let mut db = Database::new();
        let c = db.dict_mut("city").encode("zurich");
        assert_eq!(c, 0);
        assert_eq!(db.dict("city").unwrap().decode(0), Some("zurich"));
        assert!(db.dict("country").is_none());
    }

    #[test]
    fn get_mut_is_copy_on_write_across_clones() {
        let mut db = Database::new();
        db.add("R", int_rel(&[1, 2]));
        let alias = db.clone();
        db.get_mut("R").unwrap().push_row(&[Value::Int(3)]).unwrap();
        assert_eq!(db.get("R").unwrap().len(), 3);
        assert_eq!(alias.get("R").unwrap().len(), 2, "alias untouched");
    }

    #[test]
    fn shard_partitions_fact_and_shares_dimensions() {
        let mut db = Database::new();
        db.add("Fact", int_rel(&[0, 1, 2, 3, 4, 5, 6]));
        db.add("Dim", int_rel(&[10, 20]));
        db.dict_mut("city").encode("zurich");
        let shards = db.shard("Fact", 3).unwrap();
        assert_eq!(shards.len(), 3);
        // Row-exact partition: sizes 2/3 differing by at most one, contents
        // concatenating back to the original.
        let mut all = Vec::new();
        for s in &shards {
            let f = s.get("Fact").unwrap();
            assert!(f.len() == 2 || f.len() == 3);
            all.extend_from_slice(f.int_col(0));
            // Dimension tables are the same allocation and content state.
            assert_eq!(s.get("Dim").unwrap().data_id(), db.get("Dim").unwrap().data_id());
            assert!(Arc::ptr_eq(&s.get_shared("Dim").unwrap(), &db.get_shared("Dim").unwrap()));
            // Fact chunks are fresh content.
            assert_ne!(f.data_id(), db.get("Fact").unwrap().data_id());
            // Dictionaries and name order travel with the shard.
            assert_eq!(s.dict("city").unwrap().decode(0), Some("zurich"));
            assert_eq!(s.names(), db.names());
        }
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn snapshot_pins_epoch_and_content_against_later_deltas() {
        use crate::delta::Delta;
        let mut db = Database::new();
        db.add("R", int_rel(&[1, 2]));
        assert_eq!(db.epoch(), 0);
        let snap = db.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert!(Arc::ptr_eq(&snap.get_shared("R").unwrap(), &db.get_shared("R").unwrap()));
        db.apply_delta(&Delta::insert("R", vec![Value::Int(3)])).unwrap();
        assert_eq!(db.epoch(), 1, "a committed delta bumps the epoch");
        assert_eq!(snap.epoch(), 0, "the snapshot stays pinned");
        assert_eq!(snap.get("R").unwrap().len(), 2, "…content included");
        assert_eq!(db.get("R").unwrap().len(), 3);
        // A failed delta does not move the epoch.
        assert!(db.apply_delta(&Delta::delete("R", vec![Value::Int(99)])).is_err());
        assert_eq!(db.epoch(), 1);
        // Ad-hoc mutation does not either: the epoch counts delta batches.
        db.get_mut("R").unwrap().push_row(&[Value::Int(4)]).unwrap();
        assert_eq!(db.epoch(), 1);
        // Shards inherit the epoch of the state they partition.
        assert_eq!(db.shard("R", 2).unwrap()[0].epoch(), 1);
    }

    #[test]
    fn shard_more_ways_than_rows_gives_empty_tails() {
        let mut db = Database::new();
        db.add("Fact", int_rel(&[7, 8]));
        let shards = db.shard("Fact", 5).unwrap();
        let sizes: Vec<usize> = shards.iter().map(|s| s.get("Fact").unwrap().len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 2);
        assert!(sizes.iter().all(|&s| s <= 1));
        assert!(db.shard("Fact", 0).is_err());
        assert!(db.shard("Nope", 2).is_err());
    }
}
