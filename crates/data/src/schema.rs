//! Schemas: typed, named attributes.
//!
//! An attribute is `Int` (keys, counts), `Double` (continuous measures), or
//! `Categorical` — stored as dictionary-encoded `i64` codes but flagged so
//! that the ML layer knows to treat it with the sparse-tensor group-by
//! encoding rather than as a number (paper §2.1).

use crate::error::DataError;
use crate::Result;
use std::sync::Arc;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit integer: join keys, dates, identifiers used as keys.
    Int,
    /// 64-bit float: continuous features and measures.
    Double,
    /// Dictionary-encoded categorical value (stored as `i64` code).
    Categorical,
}

impl AttrType {
    /// True if values of this type are stored in an integer column.
    pub fn is_int_backed(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Categorical)
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Self { name: name.into(), ty }
    }

    /// An `Int` attribute.
    pub fn int(name: impl Into<String>) -> Self {
        Self::new(name, AttrType::Int)
    }

    /// A `Double` attribute.
    pub fn double(name: impl Into<String>) -> Self {
        Self::new(name, AttrType::Double)
    }

    /// A `Categorical` attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self::new(name, AttrType::Categorical)
    }
}

/// An ordered list of attributes with unique names.
///
/// Schemas are cheap to clone (attributes live behind an `Arc`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Arc<[Attribute]>,
}

impl Schema {
    /// Builds a schema, validating name uniqueness.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(DataError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Self { attrs: attrs.into() })
    }

    /// Builds a schema from `(name, type)` pairs; panics on duplicates.
    /// Intended for tests and generators with static schemas.
    pub fn of(pairs: &[(&str, AttrType)]) -> Self {
        Self::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
            .expect("static schema must have unique names")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at `idx`.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Position of `name`, as a `Result` with a useful error.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }

    /// True if `name` is an attribute of this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// The schema restricted to the given attribute positions (in that order).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema { attrs: indices.iter().map(|&i| self.attrs[i].clone()).collect() }
    }

    /// Names shared with another schema, in this schema's order. These are the
    /// natural-join attributes.
    pub fn common_attrs(&self, other: &Schema) -> Vec<String> {
        self.attrs.iter().filter(|a| other.contains(&a.name)).map(|a| a.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![Attribute::int("a"), Attribute::double("a")]).unwrap_err();
        assert_eq!(err, DataError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn lookup_and_projection() {
        let s = Schema::of(&[
            ("item", AttrType::Int),
            ("price", AttrType::Double),
            ("color", AttrType::Categorical),
        ]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("nope").is_err());
        let p = s.project(&[2, 0]);
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["color", "item"]);
        assert!(s.attr(2).ty.is_int_backed());
        assert!(!s.attr(1).ty.is_int_backed());
    }

    #[test]
    fn common_attrs_in_left_order() {
        let r = Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int), ("x", AttrType::Double)]);
        let s = Schema::of(&[("b", AttrType::Int), ("a", AttrType::Int), ("y", AttrType::Double)]);
        assert_eq!(r.common_attrs(&s), vec!["a".to_string(), "b".to_string()]);
    }
}
