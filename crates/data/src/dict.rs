//! Dictionary encoding for categorical attributes.
//!
//! Categorical attributes (city names, item descriptions, zip codes…) are
//! encoded once at load time into dense integer codes `0..n`. The sparse
//! tensor representation of Section 2.1 of the paper ("instead of one-hot
//! encoding them, we only represent the pairs of categories that appear in
//! the data") then works directly over these codes.

use std::collections::HashMap;

/// A bidirectional mapping between strings and dense `i64` codes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    terms: Vec<String>,
    codes: HashMap<String, i64>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the code for `term`, inserting it if unseen.
    pub fn encode(&mut self, term: &str) -> i64 {
        if let Some(&c) = self.codes.get(term) {
            return c;
        }
        let c = self.terms.len() as i64;
        self.terms.push(term.to_string());
        self.codes.insert(term.to_string(), c);
        c
    }

    /// Returns the code for `term` if it has been seen.
    pub fn code(&self, term: &str) -> Option<i64> {
        self.codes.get(term).copied()
    }

    /// Returns the term for `code`, if in range.
    pub fn decode(&self, code: i64) -> Option<&str> {
        usize::try_from(code).ok().and_then(|i| self.terms.get(i)).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been encoded.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(code, term)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as i64, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.encode("zurich");
        let b = d.encode("oxford");
        let a2 = d.encode("zurich");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        for term in ["a", "b", "c"] {
            let c = d.encode(term);
            assert_eq!(d.decode(c), Some(term));
            assert_eq!(d.code(term), Some(c));
        }
        assert_eq!(d.decode(99), None);
        assert_eq!(d.decode(-1), None);
        assert_eq!(d.code("missing"), None);
    }

    #[test]
    fn iter_in_code_order() {
        let mut d = Dictionary::new();
        d.encode("x");
        d.encode("y");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }
}
