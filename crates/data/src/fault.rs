//! Deterministic, seedable fault injection for crash-consistency tests.
//!
//! The mutation and execution paths are sprinkled with named *fault
//! sites* (`fault::check("delta-commit")`, …). Without the
//! `fault-injection` cargo feature every check compiles to an inlined
//! `Ok(())` — zero branches, zero atomics, zero cost (the
//! `fault_overhead` row of `BENCH_engines.json` holds that claim to a
//! measurement). With the feature on, a process-global [`FaultPlan`]
//! decides per site and per occurrence whether the site fires, either as
//! a structured [`DataError::Injected`] or as a panic (exercising the
//! `catch_unwind` containment of the morsel workers and the maintenance
//! wrapper).
//!
//! Plans are **deterministic**: a rule either pins an exact occurrence
//! (`fail_at(site, nth)`) or draws from a splitmix64 stream keyed by
//! `(seed, site, occurrence)` (`fail_with_probability`), so a failing
//! chaos run reproduces from its seed alone — no ambient randomness.
//!
//! The plan is global, not thread-local, because the interesting sites
//! run on worker threads the test did not spawn. Tests that install a
//! plan must serialize among themselves and [`clear`] when done; the
//! chaos suite (`tests/fault_agree.rs`) holds a shared mutex for this.
//!
//! Live sites, by layer: `delta-validate` / `delta-commit` (this crate's
//! delta application), `csv-ingest` (CSV import), `cache-admit` /
//! `cache-evict` (sort cache), `morsel-exec` (parallel workers),
//! `maintain-view` / `maintain-publish` (incremental maintenance in
//! `fdb-core`), and the serving front door's `queue-admit` /
//! `writer-drain` / `breaker-trip` (admission, batch drain, and a forced
//! circuit-breaker trip).

#[cfg(feature = "fault-injection")]
use crate::error::DataError;
use crate::Result;

/// How a firing site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The site returns `Err(DataError::Injected(_))`.
    Error,
    /// The site panics (contained by the panic-safe execution paths).
    Panic,
}

/// When a rule fires: at one exact occurrence, or per-occurrence with a
/// deterministic pseudo-random draw.
#[derive(Debug, Clone, PartialEq)]
enum Trigger {
    /// Fire exactly at the `n`-th occurrence of the site (1-based).
    Nth(u64),
    /// Fire on each occurrence with this probability, drawn from the
    /// splitmix64 stream keyed by `(seed, site, occurrence)`.
    Probability(f64),
}

#[derive(Debug, Clone, PartialEq)]
struct Rule {
    site: String,
    kind: FaultKind,
    trigger: Trigger,
}

/// A deterministic schedule of injected failures, keyed by site name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan (no site ever fires) with the given seed for the
    /// probabilistic rules.
    pub fn new(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// Errors the `nth` occurrence (1-based) of `site`.
    pub fn fail_at(self, site: impl Into<String>, nth: u64) -> Self {
        self.rule(site, FaultKind::Error, Trigger::Nth(nth.max(1)))
    }

    /// Panics at the `nth` occurrence (1-based) of `site`.
    pub fn panic_at(self, site: impl Into<String>, nth: u64) -> Self {
        self.rule(site, FaultKind::Panic, Trigger::Nth(nth.max(1)))
    }

    /// Errors each occurrence of `site` with probability `p` (clamped to
    /// `[0, 1]`), deterministically in `(seed, site, occurrence)`.
    pub fn fail_with_probability(self, site: impl Into<String>, p: f64) -> Self {
        self.rule(site, FaultKind::Error, Trigger::Probability(p.clamp(0.0, 1.0)))
    }

    /// Panics each occurrence of `site` with probability `p`.
    pub fn panic_with_probability(self, site: impl Into<String>, p: f64) -> Self {
        self.rule(site, FaultKind::Panic, Trigger::Probability(p.clamp(0.0, 1.0)))
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn rule(mut self, site: impl Into<String>, kind: FaultKind, trigger: Trigger) -> Self {
        self.rules.push(Rule { site: site.into(), kind, trigger });
        self
    }

    /// The fault the `occ`-th occurrence (1-based) of `site` should
    /// raise, if any. First matching rule wins.
    #[cfg_attr(not(any(test, feature = "fault-injection")), allow(dead_code))]
    fn decide(&self, site: &str, occ: u64) -> Option<FaultKind> {
        for r in self.rules.iter().filter(|r| r.site == site) {
            let fire = match r.trigger {
                Trigger::Nth(n) => occ == n,
                Trigger::Probability(p) => {
                    let h = splitmix64(
                        self.seed ^ site_hash(site) ^ occ.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    // 53 uniform mantissa bits → a draw in [0, 1).
                    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
                }
            };
            if fire {
                return Some(r.kind);
            }
        }
        None
    }
}

/// The splitmix64 mixer — tiny, seedable, and dependency-free.
#[cfg_attr(not(any(test, feature = "fault-injection")), allow(dead_code))]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the site name: stable across runs (unlike `DefaultHasher`).
#[cfg_attr(not(any(test, feature = "fault-injection")), allow(dead_code))]
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(feature = "fault-injection")]
mod active {
    use super::{FaultKind, FaultPlan};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    struct State {
        plan: FaultPlan,
        /// Occurrences seen per site since `install`.
        counts: HashMap<String, u64>,
        /// Faults raised per site since `install`.
        hits: HashMap<String, u64>,
    }

    static STATE: Mutex<Option<State>> = Mutex::new(None);
    static MUTED: AtomicBool = AtomicBool::new(false);

    fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
        STATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn install(plan: FaultPlan) {
        *lock() = Some(State { plan, counts: HashMap::new(), hits: HashMap::new() });
        MUTED.store(false, Ordering::Relaxed);
    }

    pub fn clear() {
        *lock() = None;
        MUTED.store(false, Ordering::Relaxed);
    }

    pub fn mute(m: bool) {
        MUTED.store(m, Ordering::Relaxed);
    }

    pub fn hit_count(site: &str) -> u64 {
        lock().as_ref().and_then(|s| s.hits.get(site).copied()).unwrap_or(0)
    }

    pub fn total_hits() -> u64 {
        lock().as_ref().map(|s| s.hits.values().sum()).unwrap_or(0)
    }

    pub fn evaluate(site: &str) -> Option<FaultKind> {
        if MUTED.load(Ordering::Relaxed) {
            return None;
        }
        let mut guard = lock();
        let st = guard.as_mut()?;
        let occ = {
            let c = st.counts.entry(site.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        let kind = st.plan.decide(site, occ)?;
        *st.hits.entry(site.to_string()).or_insert(0) += 1;
        Some(kind)
    }
}

// --- Hot-path checks -------------------------------------------------------
//
// Without the feature these are inlined constants; the call sites carry no
// branch on the plan, no lock, no atomic.

/// True when the crate was compiled with the `fault-injection` feature —
/// i.e. the named sites below are live rather than inlined-out no-ops.
/// Benchmarks record this so an overhead number can be read in context.
pub const fn injection_enabled() -> bool {
    cfg!(feature = "fault-injection")
}

/// Raises the site's scheduled fault: `Err` for [`FaultKind::Error`],
/// `panic!` for [`FaultKind::Panic`]. Use only at sites whose callers
/// contain unwinding (morsel workers, the maintenance wrapper).
#[cfg(feature = "fault-injection")]
pub fn check(site: &'static str) -> Result<()> {
    match active::evaluate(site) {
        None => Ok(()),
        Some(FaultKind::Error) => Err(DataError::Injected(site.to_string())),
        Some(FaultKind::Panic) => panic!("injected fault at `{site}`"),
    }
}

/// See the feature-gated [`check`]; compiled out to `Ok(())`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn check(_site: &'static str) -> Result<()> {
    Ok(())
}

/// Like [`check`] but demotes [`FaultKind::Panic`] to `Err` — for sites
/// where unwinding cannot be rolled back (mid-commit mutation of a
/// relation, CSV ingest loops).
#[cfg(feature = "fault-injection")]
pub fn check_err(site: &'static str) -> Result<()> {
    match active::evaluate(site) {
        None => Ok(()),
        Some(_) => Err(DataError::Injected(site.to_string())),
    }
}

/// See the feature-gated [`check_err`]; compiled out to `Ok(())`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn check_err(_site: &'static str) -> Result<()> {
    Ok(())
}

/// True when the site fires, for infallible degradation points (a cache
/// admission that silently fails, a forced eviction) where neither `Err`
/// nor panic can propagate.
#[cfg(feature = "fault-injection")]
pub fn trip(site: &'static str) -> bool {
    active::evaluate(site).is_some()
}

/// See the feature-gated [`trip`]; compiled out to `false`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn trip(_site: &'static str) -> bool {
    false
}

// --- Plan management (no-ops without the feature) --------------------------

/// Installs `plan` as the process-global fault schedule, resetting all
/// occurrence counters and hit counts.
pub fn install(plan: FaultPlan) {
    #[cfg(feature = "fault-injection")]
    active::install(plan);
    #[cfg(not(feature = "fault-injection"))]
    let _ = plan;
}

/// Removes any installed plan; every site stops firing.
pub fn clear() {
    #[cfg(feature = "fault-injection")]
    active::clear();
}

/// Temporarily suppresses all sites without touching the plan or its
/// counters — verification code (cold recomputes, shadow applies) runs
/// under `mute(true)` so it neither fires nor consumes occurrences.
pub fn mute(m: bool) {
    #[cfg(feature = "fault-injection")]
    active::mute(m);
    #[cfg(not(feature = "fault-injection"))]
    let _ = m;
}

/// Faults raised at `site` since the last [`install`] (0 without the
/// feature or a plan).
pub fn hit_count(site: &str) -> u64 {
    #[cfg(feature = "fault-injection")]
    {
        active::hit_count(site)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        0
    }
}

/// Faults raised across all sites since the last [`install`].
pub fn total_hits() -> u64 {
    #[cfg(feature = "fault-injection")]
    {
        active::total_hits()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_seed_site_occurrence() {
        let p = FaultPlan::new(42).fail_with_probability("s", 0.5);
        let a: Vec<bool> = (1..=64).map(|o| p.decide("s", o).is_some()).collect();
        let b: Vec<bool> = (1..=64).map(|o| p.decide("s", o).is_some()).collect();
        assert_eq!(a, b, "same plan, same draws");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f), "p=0.5 fires sometimes");
        let q = FaultPlan::new(43).fail_with_probability("s", 0.5);
        let c: Vec<bool> = (1..=64).map(|o| q.decide("s", o).is_some()).collect();
        assert_ne!(a, c, "different seed, different draws");
        // Unknown sites never fire; nth rules pin one occurrence.
        assert!(p.decide("other", 1).is_none());
        let n = FaultPlan::new(0).panic_at("s", 3);
        assert_eq!(n.decide("s", 3), Some(FaultKind::Panic));
        assert!(n.decide("s", 2).is_none() && n.decide("s", 4).is_none());
        // Probability extremes.
        let always = FaultPlan::new(0).fail_with_probability("s", 1.0);
        assert!((1..=16).all(|o| always.decide("s", o) == Some(FaultKind::Error)));
        let never = FaultPlan::new(0).fail_with_probability("s", 0.0);
        assert!((1..=16).all(|o| never.decide("s", o).is_none()));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn installed_plans_fire_count_and_mute() {
        // Global state: this test and the rest of the feature-gated suite
        // never run in the same binary as other installers (unit tests of
        // other crates are separate processes), so a plain install is safe.
        install(FaultPlan::new(7).fail_at("unit-site", 2));
        assert!(check("unit-site").is_ok(), "first occurrence passes");
        let err = check("unit-site").unwrap_err();
        assert!(matches!(err, DataError::Injected(_)));
        assert_eq!(hit_count("unit-site"), 1);
        assert_eq!(total_hits(), 1);
        assert!(check("unit-site").is_ok(), "third occurrence passes");
        // Muted checks neither fire nor consume occurrences.
        install(FaultPlan::new(7).fail_at("unit-site", 1));
        mute(true);
        assert!(check("unit-site").is_ok());
        mute(false);
        assert!(check("unit-site").is_err(), "occurrence 1 still pending after mute");
        // `check_err` demotes panics; `trip` reports without raising.
        install(FaultPlan::new(7).panic_at("unit-site", 1).panic_at("trip-site", 1));
        assert!(check_err("unit-site").is_err(), "panic demoted to Err");
        assert!(trip("trip-site"));
        assert!(!trip("trip-site"), "occurrence 2 has no rule");
        clear();
        assert!(check("unit-site").is_ok());
        assert_eq!(total_hits(), 0);
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn compiled_out_checks_are_inert() {
        install(FaultPlan::new(1).fail_with_probability("s", 1.0));
        assert!(check("s").is_ok());
        assert!(check_err("s").is_ok());
        assert!(!trip("s"));
        assert_eq!(total_hits(), 0);
        clear();
    }
}
