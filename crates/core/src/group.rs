//! Dense code-indexed group accumulators.
//!
//! Categorical attributes are dictionary-encoded into dense `i64` codes at
//! load time, so a group-by key over attributes with known code ranges is
//! itself a dense integer: the **mixed-radix composite code**
//! `Σ (keyᵢ − minᵢ) · strideᵢ`. When the product of the per-attribute
//! domain sizes is small, a group accumulator can be a flat `Vec<f64>`
//! indexed by that code — no `Box<[i64]>` key allocation, no hashing, one
//! multiply-add per attribute per probe. This is the group-indexing half of
//! the paper's "specialize the engine to the data" claim (LMFAO §4): the
//! same trick that turns one-hot encodings into sparse tensors turns group
//! hash tables into arrays.
//!
//! [`GroupIndex`] is the accumulator: dense when a [`KeySpace`] fits under
//! the caller's code limit, a classical `HashMap<Box<[i64]>, Vec<f64>>`
//! fallback otherwise (unknown or unbounded domains). Both variants expose
//! one probe/iterate/merge API, and — like the hash maps they replace —
//! only *touched* groups are represented, so the "exactly-zero groups are
//! dropped" contract of [`crate::ir::BatchResult`] is unaffected by the
//! representation choice.

use std::collections::HashMap;

/// Default ceiling on composite group codes per dense accumulator
/// (the [`crate::EngineConfig::dense_limit`] default).
pub const DEFAULT_DENSE_GROUPS: u64 = 1024;

/// Reusable buffers for the radix-partitioned scatter
/// ([`GroupIndex::add_codes_multi_partitioned`]): per-bucket counts plus
/// the stably bucket-sorted codes and their payload rows. The values are
/// permuted *with* their codes so the per-bucket accumulate pass reads
/// everything sequentially — the only non-streaming access left is the
/// bucket-sized payload window itself. Morsel workers keep one scratch per
/// thread so the partitioning pass stops allocating after warm-up.
#[derive(Debug, Default)]
pub struct ScatterScratch {
    counts: Vec<usize>,
    codes: Vec<u32>,
    vals: Vec<f64>,
}

/// Ceiling on composite join-key codes per dense view map. Join-key spaces
/// cost 4 bytes per code (a slot table), so they may be much larger than
/// group spaces, which cost a full payload vector per code.
pub const DENSE_KEY_LIMIT: u64 = 1 << 20;

/// A mixed-radix composite-code space over inclusive per-attribute ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpace {
    mins: Vec<i64>,
    dims: Vec<u64>,
    strides: Vec<u64>,
    size: u64,
}

impl KeySpace {
    /// Builds the space spanned by the inclusive `(min, max)` ranges;
    /// `None` if the total code count exceeds `limit` (or overflows).
    ///
    /// The empty key (zero ranges) spans exactly one code, so `limit == 0`
    /// rejects even it — `dense_limit = 0` means "dense indexing disabled",
    /// and before this check scalar accumulators silently stayed dense in
    /// the hash-baseline arm.
    pub fn new(ranges: &[(i64, i64)], limit: u64) -> Option<KeySpace> {
        if limit == 0 {
            return None;
        }
        let mut dims = Vec::with_capacity(ranges.len());
        let mut size: u64 = 1;
        for &(lo, hi) in ranges {
            let d = hi.checked_sub(lo)?.checked_add(1)?;
            if d <= 0 {
                return None;
            }
            dims.push(d as u64);
            size = size.checked_mul(d as u64)?;
            if size > limit {
                return None;
            }
        }
        // Row-major strides: first attribute most significant.
        let mut strides = vec![1u64; ranges.len()];
        for i in (0..ranges.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Some(KeySpace { mins: ranges.iter().map(|&(lo, _)| lo).collect(), dims, strides, size })
    }

    /// Number of attributes in a key.
    pub fn arity(&self) -> usize {
        self.mins.len()
    }

    /// Per-attribute minimum values (the code-zero key).
    pub fn mins(&self) -> &[i64] {
        &self.mins
    }

    /// Per-attribute domain sizes.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Per-attribute mixed-radix strides (first attribute most
    /// significant). Exposed for the batched encoder in [`crate::kernel`].
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }

    /// Approximate heap bytes of this space's metadata.
    pub fn byte_size(&self) -> usize {
        3 * self.mins.len() * 8 + 8
    }

    /// Total number of composite codes (product of domain sizes).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The composite code of `key`, or `None` if any attribute falls
    /// outside its range (e.g. probing with a foreign key the other side
    /// never held).
    #[inline]
    pub fn encode(&self, key: &[i64]) -> Option<u64> {
        debug_assert_eq!(key.len(), self.mins.len());
        let mut code = 0u64;
        for i in 0..key.len() {
            let d = key[i].wrapping_sub(self.mins[i]) as u64;
            if d >= self.dims[i] {
                return None;
            }
            code += d * self.strides[i];
        }
        Some(code)
    }

    /// Decodes `code` back into attribute values, replacing `out`.
    pub fn decode(&self, code: u64, out: &mut Vec<i64>) {
        out.clear();
        self.decode_append(code, out);
    }

    /// Decodes `code`, appending the attribute values to `out`.
    pub fn decode_append(&self, code: u64, out: &mut Vec<i64>) {
        let mut rest = code;
        for i in 0..self.mins.len() {
            let d = rest / self.strides[i];
            rest %= self.strides[i];
            out.push(self.mins[i] + d as i64);
        }
    }
}

/// A group accumulator: group key → payload of `slots` running sums.
///
/// Only touched groups are represented (dense variant keeps a touch list
/// and bitmap), so iteration order and group counts match the hash
/// fallback up to ordering.
#[derive(Debug, Clone)]
pub enum GroupIndex {
    /// Flat storage indexed by composite code.
    Dense {
        /// The code space of the group-by attributes.
        space: KeySpace,
        /// Payload width.
        slots: usize,
        /// `size × slots` payload matrix.
        data: Vec<f64>,
        /// Touched-code bitmap (`size` bits).
        present: Vec<u64>,
        /// Touched codes in first-touch order.
        touched: Vec<u32>,
    },
    /// Classical fallback for large or unknown key spaces.
    Hash {
        /// Payload width.
        slots: usize,
        /// Group key → payload.
        map: HashMap<Box<[i64]>, Vec<f64>>,
    },
}

impl GroupIndex {
    /// A dense accumulator over `space` (callers check the size budget).
    /// The touch list stores codes as `u32`, so the space may span at most
    /// `u32::MAX` codes — enforced here because a truncated code would
    /// silently alias two groups.
    pub fn dense(space: KeySpace, slots: usize) -> Self {
        assert!(space.size <= u32::MAX as u64, "dense group spaces are capped at 2^32 codes");
        let size = space.size as usize;
        GroupIndex::Dense {
            space,
            slots,
            data: vec![0.0; size * slots],
            present: vec![0; size.div_ceil(64)],
            touched: Vec::new(),
        }
    }

    /// A hash-map accumulator.
    pub fn hash(slots: usize) -> Self {
        GroupIndex::Hash { slots, map: HashMap::new() }
    }

    /// Payload width.
    pub fn slots(&self) -> usize {
        match self {
            GroupIndex::Dense { slots, .. } | GroupIndex::Hash { slots, .. } => *slots,
        }
    }

    /// Number of touched groups.
    pub fn len(&self) -> usize {
        match self {
            GroupIndex::Dense { touched, .. } => touched.len(),
            GroupIndex::Hash { map, .. } => map.len(),
        }
    }

    /// True if no group has been touched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by this accumulator — the quantity the
    /// cross-batch view cache charges against its byte budget.
    pub fn byte_size(&self) -> usize {
        match self {
            GroupIndex::Dense { space, data, present, touched, .. } => {
                space.byte_size() + data.len() * 8 + present.len() * 8 + touched.len() * 4 + 32
            }
            GroupIndex::Hash { slots, map } => {
                map.keys().map(|k| k.len() * 8 + slots * 8 + 64).sum::<usize>() + 32
            }
        }
    }

    /// The payload of `key`, touching (zero-initializing) it if new.
    ///
    /// Dense accumulators require `key` to lie inside their [`KeySpace`] —
    /// guaranteed when the space was sized from the min/max of the very
    /// columns the key values are read from, which is how the planner
    /// builds them.
    #[inline]
    pub fn payload_mut(&mut self, key: &[i64]) -> &mut [f64] {
        match self {
            GroupIndex::Dense { space, slots, data, present, touched } => {
                let code = space.encode(key).expect("dense group key within planner-derived bounds")
                    as usize;
                let (w, b) = (code / 64, 1u64 << (code % 64));
                if present[w] & b == 0 {
                    present[w] |= b;
                    touched.push(code as u32);
                }
                &mut data[code * *slots..(code + 1) * *slots]
            }
            GroupIndex::Hash { slots, map } => {
                if !map.contains_key(key) {
                    map.insert(key.into(), vec![0.0; *slots]);
                }
                map.get_mut(key).expect("ensured above")
            }
        }
    }

    /// The key space of a dense accumulator (`None` for the hash
    /// fallback) — how batched callers decide whether the code-indexed
    /// scatter path applies.
    pub fn key_space(&self) -> Option<&KeySpace> {
        match self {
            GroupIndex::Dense { space, .. } => Some(space),
            GroupIndex::Hash { .. } => None,
        }
    }

    /// Batched scatter-add: `payload(codes[r])[slot] += vals[r]` for every
    /// row, skipping [`crate::kernel::OOB_CODE`] rows. Codes come from
    /// [`crate::kernel::encode_codes`] over this accumulator's space. Every
    /// in-range code is touched even when its value is zero, matching the
    /// row-wise path's touch-before-filter order. Dense accumulators only;
    /// batched callers gate on [`GroupIndex::key_space`].
    pub fn add_codes(&mut self, codes: &[u64], slot: usize, vals: &[f64]) {
        debug_assert_eq!(codes.len(), vals.len());
        match self {
            GroupIndex::Dense { space, slots, data, present, touched } => {
                let (stride, size) = (*slots, space.size);
                assert!(slot < stride, "slot {slot} out of {stride} payload slots");
                // One branch-free validation pass over the (cache-hot) codes
                // so the scatter below can skip per-row bounds checks: every
                // code is the sentinel or strictly inside the space.
                let mut bad = false;
                for &code in codes {
                    bad |= code != crate::kernel::OOB_CODE && code >= size;
                }
                assert!(!bad, "add_codes: code outside the accumulator's space");
                for (&code, &v) in codes.iter().zip(vals) {
                    if code == crate::kernel::OOB_CODE {
                        continue;
                    }
                    let c = code as usize;
                    let (w, b) = (c / 64, 1u64 << (c % 64));
                    // SAFETY: validated above — `c < size`, so `w <
                    // present.len() = ceil(size/64)` and `c*stride + slot <
                    // size*stride = data.len()` with `slot < stride`.
                    unsafe {
                        let p = present.get_unchecked_mut(w);
                        if *p & b == 0 {
                            *p |= b;
                            touched.push(code as u32);
                        }
                        *data.get_unchecked_mut(c * stride + slot) += v;
                    }
                }
            }
            GroupIndex::Hash { .. } => {
                unreachable!("add_codes requires a dense accumulator; gate on key_space()")
            }
        }
    }

    /// Fused multi-slot scatter-add: one walk over `codes` updating the
    /// whole contiguous payload row of each code, instead of one
    /// [`GroupIndex::add_codes`] pass per slot. `vals` is **slot-major**
    /// (`vals[s * codes.len() + r]` is slot `s` of row `r`) — exactly the
    /// stripe layout the batched leaf scan and the flat engine already
    /// build — so converting a per-slot loop needs no re-layout, only one
    /// concatenated buffer. Per-cell addition order matches the per-slot
    /// twin (row order), so results are bit-identical; so is the
    /// first-touch order (first in-range row wins either way).
    /// [`crate::kernel::OOB_CODE`] rows are skipped. Dense accumulators
    /// only; batched callers gate on [`GroupIndex::key_space`].
    pub fn add_codes_multi(&mut self, codes: &[u64], vals: &[f64]) {
        match self {
            GroupIndex::Dense { space, slots, data, present, touched } => {
                let (stride, size, n) = (*slots, space.size, codes.len());
                // Hard (not debug) assert: the unchecked slot gathers below
                // rely on this bound.
                assert_eq!(vals.len(), n * stride, "add_codes_multi: slot-major vals length");
                let mut bad = false;
                for &code in codes {
                    bad |= code != crate::kernel::OOB_CODE && code >= size;
                }
                assert!(!bad, "add_codes_multi: code outside the accumulator's space");
                for (r, &code) in codes.iter().enumerate() {
                    if code == crate::kernel::OOB_CODE {
                        continue;
                    }
                    let c = code as usize;
                    let (w, b) = (c / 64, 1u64 << (c % 64));
                    // SAFETY: validated above — `c < size` so the bitmap
                    // word and the payload row are in bounds, and
                    // `s * n + r < stride * n = vals.len()` for `s <
                    // stride`, `r < n`.
                    unsafe {
                        let p = present.get_unchecked_mut(w);
                        if *p & b == 0 {
                            *p |= b;
                            touched.push(code as u32);
                        }
                        let row = data.get_unchecked_mut(c * stride..(c + 1) * stride);
                        for (s, x) in row.iter_mut().enumerate() {
                            *x += *vals.get_unchecked(s * n + r);
                        }
                    }
                }
            }
            GroupIndex::Hash { .. } => {
                unreachable!("add_codes_multi requires a dense accumulator; gate on key_space()")
            }
        }
    }

    /// [`GroupIndex::add_codes_multi`] with software write-combining: when
    /// the code space is much larger than the cache, a direct scatter
    /// misses on almost every payload write. This variant first
    /// bucket-sorts the rows into ranges of `bucket_codes` consecutive
    /// codes (sized so one bucket's payload rows fit in L2 — see
    /// [`crate::parallel::EngineConfig::scatter_partition_groups`]),
    /// carrying each row's payload values along with its code, then
    /// scatters bucket by bucket: the accumulate pass streams codes and
    /// values sequentially and confines its random writes to one
    /// cache-sized window of the payload matrix. `bucket_codes` is rounded
    /// up to a power of two so bucket extraction is a shift, not a per-row
    /// division. The bucket sort is stable, so per-cell addition order
    /// (and therefore every float sum) is bit-identical to the
    /// unpartitioned scatter; only the first-touch *order* of distinct
    /// codes differs (bucket-major), which no result contract depends on.
    /// Spaces at or under `bucket_codes` delegate to the direct scatter.
    pub fn add_codes_multi_partitioned(
        &mut self,
        codes: &[u64],
        vals: &[f64],
        bucket_codes: u64,
        scratch: &mut ScatterScratch,
    ) {
        let size = match self {
            GroupIndex::Dense { space, .. } => space.size,
            GroupIndex::Hash { .. } => unreachable!(
                "add_codes_multi_partitioned requires a dense accumulator; gate on key_space()"
            ),
        };
        let bucket_codes = bucket_codes.max(1).next_power_of_two();
        if size <= bucket_codes || codes.len() < 2 {
            return self.add_codes_multi(codes, vals);
        }
        let GroupIndex::Dense { space: _, slots, data, present, touched } = self else {
            unreachable!("checked above");
        };
        let (stride, n) = (*slots, codes.len());
        assert_eq!(vals.len(), n * stride, "add_codes_multi_partitioned: slot-major vals length");
        assert!(size <= u64::from(u32::MAX) + 1, "partitioned scatter code fits u32");
        let mut bad = false;
        for &code in codes {
            bad |= code != crate::kernel::OOB_CODE && code >= size;
        }
        assert!(!bad, "add_codes_multi_partitioned: code outside the accumulator's space");
        // Stable counting sort of the in-range rows by bucket; bucket
        // extraction is a shift (`bucket_codes` is a power of two).
        let shift = bucket_codes.trailing_zeros();
        let nbuckets = (size >> shift) as usize + usize::from(size & (bucket_codes - 1) != 0);
        scratch.counts.clear();
        scratch.counts.resize(nbuckets + 1, 0);
        for &code in codes {
            if code != crate::kernel::OOB_CODE {
                scratch.counts[(code >> shift) as usize + 1] += 1;
            }
        }
        for i in 1..scratch.counts.len() {
            scratch.counts[i] += scratch.counts[i - 1];
        }
        let total = *scratch.counts.last().expect("nbuckets + 1 entries");
        scratch.codes.clear();
        scratch.codes.resize(total, 0);
        scratch.vals.clear();
        scratch.vals.resize(total * stride, 0.0);
        for (r, &code) in codes.iter().enumerate() {
            if code == crate::kernel::OOB_CODE {
                continue;
            }
            let slot = &mut scratch.counts[(code >> shift) as usize];
            let dst = *slot;
            *slot += 1;
            // SAFETY: `dst < total` (the prefix sums bound each bucket's
            // cursor) and the slot-major gather index `s * n + r` is in
            // bounds as in `add_codes_multi`.
            unsafe {
                *scratch.codes.get_unchecked_mut(dst) = code as u32;
                for s in 0..stride {
                    *scratch.vals.get_unchecked_mut(dst * stride + s) =
                        *vals.get_unchecked(s * n + r);
                }
            }
        }
        // Scatter one cache-sized bucket at a time: codes and payload rows
        // stream sequentially; only the bucket window is written randomly.
        for (i, &code) in scratch.codes.iter().enumerate() {
            let c = code as usize;
            let (w, b) = (c / 64, 1u64 << (c % 64));
            // SAFETY: same bounds as `add_codes_multi` — validated above;
            // `i < total` so the permuted payload row is in bounds.
            unsafe {
                let p = present.get_unchecked_mut(w);
                if *p & b == 0 {
                    *p |= b;
                    touched.push(code);
                }
                let row = data.get_unchecked_mut(c * stride..(c + 1) * stride);
                for (s, x) in row.iter_mut().enumerate() {
                    *x += *scratch.vals.get_unchecked(i * stride + s);
                }
            }
        }
    }

    /// Single-row form of the multi-slot scatter: adds slot stripe values
    /// `vals[s * n + r]` into the payload row of `code`. The per-row move
    /// of the batched keyed-view scatter, where consecutive rows land in
    /// *different* view entries so a whole-batch call cannot apply.
    #[inline]
    pub fn add_payload_row(&mut self, code: u64, vals: &[f64], r: usize, n: usize) {
        match self {
            GroupIndex::Dense { space, slots, data, present, touched } => {
                let stride = *slots;
                assert!(code < space.size, "add_payload_row: code outside the space");
                debug_assert!(r < n && vals.len() == n * stride);
                let c = code as usize;
                let (w, b) = (c / 64, 1u64 << (c % 64));
                if present[w] & b == 0 {
                    present[w] |= b;
                    touched.push(code as u32);
                }
                for (s, x) in data[c * stride..(c + 1) * stride].iter_mut().enumerate() {
                    *x += vals[s * n + r];
                }
            }
            GroupIndex::Hash { .. } => {
                unreachable!("add_payload_row requires a dense accumulator; gate on key_space()")
            }
        }
    }

    /// The payload of `key`, if touched.
    #[inline]
    pub fn get(&self, key: &[i64]) -> Option<&[f64]> {
        match self {
            GroupIndex::Dense { space, slots, data, present, .. } => {
                let code = space.encode(key)? as usize;
                if present[code / 64] & (1 << (code % 64)) == 0 {
                    return None;
                }
                Some(&data[code * *slots..(code + 1) * *slots])
            }
            GroupIndex::Hash { map, .. } => map.get(key).map(Vec::as_slice),
        }
    }

    /// Adds `payload` slot-wise to the entry at `key`. `payload` must be
    /// exactly `slots()` wide — a shorter or longer slice would silently
    /// truncate the `zip`, dropping slot sums (checked like
    /// [`GroupIndex::add_codes`] checks its lengths).
    pub fn add(&mut self, key: &[i64], payload: &[f64]) {
        debug_assert_eq!(
            payload.len(),
            self.slots(),
            "add: payload width must match the accumulator's slot count"
        );
        for (x, y) in self.payload_mut(key).iter_mut().zip(payload) {
            *x += *y;
        }
    }

    /// If exactly one group is touched, decodes its key into `key_out` and
    /// returns its payload. The single-entry fast path of the shared scan.
    #[inline]
    pub fn only<'a>(&'a self, key_out: &mut Vec<i64>) -> Option<&'a [f64]> {
        match self {
            GroupIndex::Dense { space, slots, data, touched, .. } => match touched.as_slice() {
                &[code] => {
                    space.decode(code as u64, key_out);
                    Some(&data[code as usize * *slots..(code as usize + 1) * *slots])
                }
                _ => None,
            },
            GroupIndex::Hash { map, .. } => {
                if map.len() != 1 {
                    return None;
                }
                let (k, v) = map.iter().next().expect("len 1");
                key_out.clear();
                key_out.extend_from_slice(k);
                Some(v)
            }
        }
    }

    /// Calls `f(key, payload)` for every touched group (dense: first-touch
    /// order; hash: arbitrary).
    pub fn for_each(&self, mut f: impl FnMut(&[i64], &[f64])) {
        match self {
            GroupIndex::Dense { space, slots, data, touched, .. } => {
                let mut key = Vec::with_capacity(space.arity());
                for &code in touched {
                    space.decode(code as u64, &mut key);
                    f(&key, &data[code as usize * *slots..(code as usize + 1) * *slots]);
                }
            }
            GroupIndex::Hash { map, .. } => {
                for (k, v) in map {
                    f(k, v);
                }
            }
        }
    }

    /// Flattens every touched `(key, payload)` into reusable buffers —
    /// keys contiguously at a fixed stride (the returned key arity),
    /// payloads as borrowed slices. The shared scan's cross-product path
    /// calls this per row, so refilling caller-owned buffers (instead of
    /// materializing fresh `Vec`s as [`GroupIndex::pairs`] does) keeps the
    /// hot loop allocation-free after warm-up.
    pub fn flatten_pairs<'a>(&'a self, keys: &mut Vec<i64>, pays: &mut Vec<&'a [f64]>) -> usize {
        keys.clear();
        pays.clear();
        match self {
            GroupIndex::Dense { space, slots, data, touched, .. } => {
                for &code in touched {
                    space.decode_append(code as u64, keys);
                    pays.push(&data[code as usize * *slots..(code as usize + 1) * *slots]);
                }
                space.arity()
            }
            GroupIndex::Hash { map, .. } => {
                let mut arity = 0;
                for (k, v) in map {
                    arity = k.len();
                    keys.extend_from_slice(k);
                    pays.push(v);
                }
                arity
            }
        }
    }

    /// Materializes `(key, payload)` pairs — convenience for tests and
    /// one-shot consumers (hot paths use [`GroupIndex::flatten_pairs`]).
    pub fn pairs(&self) -> Vec<(Vec<i64>, &[f64])> {
        let mut out = Vec::with_capacity(self.len());
        match self {
            GroupIndex::Dense { space, slots, data, touched, .. } => {
                for &code in touched {
                    let mut key = Vec::with_capacity(space.arity());
                    space.decode(code as u64, &mut key);
                    out.push((key, &data[code as usize * *slots..(code as usize + 1) * *slots]));
                }
            }
            GroupIndex::Hash { map, .. } => {
                for (k, v) in map {
                    out.push((k.to_vec(), v.as_slice()));
                }
            }
        }
        out
    }

    /// Multiplies every payload slot of every touched group by `factor` —
    /// how the delta-maintenance path turns a batch of deleted rows into
    /// the additive inverse of their view contributions (§3.1).
    pub fn scale(&mut self, factor: f64) {
        match self {
            GroupIndex::Dense { slots, data, touched, .. } => {
                for &code in touched.iter() {
                    let c = code as usize;
                    crate::kernel::scale_slice(&mut data[c * *slots..(c + 1) * *slots], factor);
                }
            }
            GroupIndex::Hash { map, .. } => {
                for payload in map.values_mut() {
                    crate::kernel::scale_slice(payload, factor);
                }
            }
        }
    }

    /// Merges `other` into `self`, summing payloads of equal keys. A
    /// dense/dense merge over the *same* key space (the engine case: both
    /// sides stem from one view plan) is a straight indexed add; any other
    /// combination goes through key-wise decoding, so merging indexes with
    /// different spaces stays correct.
    pub fn merge_from(&mut self, other: &GroupIndex) {
        match (&mut *self, other) {
            (
                GroupIndex::Dense { space, slots, data, present, touched },
                GroupIndex::Dense { space: osp, slots: os, data: od, touched: ot, .. },
            ) if *slots == *os && space == osp => {
                for &code in ot {
                    let c = code as usize;
                    let (w, b) = (c / 64, 1u64 << (c % 64));
                    if present[w] & b == 0 {
                        present[w] |= b;
                        touched.push(code);
                    }
                    crate::kernel::add_slices(
                        &mut data[c * *slots..(c + 1) * *slots],
                        &od[c * *os..(c + 1) * *os],
                    );
                }
            }
            _ => other.for_each(|key, payload| self.add(key, payload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyspace_encode_decode_roundtrip() {
        let ks = KeySpace::new(&[(2, 4), (-1, 0), (10, 10)], 64).unwrap();
        assert_eq!(ks.size(), 6);
        assert_eq!(ks.arity(), 3);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for a in 2..=4 {
            for b in -1..=0 {
                let code = ks.encode(&[a, b, 10]).unwrap();
                assert!(code < 6);
                assert!(seen.insert(code), "codes are distinct");
                ks.decode(code, &mut out);
                assert_eq!(out, vec![a, b, 10]);
            }
        }
        // Out-of-range probes miss instead of aliasing.
        assert_eq!(ks.encode(&[5, 0, 10]), None);
        assert_eq!(ks.encode(&[2, -2, 10]), None);
        assert_eq!(ks.encode(&[2, 0, 11]), None);
    }

    #[test]
    fn keyspace_respects_limit_and_overflow() {
        assert!(KeySpace::new(&[(0, 31), (0, 31)], 1024).is_some());
        assert!(KeySpace::new(&[(0, 31), (0, 32)], 1024).is_none(), "1056 > 1024");
        assert!(KeySpace::new(&[(i64::MIN, i64::MAX)], u64::MAX).is_none(), "overflow");
        let empty = KeySpace::new(&[], 1).unwrap();
        assert_eq!(empty.size(), 1);
        assert_eq!(empty.encode(&[]), Some(0));
    }

    /// `limit == 0` is the documented "dense indexing disabled" switch
    /// (`EngineConfig::dense_limit = 0`, the hash-baseline arm). It must
    /// reject *every* space — including the one-code empty-key space that
    /// previously slipped through because the size check only ran inside
    /// the per-range loop.
    #[test]
    fn keyspace_limit_zero_disables_even_the_scalar_space() {
        assert!(KeySpace::new(&[], 0).is_none(), "scalar (empty-key) space");
        assert!(KeySpace::new(&[(5, 5)], 0).is_none(), "single-code space");
        assert!(KeySpace::new(&[(0, 3)], 0).is_none());
        // limit 1 is the smallest enabled space: exactly one code fits.
        assert!(KeySpace::new(&[], 1).is_some());
        assert!(KeySpace::new(&[(5, 5)], 1).is_some());
        assert!(KeySpace::new(&[(5, 6)], 1).is_none(), "two codes exceed 1");
    }

    /// Near-`u64`-overflow domain products: the size accounting must
    /// saturate to `None` (hash fallback), never wrap into a small bogus
    /// dense size, and encode/decode must stay exact at extreme mins.
    #[test]
    fn keyspace_near_u64_overflow_products() {
        // 2^32 × 2^32 = 2^64 overflows checked_mul → hash fallback.
        let r32 = (0i64, (1i64 << 32) - 1);
        assert!(KeySpace::new(&[r32, r32], u64::MAX).is_none(), "2^64 overflows");
        // 2^32 × 2^31 = 2^63 fits in u64 and is within the limit.
        let r31 = (0i64, (1i64 << 31) - 1);
        let big = KeySpace::new(&[r32, r31], u64::MAX).unwrap();
        assert_eq!(big.size(), 1u64 << 63);
        // Probes at the corners of the space round-trip exactly.
        let mut out = Vec::new();
        for key in [[0, 0], [(1 << 32) - 1, (1 << 31) - 1], [1, (1 << 31) - 1]] {
            let code = big.encode(&key).expect("in range");
            big.decode(code, &mut out);
            assert_eq!(out, key, "corner {key:?}");
        }
        assert_eq!(big.encode(&[1 << 32, 0]), None, "first attr out of range");
        assert_eq!(big.encode(&[0, 1 << 31]), None, "second attr out of range");
        // One past the limit is rejected, the limit itself is kept — the
        // boundary the dense/hash split pivots on.
        assert!(KeySpace::new(&[(0, 9)], 10).is_some());
        assert!(KeySpace::new(&[(0, 10)], 10).is_none());
        // A single attribute spanning (almost) the full i64 width: the
        // domain size is computed in i64, so 2^63-1 codes is the widest
        // representable range; one more overflows and must fall back.
        assert_eq!(KeySpace::new(&[(i64::MIN, -2)], u64::MAX).unwrap().size(), (1u64 << 63) - 1);
        assert!(KeySpace::new(&[(i64::MIN, -1)], u64::MAX).is_none(), "2^63 overflows i64");
        // Extreme negative mins: mixed-radix arithmetic is wrapping-safe.
        let neg = KeySpace::new(&[(i64::MIN, i64::MIN + 2), (-1, 1)], 16).unwrap();
        assert_eq!(neg.size(), 9);
        let mut seen = std::collections::HashSet::new();
        for a in 0..3i64 {
            for b in -1..=1i64 {
                let key = [i64::MIN + a, b];
                let code = neg.encode(&key).expect("in range");
                assert!(seen.insert(code), "codes distinct");
                neg.decode(code, &mut out);
                assert_eq!(out, key);
            }
        }
        assert_eq!(neg.encode(&[i64::MAX, 0]), None, "wrapped probe misses");
    }

    #[test]
    fn dense_and_hash_agree() {
        let ks = KeySpace::new(&[(0, 3), (0, 2)], 64).unwrap();
        let mut dense = GroupIndex::dense(ks, 2);
        let mut hash = GroupIndex::hash(2);
        let probes = [[0, 0], [3, 2], [0, 0], [1, 1], [3, 2]];
        for (i, key) in probes.iter().enumerate() {
            for gi in [&mut dense, &mut hash] {
                let p = gi.payload_mut(key);
                p[0] += 1.0;
                p[1] += i as f64;
            }
        }
        assert_eq!(dense.len(), 3);
        assert_eq!(hash.len(), 3);
        dense.for_each(|key, payload| {
            assert_eq!(hash.get(key), Some(payload), "key {key:?}");
        });
        assert_eq!(dense.get(&[2, 2]), None, "untouched in-range code");
        assert_eq!(dense.get(&[9, 9]), None, "out-of-range probe");
    }

    #[test]
    fn only_and_pairs() {
        let ks = KeySpace::new(&[(5, 9)], 16).unwrap();
        let mut gi = GroupIndex::dense(ks, 1);
        let mut key = Vec::new();
        assert!(gi.only(&mut key).is_none(), "empty");
        gi.payload_mut(&[7])[0] = 2.5;
        assert_eq!(gi.only(&mut key), Some(&[2.5][..]));
        assert_eq!(key, vec![7]);
        gi.payload_mut(&[5])[0] = 1.0;
        assert!(gi.only(&mut key).is_none(), "two entries");
        let mut pairs = gi.pairs();
        pairs.sort_by_key(|(k, _)| k[0]);
        assert_eq!(pairs, vec![(vec![5], &[1.0][..]), (vec![7], &[2.5][..])]);
        // flatten_pairs fills reusable buffers with the same content.
        let (mut keys, mut pays) = (vec![99], vec![]);
        let arity = gi.flatten_pairs(&mut keys, &mut pays);
        assert_eq!(arity, 1);
        assert_eq!(keys, vec![7, 5], "touch order, stale content cleared");
        assert_eq!(pays, vec![&[2.5][..], &[1.0][..]]);
    }

    /// Sorted `(key, payload)` pairs — order-insensitive scatter equality.
    fn sorted_pairs(gi: &GroupIndex) -> Vec<(Vec<i64>, Vec<f64>)> {
        let mut out: Vec<(Vec<i64>, Vec<f64>)> =
            gi.pairs().into_iter().map(|(k, p)| (k, p.to_vec())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn multi_slot_scatter_matches_per_slot_loop() {
        let ks = KeySpace::new(&[(0, 7)], 16).unwrap();
        let codes = [3u64, 0, crate::kernel::OOB_CODE, 3, 7];
        let n = codes.len();
        // Slot-major: slot 0 rows then slot 1 rows.
        let vals = [1.0, 2.0, 4.0, 8.0, 16.0, -1.0, -2.0, -4.0, -8.0, -16.0];
        let mut per_slot = GroupIndex::dense(ks.clone(), 2);
        for s in 0..2 {
            per_slot.add_codes(&codes, s, &vals[s * n..(s + 1) * n]);
        }
        let mut multi = GroupIndex::dense(ks.clone(), 2);
        multi.add_codes_multi(&codes, &vals);
        assert_eq!(sorted_pairs(&per_slot), sorted_pairs(&multi));
        // Identical first-touch order too (row order of first occurrence).
        let (mut a, mut b) = ((vec![], vec![]), (vec![], vec![]));
        per_slot.flatten_pairs(&mut a.0, &mut a.1);
        multi.flatten_pairs(&mut b.0, &mut b.1);
        assert_eq!(a.0, b.0, "touch order");
        // Per-row form agrees as well.
        let mut rowed = GroupIndex::dense(ks, 2);
        for (r, &code) in codes.iter().enumerate() {
            if code != crate::kernel::OOB_CODE {
                rowed.add_payload_row(code, &vals, r, n);
            }
        }
        assert_eq!(sorted_pairs(&multi), sorted_pairs(&rowed));
        // Empty morsel: no-op, no touch.
        let mut empty = GroupIndex::dense(KeySpace::new(&[(0, 7)], 16).unwrap(), 2);
        empty.add_codes_multi(&[], &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn partitioned_scatter_is_bit_identical_to_direct() {
        // Bucket of 4 codes over a 32-code space → 8 buckets engaged.
        let ks = KeySpace::new(&[(0, 31)], 64).unwrap();
        let codes: Vec<u64> = (0..200u64)
            .map(|i| if i % 17 == 0 { crate::kernel::OOB_CODE } else { (i * 11 + i * i) % 32 })
            .collect();
        let n = codes.len();
        let vals: Vec<f64> = (0..3 * n).map(|i| 0.1 + (i % 13) as f64 * 0.7).collect();
        let mut direct = GroupIndex::dense(ks.clone(), 3);
        direct.add_codes_multi(&codes, &vals);
        let mut parted = GroupIndex::dense(ks.clone(), 3);
        let mut scratch = ScatterScratch::default();
        parted.add_codes_multi_partitioned(&codes, &vals, 4, &mut scratch);
        // Bit-identical sums (stable bucket sort preserves per-code row
        // order), same key set; only touch *order* may differ.
        assert_eq!(sorted_pairs(&direct), sorted_pairs(&parted));
        // A bucket covering the whole space delegates to the direct path,
        // and scratch reuse across calls stays correct.
        let mut whole = GroupIndex::dense(ks, 3);
        whole.add_codes_multi_partitioned(&codes, &vals, 1024, &mut scratch);
        assert_eq!(sorted_pairs(&direct), sorted_pairs(&whole));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Dense and hash accumulators fed the same random probe
            /// sequence represent the same groups with the same payloads —
            /// the contract the engines' `dense_limit` sweep relies on.
            #[test]
            fn dense_and_hash_accumulate_identically(
                probes in proptest::collection::vec((0i64..5, -2i64..3, -4i64..5), 1..120),
            ) {
                let space = KeySpace::new(&[(0, 4), (-2, 2)], 25).unwrap();
                let mut dense = GroupIndex::dense(space, 2);
                let mut hash = GroupIndex::hash(2);
                for &(a, b, w) in &probes {
                    for gi in [&mut dense, &mut hash] {
                        let p = gi.payload_mut(&[a, b]);
                        p[0] += w as f64;
                        p[1] += 1.0;
                    }
                }
                prop_assert_eq!(dense.len(), hash.len());
                let mut checked = 0;
                dense.for_each(|key, payload| {
                    assert_eq!(hash.get(key), Some(payload), "key {key:?}");
                    checked += 1;
                });
                prop_assert_eq!(checked, hash.len());
                // Merging the dense side into a hash copy doubles payloads.
                let mut merged = GroupIndex::hash(2);
                merged.merge_from(&hash);
                merged.merge_from(&dense);
                merged.for_each(|key, payload| {
                    let single = hash.get(key).expect("same keys");
                    assert_eq!(payload[0], 2.0 * single[0], "key {key:?}");
                    assert_eq!(payload[1], 2.0 * single[1], "key {key:?}");
                });
            }

            /// Every scatter fast path — fused multi-slot, per-row, and
            /// radix-partitioned at several bucket sizes — is bit-identical
            /// to the per-slot `add_codes` twin, including OOB rows and
            /// empty batches.
            #[test]
            fn scatter_fast_paths_match_per_slot_twin(
                keys in proptest::collection::vec((-3i64..9, -5i64..7), 0..150),
                raw_vals in proptest::collection::vec(-8i32..9, 0..600),
                nslots in 1usize..5,
                bucket in 1u64..40,
            ) {
                // Keys outside [(0,4), (-2,2)] encode to OOB_CODE.
                let space = KeySpace::new(&[(0, 4), (-2, 2)], 25).unwrap();
                let n = keys.len();
                let codes: Vec<u64> = keys
                    .iter()
                    .map(|&(a, b)| space.encode(&[a, b]).unwrap_or(crate::kernel::OOB_CODE))
                    .collect();
                let vals: Vec<f64> = (0..nslots * n)
                    .map(|i| raw_vals.get(i % raw_vals.len().max(1)).copied().unwrap_or(0) as f64)
                    .collect();
                let mut per_slot = GroupIndex::dense(space.clone(), nslots);
                for s in 0..nslots {
                    per_slot.add_codes(&codes, s, &vals[s * n..(s + 1) * n]);
                }
                let mut multi = GroupIndex::dense(space.clone(), nslots);
                multi.add_codes_multi(&codes, &vals);
                let mut parted = GroupIndex::dense(space.clone(), nslots);
                let mut scratch = ScatterScratch::default();
                parted.add_codes_multi_partitioned(&codes, &vals, bucket, &mut scratch);
                let mut rowed = GroupIndex::dense(space.clone(), nslots);
                for (r, &code) in codes.iter().enumerate() {
                    if code != crate::kernel::OOB_CODE {
                        rowed.add_payload_row(code, &vals, r, n);
                    }
                }
                let want = super::sorted_pairs(&per_slot);
                prop_assert_eq!(&want, &super::sorted_pairs(&multi), "multi");
                prop_assert_eq!(&want, &super::sorted_pairs(&parted), "partitioned");
                prop_assert_eq!(&want, &super::sorted_pairs(&rowed), "per-row");
            }
        }
    }

    #[test]
    fn merge_dense_dense_and_mixed() {
        let ks = KeySpace::new(&[(0, 4)], 16).unwrap();
        let mut a = GroupIndex::dense(ks.clone(), 1);
        let mut b = GroupIndex::dense(ks.clone(), 1);
        a.payload_mut(&[1])[0] = 1.0;
        b.payload_mut(&[1])[0] = 10.0;
        b.payload_mut(&[3])[0] = 30.0;
        a.merge_from(&b);
        assert_eq!(a.get(&[1]), Some(&[11.0][..]));
        assert_eq!(a.get(&[3]), Some(&[30.0][..]));
        // Hash ← dense falls back to the generic key-wise path.
        let mut h = GroupIndex::hash(1);
        h.payload_mut(&[3])[0] = 0.5;
        h.merge_from(&a);
        assert_eq!(h.get(&[1]), Some(&[11.0][..]));
        assert_eq!(h.get(&[3]), Some(&[30.5][..]));
        assert_eq!(h.len(), 2);
        // Dense ← dense over a *different* (covering) space must decode
        // key-wise, not add raw codes: key 1 is code 1 in [0,4] but code 3
        // in [-2,9], so a raw-code add would misattribute the payloads.
        let cover = KeySpace::new(&[(-2, 9)], 16).unwrap();
        let mut s = GroupIndex::dense(cover, 1);
        s.merge_from(&a);
        assert_eq!(s.get(&[1]), Some(&[11.0][..]));
        assert_eq!(s.get(&[3]), Some(&[30.0][..]));
        assert_eq!(s.get(&[-1]), None, "no raw-code aliasing");
        assert_eq!(s.len(), 2);
    }
}
