//! Batch-at-a-time columnar kernels.
//!
//! The shared scan and the flat engine spend their time in four tiny loops:
//! mixed-radix code computation, payload accumulation, per-slot factor
//! products, and per-slot filter masks. Row-at-a-time, each iteration mixes
//! key extraction, branching on attribute ranges, and scattered payload
//! writes — a shape LLVM cannot vectorize. This module restates those loops
//! over contiguous column slices so each becomes a straight-line pass the
//! autovectorizer can unroll: one column at a time, branch-free bodies,
//! out-of-range tracked as data (a sentinel code) instead of control flow.
//!
//! Every kernel keeps its scalar twin (`*_scalar`, or the pre-existing
//! row-wise engine path) alive as the `baseline` arm of `perf_regression`,
//! so the vectorized/scalar split stays an honest A/B rather than a dead
//! code path.

use crate::group::KeySpace;

/// Sentinel composite code marking a row whose key falls outside the
/// [`KeySpace`] — the batched equivalent of [`KeySpace::encode`] returning
/// `None`. No valid code can collide with it: a space's codes are strictly
/// below its size, and a size of `2^64` overflows construction.
pub const OOB_CODE: u64 = u64::MAX;

/// Batched mixed-radix encoding: computes the composite code of row `r`
/// from `cols[i][r]` for every `r < rows`, writing [`OOB_CODE`] where any
/// attribute falls outside its range. Column-wise with branch-free
/// out-of-range tracking, so the per-column pass vectorizes.
///
/// `oob` is caller-provided scratch (contents ignored); `out` and `oob` are
/// resized to `rows`.
pub fn encode_codes(
    space: &KeySpace,
    cols: &[&[i64]],
    rows: usize,
    out: &mut Vec<u64>,
    oob: &mut Vec<u64>,
) {
    debug_assert_eq!(cols.len(), space.arity());
    out.clear();
    out.resize(rows, 0);
    oob.clear();
    oob.resize(rows, 0);
    for (i, col) in cols.iter().enumerate() {
        debug_assert_eq!(col.len(), rows);
        let (min, dim, stride) = (space.mins()[i], space.dims()[i], space.strides()[i]);
        // Slice zips, not indexing: bounds checks in the body would keep
        // the pass from vectorizing.
        for ((o, ob), &x) in out.iter_mut().zip(oob.iter_mut()).zip(&col[..rows]) {
            let d = x.wrapping_sub(min) as u64;
            *ob |= (d >= dim) as u64;
            *o = o.wrapping_add(d.wrapping_mul(stride));
        }
    }
    // 0 → no-op, 1 → all-ones: out-of-range rows become the sentinel.
    for (o, &ob) in out.iter_mut().zip(oob.iter()) {
        *o |= ob.wrapping_neg();
    }
}

/// Row-at-a-time twin of [`encode_codes`]: the scalar baseline for the
/// kernel microbench and the property tests.
pub fn encode_codes_scalar(space: &KeySpace, cols: &[&[i64]], rows: usize, out: &mut Vec<u64>) {
    out.clear();
    let mut key = Vec::with_capacity(cols.len());
    for r in 0..rows {
        key.clear();
        key.extend(cols.iter().map(|c| c[r]));
        out.push(space.encode(&key).unwrap_or(OOB_CODE));
    }
}

/// Fused encode + multi-slot scatter: the single-pass form of
/// [`encode_codes`] followed by
/// [`GroupIndex::add_codes_multi`](crate::group::GroupIndex::add_codes_multi),
/// with **no heap code buffer** — rows are encoded in L1-resident blocks
/// (the same branch-free column-wise passes the buffered kernel
/// vectorizes, but into a small stack array) and each block is scattered
/// into the accumulator's contiguous payload rows before the next is
/// encoded. This is the leaf-scan shape: one walk over the batch, one
/// touch-bitmap probe per row, `slots` adds.
///
/// `vals` is slot-major (`vals[s * rows + r]`), like the batched leaf
/// scan's stripe buffer. Out-of-range rows are skipped (the sentinel
/// semantics of [`OOB_CODE`], without ever materializing it). Per-cell
/// addition order is row order, so results are bit-identical to the
/// buffered twin and to the per-slot row-wise path. `acc` must be dense
/// over the same space `cols` is encoded against — callers gate on
/// [`GroupIndex::key_space`](crate::group::GroupIndex::key_space).
pub fn encode_scatter(cols: &[&[i64]], rows: usize, vals: &[f64], acc: &mut crate::GroupIndex) {
    let crate::GroupIndex::Dense { space, slots, data, present, touched } = acc else {
        unreachable!("encode_scatter requires a dense accumulator; gate on key_space()")
    };
    let stride = *slots;
    debug_assert_eq!(cols.len(), space.arity());
    // Hard asserts: the unchecked accesses below rely on these bounds.
    assert_eq!(vals.len(), rows * stride, "encode_scatter: slot-major vals length");
    for col in cols {
        assert!(col.len() >= rows, "encode_scatter: short key column");
    }
    let (mins, dims, strides) = (space.mins(), space.dims(), space.strides());
    const BLOCK: usize = 512;
    let mut codes = [0u64; BLOCK];
    let mut oobs = [0u64; BLOCK];
    let mut lo = 0;
    while lo < rows {
        let len = BLOCK.min(rows - lo);
        codes[..len].fill(0);
        oobs[..len].fill(0);
        // Column-wise branch-free encode of one block — the vectorizable
        // shape of `encode_codes`, minus the heap buffer.
        for i in 0..cols.len() {
            let (min, dim, strd) = (mins[i], dims[i], strides[i]);
            let col = &cols[i][lo..lo + len];
            for ((o, ob), &x) in codes[..len].iter_mut().zip(oobs[..len].iter_mut()).zip(col) {
                let d = x.wrapping_sub(min) as u64;
                *ob |= (d >= dim) as u64;
                *o = o.wrapping_add(d.wrapping_mul(strd));
            }
        }
        for (k, (&code, &oob)) in codes[..len].iter().zip(oobs[..len].iter()).enumerate() {
            if oob != 0 {
                continue;
            }
            // Every attribute was in range, so `code < space.size()` by
            // the mixed-radix construction — the same invariant
            // `add_codes` re-validates on buffered codes.
            let (r, c) = (lo + k, code as usize);
            let (w, b) = (c / 64, 1u64 << (c % 64));
            // SAFETY: `c < size` bounds the bitmap word and the payload
            // row; `s * rows + r < stride * rows = vals.len()`.
            unsafe {
                let p = present.get_unchecked_mut(w);
                if *p & b == 0 {
                    *p |= b;
                    touched.push(code as u32);
                }
                let row = data.get_unchecked_mut(c * stride..(c + 1) * stride);
                for (s, x) in row.iter_mut().enumerate() {
                    *x += *vals.get_unchecked(s * rows + r);
                }
            }
        }
        lo += len;
    }
}

/// Multiplies `acc[r] *= f(col[r])` across a column slice — one factor of a
/// per-slot product, applied column-wise. Monomorphized per column type and
/// per unary function, so the loop body is branch-free.
#[inline]
pub fn mul_by<T: Copy>(acc: &mut [f64], col: &[T], f: impl Fn(T) -> f64) {
    debug_assert_eq!(acc.len(), col.len());
    for (a, &x) in acc.iter_mut().zip(col) {
        *a *= f(x);
    }
}

/// Masks `acc[r]` to `0.0` where `keep(col[r])` is false. A select, not a
/// multiply: the row-wise path skips filtered rows entirely, so a filtered
/// slot must contribute exactly `0.0` even when the factor product is NaN
/// or infinite.
#[inline]
pub fn mask_by<T: Copy>(acc: &mut [f64], col: &[T], keep: impl Fn(T) -> bool) {
    debug_assert_eq!(acc.len(), col.len());
    for (a, &x) in acc.iter_mut().zip(col) {
        *a = if keep(x) { *a } else { 0.0 };
    }
}

/// `a[i] += b[i]` over contiguous payload slices — the dense payload-matrix
/// merge move. The slice zip avoids the indexed-gather shape of the old
/// per-slot loop, which defeated the autovectorizer with bounds checks.
#[inline]
pub fn add_slices(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a[i] *= factor` over a contiguous payload slice.
#[inline]
pub fn scale_slice(a: &mut [f64], factor: f64) {
    for x in a {
        *x *= factor;
    }
}

/// Sum of a contiguous slice, in slice order (deterministic).
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_encode_matches_scalar() {
        let space = KeySpace::new(&[(2, 4), (-1, 0)], 64).unwrap();
        let a = [2i64, 4, 3, 5, 2, 1]; // rows 3 and 5 out of range
        let b = [-1i64, 0, 0, -1, -2, 0]; // row 4 out of range
        let (mut fast, mut slow, mut oob) = (Vec::new(), Vec::new(), Vec::new());
        encode_codes(&space, &[&a, &b], a.len(), &mut fast, &mut oob);
        encode_codes_scalar(&space, &[&a, &b], a.len(), &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast[3], OOB_CODE);
        assert_eq!(fast[4], OOB_CODE);
        assert_eq!(fast[5], OOB_CODE);
        assert!(fast[0] < space.size());
    }

    #[test]
    fn batched_encode_empty_and_scalar_spaces() {
        let space = KeySpace::new(&[(0, 3)], 16).unwrap();
        let (mut fast, mut slow, mut oob) = (vec![7], vec![7], vec![7]);
        encode_codes(&space, &[&[]], 0, &mut fast, &mut oob);
        encode_codes_scalar(&space, &[&[]], 0, &mut slow);
        assert!(fast.is_empty() && slow.is_empty(), "empty batch, stale scratch cleared");
        // The empty-key (scalar) space encodes every row to code 0.
        let scalar = KeySpace::new(&[], 1).unwrap();
        encode_codes(&scalar, &[], 3, &mut fast, &mut oob);
        encode_codes_scalar(&scalar, &[], 3, &mut slow);
        assert_eq!(fast, vec![0, 0, 0]);
        assert_eq!(fast, slow);
    }

    #[test]
    fn batched_encode_near_u64_overflow_codes() {
        // 2^32 × 2^31 codes: strides and products exercise the top bits.
        let r32 = (0i64, (1i64 << 32) - 1);
        let r31 = (0i64, (1i64 << 31) - 1);
        let space = KeySpace::new(&[r32, r31], u64::MAX).unwrap();
        let a = [(1i64 << 32) - 1, 0, 1 << 32, (1 << 32) - 1];
        let b = [(1i64 << 31) - 1, 0, 0, 1 << 31];
        let (mut fast, mut slow, mut oob) = (Vec::new(), Vec::new(), Vec::new());
        encode_codes(&space, &[&a, &b], a.len(), &mut fast, &mut oob);
        encode_codes_scalar(&space, &[&a, &b], a.len(), &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast[0], (1u64 << 63) - 1, "top corner code");
        assert_eq!(fast[2], OOB_CODE);
        assert_eq!(fast[3], OOB_CODE);
        // Extreme negative mins: wrapping subtraction must stay exact.
        let neg = KeySpace::new(&[(i64::MIN, i64::MIN + 2)], 16).unwrap();
        let keys = [i64::MIN, i64::MIN + 2, i64::MAX, -1];
        encode_codes(&neg, &[&keys], keys.len(), &mut fast, &mut oob);
        encode_codes_scalar(&neg, &[&keys], keys.len(), &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast[0], 0);
        assert_eq!(fast[2], OOB_CODE, "wrapped probe misses");
    }

    #[test]
    fn fused_encode_scatter_matches_buffered_twin() {
        use crate::group::GroupIndex;
        let space = KeySpace::new(&[(2, 4), (-1, 0)], 64).unwrap();
        let a = [2i64, 4, 3, 5, 2, 1]; // rows 3 and 5 out of range
        let b = [-1i64, 0, 0, -1, -2, 0]; // row 4 out of range
        let n = a.len();
        let vals: Vec<f64> = (0..2 * n).map(|i| (i as f64) * 0.5 - 1.0).collect();
        // Buffered twin: encode, then per-slot scatter.
        let (mut codes, mut oob) = (Vec::new(), Vec::new());
        encode_codes(&space, &[&a, &b], n, &mut codes, &mut oob);
        let mut buffered = GroupIndex::dense(space.clone(), 2);
        for s in 0..2 {
            buffered.add_codes(&codes, s, &vals[s * n..(s + 1) * n]);
        }
        let mut fused = GroupIndex::dense(space.clone(), 2);
        encode_scatter(&[&a, &b], n, &vals, &mut fused);
        let pairs = |gi: &GroupIndex| {
            let mut out: Vec<(Vec<i64>, Vec<f64>)> =
                gi.pairs().into_iter().map(|(k, p)| (k, p.to_vec())).collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        };
        assert_eq!(pairs(&buffered), pairs(&fused));
        assert_eq!(fused.len(), 3, "three in-range rows, distinct keys");
        // Empty batch: no touch, stale state preserved.
        encode_scatter(&[&[], &[]], 0, &[], &mut fused);
        assert_eq!(fused.len(), 3);
    }

    #[test]
    fn mask_is_a_select_not_a_multiply() {
        let mut acc = [f64::NAN, f64::INFINITY, 2.0];
        mask_by(&mut acc, &[0i64, 0, 1], |x| x > 0);
        assert_eq!(acc[0], 0.0, "filtered NaN contributes exactly zero");
        assert_eq!(acc[1], 0.0, "filtered inf contributes exactly zero");
        assert_eq!(acc[2], 2.0);
    }

    #[test]
    fn slice_helpers() {
        let mut a = [1.0, 2.0];
        add_slices(&mut a, &[0.5, -2.0]);
        assert_eq!(a, [1.5, 0.0]);
        scale_slice(&mut a, 2.0);
        assert_eq!(a, [3.0, 0.0]);
        let mut acc = [1.0, 1.0, 1.0];
        mul_by(&mut acc, &[2i64, 3, 4], |x| x as f64);
        assert_eq!(acc, [2.0, 3.0, 4.0]);
        assert_eq!(sum(&acc), 9.0);
        assert_eq!(sum(&[]), 0.0);
    }
}
