//! The aggregate-batch IR.
//!
//! Every aggregate the paper derives for learning tasks (§2) has the form
//!
//! ```text
//! SELECT G, SUM(f1(A1) * … * fk(Ak))  FROM  Q  [WHERE cond]  GROUP BY G
//! ```
//!
//! where `Q` is the feature extraction join, the `Ai` are continuous
//! attributes with unary functions `fi` (identity or square), `G` is a set
//! of categorical attributes (the sparse-tensor group-by encoding of §2.1),
//! and `cond` is a per-tuple threshold/membership condition (decision-tree
//! costs, §2.2).
//!
//! Each non-key attribute lives in exactly one relation of the join, which
//! is what lets the engine decompose a batch along the join tree.

/// A unary function applied to an attribute inside the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fn1 {
    /// `x`
    Ident,
    /// `x * x`
    Square,
}

impl Fn1 {
    /// Applies the function.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Fn1::Ident => x,
            Fn1::Square => x * x,
        }
    }
}

/// A filter condition on a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterOp {
    /// `attr >= t` for continuous attributes.
    Ge(f64),
    /// `attr < t` for continuous attributes.
    Lt(f64),
    /// `attr = v` for categorical codes.
    Eq(i64),
    /// `attr != v` for categorical codes (split negation in trees).
    Ne(i64),
    /// `attr ∈ set` for categorical codes (sorted).
    In(Vec<i64>),
}

/// One aggregate query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Product factors `(attribute, function)`; empty means `SUM(1)`.
    pub factors: Vec<(String, Fn1)>,
    /// Categorical group-by attributes.
    pub group_by: Vec<String>,
    /// Conjunctive filter conditions `(attribute, op)` — empty = no filter.
    /// Conjunctions let decision-tree learners express a node's full path
    /// condition (§2.2).
    pub filter: Vec<(String, FilterOp)>,
}

impl Aggregate {
    /// `SUM(1)`.
    pub fn count() -> Self {
        Self { factors: vec![], group_by: vec![], filter: vec![] }
    }

    /// `SUM(a)`.
    pub fn sum(a: &str) -> Self {
        Self { factors: vec![(a.into(), Fn1::Ident)], group_by: vec![], filter: vec![] }
    }

    /// `SUM(a * b)` (or `SUM(a²)` when `a == b`).
    pub fn sum_prod(a: &str, b: &str) -> Self {
        if a == b {
            Self { factors: vec![(a.into(), Fn1::Square)], group_by: vec![], filter: vec![] }
        } else {
            Self {
                factors: vec![(a.into(), Fn1::Ident), (b.into(), Fn1::Ident)],
                group_by: vec![],
                filter: vec![],
            }
        }
    }

    /// Adds group-by attributes.
    pub fn by(mut self, groups: &[&str]) -> Self {
        self.group_by = groups.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Adds one filter condition (conjunctive with existing ones).
    pub fn filtered(mut self, attr: &str, op: FilterOp) -> Self {
        self.filter.push((attr.to_string(), op));
        self
    }

    /// All attribute names this aggregate touches.
    pub fn attrs(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.factors.iter().map(|(a, _)| a.as_str()).collect();
        v.extend(self.group_by.iter().map(String::as_str));
        for (a, _) in &self.filter {
            v.push(a);
        }
        v
    }
}

/// An ordered batch of aggregates evaluated together.
#[derive(Debug, Clone, Default)]
pub struct AggBatch {
    /// The aggregates, in result order.
    pub aggs: Vec<Aggregate>,
}

impl AggBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an aggregate, returning its index in the batch.
    pub fn push(&mut self, agg: Aggregate) -> usize {
        self.aggs.push(agg);
        self.aggs.len() - 1
    }

    /// Number of aggregates (the Figure 5 statistic).
    pub fn len(&self) -> usize {
        self.aggs.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.aggs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Aggregate::count().factors.len(), 0);
        assert_eq!(Aggregate::sum("x").factors, vec![("x".to_string(), Fn1::Ident)]);
        assert_eq!(Aggregate::sum_prod("x", "x").factors, vec![("x".to_string(), Fn1::Square)]);
        assert_eq!(Aggregate::sum_prod("x", "y").factors.len(), 2);
        let g = Aggregate::count()
            .by(&["c"])
            .filtered("x", FilterOp::Ge(1.0))
            .filtered("z", FilterOp::Eq(2));
        assert_eq!(g.group_by, vec!["c".to_string()]);
        assert_eq!(g.filter.len(), 2);
        assert_eq!(g.attrs(), vec!["c", "x", "z"]);
    }

    #[test]
    fn fn1_apply() {
        assert_eq!(Fn1::Ident.apply(3.0), 3.0);
        assert_eq!(Fn1::Square.apply(3.0), 9.0);
    }

    #[test]
    fn batch_push() {
        let mut b = AggBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.push(Aggregate::count()), 0);
        assert_eq!(b.push(Aggregate::sum("x")), 1);
        assert_eq!(b.len(), 2);
    }
}
