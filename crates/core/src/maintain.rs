//! The delta layer: one-shot evaluation as a special case of incremental
//! view maintenance (F-IVM, §3.1; Kara et al., "Machine Learning over
//! Static and Dynamic Relational Data").
//!
//! [`MaintainableEngine`] extends [`Engine`] with a prepared-state
//! protocol: [`prepare`](MaintainableEngine::prepare) pays the one-shot
//! cost once and returns a [`MaintState`];
//! [`apply_delta`](MaintainableEngine::apply_delta) folds a
//! [`Delta`](fdb_data::Delta) — per-relation insert/delete row batches
//! with signed multiplicities — into that state and returns the updated
//! [`BatchResult`]. The default implementations make **every** backend
//! trivially maintainable (apply the delta to the maintained database
//! copy, recompute via [`Engine::run`]); the interesting overrides are:
//!
//! * **[`LmfaoEngine`]** — true incremental maintenance over the layered
//!   view tree. `prepare` materializes every node's views (serving and
//!   warming the cross-batch [`ViewCache`]); `apply_delta` computes the
//!   *delta views* of the updated relation from the delta rows alone
//!   (deletes are inserts scaled by `−1` — the ring's additive inverse)
//!   and propagates them along the **owner→root path**: at each ancestor
//!   only the rows joining a changed key contribute, probed against the
//!   delta views of the child and the *unchanged* current views of every
//!   off-path sibling. Nothing below the path is ever rescanned. The
//!   maintained views are re-admitted to the [`ViewCache`] under their
//!   post-delta content signatures, counted as
//!   [`delta_maintained`](crate::ViewCacheStats::delta_maintained) —
//!   maintain-in-place instead of the cache's default
//!   invalidate-and-rescan. Non-additive cases (an insert outside the
//!   prepare-time dense code ranges, an emptied relation) fall back to
//!   full recomputation.
//! * **[`ShardedEngine`]** — routes a fact delta to the shard that owns
//!   the affected rows, re-runs `apply_delta` on that shard's inner state
//!   only, and ring-additively re-merges the memoized per-shard results;
//!   dimension deltas fan out to every shard.
//! * **[`DispatchEngine`]** — picks the backend once at `prepare` (the
//!   same statistics-driven choice as `run`) and thereafter routes every
//!   delta to the prepared state's IVM path.
//! * `FivmEngine` (in `fdb-ivm`) — plugs in through [`CustomMaint`]: the
//!   covariance-ring view tree maintains the whole triple in `O(delta)`.
//!
//! The contract, held by `tests/delta_agree.rs` on every engine:
//! `apply_delta` over any insert/delete sequence agrees with a cold
//! [`Engine::run`] over the equivalently mutated database.
//!
//! **Cost model of composition.** Every [`MaintState`] level owns its own
//! maintained [`Database`] copy (cheap at prepare — relations are
//! `Arc`-shared until mutated) and applies each delta to it, so a wrapped
//! composition like `ShardedEngine<DispatchEngine<…>>` pays
//! [`Database::apply_delta`] once per level per delta. For inserts that
//! is `O(delta)` per level; deletes pay the multiset's `O(rows)`
//! match-and-rebuild per level. This duplication is deliberate: each
//! level's state is self-contained (its `database()` is always exactly
//! what its engine evaluated), which is what lets any engine recompute
//! from any state and keeps the wrappers composable without a shared
//! mutable catalog.

use crate::backend::{Engine, FactorizedEngine, FlatEngine, LmfaoEngine};
use crate::dispatch::DispatchEngine;
use crate::exec::{compute_node, compute_node_over, CacheCtx};
use crate::ir::{AggQuery, BatchResult};
use crate::parallel::{merge_view_data, EngineChoice, EngineConfig};
use crate::plan::{Plan, ViewData};
use crate::shard::{drop_exact_zeros, merge_into, ShardedEngine};
use crate::viewcache::ViewCache;
use fdb_data::{fault, DataError, Database, Delta, Relation};
use std::collections::HashMap;
use std::sync::Arc;

/// Prepared maintenance state: the maintained database copy, the query,
/// and an engine-specific maintenance structure.
///
/// The state owns its database — deltas mutate the copy, so the caller's
/// database stays a snapshot of prepare time (hand the same deltas to
/// [`Database::apply_delta`] to keep an external copy in step; the
/// property tests do exactly that to cross-check against cold runs).
pub struct MaintState {
    db: Database,
    q: AggQuery,
    kind: MaintKind,
}

enum MaintKind {
    /// No maintained structure: every delta recomputes via `run`.
    Recompute,
    /// The LMFAO maintained view tree (boxed: it dwarfs the other
    /// variants, and every `MaintState` would carry its size inline).
    Lmfao(Box<LmfaoMaint>),
    /// Per-shard inner states plus memoized per-shard results.
    Sharded(ShardedMaint),
    /// The backend `DispatchEngine` chose at prepare, with its state.
    Dispatch { choice: EngineChoice, inner: Box<MaintState> },
    /// An external engine's own maintained structure (e.g. F-IVM).
    Custom(Box<dyn CustomMaint>),
}

/// The hook through which engines outside `fdb-core` (notably the F-IVM
/// backend) plug their own maintained structure into [`MaintState`].
/// `db` is the maintained database *after* the delta was applied.
pub trait CustomMaint: Send {
    /// Folds `delta` into the maintained structure and returns the
    /// updated batch result.
    fn apply_delta(
        &mut self,
        db: &Database,
        q: &AggQuery,
        delta: &Delta,
    ) -> Result<BatchResult, DataError>;

    /// The current maintained batch result, without applying anything.
    fn eval(&mut self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError>;
}

impl MaintState {
    /// A recompute-on-every-delta state — what the default
    /// [`MaintainableEngine`] implementation returns.
    pub fn recompute(db: Database, q: AggQuery) -> Self {
        Self { db, q, kind: MaintKind::Recompute }
    }

    /// A state around an engine-specific [`CustomMaint`] structure.
    pub fn custom(db: Database, q: AggQuery, maint: Box<dyn CustomMaint>) -> Self {
        Self { db, q, kind: MaintKind::Custom(maint) }
    }

    /// The maintained database (reflects every applied delta).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The prepared query.
    pub fn query(&self) -> &AggQuery {
        &self.q
    }

    /// The maintained epoch ([`Database::epoch`] of the maintained copy):
    /// one bump per delta this state has committed since prepare, exact
    /// rollback on failure.
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// True when this state carries no maintained structure and every
    /// delta recomputes via [`Engine::run`](crate::Engine::run) — i.e. the
    /// state is degraded (or was prepared degraded). The serving front
    /// door's circuit breaker uses this to tell the degraded path from
    /// the incremental one; flaky-engine test doubles use it to fail only
    /// incremental maintenance while recompute keeps working.
    pub fn is_recompute(&self) -> bool {
        matches!(self.kind, MaintKind::Recompute)
    }
}

/// An [`Engine`] that can maintain prepared query state under deltas.
///
/// The default implementations recompute via [`Engine::run`], so every
/// backend is trivially maintainable; overrides replace recomputation
/// with genuine incremental maintenance while keeping the same contract.
///
/// **Transactionality.** [`apply_delta`](MaintainableEngine::apply_delta)
/// is a provided validate-then-commit wrapper and must not be
/// overridden; engines override
/// [`apply_delta_kind`](MaintainableEngine::apply_delta_kind) instead.
/// The wrapper applies the delta to the maintained database with an undo
/// token, runs the engine-specific maintenance under panic containment,
/// and on **any** failure — validation error, internal error, injected
/// fault, worker panic — restores the pre-delta epoch exactly: database
/// content and `data_id`s roll back, views the failing maintenance
/// admitted to the [`ViewCache`] under rolled-back content ids are
/// invalidated, and the maintained structure is rebuilt from the
/// restored database (degrading to recompute-per-delta if even the
/// rebuild fails). Callers see `Err` and a state equivalent to the last
/// good epoch — never a half-applied one.
pub trait MaintainableEngine: Engine {
    /// Pays the one-shot evaluation cost and returns the maintained state.
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        q.validate(db)?;
        Ok(MaintState::recompute(db.clone(), q.clone()))
    }

    /// Folds `delta` into the state and returns the updated result,
    /// atomically: on `Err` the state is rolled back to the pre-delta
    /// epoch (see the trait docs). Do not override — engine-specific
    /// maintenance belongs in
    /// [`apply_delta_kind`](MaintainableEngine::apply_delta_kind).
    fn apply_delta(&self, st: &mut MaintState, delta: &Delta) -> Result<BatchResult, DataError> {
        let undo = st.db.apply_delta_undoable(delta)?;
        let result = crate::morsel::contain(|| self.apply_delta_kind(st, delta)).and_then(|r| r);
        match result {
            Ok(r) => Ok(r),
            Err(e) => {
                // Capture the post-delta content id before the rollback
                // erases it: views the failed maintenance admitted under
                // it can never be served again and are dropped eagerly.
                let post_id = st.db.get(&delta.relation).map(Relation::data_id).ok();
                st.db.undo_delta(undo)?;
                if let Some(id) = post_id {
                    ViewCache::global().invalidate_id(id);
                }
                // The maintained structure may be half-updated (an
                // interrupted owner→root walk, a partially routed shard
                // batch): rebuild it from the restored database. Rare —
                // genuine (non-injected) maintenance failures past the
                // database commit are exceptional — so the O(data)
                // rebuild is the error path's price, not the hot path's.
                match self.prepare(&st.db, &st.q) {
                    Ok(fresh) => *st = fresh,
                    Err(_) => st.kind = MaintKind::Recompute,
                }
                Err(e)
            }
        }
    }

    /// Engine-specific maintenance: `st.db` already reflects `delta`;
    /// fold it into the maintained structure and return the updated
    /// result. Implementations may leave the structure half-updated on
    /// `Err` or panic — the [`apply_delta`](MaintainableEngine::apply_delta)
    /// wrapper contains and recovers.
    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        match &mut st.kind {
            MaintKind::Custom(c) => c.apply_delta(&st.db, &st.q, delta),
            _ => self.run(&st.db, &st.q),
        }
    }

    /// The current maintained result, without applying a delta.
    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        match &mut st.kind {
            MaintKind::Custom(c) => c.eval(&st.db, &st.q),
            _ => self.run(&st.db, &st.q),
        }
    }
}

/// Boxed engines forward, so heterogeneous panels (tests, benches, the
/// serving harness) can hand a `Box<dyn MaintainableEngine + Send + Sync>`
/// to anything expecting a concrete engine — notably
/// [`ServingEngine`](crate::serve::ServingEngine). The provided
/// [`apply_delta`](MaintainableEngine::apply_delta) wrapper is inherited
/// (not forwarded): it applies the delta once and dispatches the
/// engine-specific part through the boxed
/// [`apply_delta_kind`](MaintainableEngine::apply_delta_kind).
impl Engine for Box<dyn MaintainableEngine + Send + Sync> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        (**self).run(db, q)
    }
}

impl MaintainableEngine for Box<dyn MaintainableEngine + Send + Sync> {
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        (**self).prepare(db, q)
    }

    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        (**self).apply_delta_kind(st, delta)
    }

    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        (**self).eval(st)
    }
}

/// Flat baseline: maintainable by recomputation (the default impls).
impl MaintainableEngine for FlatEngine {}

/// Factorized backend: maintainable by recomputation; its sort caches
/// still make the re-run cheap when dimension tables are unchanged.
impl MaintainableEngine for FactorizedEngine {}

// ---------------------------------------------------------------------------
// LMFAO: incremental maintenance of the layered view tree
// ---------------------------------------------------------------------------

/// The LMFAO maintained structure: the prepare-time plan (relations held
/// by `Arc`, the updated one refreshed per delta), per-node materialized
/// views, and the metadata extraction needs.
struct LmfaoMaint {
    plan: Plan,
    /// Per aggregate: its `(view, slot)` at the root.
    agg_slots: Vec<(usize, usize)>,
    /// Per aggregate: the root view's group attributes (key order).
    groups: Vec<Vec<String>>,
    /// Parent node per node (`None` at the root).
    parents: Vec<Option<usize>>,
    /// Prepare-time `(min, max)` per node per column — the delta-fit
    /// check: inserts outside these ranges could fall outside the dense
    /// code spaces the maintained views were built with, so they trigger
    /// the recompute fallback instead.
    ranges: Vec<Vec<Option<(i64, i64)>>>,
    /// Maintained views per node (bottom-up complete, root included).
    data: Vec<Arc<Vec<ViewData>>>,
    /// Per-node subtree signatures, kept current: a delta refreshes only
    /// the owner→root path's entries (off-path subtrees exclude the
    /// mutated relation, so their signatures cannot change), avoiding an
    /// O(plan) re-serialization per delta.
    sigs: Vec<String>,
}

/// Builds the complete maintained structure from `db`, serving warm
/// subtrees from (and admitting cold ones to) the global [`ViewCache`].
/// `root` pins the join-tree root across refreshes.
fn lmfao_build(
    cfg: &EngineConfig,
    db: &Database,
    q: &AggQuery,
    root: Option<usize>,
) -> Result<LmfaoMaint, DataError> {
    let rels = q.relation_refs();
    let mut plan = Plan::build_at(db, &rels, root)?;
    let root = plan.root;
    let mut agg_slots = Vec::with_capacity(q.batch.len());
    for (i, agg) in q.batch.aggs.iter().enumerate() {
        agg_slots.push(plan.decompose(agg, i, root, cfg.share)?);
    }
    plan.finalize(cfg.dense_limit);
    let plan = plan; // freeze
    let groups: Vec<Vec<String>> =
        agg_slots.iter().map(|&(vi, _)| plan.nodes[root].views[vi].group_attrs.clone()).collect();
    let mut parents = vec![None; plan.nodes.len()];
    for (i, np) in plan.nodes.iter().enumerate() {
        for &c in &np.children {
            parents[c] = Some(i);
        }
    }
    let ranges: Vec<Vec<Option<(i64, i64)>>> = plan
        .rels
        .iter()
        .map(|r| (0..r.schema().arity()).map(|c| r.int_min_max(c)).collect())
        .collect();
    // Materialize every node bottom-up — the state must hold *all* views
    // (a later delta below any node probes its siblings), unlike
    // `run_batch`, which skips whole warm subtrees.
    let ctx = (cfg.view_cache_bytes > 0).then(|| CacheCtx::new(ViewCache::global(), &plan, cfg));
    let mut slots: Vec<Option<Arc<Vec<ViewData>>>> = vec![None; plan.nodes.len()];
    for &n in &plan.order {
        // A cache hit is only adoptable if its views use the exact
        // representations this plan derived: unlike `run_batch` (which
        // only probes served views), the maintenance path later *merges
        // delta views into* them, and `ViewData::merge_from` requires
        // matching outer spaces. Views admitted by an earlier maintained
        // state can carry that state's prepare-time spaces. The predicate
        // runs inside the lookup, so a rejected entry is counted as a
        // miss — never as reuse the recompute below then contradicts.
        let adoptable = |views: &[ViewData]| {
            let np = &plan.nodes[n];
            views.len() == np.views.len()
                && np
                    .views
                    .iter()
                    .zip(views.iter())
                    .all(|(vp, vd)| vd.compatible(np.key_space.as_ref(), &vp.spec))
        };
        let served = ctx.as_ref().and_then(|c| c.serve_filtered(n, n == root, adoptable));
        let views = match served {
            Some(hit) => hit,
            None => {
                let v = Arc::new(compute_node(&plan, n, &slots, cfg, 0..plan.rels[n].len()));
                if let Some(c) = &ctx {
                    if n == root {
                        c.admit_root(root, 1, &v);
                    } else {
                        c.admit(n, &v);
                    }
                }
                v
            }
        };
        slots[n] = Some(views);
    }
    let data = slots.into_iter().map(|s| s.expect("order covers every node")).collect();
    let sigs = plan.subtree_signatures(cfg.dense_limit);
    Ok(LmfaoMaint { plan, agg_slots, groups, parents, ranges, data, sigs })
}

/// Reads the batch result out of the maintained root views.
fn lmfao_extract(m: &LmfaoMaint) -> BatchResult {
    let root_data = &m.data[m.plan.root];
    let mut groups = Vec::with_capacity(m.agg_slots.len());
    let mut values = Vec::with_capacity(m.agg_slots.len());
    for (idx, &(vi, si)) in m.agg_slots.iter().enumerate() {
        groups.push(m.groups[idx].clone());
        let mut map: HashMap<Box<[i64]>, f64> = HashMap::new();
        if let Some(entries) = root_data[vi].get(&[]) {
            entries.for_each(|gkey, payload| {
                if payload[si] != 0.0 {
                    map.insert(gkey.into(), payload[si]);
                }
            });
        }
        values.push(map);
    }
    BatchResult { groups, values }
}

/// The recompute fallback: rebuilds the whole maintained structure from
/// the (already mutated) database, keeping the pinned root.
fn lmfao_refresh(
    cfg: &EngineConfig,
    db: &Database,
    q: &AggQuery,
    m: &mut LmfaoMaint,
) -> Result<BatchResult, DataError> {
    fault::check("maintain-view")?;
    *m = lmfao_build(cfg, db, q, Some(m.plan.root))?;
    Ok(lmfao_extract(m))
}

/// True when every inserted row's integer values lie inside the
/// prepare-time column ranges of the updated relation — the condition
/// under which delta rows are guaranteed to encode into every dense code
/// space the maintained views use. (Deletes always fit: the maintained
/// ranges cover every row the relation has held since the last rebuild.)
fn delta_fits(m: &LmfaoMaint, owner: usize, delta: &Delta) -> bool {
    let schema = m.plan.rels[owner].schema();
    delta.inserts().all(|row| {
        row.iter().enumerate().all(|(c, v)| {
            if !schema.attr(c).ty.is_int_backed() {
                return true;
            }
            match m.ranges[owner][c] {
                Some((lo, hi)) => {
                    let x = v.as_int();
                    x >= lo && x <= hi
                }
                // Empty at prepare: no dense space exists to violate,
                // but the plan chose representations for an empty
                // relation — rebuild rather than reason about it.
                None => false,
            }
        })
    })
}

/// The incremental path: delta views at the owner, propagated along the
/// owner→root path. `db` already reflects the delta.
fn lmfao_delta(
    cfg: &EngineConfig,
    db: &Database,
    q: &AggQuery,
    m: &mut LmfaoMaint,
    delta: &Delta,
    owner: usize,
) -> Result<BatchResult, DataError> {
    // Refresh the owner's relation handle: signatures must embed the
    // post-delta content id, and path rescans must see current rows.
    m.plan.rels[owner] = db.get_shared(&delta.relation)?;
    if !cfg.delta_maintain || !delta_fits(m, owner, delta) {
        return lmfao_refresh(cfg, db, q, m);
    }
    // Delta views of the owner: the inserted rows' contributions minus
    // the deleted rows', both probed against the unchanged child views.
    let schema = m.plan.rels[owner].schema().clone();
    let mut ins = Relation::new(schema.clone());
    let mut del = Relation::new(schema);
    for (row, mult) in delta.rows() {
        if *mult > 0 { &mut ins } else { &mut del }.push_row(row)?;
    }
    let mut base: Vec<Option<Arc<Vec<ViewData>>>> = m.data.iter().cloned().map(Some).collect();
    let mut dv = compute_node_over(&m.plan, owner, &ins, &base, cfg, 0..ins.len());
    if !del.is_empty() {
        let mut neg = compute_node_over(&m.plan, owner, &del, &base, cfg, 0..del.len());
        for v in &mut neg {
            v.scale(-1.0);
        }
        merge_view_data(&mut dv, neg);
    }
    // Owner → root path.
    let mut path = vec![owner];
    while let Some(p) = m.parents[*path.last().expect("non-empty")] {
        path.push(p);
    }
    let mut cur_delta = Arc::new(dv);
    for (step, &n) in path.iter().enumerate() {
        // A fault here interrupts the owner→root walk with ancestors of
        // `n` still holding pre-delta views — exactly the half-updated
        // structure the `apply_delta` wrapper must recover from.
        fault::check("maintain-view")?;
        if step > 0 {
            if cur_delta.iter().all(ViewData::is_empty) {
                break;
            }
            // ΔV_n: only the rows of n joining a changed child key
            // contribute — probed against ΔV_child and the *current*
            // views of every off-path sibling.
            let child = path[step - 1];
            let np = &m.plan.nodes[n];
            let cpos = np.children.iter().position(|&c| c == child).expect("path child");
            let kcols = np.child_key_cols[cpos].clone();
            let rel = Arc::clone(&m.plan.rels[n]);
            let mut key: Vec<i64> = Vec::with_capacity(kcols.len());
            let matches: Vec<usize> = (0..rel.len())
                .filter(|&r| {
                    key.clear();
                    key.extend(kcols.iter().map(|&c| rel.value(r, c).as_int()));
                    cur_delta.iter().any(|v| v.contains_key(&key))
                })
                .collect();
            if matches.is_empty() {
                // Dead delta: nothing above changes.
                break;
            }
            let sub = rel.permuted(&matches);
            let mut pdata = base.clone();
            pdata[child] = Some(Arc::clone(&cur_delta));
            cur_delta = Arc::new(compute_node_over(&m.plan, n, &sub, &pdata, cfg, 0..sub.len()));
        }
        // A path node's `base` entry is never probed again — ancestors
        // consult only their children, and the path child is always
        // overridden with ΔV — so drop it before the merge: with the view
        // cache bypassed the merge is then a true in-place update. With
        // the cache on, `Arc::make_mut` copy-on-writes the path node's
        // aggregate state (sized by its group domains, not the database):
        // the retained cache snapshot must stay immutable for concurrent
        // readers, so that copy is the cost of serving future cold runs,
        // not waste.
        base[n] = None;
        let views: &mut Vec<ViewData> = Arc::make_mut(&mut m.data[n]);
        merge_view_data(views, (*cur_delta).clone());
    }
    // Refresh the path's signatures bottom-up against the cached vector
    // (off-path subtrees exclude the owner, so their signatures are
    // unchanged — the invariant that keeps `m.sigs` current without an
    // O(plan) re-serialization per delta), then re-admit the path under
    // the post-delta keys: off-path cache entries stay warm automatically
    // and the path is maintained in place instead of aging out.
    for &n in &path {
        m.sigs[n] = m.plan.node_signature(n, cfg.dense_limit, &m.sigs);
    }
    if cfg.view_cache_bytes > 0 {
        let cache = ViewCache::global();
        for &n in &path {
            let key =
                if n == m.plan.root { format!("{}#chunks1", m.sigs[n]) } else { m.sigs[n].clone() };
            cache.insert_maintained(
                &key,
                m.plan.rels[n].data_id(),
                Arc::clone(&m.data[n]),
                cfg.view_cache_bytes,
            );
        }
    }
    // A fault here fires *after* the maintained path was re-admitted to
    // the view cache under post-delta content ids — the wrapper's
    // invalidate-on-rollback must drop those entries, or a later cold run
    // over re-applied identical content would serve views the failed
    // epoch produced.
    fault::check("maintain-publish")?;
    Ok(lmfao_extract(m))
}

impl MaintainableEngine for LmfaoEngine {
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        q.validate(db)?;
        let maint = lmfao_build(&self.cfg, db, q, None)?;
        Ok(MaintState { db: db.clone(), q: q.clone(), kind: MaintKind::Lmfao(Box::new(maint)) })
    }

    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        let MaintKind::Lmfao(m) = &mut st.kind else {
            // A state prepared by some other engine: recompute.
            return self.run(&st.db, &st.q);
        };
        match st.q.relations.iter().position(|r| *r == delta.relation) {
            // A delta outside the join leaves the result untouched.
            None => Ok(lmfao_extract(m)),
            Some(owner) => lmfao_delta(&self.cfg, &st.db, &st.q, m, delta, owner),
        }
    }

    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        match &mut st.kind {
            MaintKind::Lmfao(m) => Ok(lmfao_extract(m)),
            MaintKind::Custom(c) => c.eval(&st.db, &st.q),
            _ => self.run(&st.db, &st.q),
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded: route the delta to the owning shard, re-merge
// ---------------------------------------------------------------------------

struct ShardedMaint {
    fact: String,
    states: Vec<MaintState>,
    /// Memoized per-shard results — a delta re-evaluates only the shards
    /// it touched, the rest merge from here.
    last: Vec<BatchResult>,
}

/// Occurrences of `row` in `rel` (full-tuple equality), counting only up
/// to `limit` — the delete router needs "does this shard still hold one",
/// not an exact multiset count, so the scan stops as soon as the answer
/// is decided.
fn count_rows_up_to(rel: &Relation, row: &[fdb_data::Value], limit: i64) -> i64 {
    let arity = rel.schema().arity();
    let mut found = 0i64;
    for r in 0..rel.len() {
        if (0..arity).all(|c| rel.value(r, c) == row[c]) {
            found += 1;
            if found >= limit {
                break;
            }
        }
    }
    found
}

impl<E: MaintainableEngine + Sync> MaintainableEngine for ShardedEngine<E> {
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        q.validate(db)?;
        let (fact, n) = self.plan_shards(db, q)?;
        let shard_dbs: Vec<Database> = if n == 1 { vec![db.clone()] } else { db.shard(&fact, n)? };
        let mut states = Vec::with_capacity(shard_dbs.len());
        let mut last = Vec::with_capacity(shard_dbs.len());
        for sdb in &shard_dbs {
            let mut st = self.inner().prepare(sdb, q)?;
            last.push(self.inner().eval(&mut st)?);
            states.push(st);
        }
        Ok(MaintState {
            db: db.clone(),
            q: q.clone(),
            kind: MaintKind::Sharded(ShardedMaint { fact, states, last }),
        })
    }

    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        let MaintKind::Sharded(sm) = &mut st.kind else {
            return self.run(&st.db, &st.q);
        };
        fault::check("maintain-view")?;
        if delta.relation == sm.fact && sm.states.len() > 1 {
            // Fact deltas route row-wise: an insert lands on the last
            // shard; a delete goes to a shard that (still) holds the row,
            // accounting for rows this very batch routed there already.
            let mut subs: Vec<Delta> = sm.states.iter().map(|_| Delta::new(&sm.fact)).collect();
            let nsub = subs.len();
            for (row, mult) in delta.rows() {
                if *mult > 0 {
                    subs[nsub - 1].push_insert(row.to_vec());
                    continue;
                }
                let target = (0..nsub).find(|&i| {
                    let routed: i64 =
                        subs[i].rows().iter().filter(|(r, _)| r == row).map(|(_, m)| *m).sum();
                    // A pending routed insert already covers the delete;
                    // otherwise the shard must hold strictly more copies
                    // than the deletes already routed to it — the scan
                    // stops as soon as that many are found.
                    routed > 0
                        || sm.states[i]
                            .database()
                            .get(&sm.fact)
                            .map(|rel| count_rows_up_to(rel, row, 1 - routed) > -routed)
                            .unwrap_or(false)
                });
                match target {
                    Some(i) => subs[i].push_delete(row.to_vec()),
                    None => {
                        return Err(DataError::Invalid(format!(
                            "delete of a row no shard of `{}` holds",
                            sm.fact
                        )))
                    }
                }
            }
            for (i, sub) in subs.iter().enumerate() {
                if !sub.is_empty() {
                    sm.last[i] = self.inner().apply_delta(&mut sm.states[i], sub)?;
                }
            }
        } else {
            // Dimension deltas (and the single-shard fallback) apply to
            // every shard — each shares the updated relation's join keys.
            for (i, shard) in sm.states.iter_mut().enumerate() {
                sm.last[i] = self.inner().apply_delta(shard, delta)?;
            }
        }
        merge_last(sm)
    }

    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        match &mut st.kind {
            MaintKind::Sharded(sm) => merge_last(sm),
            MaintKind::Custom(c) => c.eval(&st.db, &st.q),
            _ => self.run(&st.db, &st.q),
        }
    }
}

/// Ring-additive merge of the memoized per-shard results.
fn merge_last(sm: &ShardedMaint) -> Result<BatchResult, DataError> {
    let mut iter = sm.last.iter();
    let mut acc = iter.next().expect("at least one shard").clone();
    for r in iter {
        merge_into(&mut acc, r.clone())?;
    }
    drop_exact_zeros(&mut acc);
    Ok(acc)
}

// ---------------------------------------------------------------------------
// Dispatch: choose at prepare, maintain through the chosen backend
// ---------------------------------------------------------------------------

impl DispatchEngine {
    /// Runs `f` with the concrete backend `choice` resolves to.
    fn with_backend<T>(
        &self,
        choice: EngineChoice,
        f: impl FnOnce(&dyn MaintainableEngine) -> T,
    ) -> T {
        match choice {
            EngineChoice::Flat => f(&FlatEngine),
            EngineChoice::Factorized => f(&FactorizedEngine {
                dense_groups: self.cfg.dense_limit > 0,
                vectorize: self.cfg.vectorize,
                ..FactorizedEngine::new()
            }),
            EngineChoice::Lmfao | EngineChoice::Auto => f(&LmfaoEngine::with_config(self.cfg)),
        }
    }
}

impl MaintainableEngine for DispatchEngine {
    fn prepare(&self, db: &Database, q: &AggQuery) -> Result<MaintState, DataError> {
        q.validate(db)?;
        let choice = self.choose(db, q)?;
        let inner = self.with_backend(choice, |e| e.prepare(db, q))?;
        Ok(MaintState {
            db: db.clone(),
            q: q.clone(),
            kind: MaintKind::Dispatch { choice, inner: Box::new(inner) },
        })
    }

    fn apply_delta_kind(
        &self,
        st: &mut MaintState,
        delta: &Delta,
    ) -> Result<BatchResult, DataError> {
        let MaintKind::Dispatch { choice, inner } = &mut st.kind else {
            return self.run(&st.db, &st.q);
        };
        let choice = *choice;
        // The inner `apply_delta` is itself the transactional wrapper, so
        // the inner state (and its own database copy) rolls back on
        // failure; the outer wrapper then restores this level's database.
        self.with_backend(choice, |e| e.apply_delta(inner, delta))
    }

    fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
        match &mut st.kind {
            MaintKind::Dispatch { choice, inner } => {
                let choice = *choice;
                self.with_backend(choice, |e| e.eval(inner))
            }
            MaintKind::Custom(c) => c.eval(&st.db, &st.q),
            _ => self.run(&st.db, &st.q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{AggBatch, Aggregate, FilterOp};
    use fdb_data::{AttrType, Schema, Value};

    /// F(a, b, c, x) ⋈ D1(a, w, u) ⋈ D2(b, v) with categorical codes
    /// `c`, `w` for group-bys — integer-valued measures so incremental
    /// and cold sums are bit-exact.
    fn snowflake() -> Database {
        let mut db = Database::new();
        let mut f = Relation::new(Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Int),
            ("c", AttrType::Categorical),
            ("x", AttrType::Double),
        ]));
        for (a, b, x) in [(0, 0, 1.0), (0, 1, 2.0), (1, 0, -3.0), (2, 1, 4.0), (1, 1, 5.0)] {
            f.push_row(&[Value::Int(a), Value::Int(b), Value::Int((a + b) % 3), Value::F64(x)])
                .unwrap();
        }
        let mut d1 = Relation::new(Schema::of(&[
            ("a", AttrType::Int),
            ("w", AttrType::Categorical),
            ("u", AttrType::Double),
        ]));
        for (a, u) in [(0, 5.0), (1, -1.0), (2, 2.0)] {
            d1.push_row(&[Value::Int(a), Value::Int(a % 2), Value::F64(u)]).unwrap();
        }
        let mut d2 = Relation::new(Schema::of(&[("b", AttrType::Int), ("v", AttrType::Double)]));
        for (b, v) in [(0, 2.0), (1, 4.0)] {
            d2.push_row(&[Value::Int(b), Value::F64(v)]).unwrap();
        }
        db.add("F", f);
        db.add("D1", d1);
        db.add("D2", d2);
        db
    }

    fn query() -> AggQuery {
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count());
        batch.push(Aggregate::sum("x"));
        batch.push(Aggregate::sum_prod("x", "u"));
        batch.push(Aggregate::count().by(&["c"]));
        batch.push(Aggregate::sum("x").by(&["c", "w"]));
        batch.push(Aggregate::sum("v").filtered("u", FilterOp::Ge(0.0)));
        AggQuery::new(&["F", "D1", "D2"], batch)
    }

    fn assert_same(tag: &str, got: &BatchResult, expect: &BatchResult, naggs: usize) {
        for i in 0..naggs {
            assert_eq!(got.groups[i], expect.groups[i], "{tag}: agg {i} groups");
            assert_eq!(
                got.grouped(i).len(),
                expect.grouped(i).len(),
                "{tag}: agg {i} key count: {:?} vs {:?}",
                got.grouped(i),
                expect.grouped(i)
            );
            for (k, v) in got.grouped(i) {
                let e = expect.grouped(i).get(k).copied().unwrap_or(f64::NAN);
                assert!(
                    (v - e).abs() <= 1e-9 * (1.0 + e.abs()),
                    "{tag}: agg {i} {k:?}: {v} vs {e}"
                );
            }
        }
    }

    /// A scripted insert/delete stream over fact and dimensions: the
    /// incremental LMFAO path must agree with cold recomputation (the
    /// flat engine over the mutated database) after every delta.
    #[test]
    fn lmfao_delta_stream_agrees_with_cold_runs() {
        let db = snowflake();
        let q = query();
        let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let mut st = engine.prepare(&db, &q).unwrap();
        let mut shadow = db.clone();
        let frow = |a: i64, b: i64, x: f64| {
            vec![Value::Int(a), Value::Int(b), Value::Int((a + b) % 3), Value::F64(x)]
        };
        let deltas = [
            // Fact inserts within the prepare-time ranges: the pure
            // maintained path (owner == root, no ancestors to touch).
            Delta::insert("F", frow(1, 0, 7.0)),
            Delta::new("F").with_insert(frow(0, 1, -2.0)).with_insert(frow(2, 0, 1.0)),
            // Fact delete — the additive inverse.
            Delta::delete("F", frow(0, 0, 1.0)),
            // Mixed batch: net effect of insert + delete in one delta.
            Delta::new("F").with_insert(frow(2, 1, 3.0)).with_delete(frow(1, 0, -3.0)),
            // Dimension insert/delete: owner → root propagation with a
            // path rescan restricted to the matching fact rows.
            Delta::insert("D2", vec![Value::Int(0), Value::F64(-1.0)]),
            Delta::delete("D1", vec![Value::Int(1), Value::Int(1), Value::F64(-1.0)]),
            Delta::insert("D1", vec![Value::Int(1), Value::Int(1), Value::F64(6.0)]),
        ];
        for (i, d) in deltas.iter().enumerate() {
            let got = engine.apply_delta(&mut st, d).unwrap();
            shadow.apply_delta(d).unwrap();
            let cold = FlatEngine.run(&shadow, &q).unwrap();
            assert_same(&format!("delta {i}"), &got, &cold, q.batch.len());
            // And the state's own database tracks the shadow.
            assert_eq!(st.database().get("F").unwrap().len(), shadow.get("F").unwrap().len());
        }
        // eval() re-reads the maintained result without recomputation.
        let eval = engine.eval(&mut st).unwrap();
        let cold = FlatEngine.run(&shadow, &q).unwrap();
        assert_same("eval", &eval, &cold, q.batch.len());
    }

    /// Inserts outside the prepare-time code ranges cannot be folded into
    /// the dense maintained views — the path must fall back to a full
    /// rebuild and still agree with cold recomputation.
    #[test]
    fn out_of_range_insert_falls_back_to_refresh() {
        let db = snowflake();
        let q = query();
        let engine = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let mut st = engine.prepare(&db, &q).unwrap();
        let mut shadow = db.clone();
        // a = 9 is outside F's prepare-time range for `a`; the new D1 row
        // below makes it join.
        let deltas = [
            Delta::insert("D1", vec![Value::Int(9), Value::Int(1), Value::F64(3.0)]),
            Delta::insert("F", vec![Value::Int(9), Value::Int(0), Value::Int(0), Value::F64(8.0)]),
            Delta::insert("F", vec![Value::Int(9), Value::Int(1), Value::Int(1), Value::F64(2.0)]),
        ];
        for (i, d) in deltas.iter().enumerate() {
            let got = engine.apply_delta(&mut st, d).unwrap();
            shadow.apply_delta(d).unwrap();
            let cold = FlatEngine.run(&shadow, &q).unwrap();
            assert_same(&format!("fallback {i}"), &got, &cold, q.batch.len());
        }
    }

    /// `delta_maintain: false` pins the recompute baseline; deltas on
    /// relations outside the query leave the result untouched; invalid
    /// deltas error without corrupting the state.
    #[test]
    fn knob_off_unrelated_and_invalid_deltas() {
        let mut db = snowflake();
        db.add(
            "Z",
            Relation::from_rows(Schema::of(&[("z", AttrType::Int)]), vec![vec![Value::Int(1)]])
                .unwrap(),
        );
        let q = query();
        let off = LmfaoEngine::with_config(EngineConfig {
            threads: 1,
            delta_maintain: false,
            ..Default::default()
        });
        let mut st = off.prepare(&db, &q).unwrap();
        let before = off.eval(&mut st).unwrap();
        // Unrelated relation: applied to the database, result unchanged.
        let on = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let got = on.apply_delta(&mut st, &Delta::insert("Z", vec![Value::Int(7)])).unwrap();
        assert_same("unrelated", &got, &before, q.batch.len());
        assert_eq!(st.database().get("Z").unwrap().len(), 2);
        // Recompute baseline agrees with cold runs.
        let d =
            Delta::insert("F", vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::F64(1.0)]);
        let got = off.apply_delta(&mut st, &d).unwrap();
        let mut shadow = db.clone();
        shadow.apply_delta(&d).unwrap();
        let cold = FlatEngine.run(&shadow, &q).unwrap();
        assert_same("knob off", &got, &cold, q.batch.len());
        // Invalid delta: error, state still serves the last good result.
        let bad = Delta::delete(
            "F",
            vec![Value::Int(42), Value::Int(42), Value::Int(0), Value::F64(0.0)],
        );
        assert!(on.apply_delta(&mut st, &bad).is_err());
        assert_same("after error", &on.eval(&mut st).unwrap(), &cold, q.batch.len());
    }

    /// Sharded and dispatch compositions maintain through their wrapped
    /// engines and agree with cold runs after every delta.
    #[test]
    fn sharded_and_dispatch_maintenance_agree() {
        let db = snowflake();
        let q = query();
        let lmfao = LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() });
        let sharded = ShardedEngine::with_shards(lmfao, 2).with_min_rows_per_shard(1);
        let dispatch = DispatchEngine::new();
        let mut st_sharded = sharded.prepare(&db, &q).unwrap();
        let mut st_dispatch = dispatch.prepare(&db, &q).unwrap();
        let mut shadow = db.clone();
        let deltas = [
            Delta::insert("F", vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::F64(3.0)]),
            Delta::delete("F", vec![Value::Int(0), Value::Int(1), Value::Int(1), Value::F64(2.0)]),
            Delta::insert("D2", vec![Value::Int(1), Value::F64(1.0)]),
            Delta::delete("D2", vec![Value::Int(1), Value::F64(1.0)]),
        ];
        for (i, d) in deltas.iter().enumerate() {
            let a = sharded.apply_delta(&mut st_sharded, d).unwrap();
            let b = dispatch.apply_delta(&mut st_dispatch, d).unwrap();
            shadow.apply_delta(d).unwrap();
            let cold = FlatEngine.run(&shadow, &q).unwrap();
            assert_same(&format!("sharded {i}"), &a, &cold, q.batch.len());
            assert_same(&format!("dispatch {i}"), &b, &cold, q.batch.len());
        }
        // The sharded fact partition must keep covering the fact multiset.
        let MaintKind::Sharded(sm) = &st_sharded.kind else { panic!("sharded state") };
        let total: usize = sm.states.iter().map(|s| s.database().get("F").unwrap().len()).sum();
        assert_eq!(total, shadow.get("F").unwrap().len());
    }
}
