//! Sufficient statistics for learning: the sparse-tensor covariance
//! structure of §2.1, assembled from a batch result.
//!
//! For continuous features (with the response last) the statistics are the
//! count, sums, and second moments — the `(c, s, Q)` of the covariance
//! ring. Categorical features are *not* one-hot encoded; their
//! interactions are kept as group-by maps over the category codes that
//! actually occur ("sparse tensor encoding").

use crate::backend::Engine;
use crate::batch::AggBatch;
use crate::batchgen::covariance_batch;
use crate::ir::AggQuery;
use fdb_data::{DataError, Database};
use fdb_factorized::EvalSpec;
use fdb_ring::{CovRing, CovTriple, Semiring};
use std::collections::HashMap;

/// Sufficient statistics of a feature extraction query.
#[derive(Debug, Clone)]
pub struct SufficientStats {
    /// Continuous attributes (response last).
    pub cont: Vec<String>,
    /// Categorical attributes.
    pub cat: Vec<String>,
    /// `SUM(1)` over the join.
    pub count: f64,
    /// `SUM(ci)` per continuous attribute.
    pub sum: Vec<f64>,
    /// `SUM(ci*cj)` lower-triangular: entry `(i, j)`, `j <= i`, at
    /// `i*(i+1)/2 + j`.
    pub q: Vec<f64>,
    /// `SUM(1) GROUP BY cat_k`.
    pub cat_counts: Vec<HashMap<i64, f64>>,
    /// `SUM(cont_i) GROUP BY cat_k`, indexed `[k][i]`.
    pub cat_cont_sums: Vec<Vec<HashMap<i64, f64>>>,
    /// `SUM(1) GROUP BY cat_k, cat_l` for `k < l`, indexed by the pair
    /// `(k, l)` with keys `(code_k, code_l)`.
    pub cat_pair_counts: HashMap<(usize, usize), HashMap<(i64, i64), f64>>,
}

impl SufficientStats {
    /// The second moment `SUM(ci * cj)` (symmetric).
    pub fn moment(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.q[i * (i + 1) / 2 + j]
    }

    /// Number of continuous attributes (including the response).
    pub fn n_cont(&self) -> usize {
        self.cont.len()
    }
}

/// Computes sufficient statistics through any [`Engine`] backend.
///
/// `continuous` must list the response last (as
/// [`fdb_datasets`-style feature sets do](SufficientStats::cont)).
pub fn sufficient_stats(
    db: &Database,
    relations: &[&str],
    continuous: &[&str],
    categorical: &[&str],
    engine: &dyn Engine,
) -> Result<SufficientStats, DataError> {
    let batch: AggBatch = covariance_batch(continuous, categorical);
    let q = AggQuery::new(relations, batch);
    let res = engine.run(db, &q)?;
    stats_from_result(&res, continuous, categorical)
}

/// Assembles [`SufficientStats`] from an already computed result of the
/// [`covariance_batch`] over `continuous` × `categorical` — the seam the
/// delta layer trains through: a `MaintainableEngine::apply_delta` call
/// returns the maintained batch result, and this function (plus a `d×d`
/// solve) turns it into a refreshed model with no further data access.
pub fn stats_from_result(
    res: &crate::ir::BatchResult,
    continuous: &[&str],
    categorical: &[&str],
) -> Result<SufficientStats, DataError> {
    let batch: AggBatch = covariance_batch(continuous, categorical);
    if res.values.len() != batch.len() {
        return Err(DataError::Invalid(format!(
            "result carries {} aggregates but the covariance batch over {} continuous × {} \
             categorical features has {}",
            res.values.len(),
            continuous.len(),
            categorical.len(),
            batch.len()
        )));
    }
    let n = continuous.len();
    let m = categorical.len();
    let mut cursor = 0usize;
    let mut next_scalar = |res: &crate::ir::BatchResult| {
        let v = res.scalar(cursor);
        cursor += 1;
        v
    };
    let count = next_scalar(res);
    let mut sum = vec![0.0; n];
    let mut q = vec![0.0; n * (n + 1) / 2];
    for i in 0..n {
        sum[i] = next_scalar(res);
        for j in i..n {
            let v = next_scalar(res);
            let (hi, lo) = (j, i); // j >= i
            q[hi * (hi + 1) / 2 + lo] = v;
        }
    }
    let mut cat_counts = Vec::with_capacity(m);
    let mut cat_cont_sums = Vec::with_capacity(m);
    for _k in 0..m {
        let mut cc: HashMap<i64, f64> = HashMap::new();
        for (key, v) in res.grouped(cursor) {
            cc.insert(key[0], *v);
        }
        cursor += 1;
        cat_counts.push(cc);
        let mut per_cont = Vec::with_capacity(n);
        for _i in 0..n {
            let mut cs: HashMap<i64, f64> = HashMap::new();
            for (key, v) in res.grouped(cursor) {
                cs.insert(key[0], *v);
            }
            cursor += 1;
            per_cont.push(cs);
        }
        cat_cont_sums.push(per_cont);
    }
    let mut cat_pair_counts = HashMap::new();
    for k in 0..m {
        for l in k + 1..m {
            // Group key order is sorted by attribute name.
            let swap = categorical[k] > categorical[l];
            let mut map: HashMap<(i64, i64), f64> = HashMap::new();
            for (key, v) in res.grouped(cursor) {
                let (a, b) = if swap { (key[1], key[0]) } else { (key[0], key[1]) };
                map.insert((a, b), *v);
            }
            cursor += 1;
            cat_pair_counts.insert((k, l), map);
        }
    }
    debug_assert_eq!(cursor, batch.len());
    Ok(SufficientStats {
        cont: continuous.iter().map(|s| s.to_string()).collect(),
        cat: categorical.iter().map(|s| s.to_string()).collect(),
        count,
        sum,
        q,
        cat_counts,
        cat_cont_sums,
        cat_pair_counts,
    })
}

/// Computes the continuous block `(count, sums, moments)` with the
/// *factorized covariance-ring evaluator* instead of the LMFAO view engine
/// — one pass, one ring element (§5.2). Used to cross-check the two
/// engines against each other and by F-IVM.
pub fn cov_triple_factorized(
    db: &Database,
    relations: &[&str],
    continuous: &[&str],
) -> Result<CovTriple, DataError> {
    let spec = EvalSpec::new(db, relations, &[])?;
    let ring = CovRing::new(continuous.len());
    // For each relation: which continuous attributes it owns, with their
    // global indices and columns.
    let mut owned: Vec<Vec<(usize, usize)>> = Vec::with_capacity(relations.len());
    for (ri, _) in relations.iter().enumerate() {
        let rel = spec.relation(ri);
        let mut v = Vec::new();
        for (gi, attr) in continuous.iter().enumerate() {
            if let Ok(ci) = rel.schema().require(attr) {
                // Attribute ownership: continuous features are non-keys,
                // present in exactly one relation.
                v.push((gi, ci));
            }
        }
        owned.push(v);
    }
    let result = spec.eval(
        &ring,
        |_, _| ring.one(),
        |ri, rows| {
            let rel = spec.relation(ri);
            let mine = &owned[ri];
            let mut acc = ring.zero();
            let mut idx: Vec<usize> = Vec::with_capacity(mine.len());
            let mut vals: Vec<f64> = Vec::with_capacity(mine.len());
            for r in rows {
                idx.clear();
                vals.clear();
                for &(gi, ci) in mine {
                    idx.push(gi);
                    vals.push(rel.value_f64(r, ci));
                }
                // Fused lift + add: updates the triple in place without
                // materializing a dense intermediate per row.
                ring.add_lift_sparse(&mut acc, &idx, &vals);
            }
            acc
        },
    );
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_datasets::{retailer, RetailerConfig};

    #[test]
    fn stats_unpack_in_generation_order() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let stats = sufficient_stats(
            &ds.db,
            &rels,
            &["prize", "maxtemp", "inventoryunits"],
            &["rain", "category"],
            &crate::backend::LmfaoEngine::default(),
        )
        .unwrap();
        assert!(stats.count > 0.0);
        assert_eq!(stats.sum.len(), 3);
        assert_eq!(stats.q.len(), 6);
        assert_eq!(stats.cat_counts.len(), 2);
        assert_eq!(stats.cat_cont_sums[0].len(), 3);
        assert!(stats.cat_pair_counts.contains_key(&(0, 1)));
        // Marginals must sum to the total count.
        let rain_total: f64 = stats.cat_counts[0].values().sum();
        assert!((rain_total - stats.count).abs() < 1e-6);
        // Pair counts must sum to the total count too.
        let pair_total: f64 = stats.cat_pair_counts[&(0, 1)].values().sum();
        assert!((pair_total - stats.count).abs() < 1e-6);
        // moment(i,j) is symmetric.
        assert_eq!(stats.moment(0, 2), stats.moment(2, 0));
    }

    #[test]
    fn lmfao_and_covring_engines_agree() {
        let ds = retailer(RetailerConfig::tiny());
        let rels: Vec<&str> = ds.relation_refs();
        let cont = ["prize", "maxtemp", "population", "inventoryunits"];
        let stats =
            sufficient_stats(&ds.db, &rels, &cont, &[], &crate::backend::LmfaoEngine::default())
                .unwrap();
        let triple = cov_triple_factorized(&ds.db, &rels, &cont).unwrap();
        assert!((stats.count - triple.c).abs() < 1e-6);
        for i in 0..cont.len() {
            let rel_err = (stats.sum[i] - triple.s[i]).abs() / (1.0 + triple.s[i].abs());
            assert!(rel_err < 1e-9, "sum {i}: {} vs {}", stats.sum[i], triple.s[i]);
            for j in 0..=i {
                let (a, b) = (stats.moment(i, j), triple.q_at(i, j));
                assert!((a - b).abs() / (1.0 + b.abs()) < 1e-9, "q {i},{j}: {a} vs {b}");
            }
        }
    }
}
