//! The shared-scan bottom-up evaluator (LMFAO §4).
//!
//! Views are filled bottom-up over the join tree: all views at a node are
//! computed in **one shared scan** of the node's relation, probing the
//! children's already-computed views by join key. Typed column kernels
//! (the "specialisation" toggle) replace per-tuple `Value` interpretation
//! in the hot loop. The multi-threaded paths live in [`crate::parallel`];
//! this module is the sequential core plus the [`run_batch`] entry point.

use crate::batch::{AggBatch, FilterOp};
use crate::group::GroupIndex;
use crate::ir::BatchResult;
use crate::parallel::{self, EngineConfig};
use crate::plan::{Plan, ViewData};
use crate::viewcache::ViewCache;
use fdb_data::{DataError, Database};
use std::collections::HashMap;
use std::sync::Arc;

/// The view-cache context of one `run_batch` call: the cache, the plan's
/// per-node subtree signatures, the per-node relation content ids (stats
/// attribution), and the caller's byte budget.
pub(crate) struct CacheCtx<'a> {
    cache: &'a ViewCache,
    sigs: Vec<String>,
    head_ids: Vec<u64>,
    budget: usize,
}

impl<'a> CacheCtx<'a> {
    pub(crate) fn new(cache: &'a ViewCache, plan: &Plan, cfg: &EngineConfig) -> Self {
        let mut sigs = plan.subtree_signatures(cfg.dense_limit);
        // Batched and row-wise scans differ in float summation order, so
        // the baseline arm must never serve views cached by the default.
        if !cfg.vectorize {
            for s in &mut sigs {
                s.push_str("#rowwise");
            }
        }
        Self {
            cache,
            sigs,
            head_ids: plan.rels.iter().map(|r| r.data_id()).collect(),
            budget: cfg.view_cache_bytes,
        }
    }

    /// The cached views of `node`'s subtree, if its signature is warm.
    pub(crate) fn serve(&self, node: usize) -> Option<Arc<Vec<ViewData>>> {
        self.cache.get(&self.sigs[node], self.head_ids[node])
    }

    /// Offers freshly computed views of `node` to the cache.
    pub(crate) fn admit(&self, node: usize, views: &Arc<Vec<ViewData>>) {
        self.cache.insert(&self.sigs[node], self.head_ids[node], Arc::clone(views), self.budget);
    }

    /// Root views depend on the row-chunking of the scan (merge order can
    /// change float rounding), so the root's key carries the chunk count
    /// on top of the subtree signature.
    fn root_key(&self, root: usize, chunks: usize) -> String {
        format!("{}#chunks{chunks}", self.sigs[root])
    }

    /// The cached root views for a `chunks`-way scan, if warm.
    pub(crate) fn serve_root(&self, root: usize, chunks: usize) -> Option<Arc<Vec<ViewData>>> {
        self.cache.get(&self.root_key(root, chunks), self.head_ids[root])
    }

    /// [`CacheCtx::serve`] with an adoption predicate checked before the
    /// hit is counted (rejections count as misses — see
    /// [`ViewCache::get_filtered`]). `chunks1_root` keys the node as the
    /// root of a 1-chunk scan instead of by its plain subtree signature.
    pub(crate) fn serve_filtered(
        &self,
        node: usize,
        chunks1_root: bool,
        adopt: impl FnOnce(&[ViewData]) -> bool,
    ) -> Option<Arc<Vec<ViewData>>> {
        let key = if chunks1_root { self.root_key(node, 1) } else { self.sigs[node].clone() };
        self.cache.get_filtered(&key, self.head_ids[node], adopt)
    }

    /// Offers freshly computed root views (a `chunks`-way scan).
    pub(crate) fn admit_root(&self, root: usize, chunks: usize, views: &Arc<Vec<ViewData>>) {
        self.cache.insert(
            &self.root_key(root, chunks),
            self.head_ids[root],
            Arc::clone(views),
            self.budget,
        );
    }
}

/// Typed column accessor — the "specialisation" fast path.
pub(crate) enum Col<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
}

impl<'a> Col<'a> {
    /// Builds typed accessors for every column of `rel`. Dispatches on the
    /// column's *actual* backing store (not the schema's claimed type), so
    /// a schema/storage disagreement can never abort a worker thread — the
    /// accessor simply reflects what the column holds.
    pub(crate) fn all(rel: &'a fdb_data::Relation) -> Vec<Col<'a>> {
        (0..rel.schema().arity())
            .map(|c| match rel.col(c) {
                fdb_data::Column::Int(v) => Col::I(v.as_slice()),
                fdb_data::Column::F64(v) => Col::F(v.as_slice()),
            })
            .collect()
    }

    #[inline]
    pub(crate) fn get(&self, row: usize) -> f64 {
        match self {
            Col::F(v) => v[row],
            Col::I(v) => v[row] as f64,
        }
    }

    #[inline]
    pub(crate) fn get_int(&self, row: usize) -> i64 {
        match self {
            Col::F(v) => v[row] as i64,
            Col::I(v) => v[row],
        }
    }
}

/// Evaluates one filter condition against the float/int views of a value.
#[inline]
pub(crate) fn filter_pass(op: &FilterOp, x_f: f64, x_i: i64) -> bool {
    match op {
        FilterOp::Ge(t) => x_f >= *t,
        FilterOp::Lt(t) => x_f < *t,
        FilterOp::Eq(v) => x_i == *v,
        FilterOp::Ne(v) => x_i != *v,
        FilterOp::In(vs) => vs.binary_search(&x_i).is_ok(),
    }
}

/// Computes all views of `node` over `rows` of its relation, probing the
/// children's views in `child_data`.
pub(crate) fn compute_node(
    plan: &Plan,
    node: usize,
    child_data: &[Option<Arc<Vec<ViewData>>>],
    cfg: &EngineConfig,
    rows: std::ops::Range<usize>,
) -> Vec<ViewData> {
    compute_node_over(plan, node, &plan.rels[node], child_data, cfg, rows)
}

/// [`compute_node`] scanning `rel` in place of the node's own relation —
/// the delta-maintenance entry point: a batch of inserted (or deleted)
/// rows, shaped like the node's relation, contributes its views exactly
/// as those rows would during a full scan, so the result is the *delta*
/// of the node's views under the update.
pub(crate) fn compute_node_over(
    plan: &Plan,
    node: usize,
    rel: &fdb_data::Relation,
    child_data: &[Option<Arc<Vec<ViewData>>>],
    cfg: &EngineConfig,
    rows: std::ops::Range<usize>,
) -> Vec<ViewData> {
    let np = &plan.nodes[node];
    let cols = Col::all(rel);
    let mut out: Vec<ViewData> =
        np.views.iter().map(|_| ViewData::new(np.key_space.as_ref())).collect();
    let nchildren = np.children.len();
    // Distinct (child position, child view) lookups across all views: each
    // is fetched once per row and shared by every view needing it.
    let mut lookup_specs: Vec<(usize, usize)> = Vec::new();
    let view_lookups: Vec<Vec<usize>> = np
        .views
        .iter()
        .map(|vp| {
            vp.child_views
                .iter()
                .enumerate()
                .map(|(cpos, &(cv, _))| {
                    match lookup_specs.iter().position(|&ls| ls == (cpos, cv)) {
                        Some(i) => i,
                        None => {
                            lookup_specs.push((cpos, cv));
                            lookup_specs.len() - 1
                        }
                    }
                })
                .collect()
        })
        .collect();
    // Hash-free accumulators for scalar views (empty key, no group-bys) —
    // the bulk of a covariance batch at the root.
    let scalar_view: Vec<bool> =
        np.views.iter().map(|vp| np.key_cols.is_empty() && vp.group_attrs.is_empty()).collect();
    let mut scalar_payloads: Vec<Vec<f64>> = np
        .views
        .iter()
        .enumerate()
        .map(|(vi, vp)| if scalar_view[vi] { vec![0.0; vp.slots.len()] } else { vec![] })
        .collect();
    // Leaf nodes (no children to probe) take the batch-at-a-time kernel
    // path: per-slot factor/filter passes run column-wise over morsel-sized
    // row batches instead of row-at-a-time.
    if cfg.specialize && cfg.vectorize && nchildren == 0 {
        compute_leaf_batched(np, &cols, cfg, rows, &mut out, &scalar_view, &mut scalar_payloads);
        for (vi, payload) in scalar_payloads.into_iter().enumerate() {
            if scalar_view[vi] {
                out[vi].entry_mut(&[], &np.views[vi].spec).add(&[], &payload);
            }
        }
        return out;
    }
    // Reused per-row buffers: with dense accumulators the hot loop does
    // not allocate at all; the hash fallback allocates only on first
    // insertion of a new key.
    let mut child_keys: Vec<Vec<i64>> = vec![Vec::new(); nchildren];
    let mut key_buf: Vec<i64> = Vec::new();
    let mut gkey_buf: Vec<i64> = Vec::new();
    let mut gvals_buf: Vec<i64> = Vec::new();
    let mut single: Vec<&[f64]> = Vec::with_capacity(nchildren);
    let mut fetched: Vec<Option<*const GroupIndex>> = vec![None; lookup_specs.len()];
    // Cross-product scratch: per child, the flattened (keys, payloads) of
    // its current group entries plus the key stride.
    let mut cross_keys: Vec<Vec<i64>> = vec![Vec::new(); nchildren];
    let mut cross_pays: Vec<Vec<&[f64]>> = vec![Vec::new(); nchildren];
    let mut cross_arity: Vec<usize> = vec![0; nchildren];
    let mut idx: Vec<usize> = vec![0; nchildren];
    for row in rows {
        // Generic (unspecialized) mode materializes the tuple first — the
        // per-tuple interpretation overhead LMFAO's code generation removes.
        let generic_row: Option<Vec<fdb_data::Value>> =
            if cfg.specialize { None } else { Some(rel.row_vec(row)) };
        let getf = |c: usize| -> f64 {
            match &generic_row {
                None => cols[c].get(row),
                Some(r) => r[c].as_f64(),
            }
        };
        let geti = |c: usize| -> i64 {
            match &generic_row {
                None => cols[c].get_int(row),
                Some(r) => r[c].as_int(),
            }
        };
        // Row keys, once per child and once to the parent.
        for (cpos, buf) in child_keys.iter_mut().enumerate() {
            buf.clear();
            buf.extend(np.child_key_cols[cpos].iter().map(|&c| geti(c)));
        }
        key_buf.clear();
        key_buf.extend(np.key_cols.iter().map(|&c| geti(c)));
        // Fetch each distinct child view once. Raw pointers sidestep the
        // borrow of `child_data` across the mutable `out` uses below; the
        // maps live in `child_data`, which is untouched for this node.
        for (li, &(cpos, cv)) in lookup_specs.iter().enumerate() {
            let data = child_data[np.children[cpos]].as_ref().expect("child computed first");
            fetched[li] = data[cv].get(child_keys[cpos].as_slice()).map(|m| m as *const GroupIndex);
        }
        'views: for (vi, vp) in np.views.iter().enumerate() {
            debug_assert_eq!(vp.spec.slots, vp.slots.len(), "plan must be finalized");
            // Resolve this view's child entries; a missing partner kills
            // the row's contribution to this view.
            let mut entries: Vec<&GroupIndex> = Vec::with_capacity(nchildren);
            for &li in &view_lookups[vi] {
                match fetched[li] {
                    // SAFETY: points into `child_data`, alive and unaliased
                    // by the writes to `out`/`scalar_payloads`.
                    Some(p) => entries.push(unsafe { &*p }),
                    None => continue 'views,
                }
            }
            let group_len = vp.group_attrs.len();
            // Fast path: every child contributes exactly one group entry
            // (always true for scalar views) — no cross product needed.
            if entries.iter().all(|m| m.len() == 1) {
                gkey_buf.clear();
                gkey_buf.resize(group_len, 0);
                for &(pos, col) in &vp.local_groups {
                    gkey_buf[pos] = geti(col);
                }
                single.clear();
                for (cpos, m) in entries.iter().enumerate() {
                    let pay = m.only(&mut gvals_buf).expect("len 1");
                    for &(mypos, cpos_g) in &vp.child_views[cpos].1 {
                        gkey_buf[mypos] = gvals_buf[cpos_g];
                    }
                    single.push(pay);
                    debug_assert_eq!(single.len(), cpos + 1);
                }
                let payload: &mut [f64] = if scalar_view[vi] {
                    &mut scalar_payloads[vi]
                } else {
                    out[vi].entry_mut(&key_buf, &vp.spec).payload_mut(&gkey_buf)
                };
                'slots: for (si, slot) in vp.slots.iter().enumerate() {
                    for (c, op) in &slot.filter {
                        if !filter_pass(op, getf(*c), geti(*c)) {
                            continue 'slots;
                        }
                    }
                    let mut v = 1.0;
                    for &(c, f) in &slot.factors {
                        v *= f.apply(getf(c));
                    }
                    for (cpos, _) in entries.iter().enumerate() {
                        v *= single[cpos][slot.child_slots[cpos]];
                    }
                    payload[si] += v;
                }
                continue 'views;
            }
            // General path: cross product of child group entries, flattened
            // into the reused scratch buffers (no per-row allocation).
            for (cpos, m) in entries.iter().enumerate() {
                cross_arity[cpos] = m.flatten_pairs(&mut cross_keys[cpos], &mut cross_pays[cpos]);
                idx[cpos] = 0;
            }
            loop {
                gkey_buf.clear();
                gkey_buf.resize(group_len, 0);
                for &(pos, col) in &vp.local_groups {
                    gkey_buf[pos] = geti(col);
                }
                for cpos in 0..entries.len() {
                    let (stride, i) = (cross_arity[cpos], idx[cpos]);
                    let gvals = &cross_keys[cpos][i * stride..(i + 1) * stride];
                    for &(mypos, cpos_g) in &vp.child_views[cpos].1 {
                        gkey_buf[mypos] = gvals[cpos_g];
                    }
                }
                // Accumulate all slots for this combination.
                let payload: &mut [f64] = if scalar_view[vi] {
                    &mut scalar_payloads[vi]
                } else {
                    out[vi].entry_mut(&key_buf, &vp.spec).payload_mut(&gkey_buf)
                };
                'slots: for (si, slot) in vp.slots.iter().enumerate() {
                    for (c, op) in &slot.filter {
                        if !filter_pass(op, getf(*c), geti(*c)) {
                            continue 'slots;
                        }
                    }
                    let mut v = 1.0;
                    for &(c, f) in &slot.factors {
                        v *= f.apply(getf(c));
                    }
                    for cpos in 0..entries.len() {
                        v *= cross_pays[cpos][idx[cpos]][slot.child_slots[cpos]];
                    }
                    payload[si] += v;
                }
                // Advance the multi-index.
                let mut d = 0;
                loop {
                    if d == nchildren {
                        break;
                    }
                    idx[d] += 1;
                    if idx[d] < cross_pays[d].len() {
                        break;
                    }
                    idx[d] = 0;
                    d += 1;
                }
                if d == nchildren {
                    break;
                }
            }
        }
    }
    // Fold the hash-free scalar accumulators into the view representation.
    for (vi, payload) in scalar_payloads.into_iter().enumerate() {
        if scalar_view[vi] {
            out[vi].entry_mut(&[], &np.views[vi].spec).add(&[], &payload);
        }
    }
    out
}

/// Per-worker scratch arena for the batched leaf scan: slot-value
/// stripes, code buffers, key buffers, and the radix-partition scratch.
/// Thread-local, so morsel workers stop allocating per (node, morsel)
/// call after their first — the buffers warm up to the working sizes and
/// stay.
#[derive(Default)]
struct LeafScratch {
    slot_vals: Vec<f64>,
    key_codes: Vec<u64>,
    gcodes: Vec<u64>,
    oob: Vec<u64>,
    key_buf: Vec<i64>,
    gkey_buf: Vec<i64>,
    scatter: crate::group::ScatterScratch,
}

thread_local! {
    static LEAF_SCRATCH: std::cell::RefCell<LeafScratch> = std::cell::RefCell::default();
}

/// How one view's batch scatters into its accumulators — decided once per
/// `compute_leaf_batched` call (loop-invariant across batches).
enum ScatterMode {
    /// Per-row `entry_mut` + `payload_mut` — the row-wise twin, kept for
    /// hash-backed levels or float-typed key/group columns.
    RowWise,
    /// No join key: one view entry, so the whole batch fuses into a single
    /// encode+scatter pass ([`crate::kernel::encode_scatter`]) — or, past
    /// the [`EngineConfig::scatter_partition_groups`] threshold, a
    /// radix-partitioned scatter. `gcols` is the group column per slot
    /// position.
    SingleEntry { gcols: Vec<usize> },
    /// Dense join-key *and* group spaces: both key levels batch-encode
    /// ([`crate::kernel::encode_codes`]) and each row resolves its entry
    /// by code ([`ViewData::entry_mut_by_code`]) then adds its whole
    /// payload row ([`GroupIndex::add_payload_row`]) — one walk over the
    /// batch for all slots, no key re-encoding, no `Vec<i64>` key builds.
    Keyed { gcols: Vec<usize> },
}

/// The batch-at-a-time leaf scan: for each morsel-sized row batch, every
/// view's per-slot values are computed as column-wise passes over the
/// batch (factor products via [`crate::kernel::mul_by`], filters via
/// [`crate::kernel::mask_by`] — a select to `0.0`, preserving the row-wise
/// path's skip semantics exactly), then scattered into the accumulators
/// with the fused multi-slot kernels (see [`ScatterMode`]); every fast
/// path is bit-identical to the row-wise twin, which `vectorize = false`
/// pins. Scalar views reduce each batch with one deterministic slice sum.
fn compute_leaf_batched(
    np: &crate::plan::NodePlan,
    cols: &[Col<'_>],
    cfg: &EngineConfig,
    rows: std::ops::Range<usize>,
    out: &mut [ViewData],
    scalar_view: &[bool],
    scalar_payloads: &mut [Vec<f64>],
) {
    let batch_cap = cfg.morsel_rows.clamp(1, crate::morsel::DEFAULT_MORSEL_ROWS);
    // Scatter-path selection, once per view: a group level is batchable
    // when its accumulator is dense and every group column is
    // integer-backed; the key level additionally needs the node's dense
    // key space (or no key at all).
    let modes: Vec<ScatterMode> = np
        .views
        .iter()
        .enumerate()
        .map(|(vi, vp)| {
            if scalar_view[vi] {
                return ScatterMode::RowWise; // unused: scalar views sum, never scatter
            }
            if vp.spec.space.is_none() || vp.local_groups.len() != vp.group_attrs.len() {
                return ScatterMode::RowWise;
            }
            let mut gcols = vec![usize::MAX; vp.group_attrs.len()];
            for &(pos, col) in &vp.local_groups {
                gcols[pos] = col;
            }
            if gcols.iter().any(|&c| c == usize::MAX || !matches!(cols[c], Col::I(_))) {
                return ScatterMode::RowWise;
            }
            if np.key_cols.is_empty() {
                return ScatterMode::SingleEntry { gcols };
            }
            let keys_dense =
                np.key_space.is_some() && np.key_cols.iter().all(|&c| matches!(cols[c], Col::I(_)));
            if keys_dense {
                ScatterMode::Keyed { gcols }
            } else {
                ScatterMode::RowWise
            }
        })
        .collect();
    LEAF_SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let int_slice = |c: usize, lo: usize, hi: usize| -> &[i64] {
            match &cols[c] {
                Col::I(v) => &v[lo..hi],
                Col::F(_) => unreachable!("mode selection requires integer columns"),
            }
        };
        let mut lo = rows.start;
        while lo < rows.end {
            let hi = (lo + batch_cap).min(rows.end);
            let n = hi - lo;
            for (vi, vp) in np.views.iter().enumerate() {
                debug_assert_eq!(vp.spec.slots, vp.slots.len(), "plan must be finalized");
                let nslots = vp.slots.len();
                s.slot_vals.clear();
                s.slot_vals.resize(nslots * n, 1.0);
                for (si, slot) in vp.slots.iter().enumerate() {
                    let sv = &mut s.slot_vals[si * n..(si + 1) * n];
                    for &(c, f) in &slot.factors {
                        match &cols[c] {
                            Col::F(v) => crate::kernel::mul_by(sv, &v[lo..hi], |x| f.apply(x)),
                            Col::I(v) => {
                                crate::kernel::mul_by(sv, &v[lo..hi], |x| f.apply(x as f64))
                            }
                        }
                    }
                    for (c, op) in &slot.filter {
                        match &cols[*c] {
                            Col::F(v) => crate::kernel::mask_by(sv, &v[lo..hi], |x| {
                                filter_pass(op, x, x as i64)
                            }),
                            Col::I(v) => crate::kernel::mask_by(sv, &v[lo..hi], |x| {
                                filter_pass(op, x as f64, x)
                            }),
                        }
                    }
                }
                if scalar_view[vi] {
                    let payload = &mut scalar_payloads[vi];
                    for si in 0..nslots {
                        payload[si] += crate::kernel::sum(&s.slot_vals[si * n..(si + 1) * n]);
                    }
                    continue;
                }
                match &modes[vi] {
                    ScatterMode::SingleEntry { gcols } => {
                        let gslices: Vec<&[i64]> =
                            gcols.iter().map(|&c| int_slice(c, lo, hi)).collect();
                        let entry = out[vi].entry_mut(&[], &vp.spec);
                        let gspace = vp.spec.space.as_ref().expect("mode requires dense groups");
                        if gspace.size() > cfg.scatter_partition_groups {
                            crate::kernel::encode_codes(
                                gspace,
                                &gslices,
                                n,
                                &mut s.gcodes,
                                &mut s.oob,
                            );
                            entry.add_codes_multi_partitioned(
                                &s.gcodes,
                                &s.slot_vals,
                                cfg.scatter_partition_groups,
                                &mut s.scatter,
                            );
                        } else {
                            crate::kernel::encode_scatter(&gslices, n, &s.slot_vals, entry);
                        }
                    }
                    ScatterMode::Keyed { gcols } => {
                        let kslices: Vec<&[i64]> =
                            np.key_cols.iter().map(|&c| int_slice(c, lo, hi)).collect();
                        let kspace = np.key_space.as_ref().expect("mode requires dense keys");
                        crate::kernel::encode_codes(
                            kspace,
                            &kslices,
                            n,
                            &mut s.key_codes,
                            &mut s.oob,
                        );
                        let gslices: Vec<&[i64]> =
                            gcols.iter().map(|&c| int_slice(c, lo, hi)).collect();
                        let gspace = vp.spec.space.as_ref().expect("mode requires dense groups");
                        crate::kernel::encode_codes(gspace, &gslices, n, &mut s.gcodes, &mut s.oob);
                        // Both spaces are sized from the min/max of these
                        // very columns, so no row can be out of range.
                        debug_assert!(s.key_codes.iter().all(|&c| c != crate::kernel::OOB_CODE));
                        debug_assert!(s.gcodes.iter().all(|&c| c != crate::kernel::OOB_CODE));
                        for r in 0..n {
                            out[vi].entry_mut_by_code(s.key_codes[r], &vp.spec).add_payload_row(
                                s.gcodes[r],
                                &s.slot_vals,
                                r,
                                n,
                            );
                        }
                    }
                    ScatterMode::RowWise => {
                        // Keyed views scatter row-wise; the group entry is
                        // touched for every row (even all-zero slots),
                        // matching the row-wise path's touch-before-filter
                        // order.
                        for r in 0..n {
                            let row = lo + r;
                            s.key_buf.clear();
                            s.key_buf.extend(np.key_cols.iter().map(|&c| cols[c].get_int(row)));
                            s.gkey_buf.clear();
                            s.gkey_buf.resize(vp.group_attrs.len(), 0);
                            for &(pos, col) in &vp.local_groups {
                                s.gkey_buf[pos] = cols[col].get_int(row);
                            }
                            let payload =
                                out[vi].entry_mut(&s.key_buf, &vp.spec).payload_mut(&s.gkey_buf);
                            for si in 0..nslots {
                                payload[si] += s.slot_vals[si * n + r];
                            }
                        }
                    }
                }
            }
            lo = hi;
        }
    });
}

/// Computes all nodes of `order` sequentially (bottom-up), offering each
/// computed node to the view cache.
pub(crate) fn compute_subtree(
    plan: &Plan,
    order: &[usize],
    data: &mut [Option<Arc<Vec<ViewData>>>],
    cfg: &EngineConfig,
    ctx: Option<&CacheCtx<'_>>,
) {
    for &n in order {
        let views = Arc::new(compute_node(plan, n, data, cfg, 0..plan.rels[n].len()));
        if let Some(ctx) = ctx {
            ctx.admit(n, &views);
        }
        data[n] = Some(views);
    }
}

/// Runs an aggregate batch over the natural join of `relations`.
///
/// Crate-internal: the public entry point is
/// [`crate::backend::LmfaoEngine`], whose `run` validates the
/// [`crate::ir::AggQuery`] first — calling this directly would skip the
/// invariants (e.g. integer-backed group-bys) the backends rely on.
pub(crate) fn run_batch(
    db: &Database,
    relations: &[&str],
    batch: &AggBatch,
    cfg: &EngineConfig,
) -> Result<BatchResult, DataError> {
    let mut plan = Plan::build(db, relations)?;
    let root = plan.root;
    // Decompose every aggregate from the root.
    let mut agg_slots = Vec::with_capacity(batch.aggs.len());
    for (i, agg) in batch.aggs.iter().enumerate() {
        agg_slots.push(plan.decompose(agg, i, root, cfg.share)?);
    }
    plan.finalize(cfg.dense_limit);
    let plan = plan; // freeze
    let ctx = (cfg.view_cache_bytes > 0).then(|| CacheCtx::new(ViewCache::global(), &plan, cfg));
    let mut data: Vec<Option<Arc<Vec<ViewData>>>> = plan.rels.iter().map(|_| None).collect();

    // Serve warm subtrees top-down: a node whose subtree signature hits
    // needs nothing below it (its views already fold the whole subtree
    // in), so the walk only descends into missed nodes. What's left to
    // compute is exactly the nodes on the path from some changed relation
    // or filter to the root — the residual of the batch against the cache.
    let mut need = vec![false; plan.rels.len()];
    for &c in &plan.nodes[root].children {
        need[c] = true;
    }
    for &n in plan.order.iter().rev() {
        if n == root || !need[n] {
            continue;
        }
        if let Some(hit) = ctx.as_ref().and_then(|ctx| ctx.serve(n)) {
            data[n] = Some(hit);
            continue;
        }
        for &c in &plan.nodes[n].children {
            need[c] = true;
        }
    }
    let to_compute: Vec<usize> =
        plan.order.iter().copied().filter(|&n| n != root && need[n] && data[n].is_none()).collect();

    // Missed nodes bottom-up; root children subtrees are independent and
    // can run task-parallel.
    if cfg.threads > 1 && plan.nodes[root].children.len() > 1 {
        parallel::compute_subtrees_parallel(&plan, &to_compute, &mut data, cfg, ctx.as_ref())?;
    } else {
        compute_subtree(&plan, &to_compute, &mut data, cfg, ctx.as_ref());
    }

    // Root: domain parallelism over morsel-sized row chunks. The root's
    // cache key carries the chunk count, since chunk-merge order affects
    // float rounding; `morsel_count` is deterministic in (rows, config),
    // so warm runs key identically.
    let root_rows = plan.rels[root].len();
    let chunked = cfg.threads > 1 && root_rows > cfg.morsel_rows;
    let chunks = if chunked {
        crate::morsel::morsel_count(root_rows, cfg.morsel_rows, cfg.threads.min(root_rows))
    } else {
        1
    };
    let cached_root = ctx.as_ref().and_then(|ctx| ctx.serve_root(root, chunks));
    let root_data: Arc<Vec<ViewData>> = match cached_root {
        Some(hit) => hit,
        None => {
            let computed = if chunked {
                parallel::compute_root_chunked(&plan, &data, cfg, root_rows)?
            } else {
                compute_node(&plan, root, &data, cfg, 0..root_rows)
            };
            let computed = Arc::new(computed);
            if let Some(ctx) = &ctx {
                ctx.admit_root(root, chunks, &computed);
            }
            computed
        }
    };

    // Extract results.
    let mut groups = Vec::with_capacity(batch.aggs.len());
    let mut values = Vec::with_capacity(batch.aggs.len());
    for &(vi, si) in &agg_slots {
        let vp = &plan.nodes[root].views[vi];
        groups.push(vp.group_attrs.clone());
        let mut map: HashMap<Box<[i64]>, f64> = HashMap::new();
        if let Some(entries) = root_data[vi].get(&[]) {
            entries.for_each(|gkey, payload| {
                if payload[si] != 0.0 {
                    map.insert(gkey.into(), payload[si]);
                }
            });
        }
        values.push(map);
    }
    Ok(BatchResult { groups, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Engine, FlatEngine, LmfaoEngine};
    use crate::batch::Aggregate;
    use crate::ir::AggQuery;
    use fdb_data::Relation;

    fn tiny_retailer() -> (Database, Vec<&'static str>) {
        let ds = fdb_datasets::retailer(fdb_datasets::RetailerConfig::tiny());
        (ds.db, vec!["Inventory", "Location", "Census", "Item", "Weather"])
    }

    /// Compares LMFAO against the flat engine on the materialized join —
    /// both through the `Engine` trait on the same `AggQuery`.
    fn check_batch(db: &Database, rels: &[&str], batch: &AggBatch, cfg: &EngineConfig) {
        let q = AggQuery::new(rels, batch.clone());
        let got = LmfaoEngine::with_config(*cfg).run(db, &q).unwrap();
        let expect = FlatEngine.run(db, &q).unwrap();
        for i in 0..batch.len() {
            assert_eq!(got.groups[i], expect.groups[i], "agg {i}: group attrs");
            let (gotmap, expmap) = (got.grouped(i), expect.grouped(i));
            assert_eq!(gotmap.len(), expmap.len(), "agg {i}: group count mismatch");
            for (k, v) in gotmap {
                let e = expmap.get(k).copied().unwrap_or(f64::NAN);
                assert!(
                    (v - e).abs() <= 1e-6 * (1.0 + e.abs()),
                    "agg {i} key {k:?}: got {v}, expect {e}"
                );
            }
        }
    }

    #[test]
    fn covariance_batch_matches_classical_engine() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "maxtemp", "population", "inventoryunits"],
            &["rain", "category"],
        );
        check_batch(&db, &rels, &batch, &EngineConfig::default());
    }

    #[test]
    fn unshared_and_unspecialized_agree() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "inventoryunits"],
            &["rain", "categoryCluster"],
        );
        // The view cache is bypassed so every configuration exercises its
        // own evaluation path (specialize pairs share plan signatures and
        // would otherwise serve each other's views).
        for cfg in [
            EngineConfig {
                specialize: false,
                share: false,
                threads: 1,
                view_cache_bytes: 0,
                ..Default::default()
            },
            EngineConfig {
                specialize: true,
                share: false,
                threads: 1,
                view_cache_bytes: 0,
                ..Default::default()
            },
            EngineConfig {
                specialize: false,
                share: true,
                threads: 1,
                view_cache_bytes: 0,
                ..Default::default()
            },
            EngineConfig {
                specialize: true,
                share: true,
                threads: 1,
                dense_limit: 0,
                view_cache_bytes: 0,
                ..Default::default()
            },
        ] {
            check_batch(&db, &rels, &batch, &cfg);
        }
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let (db, rels) = tiny_retailer();
        let batch =
            crate::batchgen::covariance_batch(&["prize", "maxtemp", "inventoryunits"], &["rain"]);
        // Cache bypassed: the parallel run must actually recompute, not
        // serve the sequential run's views.
        let seq = run_batch(
            &db,
            &rels,
            &batch,
            &EngineConfig { threads: 1, view_cache_bytes: 0, ..Default::default() },
        )
        .unwrap();
        let par = run_batch(
            &db,
            &rels,
            &batch,
            &EngineConfig { threads: 4, view_cache_bytes: 0, ..Default::default() },
        )
        .unwrap();
        for i in 0..batch.len() {
            assert_eq!(seq.groups[i], par.groups[i]);
            for (k, v) in seq.grouped(i) {
                let p = par.grouped(i)[k];
                assert!((v - p).abs() <= 1e-9 * (1.0 + v.abs()), "agg {i}: {v} vs {p}");
            }
        }
    }

    #[test]
    fn filtered_decision_tree_batch_matches() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::decision_node_batch(
            &["prize", "maxtemp"],
            &["rain"],
            "inventoryunits",
            3,
            2,
            |attr, j| match attr {
                "prize" => 5.0 + 10.0 * j as f64,
                _ => 5.0 * j as f64,
            },
        );
        check_batch(&db, &rels, &batch, &EngineConfig::default());
    }

    #[test]
    fn cross_branch_categorical_pairs() {
        // category (Item) × rain (Weather): group attrs from different
        // subtrees exercise the cross-product path.
        let (db, rels) = tiny_retailer();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count().by(&["category", "rain"]));
        batch.push(Aggregate::sum("inventoryunits").by(&["category", "rain"]));
        check_batch(&db, &rels, &batch, &EngineConfig::default());
    }

    #[test]
    fn join_key_as_factor_is_rejected() {
        let (db, rels) = tiny_retailer();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::sum("locn"));
        assert!(run_batch(&db, &rels, &batch, &EngineConfig::default()).is_err());
    }

    #[test]
    fn view_cache_serves_warm_runs_and_invalidates_on_mutation() {
        // Fresh dataset instance → fresh relation content ids, so the
        // per-id cache attributions below are exact even with other tests
        // exercising the global cache concurrently.
        let (mut db, rels) = tiny_retailer();
        let cache = crate::viewcache::ViewCache::global();
        let batch =
            crate::batchgen::covariance_batch(&["prize", "inventoryunits"], &["rain", "category"]);
        let cfg = EngineConfig { threads: 1, ..Default::default() };
        let counts = |db: &Database| -> (u64, u64) {
            rels.iter()
                .map(|r| cache.stats_for_id(db.get(r).unwrap().data_id()))
                .fold((0, 0), |(a, b), (h, m)| (a + h, b + m))
        };
        let cold = run_batch(&db, &rels, &batch, &cfg).unwrap();
        let (_, cold_scans) = counts(&db);
        assert!(cold_scans > 0, "cold run materializes views");
        let warm = run_batch(&db, &rels, &batch, &cfg).unwrap();
        let (warm_reuses, warm_scans) = counts(&db);
        assert_eq!(warm_scans, cold_scans, "identical warm batch rescans nothing");
        assert!(warm_reuses > 0, "warm batch served from cache");
        for i in 0..batch.len() {
            assert_eq!(cold.grouped(i), warm.grouped(i), "agg {i}: warm result identical");
        }
        // A batch differing only by a filter on `prize` (owned by Item):
        // some subtrees are residual-served, but the Item path rescans.
        let mut filtered = batch.clone();
        for agg in &mut filtered.aggs {
            agg.filter.push(("prize".to_string(), FilterOp::Ge(0.0)));
        }
        run_batch(&db, &rels, &filtered, &cfg).unwrap();
        let (residual_reuses, residual_scans) = counts(&db);
        assert!(residual_reuses > warm_reuses, "unfiltered subtrees served from cache");
        assert!(residual_scans > cold_scans, "the filtered path rescans");
        // Mutation refreshes data_ids: the next run must reflect the new
        // content, not a stale cached view.
        let row = db.get("Item").unwrap().row_vec(0);
        db.get_mut("Item").unwrap().push_row(&row).unwrap();
        let after = run_batch(&db, &rels, &batch, &cfg).unwrap();
        let expect = crate::backend::FlatEngine
            .run(&db, &crate::ir::AggQuery::new(&rels, batch.clone()))
            .unwrap();
        for i in 0..batch.len() {
            assert_eq!(after.grouped(i).len(), expect.grouped(i).len(), "agg {i}: key count");
            for (k, v) in after.grouped(i) {
                let e = expect.grouped(i).get(k).copied().unwrap_or(f64::NAN);
                assert!(
                    (v - e).abs() <= 1e-6 * (1.0 + e.abs()),
                    "agg {i} key {k:?}: stale cache? {v} vs {e}"
                );
            }
        }
        assert!(after.scalar(0) > cold.scalar(0), "duplicated Item row adds join tuples");
    }

    #[test]
    fn empty_join_yields_zero_scalars() {
        let (mut db, rels) = tiny_retailer();
        let schema = db.get("Item").unwrap().schema().clone();
        db.add("Item", Relation::new(schema));
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count());
        let res = run_batch(&db, &rels, &batch, &EngineConfig::default()).unwrap();
        assert_eq!(res.scalar(0), 0.0);
    }
}
