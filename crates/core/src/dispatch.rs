//! Adaptive backend dispatch: pick Flat / Factorized / LMFAO per query.
//!
//! All backends return identical results for a valid [`AggQuery`] (the
//! [`Engine`] contract), so *which* backend runs is purely a cost call —
//! and the inputs that decide it are cheap catalog statistics, no data
//! scans beyond the per-column min/max the engines compute anyway:
//!
//! * **fact cardinality** — the largest relation of the join. Tiny joins
//!   are dominated by planning overhead: materialize flat and scan.
//! * **aggregate-batch width** — many aggregates over one join (covariance
//!   matrices, decision-tree nodes) amortize LMFAO's view sharing; a
//!   narrow batch cannot.
//! * **group-by domain size vs [`EngineConfig::dense_limit`]** — when the
//!   composite group domain fits the dense budget, the factorized engine's
//!   dense keyed ring plus sort-cache reuse wins on narrow batches; when
//!   the domain is unknown or over budget (hash groups), LMFAO's shared
//!   scans bound the number of passes instead.
//!
//! [`EngineConfig::backend`] overrides the choice ([`EngineChoice::Auto`]
//! dispatches; anything else pins one backend), so a caller can always
//! reproduce the Figure 6 style per-engine runs through the same object.

use crate::backend::{Engine, FactorizedEngine, FlatEngine, LmfaoEngine};
use crate::ir::{sorted_groups, AggQuery, BatchResult};
use crate::parallel::{EngineChoice, EngineConfig};
use fdb_data::{DataError, Database};

/// Fact cardinality at or below which the flat baseline wins: the
/// materialized join is a few hundred tuples, so join + scan costs less
/// than either planner's setup.
pub const FLAT_FACT_LIMIT: usize = 256;

/// Batch width from which LMFAO's cross-aggregate sharing is assumed to
/// pay for its planning (a covariance batch over d features has ~d²/2
/// aggregates; 8 is already "several shared views per node").
pub const WIDE_BATCH: usize = 8;

/// Cheap per-query statistics the dispatcher decides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Rows of the largest participating relation.
    pub fact_rows: usize,
    /// Number of aggregates in the batch.
    pub batch_width: usize,
    /// Largest composite group-by domain (product of per-attribute code
    /// ranges) across the batch; `None` when some domain is unknown (an
    /// empty owning column) or the product overflows `u64`.
    pub max_group_domain: Option<u64>,
}

/// Collects [`QueryStats`] for `q` over `db` (schema + min/max only).
pub fn query_stats(db: &Database, q: &AggQuery) -> Result<QueryStats, DataError> {
    let mut fact_rows = 0;
    for name in &q.relations {
        fact_rows = fact_rows.max(db.get(name)?.len());
    }
    // Owner lookup per group attribute: the non-join attribute lives in
    // exactly one relation (validated), so the first schema hit is it.
    let owner_range = |attr: &str| -> Result<Option<(i64, i64)>, DataError> {
        for name in &q.relations {
            let rel = db.get(name)?;
            if let Ok(c) = rel.schema().require(attr) {
                return Ok(rel.int_min_max(c));
            }
        }
        Err(DataError::UnknownAttribute(attr.to_string()))
    };
    let mut max_domain: Option<u64> = Some(1);
    for agg in &q.batch.aggs {
        let mut domain: Option<u64> = Some(1);
        for g in sorted_groups(&agg.group_by) {
            domain = match (domain, owner_range(&g)?) {
                (Some(d), Some((lo, hi))) => hi
                    .checked_sub(lo)
                    .and_then(|w| w.checked_add(1))
                    .and_then(|w| d.checked_mul(w as u64)),
                _ => None,
            };
        }
        max_domain = match (max_domain, domain) {
            (Some(m), Some(d)) => Some(m.max(d)),
            _ => None,
        };
    }
    Ok(QueryStats { fact_rows, batch_width: q.batch.len(), max_group_domain: max_domain })
}

/// The per-query dispatching engine: resolves to one concrete backend via
/// [`DispatchEngine::choose`] and runs it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchEngine {
    /// Toggles handed to the chosen backend; `cfg.backend` is the
    /// dispatch override.
    pub cfg: EngineConfig,
}

impl DispatchEngine {
    /// Auto dispatch with default toggles.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dispatch with explicit toggles (including the override knob).
    pub fn with_config(cfg: EngineConfig) -> Self {
        Self { cfg }
    }

    /// The backend `run` would execute for `q` — never
    /// [`EngineChoice::Auto`]. Exposed so tests and benchmarks can assert
    /// on (and exhaustively cross-check) the decision.
    pub fn choose(&self, db: &Database, q: &AggQuery) -> Result<EngineChoice, DataError> {
        if self.cfg.backend != EngineChoice::Auto {
            return Ok(self.cfg.backend);
        }
        let stats = query_stats(db, q)?;
        Ok(Self::choose_from_stats(&stats, self.cfg.dense_limit))
    }

    /// The pure decision function (statistics in, backend out) — the
    /// heuristic documented in the module header, kept side-effect-free so
    /// it is exhaustively testable.
    pub fn choose_from_stats(stats: &QueryStats, dense_limit: u64) -> EngineChoice {
        if stats.fact_rows <= FLAT_FACT_LIMIT {
            return EngineChoice::Flat;
        }
        if stats.batch_width >= WIDE_BATCH {
            return EngineChoice::Lmfao;
        }
        match stats.max_group_domain {
            Some(d) if d <= dense_limit.max(1) => EngineChoice::Factorized,
            _ => EngineChoice::Lmfao,
        }
    }
}

impl Engine for DispatchEngine {
    fn name(&self) -> &'static str {
        "dispatch"
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        match self.choose(db, q)? {
            EngineChoice::Flat => FlatEngine.run(db, q),
            EngineChoice::Factorized => FactorizedEngine {
                dense_groups: self.cfg.dense_limit > 0,
                vectorize: self.cfg.vectorize,
                ..FactorizedEngine::new()
            }
            .run(db, q),
            EngineChoice::Lmfao | EngineChoice::Auto => {
                LmfaoEngine::with_config(self.cfg).run(db, q)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(fact_rows: usize, batch_width: usize, domain: Option<u64>) -> QueryStats {
        QueryStats { fact_rows, batch_width, max_group_domain: domain }
    }

    #[test]
    fn heuristic_branches() {
        let limit = 1024;
        // Tiny fact → flat, regardless of anything else.
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(10, 100, None), limit),
            EngineChoice::Flat
        );
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(FLAT_FACT_LIMIT, 1, Some(1)), limit),
            EngineChoice::Flat
        );
        // Wide batch → LMFAO sharing.
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(10_000, WIDE_BATCH, Some(4)), limit),
            EngineChoice::Lmfao
        );
        // Narrow batch, dense-fitting groups → factorized.
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(10_000, 2, Some(12)), limit),
            EngineChoice::Factorized
        );
        // Scalar (domain 1) narrow batch stays factorized even with the
        // dense budget disabled (the `max(1)` floor: a scalar needs no
        // group index at all).
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(10_000, 2, Some(1)), 0),
            EngineChoice::Factorized
        );
        // Unknown or over-budget domains → LMFAO shared scans.
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(10_000, 2, None), limit),
            EngineChoice::Lmfao
        );
        assert_eq!(
            DispatchEngine::choose_from_stats(&stats(10_000, 2, Some(4096)), limit),
            EngineChoice::Lmfao
        );
    }

    #[test]
    fn override_pins_the_backend() {
        let db = fdb_datasets::dish::dish_database();
        let mut batch = crate::batch::AggBatch::new();
        batch.push(crate::batch::Aggregate::count());
        let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
        for choice in [EngineChoice::Flat, EngineChoice::Factorized, EngineChoice::Lmfao] {
            let e =
                DispatchEngine::with_config(EngineConfig { backend: choice, ..Default::default() });
            assert_eq!(e.choose(&db, &q).unwrap(), choice);
        }
        // Auto on the dish example: 8-row fact → flat.
        let auto = DispatchEngine::new();
        assert_eq!(auto.choose(&db, &q).unwrap(), EngineChoice::Flat);
        assert_eq!(auto.run(&db, &q).unwrap().scalar(0), 12.0);
    }

    #[test]
    fn stats_reflect_catalog() {
        let db = fdb_datasets::dish::dish_database();
        let mut batch = crate::batch::AggBatch::new();
        batch.push(crate::batch::Aggregate::count().by(&["customer", "day"]));
        batch.push(crate::batch::Aggregate::sum("price"));
        let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
        let s = query_stats(&db, &q).unwrap();
        assert_eq!(s.batch_width, 2);
        assert_eq!(s.fact_rows, 6, "Dish is the largest relation of the example");
        // customer spans 3 codes, day 2 → composite domain 6.
        assert_eq!(s.max_group_domain, Some(6));
    }
}
