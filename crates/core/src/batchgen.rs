//! Batch synthesis for the paper's learning workloads (§2, Figure 5).
//!
//! Each generator turns a feature set into the batch of aggregates whose
//! results are sufficient statistics for the task. The batch sizes these
//! produce are the quantity Figure 5 tabulates.

use crate::batch::{AggBatch, Aggregate, FilterOp};

/// The covariance-matrix batch (§2.1): for continuous features (including
/// the response) `c1..cn` and categorical features `x1..xm`:
///
/// * `SUM(1)`
/// * `SUM(ci)` and `SUM(ci * cj)` for `i <= j`
/// * `SUM(ci) GROUP BY xk` (continuous–categorical interactions)
/// * `SUM(1) GROUP BY xk` (categorical marginals)
/// * `SUM(1) GROUP BY xk, xl` for `k < l` (categorical–categorical,
///   the sparse tensor instead of one-hot encoding)
pub fn covariance_batch(continuous: &[&str], categorical: &[&str]) -> AggBatch {
    let mut b = AggBatch::new();
    b.push(Aggregate::count());
    for (i, ci) in continuous.iter().enumerate() {
        b.push(Aggregate::sum(ci));
        for cj in &continuous[i..] {
            b.push(Aggregate::sum_prod(ci, cj));
        }
    }
    for xk in categorical {
        b.push(Aggregate::count().by(&[xk]));
        for ci in continuous {
            b.push(Aggregate::sum(ci).by(&[xk]));
        }
    }
    for (k, xk) in categorical.iter().enumerate() {
        for xl in &categorical[k + 1..] {
            b.push(Aggregate::count().by(&[xk, xl]));
        }
    }
    b
}

/// The regression-tree-node batch (§2.2): for every candidate split
/// condition, the `VARIANCE(response)` components `SUM(1)`, `SUM(y)`,
/// `SUM(y²)` under the condition's filter.
///
/// * continuous feature `c` with thresholds `t1..tk`: conditions `c >= tj`;
/// * categorical feature `x` with per-category conditions `x = v` for the
///   first `cats_per_attr` categories.
pub fn decision_node_batch(
    continuous: &[&str],
    categorical: &[&str],
    response: &str,
    thresholds_per_attr: usize,
    cats_per_attr: usize,
    thresholds: impl Fn(&str, usize) -> f64,
) -> AggBatch {
    let mut b = AggBatch::new();
    let push_condition = |b: &mut AggBatch, attr: &str, op: FilterOp| {
        b.push(Aggregate::count().filtered(attr, op.clone()));
        b.push(Aggregate::sum(response).filtered(attr, op.clone()));
        b.push(Aggregate::sum_prod(response, response).filtered(attr, op));
    };
    for c in continuous {
        for j in 0..thresholds_per_attr {
            push_condition(&mut b, c, FilterOp::Ge(thresholds(c, j)));
        }
    }
    for x in categorical {
        for v in 0..cats_per_attr as i64 {
            push_condition(&mut b, x, FilterOp::Eq(v));
        }
    }
    b
}

/// The mutual-information batch (model selection, Chow-Liu trees): joint
/// and marginal counts over categorical pairs.
pub fn mutual_info_batch(categorical: &[&str]) -> AggBatch {
    let mut b = AggBatch::new();
    b.push(Aggregate::count());
    for x in categorical {
        b.push(Aggregate::count().by(&[x]));
    }
    for (k, xk) in categorical.iter().enumerate() {
        for xl in &categorical[k + 1..] {
            b.push(Aggregate::count().by(&[xk, xl]));
        }
    }
    b
}

/// The k-means batch (Rk-means, §3.3): the grid-coreset construction needs
/// per-dimension counts, sums, and sums of squares.
pub fn kmeans_batch(continuous: &[&str]) -> AggBatch {
    let mut b = AggBatch::new();
    b.push(Aggregate::count());
    for c in continuous {
        b.push(Aggregate::sum(c));
        b.push(Aggregate::sum_prod(c, c));
    }
    b
}

/// Closed forms for the batch sizes (tested against the generators; used by
/// the Figure 5 table binary).
pub mod counts {
    /// Size of [`super::covariance_batch`].
    pub fn covariance(n_cont: usize, n_cat: usize) -> usize {
        1 + n_cont
            + n_cont * (n_cont + 1) / 2
            + n_cat * (1 + n_cont)
            + n_cat * (n_cat.saturating_sub(1)) / 2
    }

    /// Size of [`super::decision_node_batch`].
    pub fn decision_node(n_cont: usize, n_cat: usize, thresholds: usize, cats: usize) -> usize {
        3 * (n_cont * thresholds + n_cat * cats)
    }

    /// Size of [`super::mutual_info_batch`].
    pub fn mutual_info(n_cat: usize) -> usize {
        1 + n_cat + n_cat * (n_cat.saturating_sub(1)) / 2
    }

    /// Size of [`super::kmeans_batch`].
    pub fn kmeans(n_cont: usize) -> usize {
        1 + 2 * n_cont
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_batch_size_matches_closed_form() {
        for (nc, nk) in [(0, 0), (1, 0), (0, 1), (3, 2), (12, 7)] {
            let cont: Vec<String> = (0..nc).map(|i| format!("c{i}")).collect();
            let cat: Vec<String> = (0..nk).map(|i| format!("x{i}")).collect();
            let cref: Vec<&str> = cont.iter().map(String::as_str).collect();
            let kref: Vec<&str> = cat.iter().map(String::as_str).collect();
            assert_eq!(
                covariance_batch(&cref, &kref).len(),
                counts::covariance(nc, nk),
                "nc={nc} nk={nk}"
            );
        }
    }

    #[test]
    fn decision_node_batch_size() {
        let b = decision_node_batch(&["a", "b"], &["x"], "y", 4, 3, |_, j| j as f64);
        assert_eq!(b.len(), counts::decision_node(2, 1, 4, 3));
        // Every aggregate carries a filter.
        assert!(b.aggs.iter().all(|a| !a.filter.is_empty()));
    }

    #[test]
    fn mutual_info_and_kmeans_sizes() {
        assert_eq!(mutual_info_batch(&["a", "b", "c"]).len(), counts::mutual_info(3));
        assert_eq!(kmeans_batch(&["a", "b"]).len(), counts::kmeans(2));
    }

    #[test]
    fn covariance_batch_contains_squares() {
        let b = covariance_batch(&["u"], &[]);
        // SUM(1), SUM(u), SUM(u²)
        assert_eq!(b.len(), 3);
        assert!(b.aggs.iter().any(|a| a.factors == vec![("u".to_string(), crate::Fn1::Square)]));
    }
}
