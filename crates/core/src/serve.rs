//! Concurrent serving: snapshot reads under a live delta stream.
//!
//! The paper's end state is a system that answers aggregate/ML workloads
//! *continuously* while the underlying relational data changes (the
//! static+dynamic unification of Kara, Nikolic, Olteanu, Zhang — F-IVM
//! serving trained models over a stream of updates). The execution stack
//! below this module is already epoch-transactional per delta
//! ([`MaintainableEngine::apply_delta`] commits or rolls back exactly one
//! [`Database::epoch`]); what it lacked was an ownership model letting
//! **many readers and one writer make progress at once**.
//!
//! [`ServingEngine`] is that front door:
//!
//! * **Readers never block.** [`ServingEngine::query`] pins the currently
//!   published [`EpochDb`] — an immutable [`Database::snapshot`], O(#relations)
//!   to take because relations are `Arc`-shared copy-on-write — and
//!   evaluates against it with `&self`. The published pointer lives in an
//!   `RwLock<Arc<EpochDb>>` whose write lock is held only for the pointer
//!   exchange (an `ArcSwap` without the dependency), so a reader's pin is
//!   two refcount bumps, never a wait on maintenance.
//! * **One writer, transactional.** [`ServingEngine::apply_delta`] funnels
//!   every delta through the maintained [`MaintState`] under a writer
//!   mutex: validation, commit, incremental view maintenance, and
//!   rollback-on-failure are exactly the guarantees of
//!   [`MaintainableEngine::apply_delta`].
//! * **Publication is ordered after maintenance.** The new epoch becomes
//!   visible to readers only after the engine's maintenance (including
//!   its [`ViewCache`](crate::ViewCache) re-admissions under post-delta
//!   content ids) succeeded; a failed delta rolls back, invalidates the
//!   rolled-back ids, and **never publishes** — so no reader can ever pin
//!   an epoch whose caches carry state from a failed or half-applied
//!   delta.
//!
//! **Why stale cache hits are impossible across epochs.** Both global
//! caches key on [`fdb_data::Relation::data_id`], a nonce every mutation
//! refreshes and rollback restores-without-reuse. A reader pinned at
//! epoch *e* holds `Arc`s of exactly the relations (and therefore ids) of
//! *e*; views admitted by the writer for epoch *e+1* are keyed by ids
//! that exist in no relation of *e*. The striped caches (see
//! [`fdb_data::SortCache`]) make those concurrent hits scale; the id
//! discipline makes them *correct*.

use crate::ir::{AggQuery, BatchResult};
use crate::maintain::{MaintState, MaintainableEngine};
use fdb_data::{DataError, Database, Delta};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// An immutable, consistent database snapshot pinned at one epoch.
///
/// Cheap to produce ([`Database::snapshot`] clones an `Arc` per relation)
/// and safe to read from any number of threads; the writer's next epoch
/// copy-on-writes mutated relations, never this one.
#[derive(Clone)]
pub struct EpochDb {
    db: Database,
}

impl EpochDb {
    fn new(db: Database) -> Self {
        Self { db }
    }

    /// The epoch this snapshot pins ([`Database::epoch`] at snapshot time).
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// The pinned database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

/// A lock-free snapshot of a [`ServingEngine`]'s activity counters.
///
/// The front-door fields (everything from [`ServingStats::submitted`]
/// down) are populated by [`FrontDoor::stats`](crate::frontdoor::FrontDoor::stats)
/// and stay zero when the engine is driven directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Queries evaluated against pinned snapshots.
    pub queries: u64,
    /// Deltas committed and published.
    pub deltas_applied: u64,
    /// Deltas rejected (validation or maintenance failure → rolled back,
    /// never published).
    pub deltas_rejected: u64,
    /// The currently published epoch.
    pub epoch: u64,
    /// Deltas accepted into the front door's bounded queue.
    pub submitted: u64,
    /// Current queue depth (deltas admitted but not yet drained).
    pub queued: u64,
    /// Deltas merged into a predecessor by group-commit coalescing (so
    /// `submitted - coalesced` bounds the number of published epochs).
    pub coalesced: u64,
    /// Merged batches committed and published (one epoch each).
    pub batches_committed: u64,
    /// Merged batches dropped after rollback (permanent error, or
    /// transient retries exhausted with the degraded path failing too).
    pub batches_failed: u64,
    /// Submits refused with [`DataError::Overloaded`] (full queue under
    /// the `Reject` policy, or an injected `queue-admit` fault).
    pub rejected: u64,
    /// Submits that hit their deadline ([`DataError::Timeout`]) while
    /// blocked on a full queue.
    pub timed_out: u64,
    /// Queued deltas dropped unapplied by the `ShedOldest` policy.
    pub shed: u64,
    /// Retry attempts after transient batch failures.
    pub retries: u64,
    /// Circuit-breaker trips (degradations to recompute mode).
    pub breaker_trips: u64,
    /// Half-open probes (attempts to re-prepare the incremental state).
    pub breaker_probes: u64,
    /// Successful recoveries (probe re-prepared and the next batch
    /// committed incrementally).
    pub breaker_recoveries: u64,
}

/// The concurrent front door: `N` reader threads share one
/// `ServingEngine` by `&self` while one writer streams deltas through it.
///
/// ```
/// use fdb_core::serve::ServingEngine;
/// # use fdb_core::{AggBatch, AggQuery, Aggregate, LmfaoEngine};
/// # use fdb_data::{AttrType, Database, Delta, Relation, Schema, Value};
/// # let mut db = Database::new();
/// # let mut r = Relation::new(Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]));
/// # r.push_row(&[Value::Int(1), Value::F64(2.0)]).unwrap();
/// # db.add("R", r);
/// # let mut batch = AggBatch::new();
/// # batch.push(Aggregate::sum("x"));
/// # let q = AggQuery::new(&["R"], batch);
/// let serving = ServingEngine::new(LmfaoEngine::new(), &db, &q).unwrap();
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         let (epoch, result) = serving.query().unwrap(); // reader: pins a snapshot
///         assert!(epoch <= serving.epoch());
///         assert_eq!(result.scalar(0), 2.0);
///     });
///     // writer: commits and publishes the next epoch
///     serving.apply_delta(&Delta::insert("R", vec![Value::Int(2), Value::F64(3.0)])).unwrap();
/// });
/// ```
pub struct ServingEngine<E: MaintainableEngine> {
    engine: E,
    q: AggQuery,
    /// The single-writer maintained state (its own database copy plus the
    /// engine's incremental structures). Guarded by a mutex: deltas
    /// serialize here, readers never touch it.
    writer: Mutex<MaintState>,
    /// The published snapshot. The write lock is held only for the
    /// pointer swap in [`ServingEngine::publish`], so readers pinning via
    /// the read lock wait at most one pointer exchange, never a
    /// maintenance pass.
    published: RwLock<Arc<EpochDb>>,
    queries: AtomicU64,
    deltas_applied: AtomicU64,
    deltas_rejected: AtomicU64,
}

impl<E: MaintainableEngine> ServingEngine<E> {
    /// Prepares `q` over `db` through `engine` (paying the one-shot
    /// evaluation cost once) and publishes the initial epoch.
    pub fn new(engine: E, db: &Database, q: &AggQuery) -> Result<Self, DataError> {
        let st = engine.prepare(db, q)?;
        let first = Arc::new(EpochDb::new(st.database().snapshot()));
        Ok(Self {
            engine,
            q: q.clone(),
            writer: Mutex::new(st),
            published: RwLock::new(first),
            queries: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            deltas_rejected: AtomicU64::new(0),
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The served query.
    pub fn query_spec(&self) -> &AggQuery {
        &self.q
    }

    /// Pins the currently published snapshot: two refcount bumps under a
    /// read lock. The returned [`EpochDb`] stays valid (and immutable)
    /// for as long as the caller holds it, regardless of how many epochs
    /// the writer publishes meanwhile.
    pub fn snapshot(&self) -> Arc<EpochDb> {
        Arc::clone(&self.read_published())
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.read_published().epoch()
    }

    /// Evaluates the served query against the currently published
    /// snapshot and returns `(epoch, result)` — the epoch identifies
    /// exactly which database state the result reflects, so callers can
    /// correlate answers from concurrent readers.
    pub fn query(&self) -> Result<(u64, BatchResult), DataError> {
        let snap = self.snapshot();
        Ok((snap.epoch(), self.query_at(&snap)?))
    }

    /// Evaluates the served query against an explicitly pinned snapshot —
    /// the stable-read primitive: a session that must see one consistent
    /// epoch across several queries pins once and passes it here.
    pub fn query_at(&self, snap: &EpochDb) -> Result<BatchResult, DataError> {
        let r = self.engine.run(snap.database(), &self.q)?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(r)
    }

    /// Evaluates an ad-hoc query (not the prepared one) against a pinned
    /// snapshot, through the same engine.
    pub fn query_adhoc(&self, snap: &EpochDb, q: &AggQuery) -> Result<BatchResult, DataError> {
        let r = self.engine.run(snap.database(), q)?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(r)
    }

    /// Applies one delta through the transactional maintenance path and —
    /// only on success — publishes the new epoch. Concurrent callers
    /// serialize on the writer lock; readers are unaffected either way:
    ///
    /// * `Ok`: the returned result reflects the new epoch, which readers
    ///   pin from this point on (the maintained views the engine
    ///   re-admitted to the global cache are keyed by post-delta ids, so
    ///   the *next* cold read at the new epoch hits them).
    /// * `Err`: the maintained state was rolled back to the pre-delta
    ///   epoch and cache entries under rolled-back ids invalidated by the
    ///   [`MaintainableEngine::apply_delta`] wrapper — and since nothing
    ///   publishes, readers keep pinning the last good epoch. The
    ///   invalidation happens strictly before this method returns, hence
    ///   strictly before any later successful delta publishes.
    pub fn apply_delta(&self, delta: &Delta) -> Result<BatchResult, DataError> {
        let mut st = self.writer_lock();
        match self.engine.apply_delta(&mut st, delta) {
            Ok(r) => {
                self.publish(st.database().snapshot());
                self.deltas_applied.fetch_add(1, Ordering::Relaxed);
                Ok(r)
            }
            Err(e) => {
                self.deltas_rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// The writer's current maintained result, without applying a delta
    /// (serialized with [`ServingEngine::apply_delta`] on the writer
    /// lock).
    pub fn maintained(&self) -> Result<BatchResult, DataError> {
        let mut st = self.writer_lock();
        self.engine.eval(&mut st)
    }

    /// Swaps the writer's maintained state for a recompute-per-delta one
    /// over the same maintained database — the circuit breaker's
    /// degradation: subsequent deltas skip the (failing) incremental
    /// machinery entirely and recompute via [`Engine::run`](crate::Engine::run),
    /// still transactionally and still publishing one epoch per success.
    pub fn degrade_to_recompute(&self) {
        let mut st = self.writer_lock();
        let (db, q) = (st.database().clone(), st.query().clone());
        *st = MaintState::recompute(db, q);
    }

    /// Attempts to re-prepare the full incremental state from the current
    /// maintained database — the breaker's half-open probe (and the same
    /// re-prepare path the transactional wrapper uses after a rollback).
    /// On failure the existing state is kept untouched.
    pub fn promote(&self) -> Result<(), DataError> {
        let mut st = self.writer_lock();
        let fresh = self.engine.prepare(st.database(), &self.q)?;
        *st = fresh;
        Ok(())
    }

    /// True while the writer state is the degraded recompute-per-delta
    /// one (see [`ServingEngine::degrade_to_recompute`]).
    pub fn is_degraded(&self) -> bool {
        self.writer_lock().is_recompute()
    }

    /// Activity counters (lock-free). The front-door fields stay zero
    /// here; [`FrontDoor::stats`](crate::frontdoor::FrontDoor::stats)
    /// fills them in.
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            queries: self.queries.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            deltas_rejected: self.deltas_rejected.load(Ordering::Relaxed),
            epoch: self.epoch(),
            ..ServingStats::default()
        }
    }

    /// Locks the writer state, recovering from poisoning instead of
    /// panicking. A poisoned writer mutex means a panic escaped while the
    /// maintained state was held mutably — e.g. an engine's `eval`
    /// panicking outside the contained maintenance path — so the
    /// incremental structures may be half-updated. Trusting them would
    /// risk serving wrong results, so this degrades exactly like the
    /// transactional wrapper does after a failed re-prepare: rebuild the
    /// state from its own (epoch-consistent) database via `prepare`,
    /// falling back to recompute-per-delta if even that fails, then clear
    /// the poison flag. The published snapshot is untouched either way —
    /// readers never observe the recovery.
    fn writer_lock(&self) -> MutexGuard<'_, MaintState> {
        match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                let (db, q) = (guard.database().clone(), guard.query().clone());
                *guard = match self.engine.prepare(&db, &q) {
                    Ok(fresh) => fresh,
                    Err(_) => MaintState::recompute(db, q),
                };
                self.writer.clear_poison();
                guard
            }
        }
    }

    /// Atomically replaces the published snapshot. Called only with the
    /// writer lock held and only after maintenance succeeded, which is
    /// the publication-ordering invariant: every cache admission and
    /// invalidation of the delta happens-before the epoch becomes
    /// pinnable.
    fn publish(&self, db: Database) {
        let next = Arc::new(EpochDb::new(db));
        *self.published.write().unwrap_or_else(|p| p.into_inner()) = next;
    }

    fn read_published(&self) -> Arc<EpochDb> {
        Arc::clone(&self.published.read().unwrap_or_else(|p| p.into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Engine, FlatEngine, LmfaoEngine};
    use crate::batch::{AggBatch, Aggregate};
    use crate::parallel::EngineConfig;
    use fdb_data::{AttrType, Relation, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]));
        for (k, x) in [(1, 1.0), (2, 2.0), (3, 3.0)] {
            r.push_row(&[Value::Int(k), Value::F64(x)]).unwrap();
        }
        db.add("R", r);
        db
    }

    fn sum_query() -> AggQuery {
        let mut batch = AggBatch::new();
        batch.push(Aggregate::sum("x"));
        batch.push(Aggregate::count());
        AggQuery::new(&["R"], batch)
    }

    #[test]
    fn published_epoch_advances_only_on_success() {
        let serving = ServingEngine::new(FlatEngine, &db(), &sum_query()).unwrap();
        let e0 = serving.epoch();
        let (qe, r) = serving.query().unwrap();
        assert_eq!(qe, e0);
        assert_eq!(r.scalar(0), 6.0);

        serving.apply_delta(&Delta::insert("R", vec![Value::Int(4), Value::F64(4.0)])).unwrap();
        assert_eq!(serving.epoch(), e0 + 1);
        assert_eq!(serving.query().unwrap().1.scalar(0), 10.0);

        // A rejected delta (deleting a row that does not exist) must not
        // advance the published epoch nor disturb served results.
        let bad = Delta::delete("R", vec![Value::Int(99), Value::F64(99.0)]);
        assert!(serving.apply_delta(&bad).is_err());
        assert_eq!(serving.epoch(), e0 + 1, "failed delta never publishes");
        assert_eq!(serving.query().unwrap().1.scalar(0), 10.0);
        let s = serving.stats();
        assert_eq!((s.deltas_applied, s.deltas_rejected), (1, 1));
        assert!(s.queries >= 3);
    }

    #[test]
    fn pinned_snapshot_survives_later_epochs() {
        let serving = ServingEngine::new(
            LmfaoEngine::with_config(EngineConfig { threads: 1, ..Default::default() }),
            &db(),
            &sum_query(),
        )
        .unwrap();
        let pinned = serving.snapshot();
        for k in 4..10 {
            serving
                .apply_delta(&Delta::insert("R", vec![Value::Int(k), Value::F64(k as f64)]))
                .unwrap();
        }
        // The pin still answers at its own epoch…
        assert_eq!(serving.query_at(&pinned).unwrap().scalar(0), 6.0);
        assert_eq!(pinned.epoch() + 6, serving.epoch());
        // …while fresh pins see the latest.
        assert_eq!(serving.query().unwrap().1.scalar(0), 45.0);
        // And the writer's maintained result agrees with a cold run.
        let cold = FlatEngine.run(serving.snapshot().database(), &sum_query()).unwrap();
        assert_eq!(serving.maintained().unwrap().scalar(0), cold.scalar(0));
    }

    /// An engine whose `eval` panics once, while the writer mutex is held
    /// mutably — the poisoning scenario `writer_lock` recovers from.
    struct PanickyEval {
        armed: std::sync::atomic::AtomicBool,
    }

    impl Engine for PanickyEval {
        fn name(&self) -> &'static str {
            "panicky-eval"
        }
        fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
            FlatEngine.run(db, q)
        }
    }

    impl crate::maintain::MaintainableEngine for PanickyEval {
        fn eval(&self, st: &mut MaintState) -> Result<BatchResult, DataError> {
            if self.armed.swap(false, Ordering::SeqCst) {
                panic!("eval panic while holding the writer state");
            }
            self.run(st.database(), st.query())
        }
    }

    #[test]
    fn poisoned_writer_mutex_degrades_to_reprepare_instead_of_panicking() {
        let serving = ServingEngine::new(
            PanickyEval { armed: std::sync::atomic::AtomicBool::new(true) },
            &db(),
            &sum_query(),
        )
        .unwrap();
        let e0 = serving.epoch();
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serving.maintained()));
        assert!(panicked.is_err(), "first eval must escape as a panic");

        // The writer mutex is now poisoned. Every writer-side entry point
        // must recover (re-prepare from the maintained database) rather
        // than panic, and the stream must keep its exactness.
        serving.apply_delta(&Delta::insert("R", vec![Value::Int(4), Value::F64(4.0)])).unwrap();
        assert_eq!(serving.epoch(), e0 + 1);
        assert_eq!(serving.query().unwrap().1.scalar(0), 10.0);
        assert_eq!(serving.maintained().unwrap().scalar(0), 10.0);
    }

    #[test]
    fn readers_race_writer_without_torn_epochs() {
        let serving = Arc::new(ServingEngine::new(FlatEngine, &db(), &sum_query()).unwrap());
        let writer = {
            let serving = Arc::clone(&serving);
            std::thread::spawn(move || {
                for k in 0..40 {
                    serving
                        .apply_delta(&Delta::insert(
                            "R",
                            vec![Value::Int(100 + k), Value::F64(1.0)],
                        ))
                        .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let serving = Arc::clone(&serving);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let (epoch, r) = serving.query().unwrap();
                        // Each committed epoch adds exactly one row worth
                        // 1.0: the count at epoch e is 3 + e — any torn
                        // read (snapshot not matching its epoch) breaks it.
                        assert_eq!(r.scalar(1), 3.0 + epoch as f64);
                        assert_eq!(r.scalar(0), 6.0 + epoch as f64);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(serving.epoch(), 40);
        assert_eq!(serving.stats().deltas_applied, 40);
    }
}
