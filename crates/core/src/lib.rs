//! # fdb-core — the unified execution layer (LMFAO)
//!
//! One aggregate-query IR and one [`Engine`] trait across the flat,
//! factorized, and LMFAO backends — the paper's primary contribution (§2,
//! §4; Schleich et al., SIGMOD 2019) made into an API seam.
//!
//! The workload: machine-learning tasks reduce to hundreds or thousands of
//! very similar sum-product aggregates over one feature extraction join
//! (Figure 5). An [`AggQuery`] captures that workload once — join
//! hypergraph + aggregate batch — and every backend consumes it:
//!
//! * [`batch`] — the aggregate IR: `SUM(Π f(attr)) WHERE cond GROUP BY cats`.
//! * [`batchgen`] — batch synthesis for the paper's four workloads:
//!   covariance matrix, decision-tree node, mutual information, k-means.
//! * [`ir`] — [`AggQuery`] (the logical query all engines share) and
//!   [`BatchResult`].
//! * [`backend`] — the [`Engine`] trait with three implementations:
//!   [`FlatEngine`] (materialized join, one scan per aggregate),
//!   [`FactorizedEngine`] (fused leapfrog + keyed ring), and
//!   [`LmfaoEngine`] (the layered batch engine below).
//! * [`plan`] — top-down aggregate decomposition along the join tree into
//!   *views*; identical partial aggregates are computed once (sharing) and
//!   views at a node are consolidated.
//! * [`group`] — dense mixed-radix group accumulators ([`GroupIndex`]):
//!   code-indexed flat storage when categorical domains are small, hash
//!   fallback otherwise ([`EngineConfig::dense_limit`]).
//! * [`exec`] — the shared-scan bottom-up evaluator with typed column
//!   kernels (specialisation).
//! * [`kernel`] — batch-at-a-time columnar kernels: mixed-radix code
//!   batches, payload scatter/merge, factor/filter passes — each with its
//!   scalar twin kept as the perf-regression baseline.
//! * [`morsel`] — morsel-driven scheduling: fixed row-range work units
//!   pulled from a shared queue, used by the root scan and
//!   [`ShardedEngine`] so skewed partitions no longer pin one worker.
//! * [`parallel`] — domain/task parallelism and [`EngineConfig`]
//!   (`threads` defaults to the machine's available parallelism); the
//!   toggles reproduce the Figure 6 ablation.
//! * [`shard`] — fact-table data parallelism over *any* backend:
//!   [`ShardedEngine`] partitions the fact relation
//!   ([`fdb_data::Database::shard`], dimension tables `Arc`-shared), runs
//!   the inner engine per shard, and merges [`BatchResult`]s ring-additively
//!   (re-dropping exact zeros that cancel only across shards).
//! * [`dispatch`] — adaptive backend choice per query from cheap catalog
//!   statistics ([`DispatchEngine`]), with the [`EngineConfig::backend`]
//!   override knob.
//! * [`serve`] + [`frontdoor`] — epoch-based concurrent serving
//!   ([`ServingEngine`]: snapshot readers under a single transactional
//!   writer) and the resilient admission layer over it ([`FrontDoor`]:
//!   bounded write queue with backpressure policies, group-commit
//!   coalescing, deterministic retry/backoff, and a circuit breaker that
//!   degrades to recompute mode and probes recovery).
//! * [`viewcache`] — the cross-batch [`ViewCache`]: materialized per-node
//!   views memoized across `Engine::run` calls, keyed on canonical
//!   subtree plan signatures plus relation content ids; iterative
//!   trainers (one batch per decision-tree node) rescan only the nodes a
//!   changed filter actually touches
//!   ([`EngineConfig::view_cache_bytes`]).
//! * [`stats`] — `SufficientStats`: the sparse-tensor sufficient statistics
//!   (§2.1) assembled from a batch result, consumed by `fdb-ml`.

pub mod backend;
pub mod batch;
pub mod batchgen;
pub mod classical;
pub mod dispatch;
pub mod exec;
pub mod frontdoor;
pub mod group;
pub mod ir;
pub mod kernel;
pub mod maintain;
pub mod morsel;
pub mod parallel;
pub mod plan;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod viewcache;

pub use backend::{all_engines, to_scan_query, Engine, FactorizedEngine, FlatEngine, LmfaoEngine};
pub use batch::{AggBatch, Aggregate, FilterOp, Fn1};
pub use batchgen::{covariance_batch, decision_node_batch, kmeans_batch, mutual_info_batch};
pub use classical::{eval_agg, eval_agg_batch, AggResult, ScanQuery};
pub use dispatch::{query_stats, DispatchEngine, QueryStats};
pub use frontdoor::{Backpressure, BreakerState, FrontDoor, FrontDoorConfig};
pub use group::{GroupIndex, KeySpace, ScatterScratch};
pub use ir::{AggQuery, BatchResult};
pub use maintain::{CustomMaint, MaintState, MaintainableEngine};
pub use morsel::{MorselStats, DEFAULT_MORSEL_ROWS};
pub use parallel::{EngineChoice, EngineConfig};
pub use serve::{EpochDb, ServingEngine, ServingStats};
pub use shard::{ShardedEngine, DEFAULT_MIN_ROWS_PER_SHARD};
pub use stats::{stats_from_result, sufficient_stats, SufficientStats};
pub use viewcache::{ViewCache, ViewCacheStats, DEFAULT_VIEW_CACHE_BYTES};
