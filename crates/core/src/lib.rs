//! # fdb-core — LMFAO
//!
//! A layered engine for **batches** of group-by aggregates over joins — the
//! paper's primary contribution (§2, §4; Schleich et al., SIGMOD 2019).
//!
//! The workload: machine-learning tasks reduce to hundreds or thousands of
//! very similar sum-product aggregates over one feature extraction join
//! (Figure 5). LMFAO evaluates the whole batch in one bottom-up pass over a
//! join tree:
//!
//! * [`batch`] — the aggregate IR: `SUM(Π f(attr)) WHERE cond GROUP BY cats`.
//! * [`batchgen`] — batch synthesis for the paper's four workloads:
//!   covariance matrix, decision-tree node, mutual information, k-means.
//! * [`engine`] — the layered evaluator: aggregates are decomposed top-down
//!   along the join tree into *views*; identical partial aggregates are
//!   computed once (sharing); views at a node are consolidated and computed
//!   in one shared scan; typed column kernels (specialisation) and
//!   domain/task parallelism lower the constants (§4, Figure 6 ablation).
//! * [`stats`] — `SufficientStats`: the sparse-tensor sufficient statistics
//!   (§2.1) assembled from a batch result, consumed by `fdb-ml`.

pub mod batch;
pub mod batchgen;
pub mod engine;
pub mod stats;

pub use batch::{AggBatch, Aggregate, FilterOp, Fn1};
pub use batchgen::{covariance_batch, decision_node_batch, kmeans_batch, mutual_info_batch};
pub use engine::{run_batch, BatchResult, EngineConfig};
pub use stats::{sufficient_stats, SufficientStats};
