//! The [`Engine`] trait: one execution interface across the flat,
//! factorized, and LMFAO backends.
//!
//! The paper's central claim is that one aggregate-batch abstraction
//! serves classical joins, factorized evaluation, and in-database learning
//! alike. This module makes that claim an API: every backend consumes the
//! same [`AggQuery`] and produces the same [`BatchResult`], so callers
//! (ML, IVM, benchmarks, tests) swap engines instead of calling bespoke
//! per-backend entry points — the Figure 6 ablation is an engine swap.
//!
//! * [`FlatEngine`] — the structure-agnostic baseline: materialize the
//!   natural join with binary hash joins, then one scan per aggregate
//!   (`fdb_query`).
//! * [`FactorizedEngine`] — the fused leapfrog evaluator over the variable
//!   order, one pass per aggregate, join never materialized
//!   (`fdb_factorized` + the keyed ring).
//! * [`LmfaoEngine`] — the layered batch engine: shared views filled
//!   bottom-up in one scan per relation ([`crate::plan`] /
//!   [`crate::exec`] / [`crate::parallel`]).

use crate::batch::{Aggregate, FilterOp, Fn1};
use crate::classical::ScanQuery;
use crate::exec::{filter_pass, run_batch, Col};
use crate::group::{GroupIndex, KeySpace, DEFAULT_DENSE_GROUPS};
use crate::ir::{sorted_groups, AggQuery, BatchResult};
use crate::parallel::EngineConfig;
use fdb_data::{DataError, Database, SortCache, Value};
use fdb_factorized::EvalSpec;
use fdb_query::{natural_join_all, Predicate, ScalarExpr};
use fdb_ring::{DenseKeyedRing, F64Ring, KeyedRing, Semiring};
use std::collections::HashMap;

/// An execution backend for aggregate-batch queries.
///
/// Implementations must agree: for any valid [`AggQuery`], every engine
/// returns the same groups and (up to float round-off) the same values.
/// `tests/engines_agree.rs` holds them to that.
pub trait Engine {
    /// A short stable name for reports and ablation tables.
    fn name(&self) -> &'static str;

    /// Evaluates the query against `db`.
    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError>;
}

// ---------------------------------------------------------------------------
// Flat (classical) backend
// ---------------------------------------------------------------------------

/// The structure-agnostic baseline: materialized join + one scan per
/// aggregate. This is the "PostgreSQL stand-in" of Figures 3 and 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatEngine;

/// Translates one IR aggregate into the classical engine's per-relation
/// scan query (group-by in sorted, deduplicated order — the key order of
/// [`BatchResult`]).
pub fn to_scan_query(agg: &Aggregate) -> ScanQuery {
    let expr = if agg.factors.is_empty() {
        ScalarExpr::One
    } else {
        ScalarExpr::Mul(
            agg.factors
                .iter()
                .flat_map(|(a, f)| match f {
                    Fn1::Ident => vec![ScalarExpr::Col(a.clone())],
                    Fn1::Square => vec![ScalarExpr::Col(a.clone()), ScalarExpr::Col(a.clone())],
                })
                .collect(),
        )
    };
    let groups = sorted_groups(&agg.group_by);
    let mut q = ScanQuery { group_by: groups, expr, filter: None };
    if !agg.filter.is_empty() {
        let preds: Vec<Predicate> = agg
            .filter
            .iter()
            .map(|(a, op)| match op {
                FilterOp::Ge(t) => Predicate::Ge(a.clone(), *t),
                FilterOp::Lt(t) => Predicate::Lt(a.clone(), *t),
                FilterOp::Eq(v) => Predicate::Eq(a.clone(), Value::Int(*v)),
                FilterOp::Ne(v) => Predicate::Ne(a.clone(), Value::Int(*v)),
                FilterOp::In(vs) => Predicate::In(a.clone(), vs.clone()),
            })
            .collect();
        q.filter = Some(Predicate::And(preds));
    }
    q
}

impl Engine for FlatEngine {
    fn name(&self) -> &'static str {
        "flat"
    }

    /// Materializes the join once, then runs **one scan per distinct
    /// group-by set**: all aggregates sharing a set accumulate into one
    /// [`GroupIndex`] (a payload slot each), so a decision-tree batch of
    /// hundreds of same-grouped aggregates costs one pass instead of one
    /// pass per aggregate. The join materialization — not the scans — is
    /// what Figures 3/4 charge the classical engine for.
    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        let flat = natural_join_all(db, &q.relation_refs())?;
        let cols = Col::all(&flat);
        // Aggregate indices per distinct (sorted) group-by set, in first-use
        // order.
        let mut sets: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
        for (i, agg) in q.batch.aggs.iter().enumerate() {
            let g = sorted_groups(&agg.group_by);
            match sets.iter_mut().find(|(sg, _)| *sg == g) {
                Some((_, idxs)) => idxs.push(i),
                None => sets.push((g, vec![i])),
            }
        }
        let mut groups = vec![Vec::new(); q.batch.len()];
        let mut values: Vec<HashMap<Box<[i64]>, f64>> = vec![HashMap::new(); q.batch.len()];
        for (gattrs, idxs) in sets {
            let gcols: Vec<usize> =
                gattrs.iter().map(|a| flat.schema().require(a)).collect::<Result<_, _>>()?;
            // Per aggregate of the set: factor and filter columns.
            let plans: Vec<(Vec<(usize, Fn1)>, Vec<(usize, FilterOp)>)> = idxs
                .iter()
                .map(|&i| {
                    let agg = &q.batch.aggs[i];
                    let factors = agg
                        .factors
                        .iter()
                        .map(|(a, f)| Ok((flat.schema().require(a)?, *f)))
                        .collect::<Result<_, DataError>>()?;
                    let filter = agg
                        .filter
                        .iter()
                        .map(|(a, op)| Ok((flat.schema().require(a)?, op.clone())))
                        .collect::<Result<_, DataError>>()?;
                    Ok((factors, filter))
                })
                .collect::<Result<_, DataError>>()?;
            let ranges: Option<Vec<(i64, i64)>> =
                gcols.iter().map(|&c| flat.int_min_max(c)).collect();
            let space = ranges.and_then(|r| KeySpace::new(&r, DEFAULT_DENSE_GROUPS));
            // Dense accumulator over integer-backed group columns: scan
            // batch-at-a-time through the columnar kernels — one mixed-radix
            // code pass, then per-aggregate factor/filter passes over
            // contiguous slices, then a gathered payload add.
            let key_slices: Option<Vec<&[i64]>> = gcols
                .iter()
                .map(|&c| match cols[c] {
                    Col::I(v) => Some(v),
                    Col::F(_) => None,
                })
                .collect();
            let batched = space.clone().zip(key_slices);
            let mut acc = match space {
                Some(space) => GroupIndex::dense(space, idxs.len()),
                None => GroupIndex::hash(idxs.len()),
            };
            if let Some((space, kcols)) = batched {
                let mut codes = Vec::new();
                let mut oob = Vec::new();
                let mut vals = Vec::new();
                let nslots = plans.len();
                let mut lo = 0;
                while lo < flat.len() {
                    let hi = (lo + crate::morsel::DEFAULT_MORSEL_ROWS).min(flat.len());
                    let n = hi - lo;
                    let kslices: Vec<&[i64]> = kcols.iter().map(|v| &v[lo..hi]).collect();
                    crate::kernel::encode_codes(&space, &kslices, n, &mut codes, &mut oob);
                    // Slot-major value matrix: one stripe per aggregate,
                    // then a single fused multi-slot scatter — the codes
                    // walk once per batch instead of once per aggregate.
                    vals.clear();
                    vals.resize(nslots * n, 1.0);
                    for (k, (factors, filter)) in plans.iter().enumerate() {
                        let sv = &mut vals[k * n..(k + 1) * n];
                        for &(c, f) in factors {
                            match cols[c] {
                                Col::F(v) => crate::kernel::mul_by(sv, &v[lo..hi], |x| f.apply(x)),
                                Col::I(v) => {
                                    crate::kernel::mul_by(sv, &v[lo..hi], |x| f.apply(x as f64))
                                }
                            }
                        }
                        for (c, op) in filter {
                            match cols[*c] {
                                Col::F(v) => crate::kernel::mask_by(sv, &v[lo..hi], |x| {
                                    filter_pass(op, x, x as i64)
                                }),
                                Col::I(v) => crate::kernel::mask_by(sv, &v[lo..hi], |x| {
                                    filter_pass(op, x as f64, x)
                                }),
                            }
                        }
                    }
                    acc.add_codes_multi(&codes, &vals);
                    lo = hi;
                }
            } else {
                let mut key: Vec<i64> = Vec::with_capacity(gcols.len());
                for row in 0..flat.len() {
                    key.clear();
                    key.extend(gcols.iter().map(|&c| cols[c].get_int(row)));
                    let payload = acc.payload_mut(&key);
                    'aggs: for (k, (factors, filter)) in plans.iter().enumerate() {
                        for (c, op) in filter {
                            if !filter_pass(op, cols[*c].get(row), cols[*c].get_int(row)) {
                                continue 'aggs;
                            }
                        }
                        let mut v = 1.0;
                        for &(c, f) in factors {
                            v *= f.apply(cols[c].get(row));
                        }
                        payload[k] += v;
                    }
                }
            }
            for (k, &agg_i) in idxs.iter().enumerate() {
                groups[agg_i] = gattrs.clone();
                let mut map = HashMap::new();
                acc.for_each(|gkey, payload| {
                    if payload[k] != 0.0 {
                        map.insert(gkey.into(), payload[k]);
                    }
                });
                values[agg_i] = map;
            }
        }
        Ok(BatchResult { groups, values })
    }
}

// ---------------------------------------------------------------------------
// Factorized backend
// ---------------------------------------------------------------------------

/// The fused factorized evaluator (§5.1): leapfrog over the variable order
/// with keyed-ring aggregation, one pass per aggregate. The join is never
/// materialized, but — unlike LMFAO — nothing is shared across the batch
/// beyond the sorted views (cached across runs) and the per-group-by-set
/// evaluation specs.
#[derive(Debug, Clone, Copy)]
pub struct FactorizedEngine {
    /// Aggregate grouped queries in the dense keyed ring
    /// ([`fdb_ring::DenseKeyedRing`]) when the group attributes' code
    /// ranges are known; `false` keeps the hash-map
    /// [`fdb_ring::KeyedRing`] (the perf-regression baseline).
    pub dense_groups: bool,
    /// Serve sorted relation views from the global
    /// [`SortCache`](fdb_data::SortCache); `false` re-sorts every run.
    pub use_sort_cache: bool,
    /// Use the batched 1-/2-way intersection collectors of the trie layer
    /// ([`EvalSpec::set_vectorize`]); `false` pins the generic callback
    /// leapfrog — the scalar baseline of the kernel microbenches.
    pub vectorize: bool,
}

impl Default for FactorizedEngine {
    fn default() -> Self {
        Self { dense_groups: true, use_sort_cache: true, vectorize: true }
    }
}

impl FactorizedEngine {
    /// The default configuration (dense groups + sort cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// The pre-optimization configuration: hash-map keyed ring, fresh
    /// sorts every run, row-at-a-time leapfrog. The `--baseline-hash`
    /// arm of the perf harness.
    pub fn baseline_hash() -> Self {
        Self { dense_groups: false, use_sort_cache: false, vectorize: false }
    }
}

/// Per-relation local work of one aggregate: factor and filter columns.
struct LocalAgg {
    factors: Vec<(usize, Fn1)>,
    filter: Vec<(usize, FilterOp)>,
}

impl LocalAgg {
    fn is_count(&self) -> bool {
        self.factors.is_empty() && self.filter.is_empty()
    }

    /// Sum over `rows` of the filtered local factor product.
    fn sum(&self, cols: &[Col<'_>], rows: std::ops::Range<usize>) -> f64 {
        if self.is_count() {
            return rows.len() as f64;
        }
        let mut acc = 0.0;
        'rows: for r in rows {
            for (c, op) in &self.filter {
                if !filter_pass(op, cols[*c].get(r), cols[*c].get_int(r)) {
                    continue 'rows;
                }
            }
            let mut v = 1.0;
            for &(c, f) in &self.factors {
                v *= f.apply(cols[c].get(r));
            }
            acc += v;
        }
        acc
    }
}

/// Resolves one aggregate's factors and filters to per-relation plans
/// against the spec's (sorted) relations.
fn local_plans(spec: &EvalSpec, nrels: usize, agg: &Aggregate) -> Result<Vec<LocalAgg>, DataError> {
    let mut out: Vec<LocalAgg> =
        (0..nrels).map(|_| LocalAgg { factors: vec![], filter: vec![] }).collect();
    let place = |attr: &str| -> Result<(usize, usize), DataError> {
        for ri in 0..nrels {
            if let Ok(ci) = spec.col_index(ri, attr) {
                return Ok((ri, ci));
            }
        }
        Err(DataError::UnknownAttribute(attr.to_string()))
    };
    for (a, f) in &agg.factors {
        let (ri, ci) = place(a)?;
        out[ri].factors.push((ci, *f));
    }
    for (a, op) in &agg.filter {
        let (ri, ci) = place(a)?;
        out[ri].filter.push((ci, op.clone()));
    }
    Ok(out)
}

impl FactorizedEngine {
    /// Builds the dense keyed ring for a prepared spec's group attributes,
    /// when their code ranges are known. Computed **once per group-by set**
    /// (each range lookup scans a column) and reused by every aggregate
    /// sharing the spec. The per-slot ranges come from any participating
    /// relation's column — leapfrog matches lie in every participant's
    /// range, so one bound suffices.
    fn dense_ring(
        &self,
        spec: &EvalSpec,
        nrels: usize,
        gattrs: &[String],
    ) -> Option<DenseKeyedRing<F64Ring>> {
        if !self.dense_groups || gattrs.is_empty() {
            return None;
        }
        let ranges: Option<Vec<(i64, i64)>> = gattrs
            .iter()
            .map(|g| {
                (0..nrels).find_map(|ri| {
                    let ci = spec.col_index(ri, g).ok()?;
                    spec.relation(ri).int_min_max(ci)
                })
            })
            .collect();
        ranges.and_then(|r| DenseKeyedRing::new(F64Ring, &r))
    }

    /// Evaluates one aggregate over a prepared spec; `gattrs` is the
    /// sorted group-by attribute list (the spec's extra variables) and
    /// `dense` the group-by-set's precomputed dense ring (`None` = hash).
    fn eval_one(
        &self,
        spec: &EvalSpec,
        nrels: usize,
        gattrs: &[String],
        dense: Option<&DenseKeyedRing<F64Ring>>,
        agg: &Aggregate,
    ) -> Result<HashMap<Box<[i64]>, f64>, DataError> {
        let locals = local_plans(spec, nrels, agg)?;
        let cols: Vec<Vec<Col<'_>>> = (0..nrels).map(|ri| Col::all(spec.relation(ri))).collect();
        let leaf = |ri: usize, rows: std::ops::Range<usize>| locals[ri].sum(&cols[ri], rows);
        let mut map: HashMap<Box<[i64]>, f64> = HashMap::new();
        if gattrs.is_empty() {
            let total = spec.eval(&F64Ring, |_, _| 1.0, leaf);
            if total != 0.0 {
                map.insert(Vec::new().into(), total);
            }
            return Ok(map);
        }
        // Group-by slot per variable id, in sorted-attribute order.
        let hg = spec.hypergraph();
        let mut slot_of_var: HashMap<usize, usize> = HashMap::new();
        for (slot, g) in gattrs.iter().enumerate() {
            let var = hg.var_id(g).ok_or_else(|| {
                DataError::Invalid(format!("group-by attribute `{g}` missing from the key graph"))
            })?;
            slot_of_var.insert(var, slot);
        }
        // Dense path: group keys as mixed-radix codes in sorted lists.
        if let Some(ring) = dense {
            let grouped = spec.eval(
                ring,
                |var, v| match slot_of_var.get(&var) {
                    Some(&slot) => ring.tag(slot, v, 1.0),
                    None => ring.one(),
                },
                |ri, rows| ring.scalar(leaf(ri, rows)),
            );
            let mut key: Vec<i64> = Vec::with_capacity(gattrs.len());
            for (mask, code, v) in grouped.iter() {
                if *v != 0.0 {
                    ring.decode(mask, code, &mut key);
                    map.insert(key.as_slice().into(), *v);
                }
            }
            return Ok(map);
        }
        // Hash fallback: unknown or unbounded group domains.
        let ring = KeyedRing::new(F64Ring, gattrs.len());
        let grouped = spec.eval(
            &ring,
            |var, v| match slot_of_var.get(&var) {
                Some(&slot) => ring.tag(slot, Value::Int(v), 1.0),
                None => ring.one(),
            },
            |ri, rows| ring.scalar(leaf(ri, rows)),
        );
        for (key, v) in grouped.iter() {
            if *v != 0.0 {
                map.insert(key.iter().map(|x| x.as_int()).collect(), *v);
            }
        }
        Ok(map)
    }
}

impl Engine for FactorizedEngine {
    fn name(&self) -> &'static str {
        "factorized"
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        let rels = q.relation_refs();
        // One spec (and one dense ring) per distinct group-by set: the
        // group attributes become extra key variables of the variable
        // order, so specs — the sorting they do, and the range scans the
        // ring needs — are shared across same-grouped aggregates.
        type SpecEntry = (Vec<String>, EvalSpec, Option<DenseKeyedRing<F64Ring>>);
        let mut specs: Vec<SpecEntry> = Vec::new();
        let mut groups = Vec::with_capacity(q.batch.len());
        let mut values = Vec::with_capacity(q.batch.len());
        for agg in &q.batch.aggs {
            let gattrs = sorted_groups(&agg.group_by);
            let spec_idx = match specs.iter().position(|(g, ..)| *g == gattrs) {
                Some(i) => i,
                None => {
                    let grefs: Vec<&str> = gattrs.iter().map(String::as_str).collect();
                    let cache = self.use_sort_cache.then(SortCache::global);
                    let mut spec = EvalSpec::new_with_cache(db, &rels, &grefs, cache)?;
                    spec.set_vectorize(self.vectorize);
                    let ring = self.dense_ring(&spec, rels.len(), &gattrs);
                    specs.push((gattrs.clone(), spec, ring));
                    specs.len() - 1
                }
            };
            let (_, spec, ring) = &specs[spec_idx];
            let map = self.eval_one(spec, rels.len(), &gattrs, ring.as_ref(), agg)?;
            groups.push(gattrs);
            values.push(map);
        }
        Ok(BatchResult { groups, values })
    }
}

// ---------------------------------------------------------------------------
// LMFAO backend
// ---------------------------------------------------------------------------

/// The layered LMFAO engine behind the trait: shared views, one scan per
/// relation, with the [`EngineConfig`] toggles of the Figure 6 ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct LmfaoEngine {
    /// Feature toggles (specialisation, sharing, threads).
    pub cfg: EngineConfig,
}

impl LmfaoEngine {
    /// The default configuration (everything on, machine parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with explicit toggles (ablation stages).
    pub fn with_config(cfg: EngineConfig) -> Self {
        Self { cfg }
    }
}

impl Engine for LmfaoEngine {
    fn name(&self) -> &'static str {
        "lmfao"
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        run_batch(db, &q.relation_refs(), &q.batch, &self.cfg)
    }
}

/// The three backends, boxed, for ablation loops and agreement tests.
pub fn all_engines() -> Vec<Box<dyn Engine>> {
    vec![Box::new(FlatEngine), Box::new(FactorizedEngine::new()), Box::new(LmfaoEngine::new())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::AggBatch;

    fn dish_query() -> (Database, AggQuery) {
        let db = fdb_datasets::dish::dish_database();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count());
        batch.push(Aggregate::sum("price"));
        batch.push(Aggregate::sum_prod("price", "price"));
        batch.push(Aggregate::count().by(&["customer"]));
        batch.push(Aggregate::sum("price").by(&["day", "customer"]));
        batch.push(Aggregate::sum("price").filtered("price", FilterOp::Ge(3.0)));
        batch.push(Aggregate::count().by(&["customer"]).filtered("day", FilterOp::Eq(1)));
        batch.push(Aggregate::sum("price").filtered("day", FilterOp::In(vec![0, 1])));
        (db, AggQuery::new(&["Orders", "Dish", "Items"], batch))
    }

    #[test]
    fn three_backends_agree_on_dish() {
        let (db, q) = dish_query();
        let results: Vec<BatchResult> =
            all_engines().iter().map(|e| e.run(&db, &q).unwrap()).collect();
        let base = &results[0];
        for (e, r) in all_engines().iter().zip(&results).skip(1) {
            for i in 0..q.batch.len() {
                assert_eq!(base.groups[i], r.groups[i], "{}: agg {i} groups", e.name());
                assert_eq!(
                    base.grouped(i).len(),
                    r.grouped(i).len(),
                    "{}: agg {i} key count",
                    e.name()
                );
                for (k, v) in base.grouped(i) {
                    let got = r.grouped(i).get(k).copied().unwrap_or(f64::NAN);
                    assert!(
                        (v - got).abs() <= 1e-9 * (1.0 + v.abs()),
                        "{}: agg {i} key {k:?}: {v} vs {got}",
                        e.name()
                    );
                }
            }
        }
        // Figure 9 ground truth: SUM(1) over the dish join is 12.
        assert_eq!(results[0].scalar(0), 12.0);
    }

    #[test]
    fn engines_reject_invalid_queries_alike() {
        let db = fdb_datasets::dish::dish_database();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::sum("dish")); // join key
        let q = AggQuery::new(&["Orders", "Dish", "Items"], batch);
        for e in all_engines() {
            assert!(e.run(&db, &q).is_err(), "{} must reject join-key aggregates", e.name());
        }
    }

    #[test]
    fn engine_names_are_distinct() {
        let names: Vec<&str> = all_engines().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["flat", "factorized", "lmfao"]);
    }
}
