//! Sharded fact-table execution: data parallelism over *any* backend.
//!
//! Every aggregate the engines evaluate is a sum over the natural join,
//! and the join is linear in each input relation: partitioning one
//! relation `F = F₁ ⊎ … ⊎ Fₙ` partitions the join, so
//! `Q(F) = Q(F₁) + … + Q(Fₙ)` with `+` the ring-additive merge of
//! [`BatchResult`]s by group key. That identity holds for every backend
//! at once — which is why [`ShardedEngine`] composes *around* the
//! [`Engine`] trait instead of touching any backend: it partitions the
//! fact relation with [`Database::shard`] (dimension tables shared by
//! `Arc`, so the sort cache warms once for all shards), runs the inner
//! engine per shard on scoped worker threads (the same plain-threads
//! pool discipline as [`crate::parallel`]), and merges.
//!
//! **Scheduling.** Execution is morsel-driven (see [`crate::morsel`]): the
//! fact is over-partitioned into many more morsel-sized shards than worker
//! threads, and workers pull the next unclaimed shard from a shared queue.
//! One-thread-per-shard pinning serialized the whole batch on its most
//! expensive partition (skewed keys cluster in one contiguous row range);
//! with pulling, a heavy shard delays only itself — every other morsel is
//! picked up by whichever worker is free, which subsumes any "split shards
//! over 2× the mean" special case. Per-shard results still merge in shard
//! order, so the summation stays deterministic, and the partition is still
//! memoized per database content state.
//!
//! **Merge semantics.** Group maps are summed key-wise, then entries whose
//! merged value is exactly `0.0` are dropped *again*: each shard drops its
//! own exact zeros, but contributions that cancel only across shards
//! (e.g. `+x` in shard 1, `−x` in shard 2) first appear at merge time, and
//! the [`BatchResult`] contract — all backends represent the same key set —
//! must survive sharding. See `tests/sharded_agree.rs`.
//!
//! **Float caveat.** Like any change of summation order (including the
//! backends' own evaluation orders and LMFAO's chunked domain
//! parallelism), sharding can change *rounding* for `Double`-valued
//! measures. For a group whose true sum is a rounding-sensitive near-zero
//! (e.g. `[1e16, 1.0, -1e16, -1.0]`), one summation order can land
//! exactly on `0.0` (key dropped) while another lands on `-1.0` (key
//! kept). Exact key-set and value identity is guaranteed for
//! exactly-representable (integer-valued) measures, where f64 addition is
//! associative; real-valued data gets "equal up to round-off, identical
//! key sets unless a sum rounds exactly to zero" — the same caveat the
//! cross-backend agreement tolerances already encode.

use crate::backend::Engine;
use crate::ir::{AggQuery, BatchResult};
use crate::morsel::{self, MorselStats, DEFAULT_MORSEL_ROWS};
use crate::parallel::default_threads;
use fdb_data::{DataError, Database};
use std::sync::{Arc, Mutex};

/// The memoized shard partition of one database content state: reused as
/// long as every relation's [`fdb_data::Relation::data_id`] is unchanged.
/// Stability matters beyond the partition cost — reused fact chunks keep
/// their `data_id`s, so sorted-view caches warm up across runs instead of
/// filling with views of chunks that will never be probed again.
#[derive(Debug)]
struct ShardCache {
    fact: String,
    n: usize,
    /// `(relation name, data_id)` of every relation at build time.
    ids: Vec<(String, u64)>,
    dbs: Arc<Vec<Database>>,
}

/// Fact rows per shard below which [`ShardedEngine::run`] falls back to
/// single-shard execution. Partitioning a small fact costs more
/// (partition + redundant dimension scans + merge) than the per-shard
/// scans save, so tiny facts run unwrapped; override with
/// [`ShardedEngine::with_min_rows_per_shard`].
pub const DEFAULT_MIN_ROWS_PER_SHARD: usize = 4096;

/// Wraps an inner [`Engine`], partitioning the fact relation into
/// morsel-sized chunks pulled by `shards` worker threads and merging the
/// per-shard results.
///
/// The fact relation defaults to the largest relation of the query (the
/// usual snowflake shape) and can be pinned with
/// [`ShardedEngine::with_fact`]. With one shard (or an explicit
/// single-shard configuration) the inner engine runs unwrapped —
/// `ShardedEngine` never changes results, only where they are computed.
/// Queries whose fact is too small to amortize the partition + merge cost
/// ([`DEFAULT_MIN_ROWS_PER_SHARD`] rows per shard) also run unwrapped;
/// this applies equally when the inner engine is a
/// [`DispatchEngine`](crate::dispatch::DispatchEngine), so adaptive
/// dispatch never pays sharding overhead on tiny facts.
#[derive(Debug)]
pub struct ShardedEngine<E> {
    inner: E,
    shards: usize,
    fact: Option<String>,
    min_rows_per_shard: usize,
    morsel_rows: usize,
    cache: Mutex<Option<ShardCache>>,
    last_stats: Mutex<Option<MorselStats>>,
}

/// Cloning keeps the configuration and starts with a cold partition cache
/// (the cache is identity-keyed scratch state, not configuration).
impl<E: Clone> Clone for ShardedEngine<E> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            shards: self.shards,
            fact: self.fact.clone(),
            min_rows_per_shard: self.min_rows_per_shard,
            morsel_rows: self.morsel_rows,
            cache: Mutex::new(None),
            last_stats: Mutex::new(None),
        }
    }
}

impl<E: Engine> ShardedEngine<E> {
    /// Shards across the machine's available parallelism.
    pub fn new(inner: E) -> Self {
        Self::with_shards(inner, default_threads())
    }

    /// Runs with `shards` worker threads (clamped to ≥ 1). The fact is
    /// over-partitioned into morsel-sized shards pulled by these workers.
    pub fn with_shards(inner: E, shards: usize) -> Self {
        Self {
            inner,
            shards: shards.max(1),
            fact: None,
            min_rows_per_shard: DEFAULT_MIN_ROWS_PER_SHARD,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            cache: Mutex::new(None),
            last_stats: Mutex::new(None),
        }
    }

    /// Overrides the morsel size: fact partitions target roughly `rows`
    /// rows each (clamped to ≥ 1). Smaller morsels steal better on skew
    /// but pay more partition + merge overhead.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Dispatch statistics of the most recent sharded `run` (`None` until
    /// one happens, or after a single-shard fallback): how many morsels
    /// were pulled by how many workers — what the skew regression test
    /// asserts on to confirm stealing engaged.
    pub fn last_run_stats(&self) -> Option<MorselStats> {
        self.last_stats.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Overrides the small-fact fallback threshold: when the fact would
    /// hold fewer than `rows` rows per shard, `run` executes the inner
    /// engine unwrapped instead of paying partition + merge cost. `1`
    /// disables the fallback (always shard); tests use that to exercise
    /// the merge path on tiny example databases.
    pub fn with_min_rows_per_shard(mut self, rows: usize) -> Self {
        self.min_rows_per_shard = rows.max(1);
        self
    }

    /// Pins the fact relation instead of picking the largest. The relation
    /// must participate in every query this engine runs — sharding a
    /// relation outside the join would replicate the full query per shard
    /// and over-count by the shard factor, so [`ShardedEngine::run`]
    /// rejects such queries.
    pub fn with_fact(mut self, fact: impl Into<String>) -> Self {
        self.fact = Some(fact.into());
        self
    }

    /// Number of worker threads this engine fans out to (the actual shard
    /// count is morsel-derived and usually larger; see `run`).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The relation `run` would partition for `q`: the pinned fact if any,
    /// otherwise the largest relation of the query.
    pub fn fact_for(&self, db: &Database, q: &AggQuery) -> Result<String, DataError> {
        if let Some(f) = &self.fact {
            if !q.relations.iter().any(|r| r == f) {
                return Err(DataError::Invalid(format!(
                    "sharding fact `{f}` does not participate in the query join"
                )));
            }
            return Ok(f.clone());
        }
        let mut best: Option<(usize, &str)> = None;
        for name in &q.relations {
            let rows = db.get(name)?.len();
            if best.map(|(b, _)| rows > b).unwrap_or(true) {
                best = Some((rows, name));
            }
        }
        best.map(|(_, n)| n.to_string())
            .ok_or_else(|| DataError::Invalid("query has no relations to shard".into()))
    }

    /// The inner engine (the maintenance layer re-dispatches through it).
    pub(crate) fn inner(&self) -> &E {
        &self.inner
    }

    /// The `(fact, effective shard count)` decision `run` executes: the
    /// configured fan-out clamped to the fact cardinality, collapsed to 1
    /// by the small-fact fallback.
    pub(crate) fn plan_shards(
        &self,
        db: &Database,
        q: &AggQuery,
    ) -> Result<(String, usize), DataError> {
        let fact = self.fact_for(db, q)?;
        let fact_rows = db.get(&fact)?.len();
        let mut n = self.shards.min(fact_rows).max(1);
        if fact_rows / n < self.min_rows_per_shard {
            n = 1;
        }
        Ok((fact, n))
    }

    /// The `n`-way partition of `db` along `fact`, memoized per database
    /// content state: rebuilt only when some relation's `data_id` changed
    /// (the same invalidation rule as the sort cache). Reuse keeps the
    /// fact chunks' `data_id`s stable across runs, so per-chunk sorted
    /// views become cache *hits* on repeated queries (a CART fit runs one
    /// batch per tree node) instead of dead entries evicting warm
    /// dimension views.
    pub fn shard_databases(
        &self,
        db: &Database,
        fact: &str,
        n: usize,
    ) -> Result<Arc<Vec<Database>>, DataError> {
        let ids: Vec<(String, u64)> = db
            .names()
            .iter()
            .map(|nm| Ok((nm.clone(), db.get(nm)?.data_id())))
            .collect::<Result<_, DataError>>()?;
        {
            let guard = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(c) = guard.as_ref() {
                if c.fact == fact && c.n == n && c.ids == ids {
                    return Ok(Arc::clone(&c.dbs));
                }
            }
        }
        let dbs = Arc::new(db.shard(fact, n)?);
        let mut guard = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        *guard = Some(ShardCache { fact: fact.to_string(), n, ids, dbs: Arc::clone(&dbs) });
        Ok(dbs)
    }
}

impl<E: Engine + Sync> Engine for ShardedEngine<E> {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn run(&self, db: &Database, q: &AggQuery) -> Result<BatchResult, DataError> {
        q.validate(db)?;
        // Small-fact fallback: when shards would each hold fewer than the
        // threshold rows, partition + merge overhead dominates any
        // per-shard saving — run the inner engine unwrapped.
        let (fact, workers) = self.plan_shards(db, q)?;
        if workers == 1 {
            *self.last_stats.lock().unwrap_or_else(|p| p.into_inner()) = None;
            return self.inner.run(db, q);
        }
        // Over-partition into morsel-sized shards — several per worker, so
        // a skewed (expensive) shard no longer serializes the batch — and
        // let the workers pull shards from a shared queue. The partition
        // count is capped so per-shard dimension-scan overhead stays
        // bounded when the fact is huge relative to the morsel size.
        let fact_rows = db.get(&fact)?.len();
        let m = morsel::morsel_count(fact_rows, self.morsel_rows, workers)
            .min(workers.saturating_mul(32))
            .max(workers.min(fact_rows));
        let shard_dbs = self.shard_databases(db, &fact, m)?;
        let stealing = morsel::run_stealing(m, workers, |i| {
            fdb_data::fault::check("morsel-exec")?;
            self.inner.run(&shard_dbs[i], q)
        });
        let (results, stats) = match stealing {
            Ok(ok) => ok,
            Err(DataError::WorkerPanic(_)) => {
                // Degraded retry: sharding never changes results (the
                // same discipline as the dense→hash and delta-maintain
                // fallbacks), so a panicking worker falls back to one
                // unsharded run — still contained, so a deterministic
                // panic surfaces as `Err`, not a second unwind.
                *self.last_stats.lock().unwrap_or_else(|p| p.into_inner()) = None;
                return morsel::contain(|| self.inner.run(db, q))?;
            }
            Err(e) => return Err(e),
        };
        *self.last_stats.lock().unwrap_or_else(|p| p.into_inner()) = Some(stats);
        // Pairwise tree merge on the same workers: the serial shard-order
        // fold made the coordinator the scaling ceiling (every worker's
        // partial funneled through one thread). The merge tree depends
        // only on the shard order — never on which worker ran which shard
        // or pair — so the summation stays deterministic for a given
        // partition; the association differs from the old serial fold by
        // float rounding only (exact for integer-valued measures).
        let results: Vec<BatchResult> = results.into_iter().collect::<Result<_, DataError>>()?;
        let mut acc = morsel::tree_merge(results, workers, merge_into)?.expect("m >= 1 shards");
        drop_exact_zeros(&mut acc);
        Ok(acc)
    }
}

/// Ring-additive merge: sums `other`'s group maps into `acc` key-wise.
/// Callers finish with [`drop_exact_zeros`] — cancellation across shards
/// can produce exact zeros that no single shard ever saw.
pub fn merge_into(acc: &mut BatchResult, other: BatchResult) -> Result<(), DataError> {
    if acc.groups != other.groups {
        return Err(DataError::Invalid(
            "shard results disagree on group attributes; merge would mix key spaces".into(),
        ));
    }
    for (a, b) in acc.values.iter_mut().zip(other.values) {
        for (k, v) in b {
            *a.entry(k).or_insert(0.0) += v;
        }
    }
    Ok(())
}

/// Re-establishes the [`BatchResult`] contract after a merge: entries whose
/// value is exactly `0.0` are dropped.
pub fn drop_exact_zeros(res: &mut BatchResult) {
    for m in &mut res.values {
        m.retain(|_, v| *v != 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FactorizedEngine, FlatEngine, LmfaoEngine};
    use crate::batch::{AggBatch, Aggregate};
    use std::collections::HashMap;

    fn dish_query() -> (Database, AggQuery) {
        let db = fdb_datasets::dish::dish_database();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count());
        batch.push(Aggregate::sum("price").by(&["customer"]));
        batch.push(Aggregate::sum("price").by(&["day", "customer"]));
        (db, AggQuery::new(&["Orders", "Dish", "Items"], batch))
    }

    fn assert_same(a: &BatchResult, b: &BatchResult, tag: &str) {
        assert_eq!(a.groups, b.groups, "{tag}: groups");
        for i in 0..a.values.len() {
            assert_eq!(a.grouped(i).len(), b.grouped(i).len(), "{tag}: agg {i} key count");
            for (k, v) in a.grouped(i) {
                let g = b.grouped(i).get(k).copied().unwrap_or(f64::NAN);
                assert!((v - g).abs() <= 1e-9 * (1.0 + v.abs()), "{tag}: agg {i} key {k:?}");
            }
        }
    }

    #[test]
    fn sharded_matches_unsharded_for_every_backend() {
        let (db, q) = dish_query();
        for shards in [1usize, 2, 3, 7, 64] {
            let flat = ShardedEngine::with_shards(FlatEngine, shards).with_min_rows_per_shard(1);
            assert_same(
                &FlatEngine.run(&db, &q).unwrap(),
                &flat.run(&db, &q).unwrap(),
                &format!("flat x{shards}"),
            );
            let fac = ShardedEngine::with_shards(FactorizedEngine::new(), shards)
                .with_min_rows_per_shard(1);
            assert_same(
                &FactorizedEngine::new().run(&db, &q).unwrap(),
                &fac.run(&db, &q).unwrap(),
                &format!("factorized x{shards}"),
            );
            let lm =
                ShardedEngine::with_shards(LmfaoEngine::new(), shards).with_min_rows_per_shard(1);
            assert_same(
                &LmfaoEngine::new().run(&db, &q).unwrap(),
                &lm.run(&db, &q).unwrap(),
                &format!("lmfao x{shards}"),
            );
        }
    }

    #[test]
    fn picks_the_largest_relation_as_fact() {
        let (db, q) = dish_query();
        let e = ShardedEngine::with_shards(FlatEngine, 2);
        // Orders: 4 rows, Dish: 6, Items: 4 — Dish is the fact here.
        assert_eq!(e.fact_for(&db, &q).unwrap(), "Dish");
        let pinned = ShardedEngine::with_shards(FlatEngine, 2).with_fact("Orders");
        assert_eq!(pinned.fact_for(&db, &q).unwrap(), "Orders");
    }

    #[test]
    fn shard_partition_is_memoized_until_mutation() {
        let (mut db, q) = dish_query();
        let e = ShardedEngine::with_shards(FlatEngine, 3).with_min_rows_per_shard(1);
        let a = e.shard_databases(&db, "Dish", 3).unwrap();
        let b = e.shard_databases(&db, "Dish", 3).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "unchanged content reuses the partition");
        // The reused chunks keep their content ids — what lets sorted-view
        // caches warm up across runs instead of churning.
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.get("Dish").unwrap().data_id(), y.get("Dish").unwrap().data_id());
        }
        // A different fan-out rebuilds.
        let c = e.shard_databases(&db, "Dish", 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Mutating any relation (even a dimension) invalidates.
        let before = e.run(&db, &q).unwrap();
        let row = db.get("Items").unwrap().row_vec(0);
        db.get_mut("Items").unwrap().push_row(&row).unwrap();
        let d = e.shard_databases(&db, "Dish", 2).unwrap();
        assert!(!Arc::ptr_eq(&c, &d), "mutation rebuilds the partition");
        // The post-mutation run reflects the new data, not the stale cache:
        // duplicating an Items row adds join tuples.
        let after = e.run(&db, &q).unwrap();
        assert!(after.scalar(0) > before.scalar(0), "stale partition not served");
    }

    #[test]
    fn small_fact_falls_back_to_single_shard() {
        // The dish fact is 6 rows — far below the default threshold, so
        // `run` must execute unwrapped: no partition is ever built, and
        // the result still matches the inner engine exactly.
        let (db, q) = dish_query();
        let e = ShardedEngine::with_shards(FlatEngine, 3);
        let got = e.run(&db, &q).unwrap();
        assert!(e.cache.lock().unwrap().is_none(), "fallback never partitions");
        assert_same(&FlatEngine.run(&db, &q).unwrap(), &got, "fallback");
        // Lowering the threshold re-enables sharding (and memoizes the
        // partition).
        let sharded = ShardedEngine::with_shards(FlatEngine, 3).with_min_rows_per_shard(1);
        let got = sharded.run(&db, &q).unwrap();
        assert!(sharded.cache.lock().unwrap().is_some(), "threshold 1 shards");
        assert_same(&FlatEngine.run(&db, &q).unwrap(), &got, "threshold 1");
        // Exactly at the threshold: 6 rows / 3 shards = 2 rows per shard.
        let at = ShardedEngine::with_shards(FlatEngine, 3).with_min_rows_per_shard(2);
        at.run(&db, &q).unwrap();
        assert!(at.cache.lock().unwrap().is_some(), "at-threshold facts still shard");
    }

    #[test]
    fn off_join_fact_is_rejected_not_overcounted() {
        let (db, q) = dish_query();
        let e = ShardedEngine::with_shards(FlatEngine, 2).with_fact("NotThere");
        assert!(e.run(&db, &q).is_err());
    }

    #[test]
    fn merge_sums_and_redrops_cross_shard_zeros() {
        let key = |v: i64| -> Box<[i64]> { vec![v].into() };
        let mk = |entries: &[(i64, f64)]| BatchResult {
            groups: vec![vec!["g".into()]],
            values: vec![entries.iter().map(|&(k, v)| (key(k), v)).collect::<HashMap<_, _>>()],
        };
        let mut acc = mk(&[(1, 2.5), (2, -4.0)]);
        merge_into(&mut acc, mk(&[(2, 4.0), (3, 1.0)])).unwrap();
        drop_exact_zeros(&mut acc);
        assert_eq!(acc.grouped(0).len(), 2, "key 2 cancelled to exactly 0.0 and was dropped");
        assert_eq!(acc.grouped(0)[&key(1)], 2.5);
        assert_eq!(acc.grouped(0)[&key(3)], 1.0);
        // Mismatched group attributes refuse to merge.
        let mut acc = mk(&[(1, 1.0)]);
        let other = BatchResult { groups: vec![vec!["h".into()]], values: vec![HashMap::new()] };
        assert!(merge_into(&mut acc, other).is_err());
    }
}
