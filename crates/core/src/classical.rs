//! Group-by aggregate evaluation the *classical* way: one scan per query.
//!
//! `eval_agg_batch` evaluates a batch of aggregates the way a classical
//! engine does — sequentially, each with its own scan of the (materialized)
//! data matrix and its own hash table. The contrast with LMFAO's shared,
//! factorized evaluation of the same batch is what Figure 4 (left)
//! measures, and the perf harness's `flat/baseline-hash` arm times.
//!
//! This module moved here from `fdb-query` so that **all** aggregate
//! evaluation lives in one crate behind one layering: `fdb-query` supplies
//! join materialization ([`fdb_query::natural_join_all`]) and the
//! expression IR ([`ScalarExpr`], [`Predicate`]); `fdb-core` owns every
//! evaluation loop — the shared-scan [`FlatEngine`](crate::FlatEngine),
//! the LMFAO view engine ([`crate::exec`]), and this deliberately naive
//! per-aggregate baseline. [`crate::to_scan_query`] lowers one IR
//! aggregate to a [`ScanQuery`].

use fdb_data::{DataError, Relation, Value};
use fdb_query::{Predicate, ScalarExpr};
use std::collections::HashMap;

/// One per-relation scan query: `SELECT group_by, SUM(expr) FROM rel WHERE
/// filter GROUP BY group_by`. `COUNT(*)` is `SUM(1)`. (The cross-backend
/// logical IR is `fdb_core::AggQuery`; `fdb_core::to_scan_query` lowers
/// one of its aggregates to this form.)
#[derive(Debug, Clone)]
pub struct ScanQuery {
    /// Group-by attribute names (empty = scalar aggregate).
    pub group_by: Vec<String>,
    /// Summand expression.
    pub expr: ScalarExpr,
    /// Optional tuple filter.
    pub filter: Option<Predicate>,
}

impl ScanQuery {
    /// A scalar `SUM(expr)`.
    pub fn sum(expr: ScalarExpr) -> Self {
        Self { group_by: vec![], expr, filter: None }
    }

    /// A grouped `SUM(expr) GROUP BY attrs`.
    pub fn sum_by(expr: ScalarExpr, group_by: &[&str]) -> Self {
        Self { group_by: group_by.iter().map(|s| s.to_string()).collect(), expr, filter: None }
    }

    /// Adds a filter.
    pub fn with_filter(mut self, p: Predicate) -> Self {
        self.filter = Some(p);
        self
    }
}

/// Result of one aggregate query: group key → sum. Scalar aggregates use
/// the empty key.
pub type AggResult = HashMap<Box<[Value]>, f64>;

/// Evaluates one aggregate with a full scan of `rel`.
pub fn eval_agg(rel: &Relation, q: &ScanQuery) -> Result<AggResult, DataError> {
    let expr = q.expr.bind(rel.schema())?;
    let filter = q.filter.as_ref().map(|p| p.bind(rel.schema())).transpose()?;
    let gcols: Vec<usize> =
        q.group_by.iter().map(|a| rel.schema().require(a)).collect::<Result<_, _>>()?;
    let mut out: AggResult = HashMap::new();
    let mut key: Vec<Value> = Vec::with_capacity(gcols.len());
    for r in 0..rel.len() {
        if let Some(f) = &filter {
            if !f.eval(rel, r) {
                continue;
            }
        }
        key.clear();
        key.extend(gcols.iter().map(|&c| rel.value(r, c)));
        *out.entry(key.as_slice().into()).or_insert(0.0) += expr.eval(rel, r);
    }
    Ok(out)
}

/// Evaluates a batch the classical way: one scan *per query*. No sharing.
pub fn eval_agg_batch(rel: &Relation, batch: &[ScanQuery]) -> Result<Vec<AggResult>, DataError> {
    batch.iter().map(|q| eval_agg(rel, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Schema};

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::of(&[("g", AttrType::Int), ("x", AttrType::Double), ("y", AttrType::Double)]),
            vec![
                vec![Value::Int(1), Value::F64(1.0), Value::F64(10.0)],
                vec![Value::Int(1), Value::F64(2.0), Value::F64(20.0)],
                vec![Value::Int(2), Value::F64(3.0), Value::F64(30.0)],
            ],
        )
        .unwrap()
    }

    fn scalar(res: &AggResult) -> f64 {
        let key: Box<[Value]> = Vec::new().into();
        res.get(&key).copied().unwrap_or(0.0)
    }

    #[test]
    fn count_and_sums() {
        let r = rel();
        let count = eval_agg(&r, &ScanQuery::sum(ScalarExpr::One)).unwrap();
        assert_eq!(scalar(&count), 3.0);
        let sum_xy = eval_agg(&r, &ScanQuery::sum(ScalarExpr::col_product("x", "y"))).unwrap();
        assert_eq!(scalar(&sum_xy), 1.0 * 10.0 + 2.0 * 20.0 + 3.0 * 30.0);
    }

    #[test]
    fn grouped_sum() {
        let r = rel();
        let res = eval_agg(&r, &ScanQuery::sum_by(ScalarExpr::Col("x".into()), &["g"])).unwrap();
        let k1: Box<[Value]> = vec![Value::Int(1)].into();
        let k2: Box<[Value]> = vec![Value::Int(2)].into();
        assert_eq!(res.get(&k1), Some(&3.0));
        assert_eq!(res.get(&k2), Some(&3.0));
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn filtered_aggregate() {
        let r = rel();
        let q =
            ScanQuery::sum(ScalarExpr::Col("y".into())).with_filter(Predicate::Ge("x".into(), 2.0));
        assert_eq!(scalar(&eval_agg(&r, &q).unwrap()), 50.0);
    }

    #[test]
    fn batch_matches_individual() {
        let r = rel();
        let batch = vec![
            ScanQuery::sum(ScalarExpr::One),
            ScanQuery::sum_by(ScalarExpr::Col("y".into()), &["g"]),
        ];
        let res = eval_agg_batch(&r, &batch).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(scalar(&res[0]), 3.0);
        assert_eq!(res[1].len(), 2);
    }

    #[test]
    fn unknown_attribute_errors() {
        let r = rel();
        assert!(eval_agg(&r, &ScanQuery::sum(ScalarExpr::Col("nope".into()))).is_err());
        assert!(eval_agg(&r, &ScanQuery::sum_by(ScalarExpr::One, &["nope"])).is_err());
    }

    #[test]
    fn empty_relation_scalar_sum_absent() {
        let empty = Relation::new(rel().schema().clone());
        let res = eval_agg(&empty, &ScanQuery::sum(ScalarExpr::One)).unwrap();
        assert!(res.is_empty());
    }
}
