//! The shared logical IR consumed by every execution backend.
//!
//! An [`AggQuery`] pairs the join hypergraph (relation names, natural-join
//! semantics) with an aggregate batch ([`AggBatch`]): the
//! `SUM(Π f(attr)) WHERE cond GROUP BY cats` workload of §2. The three
//! engines behind the [`crate::Engine`](crate::backend::Engine) trait —
//! flat, factorized, and LMFAO — all take this one value, which is what
//! makes the Figure 6 ablation (and any later backend dispatch, caching,
//! or sharding layer) a matter of swapping engine objects rather than
//! calling three bespoke APIs.

use crate::batch::AggBatch;
use fdb_data::{DataError, Database};
use fdb_factorized::hypergraph::Hypergraph;
use std::collections::HashMap;

/// A batch of group-by aggregates over one natural join — the logical
/// query every backend executes.
#[derive(Debug, Clone)]
pub struct AggQuery {
    /// Relation names forming the natural join (the hyperedges).
    pub relations: Vec<String>,
    /// The aggregates to evaluate over that join.
    pub batch: AggBatch,
}

impl AggQuery {
    /// A query over the natural join of `relations`.
    pub fn new(relations: &[&str], batch: AggBatch) -> Self {
        Self { relations: relations.iter().map(|s| s.to_string()).collect(), batch }
    }

    /// Relation names as `&str` slices (the planners take `&[&str]`).
    pub fn relation_refs(&self) -> Vec<&str> {
        self.relations.iter().map(String::as_str).collect()
    }

    /// The join-key hypergraph of this query over `db`.
    pub fn hypergraph(&self, db: &Database) -> Result<Hypergraph, DataError> {
        Hypergraph::join_keys_plus(db, &self.relation_refs(), &[])
    }

    /// Checks the invariants every backend relies on: the relations exist,
    /// each aggregate attribute (factor, filter, or group-by) is a
    /// *non-join* attribute of exactly one relation, group-by attributes
    /// are integer-backed (categorical codes or keys), and
    /// [`FilterOp::In`](crate::batch::FilterOp) lists are sorted (the
    /// documented contract the engines' binary search relies on).
    ///
    /// Engines call this up front so that all three backends reject the
    /// same ill-formed queries instead of silently diverging. The check is
    /// schema-level only (hypergraph + attribute ownership, no data
    /// scans), so running it once per `Engine::run` call is negligible
    /// next to execution even for per-tree-node batches.
    pub fn validate(&self, db: &Database) -> Result<(), DataError> {
        let rels = self.relation_refs();
        let hg = self.hypergraph(db)?;
        // Non-join attribute → (owner count, int-backed?).
        let mut owner: HashMap<&str, (usize, bool)> = HashMap::new();
        for name in &rels {
            let rel = db.get(name)?;
            for a in rel.schema().attrs() {
                if hg.var_id(&a.name).is_none() {
                    let e = owner.entry(a.name.as_str()).or_insert((0, a.ty.is_int_backed()));
                    e.0 += 1;
                }
            }
        }
        let require = |attr: &str| -> Result<bool, DataError> {
            match owner.get(attr) {
                Some(&(1, int_backed)) => Ok(int_backed),
                Some(_) => Err(DataError::Invalid(format!(
                    "aggregate attribute `{attr}` appears in more than one relation"
                ))),
                None => Err(DataError::Invalid(format!(
                    "aggregate attribute `{attr}` must be a non-join attribute of exactly one relation"
                ))),
            }
        };
        for agg in &self.batch.aggs {
            for (a, _) in &agg.factors {
                require(a)?;
            }
            for (a, op) in &agg.filter {
                require(a)?;
                if let crate::batch::FilterOp::In(vs) = op {
                    if vs.windows(2).any(|w| w[0] > w[1]) {
                        return Err(DataError::Invalid(format!(
                            "FilterOp::In list on `{a}` must be sorted ascending"
                        )));
                    }
                }
            }
            for g in &agg.group_by {
                if !require(g)? {
                    return Err(DataError::Invalid(format!(
                        "group-by attribute `{g}` must be integer-backed (categorical codes)"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Result of a batch: one grouped map per aggregate, in batch order.
///
/// Group keys are categorical codes in the order of
/// [`BatchResult::groups`] (group-by attributes sorted by name,
/// deduplicated); scalar aggregates use the empty key. Entries whose value
/// is exactly `0.0` are dropped, so all backends agree on the represented
/// key set even when a join is empty.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per aggregate: the group-by attributes in key order (sorted names).
    pub groups: Vec<Vec<String>>,
    /// Per aggregate: group key (categorical codes) → aggregate value.
    /// Scalar aggregates use the empty key.
    pub values: Vec<HashMap<Box<[i64]>, f64>>,
}

impl BatchResult {
    /// The scalar value of aggregate `i` (0.0 over the empty join).
    pub fn scalar(&self, i: usize) -> f64 {
        let key: Box<[i64]> = Vec::new().into();
        self.values[i].get(&key).copied().unwrap_or(0.0)
    }

    /// The grouped map of aggregate `i`.
    pub fn grouped(&self, i: usize) -> &HashMap<Box<[i64]>, f64> {
        &self.values[i]
    }
}

/// The sorted, deduplicated group-by key order used in [`BatchResult`].
pub(crate) fn sorted_groups(group_by: &[String]) -> Vec<String> {
    let mut g = group_by.to_vec();
    g.sort();
    g.dedup();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Aggregate;

    #[test]
    fn validate_accepts_well_formed_and_rejects_join_keys() {
        let db = fdb_datasets::dish::dish_database();
        let rels = ["Orders", "Dish", "Items"];
        let mut ok = AggBatch::new();
        ok.push(Aggregate::sum("price").by(&["customer"]));
        assert!(AggQuery::new(&rels, ok).validate(&db).is_ok());

        // `dish` is a join key: rejected.
        let mut bad = AggBatch::new();
        bad.push(Aggregate::count().by(&["dish"]));
        assert!(AggQuery::new(&rels, bad).validate(&db).is_err());

        // `price` is Double: not a legal group-by.
        let mut badg = AggBatch::new();
        badg.push(Aggregate::count().by(&["price"]));
        assert!(AggQuery::new(&rels, badg).validate(&db).is_err());

        // Unknown attribute.
        let mut unk = AggBatch::new();
        unk.push(Aggregate::sum("nope"));
        assert!(AggQuery::new(&rels, unk).validate(&db).is_err());

        // Unsorted In list: rejected up front so the engines' binary
        // search cannot silently diverge from the flat scan.
        use crate::batch::FilterOp;
        let mut unsorted = AggBatch::new();
        unsorted.push(Aggregate::count().filtered("price", FilterOp::In(vec![3, 1])));
        assert!(AggQuery::new(&rels, unsorted).validate(&db).is_err());
        let mut sorted = AggBatch::new();
        sorted.push(Aggregate::count().filtered("price", FilterOp::In(vec![1, 3])));
        assert!(AggQuery::new(&rels, sorted).validate(&db).is_ok());
    }

    #[test]
    fn scalar_and_grouped_accessors() {
        let empty_key: Box<[i64]> = Vec::new().into();
        let mut m = HashMap::new();
        m.insert(empty_key, 5.0);
        let r = BatchResult { groups: vec![vec![]], values: vec![m] };
        assert_eq!(r.scalar(0), 5.0);
        assert_eq!(r.grouped(0).len(), 1);
    }
}
