//! Cross-batch memoization of materialized subtree views (the LMFAO
//! iterative-workload optimisation).
//!
//! The paper's headline workloads are *iterative*: a decision-tree trainer
//! issues one aggregate batch per tree node over the **same** join tree,
//! differing only in split filters; BGD retrains and model selection
//! re-run the same covariance batch verbatim. Re-materializing every view
//! bottom-up on every `Engine::run` repays the full scan bill each time,
//! even though most subtree views are byte-identical across batches.
//!
//! A [`ViewCache`] memoizes each node's computed `Vec<ViewData>` keyed on
//! the node's *subtree signature*
//! ([`Plan::subtree_signatures`](crate::plan::Plan)) — a canonical
//! serialization of the subtree's plan (slot factors/filters, group
//! wiring, join shape) plus the [`fdb_data::Relation::data_id`] of every
//! relation in the subtree:
//!
//! * **invalidation is automatic**, exactly as in
//!   [`fdb_data::SortCache`]: every relation mutation refreshes its
//!   `data_id`, so a stale entry is simply never keyed again and ages out
//!   of the FIFO bound;
//! * **residual-filter reuse** falls out of the signature: a batch that
//!   differs from a cached one only by filters on attributes owned
//!   *outside* a subtree serializes that subtree identically, so its
//!   views are served from cache and only the nodes on the path from a
//!   filtered relation to the root are rescanned;
//! * **sharded execution warms once**: per-shard sub-databases share
//!   dimension relations by `Arc` (same `data_id`), so a dimension
//!   subtree materialized for one shard is a hit for every other shard
//!   and every later run.
//!
//! The cache is process-global ([`ViewCache::global`]) and byte-bounded:
//! its effective ceiling is the **largest**
//! [`crate::EngineConfig::view_cache_bytes`] any engine has requested in
//! the process (so a small-budget engine cannot churn a larger-budget
//! engine's warm entries; `0` bypasses the cache entirely). Keys are full
//! canonical strings — no hash truncation — so a hit can never serve
//! views of a different plan or content state.
//!
//! # Striping
//!
//! Like [`fdb_data::SortCache`], the table is split into
//! [`fdb_data::sortcache::stripe_count`] shards, each behind its own
//! `Mutex`: entries are striped by signature hash, per-relation
//! attributions by `data_id` hash, so concurrent sessions hitting warm
//! views of different subtrees never serialize on one global lock. All
//! counters (and [`ViewCache::stats`]) are lock-free atomics; the byte
//! ceiling and FIFO eviction order stay **global** via per-entry admission
//! sequence numbers, preserving the single-lock cache's observable
//! semantics.

use crate::plan::ViewData;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default ceiling on the total approximate bytes of retained views
/// ([`crate::EngineConfig::view_cache_bytes`]).
pub const DEFAULT_VIEW_CACHE_BYTES: usize = 256 << 20;

/// A lock-free snapshot of the cache's counters (monotone across
/// [`ViewCache::clear`], which resets contents but not history — deltas
/// around a workload stay meaningful even if it clears the cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewCacheStats {
    /// Node-level lookups served from cache.
    pub hits: u64,
    /// Node-level lookups that had to materialize.
    pub misses: u64,
    /// Individual views served from cache (a node entry holds all views
    /// of that node, so one hit can reuse several views).
    pub views_reused: u64,
    /// Individual views materialized by a scan.
    pub views_rescanned: u64,
    /// Individual views kept warm by **in-place delta maintenance**: a
    /// relation mutated, but instead of the entry aging out (invalidate
    /// and rescan), the maintenance path updated the ring-additive
    /// payloads and re-admitted the views under the fresh content id.
    pub delta_maintained: u64,
    /// Entries dropped to respect a byte budget.
    pub evictions: u64,
    /// Entries dropped by [`ViewCache::invalidate_id`] — views computed
    /// from a content state that was rolled back and will never be keyed
    /// again (the maintenance wrapper's error-path hygiene).
    pub invalidated: u64,
    /// Node entries currently retained.
    pub entries: usize,
    /// Approximate bytes currently retained.
    pub bytes: usize,
    /// Lock-stripe acquisitions that found the stripe already held and had
    /// to wait — the serving-path contention signal.
    pub contended: u64,
    /// Number of lock stripes the cache is split across.
    pub stripes: usize,
}

#[derive(Default)]
struct Stripe {
    /// `signature -> (views, charged bytes)`.
    entries: HashMap<Box<str>, (Arc<Vec<ViewData>>, usize)>,
    /// Admission order within this stripe with each entry's **global**
    /// admission sequence number; fronts across stripes locate the
    /// globally oldest entry, so eviction stays FIFO across the split.
    order: VecDeque<(Box<str>, u64)>,
    /// Per node-relation `(views reused, views rescanned)`, keyed by the
    /// node relation's `data_id` — lets tests attribute reuse to one
    /// dataset even when other cache users run concurrently (the same
    /// discipline as [`fdb_data::SortCache::stats_for`]). Striped by id
    /// hash (independent of the signature striping). Bounded: cleared
    /// wholesale when it far outgrows the entry map.
    per_id: HashMap<u64, (u64, u64)>,
}

/// A bounded memo table for materialized per-node view data.
pub struct ViewCache {
    stripes: Vec<Mutex<Stripe>>,
    /// High-water mark of the budgets callers have requested: the cache's
    /// effective ceiling. Without it, one engine configured with a small
    /// `view_cache_bytes` would evict the *shared* global cache down to
    /// its own budget on every insert, destroying other engines' warm
    /// entries; with it, a smaller budget only limits what that engine
    /// admits, never what others retain.
    budget_hwm: AtomicUsize,
    /// Global admission sequence: orders entries across stripes for FIFO.
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    views_reused: AtomicU64,
    views_rescanned: AtomicU64,
    delta_maintained: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
    contended: AtomicU64,
    entries: AtomicUsize,
    bytes: AtomicUsize,
}

impl Default for ViewCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ViewCache {
    /// An empty cache. The byte bound is supplied per insertion
    /// ([`crate::EngineConfig::view_cache_bytes`]), so one global cache
    /// serves engines with different budgets.
    pub fn new() -> Self {
        Self::with_stripes(fdb_data::sortcache::stripe_count())
    }

    /// An empty cache with an explicit stripe count (tests; the global
    /// cache uses the `FDB_CACHE_STRIPES` knob).
    pub fn with_stripes(nstripes: usize) -> Self {
        Self {
            stripes: (0..nstripes.max(1)).map(|_| Mutex::new(Stripe::default())).collect(),
            budget_hwm: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            views_reused: AtomicU64::new(0),
            views_rescanned: AtomicU64::new(0),
            delta_maintained: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// The process-wide cache used by the LMFAO execution path.
    pub fn global() -> &'static ViewCache {
        static GLOBAL: OnceLock<ViewCache> = OnceLock::new();
        GLOBAL.get_or_init(ViewCache::new)
    }

    /// The cached views under `key`, recording a hit or miss. `head_id` is
    /// the node relation's `data_id` (per-dataset attribution).
    pub(crate) fn get(&self, key: &str, head_id: u64) -> Option<Arc<Vec<ViewData>>> {
        self.get_filtered(key, head_id, |_| true)
    }

    /// [`ViewCache::get`] with an adoption predicate evaluated **before**
    /// the counters move: a present entry the caller cannot use (e.g. the
    /// maintenance layer rejecting views whose dense representations
    /// differ from its plan's) is counted as a miss, not as reuse — so
    /// `views_reused` never over-reports entries that were looked at and
    /// then recomputed anyway.
    pub(crate) fn get_filtered(
        &self,
        key: &str,
        head_id: u64,
        adopt: impl FnOnce(&[ViewData]) -> bool,
    ) -> Option<Arc<Vec<ViewData>>> {
        let hit = {
            let stripe = self.lock(Self::stripe_of_key(key, self.stripes.len()));
            match stripe.entries.get(key) {
                Some((views, _)) if adopt(views) => Some(Arc::clone(views)),
                _ => None,
            }
        };
        match hit {
            Some(views) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.views_reused.fetch_add(views.len() as u64, Ordering::Relaxed);
                // Attribution lives in the id-hashed stripe; the entry
                // lock is already released, so no two locks are ever held.
                self.lock(self.stripe_of_id(head_id)).per_id.entry(head_id).or_default().0 +=
                    views.len() as u64;
                Some(views)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Admits freshly materialized views under `key`, evicting FIFO until
    /// the retained total fits the cache's effective ceiling — the
    /// high-water mark of all requested budgets, so a small-budget engine
    /// never churns the warm entries of larger-budget ones. Always
    /// records the scan (`views_rescanned`); an entry that alone exceeds
    /// the whole ceiling is not admitted (admitting it would evict every
    /// warm entry and still leave the cache over budget).
    ///
    /// An entry is charged its view bytes **plus its key** (canonical
    /// subtree signatures can run to kilobytes and are stored twice) and
    /// a fixed overhead — so even entries whose views are empty (empty
    /// joins, fully filtered batches) have positive cost and the budget
    /// bounds the entry count, not just the payload bytes.
    pub(crate) fn insert(
        &self,
        key: &str,
        head_id: u64,
        views: Arc<Vec<ViewData>>,
        byte_budget: usize,
    ) {
        self.views_rescanned.fetch_add(views.len() as u64, Ordering::Relaxed);
        self.bump_per_id(head_id, false, views.len() as u64);
        self.admit(key, views, byte_budget);
    }

    /// Admits views that were kept current by **in-place delta
    /// maintenance** rather than a scan: counted as `delta_maintained`
    /// (and as reuse in the per-relation attribution — the relation was
    /// *not* rescanned), then retained under the same budget discipline
    /// as [`ViewCache::insert`]. The key carries the relation's
    /// post-delta content id, so later cold runs over the mutated
    /// database hit these views instead of rescanning the subtree.
    pub(crate) fn insert_maintained(
        &self,
        key: &str,
        head_id: u64,
        views: Arc<Vec<ViewData>>,
        byte_budget: usize,
    ) {
        self.delta_maintained.fetch_add(views.len() as u64, Ordering::Relaxed);
        self.bump_per_id(head_id, true, views.len() as u64);
        self.admit(key, views, byte_budget);
    }

    fn bump_per_id(&self, head_id: u64, reused: bool, n: u64) {
        let mut stripe = self.lock(self.stripe_of_id(head_id));
        if stripe.per_id.len() > 32 * 1024 {
            stripe.per_id.clear();
        }
        let slot = stripe.per_id.entry(head_id).or_default();
        if reused {
            slot.0 += n;
        } else {
            slot.1 += n;
        }
    }

    /// Shared storage path of [`ViewCache::insert`] /
    /// [`ViewCache::insert_maintained`]: budget high-water update, global
    /// FIFO eviction, oversize rejection. Holds at most one stripe lock at
    /// a time (admission into the key's stripe, then eviction scanning),
    /// so a transient over-budget window is visible only to concurrent
    /// counter polls, never to lookups.
    fn admit(&self, key: &str, views: Arc<Vec<ViewData>>, byte_budget: usize) {
        if fdb_data::fault::trip("cache-admit") {
            // Injected admission failure: the cache is transparent, so a
            // refused insert only costs a future rescan — results stay
            // correct, which is exactly what the chaos suite asserts.
            return;
        }
        if fdb_data::fault::trip("cache-evict") {
            // Injected eviction pressure: age out the oldest entry.
            self.evict_oldest();
        }
        let new_bytes: usize =
            views.iter().map(ViewData::byte_size).sum::<usize>() + 2 * key.len() + 96;
        let budget = self.budget_hwm.fetch_max(byte_budget, Ordering::Relaxed).max(byte_budget);
        if new_bytes > budget {
            return;
        }
        {
            let mut stripe = self.lock(Self::stripe_of_key(key, self.stripes.len()));
            if stripe.entries.contains_key(key) {
                return;
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            stripe.order.push_back((key.into(), seq));
            stripe.entries.insert(key.into(), (views, new_bytes));
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(new_bytes, Ordering::Relaxed);
        }
        while self.bytes.load(Ordering::Relaxed) > budget
            && self.entries.load(Ordering::Relaxed) > 1
        {
            if !self.evict_oldest() {
                break;
            }
        }
    }

    /// Removes the globally oldest entry (minimum admission sequence across
    /// stripe fronts). Returns false when the cache is empty. Locks one
    /// stripe at a time, so it can never deadlock with concurrent inserts.
    fn evict_oldest(&self) -> bool {
        loop {
            let mut best: Option<(usize, u64)> = None;
            for si in 0..self.stripes.len() {
                let stripe = self.lock(si);
                if let Some(&(_, seq)) = stripe.order.front() {
                    if best.is_none_or(|(_, b)| seq < b) {
                        best = Some((si, seq));
                    }
                }
            }
            let Some((si, seq)) = best else { return false };
            let mut stripe = self.lock(si);
            match stripe.order.front() {
                Some(&(_, front)) if front == seq => {
                    let (key, _) = stripe.order.pop_front().expect("non-empty front");
                    if let Some((_, b)) = stripe.entries.remove(&key) {
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        self.bytes.fetch_sub(b, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    return true;
                }
                _ => continue, // raced with a concurrent evictor; rescan
            }
        }
    }

    /// A lock-free snapshot of the counters.
    pub fn stats(&self) -> ViewCacheStats {
        ViewCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            views_reused: self.views_reused.load(Ordering::Relaxed),
            views_rescanned: self.views_rescanned.load(Ordering::Relaxed),
            delta_maintained: self.delta_maintained.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            stripes: self.stripes.len(),
        }
    }

    /// `(views reused, views rescanned)` attributed to nodes whose
    /// relation currently has content id `data_id`. A rescan is an actual
    /// shared scan of that relation; tests use this to assert that
    /// repeated trainings rescan nothing, immune to concurrent cache
    /// users (distinct datasets have distinct content ids).
    pub fn stats_for_id(&self, data_id: u64) -> (u64, u64) {
        self.lock(self.stripe_of_id(data_id)).per_id.get(&data_id).copied().unwrap_or((0, 0))
    }

    /// Drops every entry whose key embeds the content id `data_id` —
    /// **anywhere** in the signature, not just at the head node: subtree
    /// signatures render every relation as `r{data_id};`, so an ancestor
    /// view computed over a since-rolled-back owner state matches too.
    ///
    /// This is the error-path hygiene of the maintenance wrapper: a
    /// failed `apply_delta` rolls the database back to the pre-delta
    /// epoch, but views the failing maintenance already admitted under
    /// the post-delta id would otherwise linger as dead weight (never
    /// *served* — the nonce is never reused — but holding budget until
    /// FIFO ages them out). In the serving path this runs strictly
    /// **before** the failed epoch would have published, so no reader can
    /// pin a snapshot whose caches still carry the rolled-back state.
    /// Returns the number of entries dropped.
    pub fn invalidate_id(&self, data_id: u64) -> usize {
        let needle = format!("r{data_id};");
        let mut total = 0;
        for si in 0..self.stripes.len() {
            let mut stripe = self.lock(si);
            let doomed: Vec<Box<str>> =
                stripe.entries.keys().filter(|k| k.contains(&*needle)).cloned().collect();
            for k in &doomed {
                if let Some((_, b)) = stripe.entries.remove(k) {
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.bytes.fetch_sub(b, Ordering::Relaxed);
                    self.invalidated.fetch_add(1, Ordering::Relaxed);
                }
            }
            if !doomed.is_empty() {
                let Stripe { entries, order, .. } = &mut *stripe;
                order.retain(|(k, _)| entries.contains_key(k));
                total += doomed.len();
            }
        }
        total
    }

    /// Drops all retained views and per-relation attributions. The global
    /// counters stay monotone so surrounding deltas remain meaningful.
    pub fn clear(&self) {
        for si in 0..self.stripes.len() {
            let mut stripe = self.lock(si);
            let (n, b) =
                (stripe.entries.len(), stripe.entries.values().map(|(_, b)| *b).sum::<usize>());
            stripe.entries.clear();
            stripe.order.clear();
            stripe.per_id.clear();
            self.entries.fetch_sub(n, Ordering::Relaxed);
            self.bytes.fetch_sub(b, Ordering::Relaxed);
        }
    }

    fn stripe_of_key(key: &str, nstripes: usize) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() >> 32) as usize % nstripes
    }

    fn stripe_of_id(&self, id: u64) -> usize {
        (id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.stripes.len()
    }

    fn lock(&self, si: usize) -> std::sync::MutexGuard<'_, Stripe> {
        let m = &self.stripes[si];
        match m.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(|p| p.into_inner())
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::KeySpace;
    use crate::plan::GroupSpec;

    fn views(val: f64) -> Arc<Vec<ViewData>> {
        let spec = GroupSpec { slots: 1, space: KeySpace::new(&[(0, 3)], 16) };
        let mut vd = ViewData::new(None);
        vd.entry_mut(&[], &spec).payload_mut(&[1])[0] = val;
        Arc::new(vec![vd])
    }

    #[test]
    fn hit_after_insert_and_stats() {
        let c = ViewCache::new();
        assert!(c.get("k1", 7).is_none());
        c.insert("k1", 7, views(1.0), 1 << 20);
        let hit = c.get("k1", 7).expect("cached");
        assert_eq!(hit.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!((s.views_reused, s.views_rescanned), (1, 1));
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0);
        assert!(s.stripes >= 1);
        assert_eq!(c.stats_for_id(7), (1, 1));
        assert_eq!(c.stats_for_id(8), (0, 0));
    }

    #[test]
    fn byte_budget_evicts_fifo_and_rejects_oversize() {
        // Calibrate the per-entry cost (views + key + overhead) with a
        // throwaway cache; all keys below share the same length.
        let probe = ViewCache::new();
        probe.insert("a", 1, views(1.0), 1 << 20);
        let unit = probe.stats().bytes;
        assert!(unit > 96, "key and overhead are charged, not just view bytes");
        // Budget for exactly two entries: the third evicts the first.
        let c = ViewCache::new();
        let budget = 2 * unit;
        c.insert("a", 1, views(1.0), budget);
        c.insert("b", 1, views(2.0), budget);
        c.insert("c", 1, views(3.0), budget);
        assert!(c.get("a", 1).is_none(), "oldest evicted");
        assert!(c.get("b", 1).is_some() && c.get("c", 1).is_some());
        assert_eq!(c.stats().evictions, 1);
        // A later *smaller* budget must not shrink the shared cache below
        // the high-water ceiling other engines established: inserting
        // with budget 1 still retains two entries.
        c.insert("d", 1, views(4.0), 1);
        assert_eq!(c.stats().entries, 2, "small-budget insert cannot drain the cache");
        assert!(c.get("d", 1).is_some(), "…and is admitted under the ceiling");
        // An entry over the whole ceiling is recorded but not admitted
        // (the long key alone pushes it past the budget).
        let small = ViewCache::new();
        small.insert("warm", 1, views(1.0), unit + 16);
        small.insert("huge-key-that-does-not-fit-the-ceiling-at-all", 1, views(2.0), 1);
        assert!(small.get("huge-key-that-does-not-fit-the-ceiling-at-all", 1).is_none());
        assert_eq!(small.stats().entries, 1, "warm entry survived the oversize insert");
    }

    #[test]
    fn invalidate_id_drops_embedding_entries_and_keeps_accounting() {
        let c = ViewCache::new();
        // Keys in signature syntax: node `r7` alone, an ancestor embedding
        // `r7` in a child signature, and an unrelated `r70` (whose id must
        // NOT match the `r7;` needle — the `;` terminator guards that).
        c.insert("r7;d1000;k[0];", 7, views(1.0), 1 << 20);
        c.insert("r8;d1000;k[0];C[1][r7;d1000;k[0];]", 8, views(2.0), 1 << 20);
        c.insert("r70;d1000;k[0];", 70, views(3.0), 1 << 20);
        let before = c.stats();
        assert_eq!(before.entries, 3);
        assert_eq!(c.invalidate_id(7), 2, "head entry and embedding ancestor both dropped");
        let after = c.stats();
        assert_eq!(after.entries, 1);
        assert_eq!(after.invalidated, 2);
        assert!(c.get("r70;d1000;k[0];", 70).is_some(), "unrelated id survives");
        assert!(c.get("r7;d1000;k[0];", 7).is_none());
        // Bytes and FIFO order stay consistent: admitting more entries
        // still works and evicts cleanly.
        assert!(after.bytes < before.bytes);
        c.insert("r9;d1000;k[0];", 9, views(4.0), 1 << 20);
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.invalidate_id(999), 0, "unknown id is a no-op");
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let c = ViewCache::new();
        c.insert("k", 3, views(1.0), 1 << 20);
        c.get("k", 3);
        c.clear();
        assert!(c.get("k", 3).is_none());
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.hits, 1, "history survives clear");
        assert_eq!(c.stats_for_id(3), (0, 0), "attributions reset with contents");
    }

    #[test]
    fn fifo_eviction_holds_across_stripes() {
        // Keys hash to different stripes, yet the budget still evicts in
        // global admission order (oldest first), never by stripe accident.
        let probe = ViewCache::with_stripes(4);
        probe.insert("k0", 1, views(1.0), 1 << 20);
        let unit = probe.stats().bytes;
        let c = ViewCache::with_stripes(4);
        let budget = 3 * unit;
        for i in 0..5 {
            c.insert(&format!("k{i}"), 1, views(i as f64), budget);
        }
        assert_eq!(c.stats().entries, 3);
        assert_eq!(c.stats().evictions, 2);
        assert!(c.get("k0", 1).is_none() && c.get("k1", 1).is_none(), "oldest two evicted");
        for i in 2..5 {
            assert!(c.get(&format!("k{i}"), 1).is_some(), "newest three retained");
        }
    }

    #[test]
    fn concurrent_sessions_do_not_lose_counts() {
        let c = std::sync::Arc::new(ViewCache::with_stripes(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for round in 0..50u64 {
                    let key = format!("t{t}-r{}", round % 8);
                    if c.get(&key, t).is_none() {
                        c.insert(&key, t, views(round as f64), 1 << 20);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 200, "every lookup counted exactly once");
        assert_eq!(s.entries, 32, "8 keys per thread, all admitted");
    }
}
