//! Top-down aggregate decomposition and view consolidation (LMFAO §4).
//!
//! Each aggregate of a batch is decomposed along the join tree: the
//! restriction of the aggregate to a subtree becomes a *partial aggregate*
//! computed at that subtree's root; a subtree containing none of the
//! aggregate's attributes contributes its join **count** (the rule of §4
//! "Sharing computation"). Identical partial aggregates across the batch
//! are detected by signature and computed once; partials at a node are
//! consolidated into *views* (one per group-by signature), ready for the
//! shared scan in [`crate::exec`].

use crate::batch::{Aggregate, FilterOp, Fn1};
use crate::group::{GroupIndex, KeySpace, DENSE_KEY_LIMIT};
use fdb_data::{DataError, Database, Relation};
use fdb_factorized::hypergraph::Hypergraph;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One partial aggregate inside a view: local factors, local filter, and
/// the child-view slots it multiplies in.
#[derive(Debug)]
pub(crate) struct SlotPlan {
    /// Local factors: (column, function).
    pub(crate) factors: Vec<(usize, Fn1)>,
    /// Local filter conditions (column, op) — all must pass.
    pub(crate) filter: Vec<(usize, FilterOp)>,
    /// Per node-child (aligned with `NodePlan::children`): the slot index
    /// inside the child view this slot multiplies in.
    pub(crate) child_slots: Vec<usize>,
}

/// How a view's group accumulators are represented: payload width plus an
/// optional dense [`KeySpace`] (hash fallback when `None`). Filled in by
/// [`Plan::finalize`] once all slots are registered.
#[derive(Debug, Default)]
pub(crate) struct GroupSpec {
    pub(crate) slots: usize,
    pub(crate) space: Option<KeySpace>,
}

impl GroupSpec {
    /// A fresh accumulator for one join-key entry of the view.
    pub(crate) fn new_index(&self) -> GroupIndex {
        match &self.space {
            Some(space) => GroupIndex::dense(space.clone(), self.slots),
            None => GroupIndex::hash(self.slots),
        }
    }
}

/// A consolidated view at a node: one group-by signature, many slots.
#[derive(Debug)]
pub(crate) struct ViewPlan {
    /// Bubbled group-by attributes, sorted by name.
    pub(crate) group_attrs: Vec<String>,
    /// Local group columns: (position in group key, column in relation).
    pub(crate) local_groups: Vec<(usize, usize)>,
    /// Per node-child: (child view index, mapping (my position, child
    /// position) for the child's group values).
    pub(crate) child_views: Vec<(usize, Vec<(usize, usize)>)>,
    pub(crate) slots: Vec<SlotPlan>,
    /// Group-accumulator representation (set by [`Plan::finalize`]).
    pub(crate) spec: GroupSpec,
}

/// Per-node plan state: join-tree wiring plus the node's views.
#[derive(Debug)]
pub(crate) struct NodePlan {
    /// Key-to-parent columns in this relation (empty at the root).
    pub(crate) key_cols: Vec<usize>,
    /// Child node (edge) ids.
    pub(crate) children: Vec<usize>,
    /// For each child: the columns *in this relation* holding the child's
    /// key attributes.
    pub(crate) child_key_cols: Vec<Vec<usize>>,
    pub(crate) views: Vec<ViewPlan>,
    /// Dense code space of `key_cols` (set by [`Plan::finalize`]; `None`
    /// keeps this node's view maps on the hash fallback).
    pub(crate) key_space: Option<KeySpace>,
    /// Signature → (view, slot) registry for sharing.
    pub(crate) slot_registry: HashMap<String, (usize, usize)>,
    /// Group-signature → view registry for consolidation.
    pub(crate) view_registry: HashMap<String, usize>,
}

/// One computed view: `join key to parent` → group accumulator.
///
/// Both levels are code-indexed when the planner could bound the key
/// spaces: the outer level by the node relation's key-column ranges (a
/// slot table, 4 bytes per code), the inner level by the view's group
/// attribute ranges (a payload per code). Either level independently
/// falls back to hashing.
#[derive(Debug, Clone)]
pub(crate) enum ViewData {
    /// Outer keys dense-coded by the node's [`NodePlan::key_space`].
    Dense {
        /// The join-key code space.
        space: KeySpace,
        /// Code → index into `entries` (`u32::MAX` = absent).
        slot_of: Vec<u32>,
        /// `(code, accumulator)` in first-touch order.
        entries: Vec<(u32, GroupIndex)>,
    },
    /// Hash fallback for unbounded join-key spaces.
    Hash(HashMap<Box<[i64]>, GroupIndex>),
}

impl ViewData {
    /// An empty view over the node's (optional) join-key space.
    pub(crate) fn new(key_space: Option<&KeySpace>) -> ViewData {
        match key_space {
            Some(space) => ViewData::Dense {
                space: space.clone(),
                slot_of: vec![u32::MAX; space.size() as usize],
                entries: Vec::new(),
            },
            None => ViewData::Hash(HashMap::new()),
        }
    }

    /// The accumulator under join key `key`, if present.
    #[inline]
    pub(crate) fn get(&self, key: &[i64]) -> Option<&GroupIndex> {
        match self {
            ViewData::Dense { space, slot_of, entries } => {
                let slot = slot_of[space.encode(key)? as usize];
                if slot == u32::MAX {
                    return None;
                }
                Some(&entries[slot as usize].1)
            }
            ViewData::Hash(map) => map.get(key),
        }
    }

    /// The accumulator under join key `key`, created via `spec` if absent.
    #[inline]
    pub(crate) fn entry_mut(&mut self, key: &[i64], spec: &GroupSpec) -> &mut GroupIndex {
        match self {
            ViewData::Dense { space, slot_of, entries } => {
                let code =
                    space.encode(key).expect("view keys come from the node's own key columns")
                        as usize;
                if slot_of[code] == u32::MAX {
                    slot_of[code] = entries.len() as u32;
                    entries.push((code as u32, spec.new_index()));
                }
                &mut entries[slot_of[code] as usize].1
            }
            ViewData::Hash(map) => {
                if !map.contains_key(key) {
                    map.insert(key.into(), spec.new_index());
                }
                map.get_mut(key).expect("ensured above")
            }
        }
    }

    /// [`ViewData::entry_mut`] by pre-encoded join-key code — the batched
    /// leaf scan encodes a whole morsel's keys in one column-wise pass
    /// ([`crate::kernel::encode_codes`]) and resolves entries per row
    /// without re-encoding. Dense views only; callers gate on the node's
    /// `key_space` (the same spaces both sides encode against, so codes
    /// are always in range).
    #[inline]
    pub(crate) fn entry_mut_by_code(&mut self, code: u64, spec: &GroupSpec) -> &mut GroupIndex {
        match self {
            ViewData::Dense { slot_of, entries, .. } => {
                let c = code as usize;
                if slot_of[c] == u32::MAX {
                    slot_of[c] = entries.len() as u32;
                    entries.push((code as u32, spec.new_index()));
                }
                &mut entries[slot_of[c] as usize].1
            }
            ViewData::Hash(_) => {
                unreachable!("entry_mut_by_code requires a dense view; gate on key_space")
            }
        }
    }

    /// Approximate heap bytes of this view — what the cross-batch
    /// [`crate::viewcache::ViewCache`] charges against its byte budget.
    pub(crate) fn byte_size(&self) -> usize {
        match self {
            ViewData::Dense { space, slot_of, entries } => {
                space.byte_size()
                    + slot_of.len() * 4
                    + entries.iter().map(|(_, gi)| 4 + gi.byte_size()).sum::<usize>()
            }
            ViewData::Hash(map) => {
                map.iter().map(|(k, gi)| k.len() * 8 + 64 + gi.byte_size()).sum::<usize>()
            }
        }
    }

    /// True if no join key has been touched.
    pub(crate) fn is_empty(&self) -> bool {
        match self {
            ViewData::Dense { entries, .. } => entries.is_empty(),
            ViewData::Hash(map) => map.is_empty(),
        }
    }

    /// Whether this view's key is represented under join key `key` —
    /// the delta path's "does this parent row touch the delta" probe.
    #[inline]
    pub(crate) fn contains_key(&self, key: &[i64]) -> bool {
        self.get(key).is_some()
    }

    /// Multiplies every payload by `factor` (delta negation for deletes).
    pub(crate) fn scale(&mut self, factor: f64) {
        match self {
            ViewData::Dense { entries, .. } => {
                for (_, gi) in entries.iter_mut() {
                    gi.scale(factor);
                }
            }
            ViewData::Hash(map) => {
                for gi in map.values_mut() {
                    gi.scale(factor);
                }
            }
        }
    }

    /// True if this materialized view still uses the representation a
    /// plan with outer space `key_space` and group spec `spec` would
    /// build — the condition under which freshly computed delta views
    /// merge into it without decoding ([`ViewData::merge_from`] requires
    /// matching outer representations, and dense group payloads must
    /// share their [`KeySpace`] for new keys to encode). The delta
    /// maintenance path falls back to full recomputation when this fails
    /// (e.g. an insert extended a column's range, changing the dense
    /// space a fresh plan derives).
    pub(crate) fn compatible(&self, key_space: Option<&KeySpace>, spec: &GroupSpec) -> bool {
        let outer_ok = match (self, key_space) {
            (ViewData::Dense { space, .. }, Some(ks)) => space == ks,
            (ViewData::Hash(_), None) => true,
            _ => false,
        };
        if !outer_ok {
            return false;
        }
        // Accumulators within one view are uniform (all built from the
        // view's spec), so checking one representative suffices.
        let gi_ok = |gi: &GroupIndex| match (gi, &spec.space) {
            (GroupIndex::Dense { space, slots, .. }, Some(sp)) => {
                space == sp && *slots == spec.slots
            }
            (GroupIndex::Hash { slots, .. }, None) => *slots == spec.slots,
            _ => false,
        };
        match self {
            ViewData::Dense { entries, .. } => entries.first().map(|(_, gi)| gi_ok(gi)),
            ViewData::Hash(map) => map.values().next().map(gi_ok),
        }
        .unwrap_or(true)
    }

    /// Merges `other` into `self`, summing payloads of equal
    /// `(join key, group key)` pairs. Both sides stem from the same node
    /// plan, so the outer representations line up.
    pub(crate) fn merge_from(&mut self, other: ViewData) {
        match (self, other) {
            (ViewData::Dense { slot_of, entries, .. }, ViewData::Dense { entries: oe, .. }) => {
                for (code, gi) in oe {
                    if slot_of[code as usize] == u32::MAX {
                        slot_of[code as usize] = entries.len() as u32;
                        entries.push((code, gi));
                    } else {
                        entries[slot_of[code as usize] as usize].1.merge_from(&gi);
                    }
                }
            }
            (ViewData::Hash(map), ViewData::Hash(om)) => {
                for (key, gi) in om {
                    match map.get_mut(&key) {
                        Some(mine) => mine.merge_from(&gi),
                        None => {
                            map.insert(key, gi);
                        }
                    }
                }
            }
            _ => unreachable!("chunks of one plan share the outer representation"),
        }
    }
}

/// The full batch plan: join tree, node plans, and attribute ownership.
///
/// Relations are held as shared handles (`Arc`), not borrows, so a plan
/// can outlive the `Database` it was built from — the delta-maintenance
/// state keeps its prepare-time plan across `apply_delta` calls,
/// refreshing only the updated relation's handle.
pub(crate) struct Plan {
    pub(crate) rels: Vec<Arc<Relation>>,
    pub(crate) nodes: Vec<NodePlan>,
    /// Bottom-up processing order (children before parents).
    pub(crate) order: Vec<usize>,
    pub(crate) root: usize,
    /// Attribute → (owning node, column) for non-key attributes.
    pub(crate) owner: HashMap<String, (usize, usize)>,
    /// Per node: the set of nodes in its subtree.
    pub(crate) subtree: Vec<HashSet<usize>>,
}

impl Plan {
    /// Builds the join-tree skeleton (no views yet) for the natural join
    /// of `relations`, rooted at the largest relation (the fact table).
    pub(crate) fn build(db: &Database, relations: &[&str]) -> Result<Self, DataError> {
        Self::build_at(db, relations, None)
    }

    /// [`Plan::build`] with an explicit root override. The maintenance
    /// path pins the prepare-time root so the tree shape — and with it
    /// the per-node maintained views — stays stable even when deltas
    /// change which relation is largest.
    pub(crate) fn build_at(
        db: &Database,
        relations: &[&str],
        root: Option<usize>,
    ) -> Result<Self, DataError> {
        let hg = Hypergraph::join_keys_plus(db, relations, &[])?;
        let jt =
            hg.join_tree().ok_or_else(|| DataError::Invalid("cyclic join key graph".into()))?;
        let rels: Vec<Arc<Relation>> =
            relations.iter().map(|r| db.get_shared(r)).collect::<Result<_, _>>()?;
        // Root at the largest relation (the fact table) unless pinned.
        let root = match root {
            Some(r) if r < rels.len() => r,
            _ => (0..rels.len()).max_by_key(|&i| rels[i].len()).unwrap_or(0),
        };
        let jt = jt.rerooted(root);
        let n = relations.len();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let key_attrs: Vec<String> = match jt.parent[i] {
                Some(p) => hg.edges()[i]
                    .vars
                    .iter()
                    .filter(|v| hg.edges()[p].vars.contains(v))
                    .map(|&v| hg.vars()[v].clone())
                    .collect(),
                None => vec![],
            };
            let key_cols: Vec<usize> =
                key_attrs.iter().map(|a| rels[i].schema().require(a)).collect::<Result<_, _>>()?;
            nodes.push(NodePlan {
                key_cols,
                children: jt.children(i),
                child_key_cols: vec![],
                views: vec![],
                key_space: None,
                slot_registry: HashMap::new(),
                view_registry: HashMap::new(),
            });
        }
        // child_key_cols: resolve each child's key attrs inside this node's
        // relation (the attr names are shared by construction).
        for i in 0..n {
            let children = nodes[i].children.clone();
            let mut ckc = Vec::with_capacity(children.len());
            for &c in &children {
                let cols: Vec<usize> = nodes[c]
                    .key_cols
                    .iter()
                    .map(|&cc| {
                        let name = &rels[c].schema().attr(cc).name;
                        rels[i].schema().require(name)
                    })
                    .collect::<Result<_, _>>()?;
                ckc.push(cols);
            }
            nodes[i].child_key_cols = ckc;
        }
        // Bottom-up order from the GYO/reroot order (leaves first).
        let order = jt.order.clone();
        // Attribute ownership: non-key attributes appear in exactly one
        // relation.
        let mut owner: HashMap<String, (usize, usize)> = HashMap::new();
        for (i, rel) in rels.iter().enumerate() {
            for (ci, a) in rel.schema().attrs().iter().enumerate() {
                if hg.var_id(&a.name).is_none() {
                    owner.insert(a.name.clone(), (i, ci));
                }
            }
        }
        // Subtree node sets.
        let mut subtree: Vec<HashSet<usize>> = (0..n).map(|i| HashSet::from([i])).collect();
        for &i in &order {
            if let Some(p) = jt.parent[i] {
                let s = subtree[i].clone();
                subtree[p].extend(s);
            }
        }
        Ok(Plan { rels, nodes, order, root, owner, subtree })
    }

    /// Resolves an aggregate attribute, erroring on join keys / unknowns.
    fn resolve(&self, attr: &str) -> Result<(usize, usize), DataError> {
        self.owner.get(attr).copied().ok_or_else(|| {
            DataError::Invalid(format!(
                "aggregate attribute `{attr}` must be a non-join attribute of exactly one relation"
            ))
        })
    }

    /// Decomposes aggregate `agg_idx` at `node`, registering views/slots;
    /// returns `(view, slot)` at this node.
    pub(crate) fn decompose(
        &mut self,
        agg: &Aggregate,
        agg_idx: usize,
        node: usize,
        share: bool,
    ) -> Result<(usize, usize), DataError> {
        // Children first.
        let children = self.nodes[node].children.clone();
        let mut child_results = Vec::with_capacity(children.len());
        for &c in &children {
            child_results.push(self.decompose(agg, agg_idx, c, share)?);
        }
        // Local pieces.
        let mut local_factors: Vec<(usize, Fn1)> = Vec::new();
        for (a, f) in &agg.factors {
            let (n, col) = self.resolve(a)?;
            // Factors owned elsewhere are handled by the recursion into
            // the owning subtree; only this node's columns matter here.
            if n == node {
                local_factors.push((col, *f));
            }
        }
        local_factors.sort_by_key(|&(c, f)| (c, f as u8));
        let mut local_filter: Vec<(usize, FilterOp)> = Vec::new();
        for (a, op) in &agg.filter {
            let (n, col) = self.resolve(a)?;
            if n == node {
                local_filter.push((col, op.clone()));
            }
        }
        local_filter.sort_by_key(|(c, _)| *c);
        let mut local_group_attrs: Vec<String> = Vec::new();
        let mut group_attrs: Vec<String> = Vec::new();
        for g in &agg.group_by {
            let (n, _col) = self.resolve(g)?;
            if n == node {
                local_group_attrs.push(g.clone());
            }
            if self.subtree[node].contains(&n) {
                group_attrs.push(g.clone());
            }
        }
        group_attrs.sort();
        group_attrs.dedup();

        // Signatures.
        let mut sig = String::new();
        use std::fmt::Write as _;
        for (c, f) in &local_factors {
            let _ = write!(sig, "f{c}.{};", *f as u8);
        }
        for (c, op) in &local_filter {
            let _ = write!(sig, "w{c}.{op:?};");
        }
        let _ = write!(sig, "g{};", group_attrs.join(","));
        for (v, s) in &child_results {
            let _ = write!(sig, "c{v}.{s};");
        }
        let mut view_sig = format!("g:{}", group_attrs.join(","));
        if !share {
            // No sharing: every aggregate gets private views and slots.
            let _ = write!(sig, "#agg{agg_idx}");
            let _ = write!(view_sig, "#agg{agg_idx}");
        }
        if let Some(&hit) = self.nodes[node].slot_registry.get(&sig) {
            return Ok(hit);
        }
        // Find or create the view.
        let view_idx = match self.nodes[node].view_registry.get(&view_sig) {
            Some(&v) => v,
            None => {
                let local_groups: Vec<(usize, usize)> = local_group_attrs
                    .iter()
                    .map(|g| {
                        let pos = group_attrs.iter().position(|x| x == g).expect("local ⊆ all");
                        let (_, col) = self.owner[g];
                        (pos, col)
                    })
                    .collect();
                // Child view + group mapping per child. The child view for
                // this group signature is the view its (view,slot) result
                // lives in — recorded in child_results.
                let mut child_views = Vec::with_capacity(children.len());
                for (pos, &c) in children.iter().enumerate() {
                    let (cv, _) = child_results[pos];
                    let mapping: Vec<(usize, usize)> = self.nodes[c].views[cv]
                        .group_attrs
                        .iter()
                        .enumerate()
                        .map(|(cpos, g)| {
                            let mypos =
                                group_attrs.iter().position(|x| x == g).expect("child ⊆ all");
                            (mypos, cpos)
                        })
                        .collect();
                    child_views.push((cv, mapping));
                }
                let v = ViewPlan {
                    group_attrs: group_attrs.clone(),
                    local_groups,
                    child_views,
                    slots: vec![],
                    spec: GroupSpec::default(),
                };
                self.nodes[node].views.push(v);
                let idx = self.nodes[node].views.len() - 1;
                self.nodes[node].view_registry.insert(view_sig, idx);
                idx
            }
        };
        // Consistency: a shared view must agree on which child views feed it.
        debug_assert!(self.nodes[node].views[view_idx]
            .child_views
            .iter()
            .zip(&child_results)
            .all(|((cv, _), (rv, _))| cv == rv));
        let slot = SlotPlan {
            factors: local_factors,
            filter: local_filter,
            child_slots: child_results.iter().map(|&(_, s)| s).collect(),
        };
        self.nodes[node].views[view_idx].slots.push(slot);
        let slot_idx = self.nodes[node].views[view_idx].slots.len() - 1;
        self.nodes[node].slot_registry.insert(sig, (view_idx, slot_idx));
        Ok((view_idx, slot_idx))
    }

    /// Canonical per-subtree plan signatures — the cross-batch
    /// [`crate::viewcache::ViewCache`] keys, one per node, computed after
    /// [`Plan::finalize`].
    ///
    /// The signature of node `n` serializes everything the node's
    /// materialized `Vec<ViewData>` can depend on: the content identity
    /// ([`Relation::data_id`]) of every relation in `n`'s subtree, the
    /// dense-representation budget, and — recursively — the complete node
    /// plans of the subtree (key columns, view group wiring, and every
    /// slot's factors, filters, and child-slot indices). Two plans whose
    /// subtrees serialize identically provably materialize byte-identical
    /// views, so a cached `Vec<ViewData>` keyed on the signature can be
    /// served in place of a rescan.
    ///
    /// **Residual-filter analysis** (LMFAO's decisive optimisation for
    /// iterative workloads — a decision-tree trainer issues one batch per
    /// node over the *same* join tree, differing only in split filters)
    /// falls out of this canonicalization rather than needing a diff pass:
    /// [`Plan::decompose`] registers a filter only at the relation that
    /// owns the filtered attribute, and its effect propagates upward only
    /// through the child-slot wiring of the nodes on the path from the
    /// owner to the root. A batch that differs from a cached one only by
    /// filters (or factors) on attributes owned *outside* a subtree
    /// therefore serializes that subtree identically — its views are the
    /// residue untouched by the new conditions, and only path-to-root
    /// nodes get fresh signatures (and fresh scans).
    pub(crate) fn subtree_signatures(&self, dense_limit: u64) -> Vec<String> {
        let mut sigs: Vec<String> = vec![String::new(); self.nodes.len()];
        // Bottom-up: children's signatures exist before the parent embeds
        // them.
        for &n in &self.order {
            sigs[n] = self.node_signature(n, dense_limit, &sigs);
        }
        sigs
    }

    /// The signature of one node given its children's signatures in
    /// `sigs` — the incremental form of [`Plan::subtree_signatures`]: a
    /// delta changes only the owner→root path's signatures (off-path
    /// subtrees exclude the mutated relation), so the maintenance layer
    /// recomputes exactly those entries against its cached vector instead
    /// of re-serializing the whole plan per delta.
    pub(crate) fn node_signature(&self, n: usize, dense_limit: u64, sigs: &[String]) -> String {
        use std::fmt::Write as _;
        let np = &self.nodes[n];
        let mut s = String::new();
        let _ = write!(s, "r{};d{dense_limit};k{:?};", self.rels[n].data_id(), np.key_cols);
        for vp in &np.views {
            let _ =
                write!(s, "V[g{:?};l{:?};w{:?};", vp.group_attrs, vp.local_groups, vp.child_views);
            for slot in &vp.slots {
                let _ = write!(s, "s{:?}.{:?}.{:?};", slot.factors, slot.filter, slot.child_slots);
            }
            s.push(']');
        }
        for (&c, cols) in np.children.iter().zip(&np.child_key_cols) {
            let _ = write!(s, "C{cols:?}[{}]", sigs[c]);
        }
        s
    }

    /// Chooses the accumulator representation for every node and view, once
    /// all aggregates are decomposed.
    ///
    /// * A node's **join-key space** comes from the min/max of its own key
    ///   columns (bounded by [`DENSE_KEY_LIMIT`]): probes from the parent
    ///   relation that fall outside simply miss, exactly like a hash miss.
    /// * A view's **group space** comes from the min/max of each group
    ///   attribute's owning column (bounded by `dense_limit`): every group
    ///   value ever written originates from that column, so dense inserts
    ///   cannot fall out of range.
    ///
    /// `dense_limit == 0` disables both dense paths (the hash baseline of
    /// the perf-regression harness).
    pub(crate) fn finalize(&mut self, dense_limit: u64) {
        // Dense accumulators track touched codes as u32; clamp the public
        // u64 knob so an enormous limit cannot alias group keys.
        let dense_limit = dense_limit.min(u32::MAX as u64);
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let ranges: Option<Vec<(i64, i64)>> =
                node.key_cols.iter().map(|&c| self.rels[i].int_min_max(c)).collect();
            // The slot table costs 4 bytes per code *per view*, so besides
            // the absolute cap the space must be within a constant factor
            // of the relation's cardinality — a handful of rows with keys
            // scattered over a huge range hashes instead.
            let key_limit = DENSE_KEY_LIMIT.min(64 * self.rels[i].len() as u64 + 1024);
            node.key_space = match (dense_limit, ranges) {
                (0, _) | (_, None) => None,
                (_, Some(r)) => KeySpace::new(&r, key_limit),
            };
            for view in &mut node.views {
                view.spec.slots = view.slots.len();
                let ranges: Option<Vec<(i64, i64)>> = view
                    .group_attrs
                    .iter()
                    .map(|g| {
                        let (n, c) = self.owner[g];
                        self.rels[n].int_min_max(c)
                    })
                    .collect();
                view.spec.space = match (dense_limit, ranges) {
                    (0, _) | (_, None) => None,
                    (_, Some(r)) => KeySpace::new(&r, dense_limit),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_retailer() -> (Database, Vec<&'static str>) {
        let ds = fdb_datasets::retailer(fdb_datasets::RetailerConfig::tiny());
        (ds.db, vec!["Inventory", "Location", "Census", "Item", "Weather"])
    }

    #[test]
    fn sharing_reduces_slot_count() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "maxtemp", "population", "inventoryunits"],
            &["rain", "category"],
        );
        let count_slots = |share: bool| -> usize {
            let mut plan = Plan::build(&db, &rels).unwrap();
            let root = plan.root;
            for (i, agg) in batch.aggs.iter().enumerate() {
                plan.decompose(agg, i, root, share).unwrap();
            }
            plan.nodes.iter().map(|n| n.views.iter().map(|v| v.slots.len()).sum::<usize>()).sum()
        };
        let shared = count_slots(true);
        let unshared = count_slots(false);
        assert!(
            shared * 2 < unshared,
            "sharing should cut slots at least 2x: {shared} vs {unshared}"
        );
    }

    #[test]
    fn join_key_as_factor_is_rejected() {
        let (db, rels) = tiny_retailer();
        let mut plan = Plan::build(&db, &rels).unwrap();
        let root = plan.root;
        let agg = Aggregate::sum("locn");
        assert!(plan.decompose(&agg, 0, root, true).is_err());
    }

    #[test]
    fn residual_filters_change_only_path_to_root_signatures() {
        // Two decision-node-style batches that differ ONLY in the
        // threshold of a filter on `prize` (owned by Item): every subtree
        // signature not containing Item must be identical across the two
        // plans — the residual the view cache serves — while Item's node
        // and everything on its path to the root must differ.
        let (db, rels) = tiny_retailer();
        let build = |t: f64| {
            let mut batch = crate::batch::AggBatch::new();
            batch.push(Aggregate::count());
            batch.push(Aggregate::sum("inventoryunits").filtered("prize", FilterOp::Ge(t)));
            batch.push(Aggregate::count().by(&["rain"]));
            let mut plan = Plan::build(&db, &rels).unwrap();
            let root = plan.root;
            for (i, agg) in batch.aggs.iter().enumerate() {
                plan.decompose(agg, i, root, true).unwrap();
            }
            plan.finalize(1024);
            plan
        };
        let a = build(5.0);
        let b = build(15.0);
        let (sa, sb) = (a.subtree_signatures(1024), b.subtree_signatures(1024));
        let item = a.owner["prize"].0;
        let mut changed = 0;
        for n in 0..sa.len() {
            if a.subtree[n].contains(&item) {
                assert_ne!(sa[n], sb[n], "node {n} covers the filtered relation");
                changed += 1;
            } else {
                assert_eq!(sa[n], sb[n], "node {n} is residual and must be reusable");
            }
        }
        assert!(changed >= 2, "Item and the root both rescan");
        assert!(changed < sa.len(), "some subtree must be residual");
        // Same batch, same data → identical signatures throughout.
        let c = build(5.0);
        assert_eq!(sa, c.subtree_signatures(1024));
        // A mutated relation refreshes every signature that covers it.
        let mut db2 = db;
        let row = db2.get("Weather").unwrap().row_vec(0);
        db2.get_mut("Weather").unwrap().push_row(&row).unwrap();
        let rels2 = rels;
        let mut plan2 = Plan::build(&db2, &rels2).unwrap();
        let root2 = plan2.root;
        let mut batch = crate::batch::AggBatch::new();
        batch.push(Aggregate::count());
        batch.push(Aggregate::sum("inventoryunits").filtered("prize", FilterOp::Ge(5.0)));
        batch.push(Aggregate::count().by(&["rain"]));
        for (i, agg) in batch.aggs.iter().enumerate() {
            plan2.decompose(agg, i, root2, true).unwrap();
        }
        plan2.finalize(1024);
        let s2 = plan2.subtree_signatures(1024);
        let weather = plan2.owner["rain"].0;
        for n in 0..s2.len() {
            if plan2.subtree[n].contains(&weather) {
                assert_ne!(s2[n], sa[n], "node {n} covers the mutated relation");
            }
        }
    }
}
