//! Top-down aggregate decomposition and view consolidation (LMFAO §4).
//!
//! Each aggregate of a batch is decomposed along the join tree: the
//! restriction of the aggregate to a subtree becomes a *partial aggregate*
//! computed at that subtree's root; a subtree containing none of the
//! aggregate's attributes contributes its join **count** (the rule of §4
//! "Sharing computation"). Identical partial aggregates across the batch
//! are detected by signature and computed once; partials at a node are
//! consolidated into *views* (one per group-by signature), ready for the
//! shared scan in [`crate::exec`].

use crate::batch::{Aggregate, FilterOp, Fn1};
use fdb_data::{DataError, Database, Relation};
use fdb_factorized::hypergraph::Hypergraph;
use std::collections::{HashMap, HashSet};

/// One partial aggregate inside a view: local factors, local filter, and
/// the child-view slots it multiplies in.
#[derive(Debug)]
pub(crate) struct SlotPlan {
    /// Local factors: (column, function).
    pub(crate) factors: Vec<(usize, Fn1)>,
    /// Local filter conditions (column, op) — all must pass.
    pub(crate) filter: Vec<(usize, FilterOp)>,
    /// Per node-child (aligned with `NodePlan::children`): the slot index
    /// inside the child view this slot multiplies in.
    pub(crate) child_slots: Vec<usize>,
}

/// A consolidated view at a node: one group-by signature, many slots.
#[derive(Debug)]
pub(crate) struct ViewPlan {
    /// Bubbled group-by attributes, sorted by name.
    pub(crate) group_attrs: Vec<String>,
    /// Local group columns: (position in group key, column in relation).
    pub(crate) local_groups: Vec<(usize, usize)>,
    /// Per node-child: (child view index, mapping (my position, child
    /// position) for the child's group values).
    pub(crate) child_views: Vec<(usize, Vec<(usize, usize)>)>,
    pub(crate) slots: Vec<SlotPlan>,
}

/// Per-node plan state: join-tree wiring plus the node's views.
#[derive(Debug)]
pub(crate) struct NodePlan {
    /// Key-to-parent columns in this relation (empty at the root).
    pub(crate) key_cols: Vec<usize>,
    /// Child node (edge) ids.
    pub(crate) children: Vec<usize>,
    /// For each child: the columns *in this relation* holding the child's
    /// key attributes.
    pub(crate) child_key_cols: Vec<Vec<usize>>,
    pub(crate) views: Vec<ViewPlan>,
    /// Signature → (view, slot) registry for sharing.
    pub(crate) slot_registry: HashMap<String, (usize, usize)>,
    /// Group-signature → view registry for consolidation.
    pub(crate) view_registry: HashMap<String, usize>,
}

/// `view key (join key to parent)` → `group values` → `payload per slot`.
pub(crate) type ViewData = HashMap<Box<[i64]>, HashMap<Box<[i64]>, Vec<f64>>>;

/// The full batch plan: join tree, node plans, and attribute ownership.
pub(crate) struct Plan<'a> {
    pub(crate) rels: Vec<&'a Relation>,
    pub(crate) nodes: Vec<NodePlan>,
    /// Bottom-up processing order (children before parents).
    pub(crate) order: Vec<usize>,
    pub(crate) root: usize,
    /// Attribute → (owning node, column) for non-key attributes.
    pub(crate) owner: HashMap<String, (usize, usize)>,
    /// Per node: the set of nodes in its subtree.
    pub(crate) subtree: Vec<HashSet<usize>>,
}

impl<'a> Plan<'a> {
    /// Builds the join-tree skeleton (no views yet) for the natural join
    /// of `relations`, rooted at the largest relation (the fact table).
    pub(crate) fn build(db: &'a Database, relations: &[&str]) -> Result<Self, DataError> {
        let hg = Hypergraph::join_keys_plus(db, relations, &[])?;
        let jt =
            hg.join_tree().ok_or_else(|| DataError::Invalid("cyclic join key graph".into()))?;
        let rels: Vec<&Relation> = relations.iter().map(|r| db.get(r)).collect::<Result<_, _>>()?;
        // Root at the largest relation (the fact table).
        let root = (0..rels.len()).max_by_key(|&i| rels[i].len()).unwrap_or(0);
        let jt = jt.rerooted(root);
        let n = relations.len();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let key_attrs: Vec<String> = match jt.parent[i] {
                Some(p) => hg.edges()[i]
                    .vars
                    .iter()
                    .filter(|v| hg.edges()[p].vars.contains(v))
                    .map(|&v| hg.vars()[v].clone())
                    .collect(),
                None => vec![],
            };
            let key_cols: Vec<usize> =
                key_attrs.iter().map(|a| rels[i].schema().require(a)).collect::<Result<_, _>>()?;
            nodes.push(NodePlan {
                key_cols,
                children: jt.children(i),
                child_key_cols: vec![],
                views: vec![],
                slot_registry: HashMap::new(),
                view_registry: HashMap::new(),
            });
        }
        // child_key_cols: resolve each child's key attrs inside this node's
        // relation (the attr names are shared by construction).
        for i in 0..n {
            let children = nodes[i].children.clone();
            let mut ckc = Vec::with_capacity(children.len());
            for &c in &children {
                let cols: Vec<usize> = nodes[c]
                    .key_cols
                    .iter()
                    .map(|&cc| {
                        let name = &rels[c].schema().attr(cc).name;
                        rels[i].schema().require(name)
                    })
                    .collect::<Result<_, _>>()?;
                ckc.push(cols);
            }
            nodes[i].child_key_cols = ckc;
        }
        // Bottom-up order from the GYO/reroot order (leaves first).
        let order = jt.order.clone();
        // Attribute ownership: non-key attributes appear in exactly one
        // relation.
        let mut owner: HashMap<String, (usize, usize)> = HashMap::new();
        for (i, rel) in rels.iter().enumerate() {
            for (ci, a) in rel.schema().attrs().iter().enumerate() {
                if hg.var_id(&a.name).is_none() {
                    owner.insert(a.name.clone(), (i, ci));
                }
            }
        }
        // Subtree node sets.
        let mut subtree: Vec<HashSet<usize>> = (0..n).map(|i| HashSet::from([i])).collect();
        for &i in &order {
            if let Some(p) = jt.parent[i] {
                let s = subtree[i].clone();
                subtree[p].extend(s);
            }
        }
        Ok(Plan { rels, nodes, order, root, owner, subtree })
    }

    /// Resolves an aggregate attribute, erroring on join keys / unknowns.
    fn resolve(&self, attr: &str) -> Result<(usize, usize), DataError> {
        self.owner.get(attr).copied().ok_or_else(|| {
            DataError::Invalid(format!(
                "aggregate attribute `{attr}` must be a non-join attribute of exactly one relation"
            ))
        })
    }

    /// Decomposes aggregate `agg_idx` at `node`, registering views/slots;
    /// returns `(view, slot)` at this node.
    pub(crate) fn decompose(
        &mut self,
        agg: &Aggregate,
        agg_idx: usize,
        node: usize,
        share: bool,
    ) -> Result<(usize, usize), DataError> {
        // Children first.
        let children = self.nodes[node].children.clone();
        let mut child_results = Vec::with_capacity(children.len());
        for &c in &children {
            child_results.push(self.decompose(agg, agg_idx, c, share)?);
        }
        // Local pieces.
        let mut local_factors: Vec<(usize, Fn1)> = Vec::new();
        for (a, f) in &agg.factors {
            let (n, col) = self.resolve(a)?;
            // Factors owned elsewhere are handled by the recursion into
            // the owning subtree; only this node's columns matter here.
            if n == node {
                local_factors.push((col, *f));
            }
        }
        local_factors.sort_by_key(|&(c, f)| (c, f as u8));
        let mut local_filter: Vec<(usize, FilterOp)> = Vec::new();
        for (a, op) in &agg.filter {
            let (n, col) = self.resolve(a)?;
            if n == node {
                local_filter.push((col, op.clone()));
            }
        }
        local_filter.sort_by_key(|(c, _)| *c);
        let mut local_group_attrs: Vec<String> = Vec::new();
        let mut group_attrs: Vec<String> = Vec::new();
        for g in &agg.group_by {
            let (n, _col) = self.resolve(g)?;
            if n == node {
                local_group_attrs.push(g.clone());
            }
            if self.subtree[node].contains(&n) {
                group_attrs.push(g.clone());
            }
        }
        group_attrs.sort();
        group_attrs.dedup();

        // Signatures.
        let mut sig = String::new();
        use std::fmt::Write as _;
        for (c, f) in &local_factors {
            let _ = write!(sig, "f{c}.{};", *f as u8);
        }
        for (c, op) in &local_filter {
            let _ = write!(sig, "w{c}.{op:?};");
        }
        let _ = write!(sig, "g{};", group_attrs.join(","));
        for (v, s) in &child_results {
            let _ = write!(sig, "c{v}.{s};");
        }
        let mut view_sig = format!("g:{}", group_attrs.join(","));
        if !share {
            // No sharing: every aggregate gets private views and slots.
            let _ = write!(sig, "#agg{agg_idx}");
            let _ = write!(view_sig, "#agg{agg_idx}");
        }
        if let Some(&hit) = self.nodes[node].slot_registry.get(&sig) {
            return Ok(hit);
        }
        // Find or create the view.
        let view_idx = match self.nodes[node].view_registry.get(&view_sig) {
            Some(&v) => v,
            None => {
                let local_groups: Vec<(usize, usize)> = local_group_attrs
                    .iter()
                    .map(|g| {
                        let pos = group_attrs.iter().position(|x| x == g).expect("local ⊆ all");
                        let (_, col) = self.owner[g];
                        (pos, col)
                    })
                    .collect();
                // Child view + group mapping per child. The child view for
                // this group signature is the view its (view,slot) result
                // lives in — recorded in child_results.
                let mut child_views = Vec::with_capacity(children.len());
                for (pos, &c) in children.iter().enumerate() {
                    let (cv, _) = child_results[pos];
                    let mapping: Vec<(usize, usize)> = self.nodes[c].views[cv]
                        .group_attrs
                        .iter()
                        .enumerate()
                        .map(|(cpos, g)| {
                            let mypos =
                                group_attrs.iter().position(|x| x == g).expect("child ⊆ all");
                            (mypos, cpos)
                        })
                        .collect();
                    child_views.push((cv, mapping));
                }
                let v = ViewPlan {
                    group_attrs: group_attrs.clone(),
                    local_groups,
                    child_views,
                    slots: vec![],
                };
                self.nodes[node].views.push(v);
                let idx = self.nodes[node].views.len() - 1;
                self.nodes[node].view_registry.insert(view_sig, idx);
                idx
            }
        };
        // Consistency: a shared view must agree on which child views feed it.
        debug_assert!(self.nodes[node].views[view_idx]
            .child_views
            .iter()
            .zip(&child_results)
            .all(|((cv, _), (rv, _))| cv == rv));
        let slot = SlotPlan {
            factors: local_factors,
            filter: local_filter,
            child_slots: child_results.iter().map(|&(_, s)| s).collect(),
        };
        self.nodes[node].views[view_idx].slots.push(slot);
        let slot_idx = self.nodes[node].views[view_idx].slots.len() - 1;
        self.nodes[node].slot_registry.insert(sig, (view_idx, slot_idx));
        Ok((view_idx, slot_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_retailer() -> (Database, Vec<&'static str>) {
        let ds = fdb_datasets::retailer(fdb_datasets::RetailerConfig::tiny());
        (ds.db, vec!["Inventory", "Location", "Census", "Item", "Weather"])
    }

    #[test]
    fn sharing_reduces_slot_count() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "maxtemp", "population", "inventoryunits"],
            &["rain", "category"],
        );
        let count_slots = |share: bool| -> usize {
            let mut plan = Plan::build(&db, &rels).unwrap();
            let root = plan.root;
            for (i, agg) in batch.aggs.iter().enumerate() {
                plan.decompose(agg, i, root, share).unwrap();
            }
            plan.nodes.iter().map(|n| n.views.iter().map(|v| v.slots.len()).sum::<usize>()).sum()
        };
        let shared = count_slots(true);
        let unshared = count_slots(false);
        assert!(
            shared * 2 < unshared,
            "sharing should cut slots at least 2x: {shared} vs {unshared}"
        );
    }

    #[test]
    fn join_key_as_factor_is_rejected() {
        let (db, rels) = tiny_retailer();
        let mut plan = Plan::build(&db, &rels).unwrap();
        let root = plan.root;
        let agg = Aggregate::sum("locn");
        assert!(plan.decompose(&agg, 0, root, true).is_err());
    }
}
