//! Domain and task parallelism (LMFAO §4, the "+parallelisation" stage of
//! the Figure 6 ablation).
//!
//! Two orthogonal strategies, both over plain scoped threads:
//!
//! * **task parallelism** — the subtrees hanging off the root are
//!   independent and are computed on separate workers
//!   ([`compute_subtrees_parallel`]);
//! * **domain parallelism** — the root relation's scan is partitioned into
//!   row chunks whose per-view partial aggregates merge additively
//!   ([`compute_root_chunked`]).

use crate::exec::{compute_node, CacheCtx};
use crate::plan::{Plan, ViewData};
use fdb_data::{fault, DataError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which backend executes a query — the override knob consulted by
/// [`DispatchEngine`](crate::dispatch::DispatchEngine). `Auto` (the
/// default) lets the dispatcher pick per query from catalog statistics;
/// the other variants pin one backend regardless of the query shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineChoice {
    /// Pick per query from cheap statistics (see `crate::dispatch`).
    #[default]
    Auto,
    /// Always the flat (materialized-join) baseline.
    Flat,
    /// Always the fused factorized evaluator.
    Factorized,
    /// Always the layered LMFAO engine.
    Lmfao,
}

/// Engine feature toggles (all on by default).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Use typed column kernels (monomorphized access) instead of generic
    /// per-tuple `Value` interpretation.
    pub specialize: bool,
    /// Deduplicate identical partial aggregates and consolidate views.
    pub share: bool,
    /// Worker threads for domain parallelism at the root (1 = sequential).
    /// Defaults to the machine's available parallelism.
    pub threads: usize,
    /// Ceiling on composite group codes per dense accumulator: group-by
    /// sets whose domain-size product stays at or below this use flat
    /// code-indexed storage instead of hash maps (see [`crate::group`]).
    /// `0` disables dense indexing entirely — the hash baseline.
    pub dense_limit: u64,
    /// Backend override for [`DispatchEngine`](crate::dispatch::DispatchEngine):
    /// `Auto` dispatches per query, anything else pins that backend.
    /// Ignored by the concrete engines themselves.
    pub backend: EngineChoice,
    /// Byte budget of the cross-batch [`ViewCache`](crate::viewcache::ViewCache):
    /// materialized per-node views are memoized across `Engine::run` calls
    /// and served whenever a later batch's subtree plan (and the subtree's
    /// relation content) is unchanged — the residual-filter reuse of
    /// iterative trainers. `0` bypasses the cache entirely.
    pub view_cache_bytes: usize,
    /// Use the batch-at-a-time columnar kernels of [`crate::kernel`] on
    /// the leaf scans (and, via the engines, the batched ring/trie paths);
    /// `false` keeps every loop row-at-a-time — the scalar baseline arm of
    /// the kernel A/B in `perf_regression`.
    pub vectorize: bool,
    /// Rows per morsel for domain parallelism: the root scan (and
    /// [`crate::ShardedEngine`]) is cut into row ranges of roughly this
    /// many rows, pulled by workers from a shared queue. Also the batch
    /// size of the vectorized leaf scan. See [`crate::morsel`].
    pub morsel_rows: usize,
    /// Serve `MaintainableEngine::apply_delta` by **in-place delta
    /// propagation** along the owner→root path of the maintained view
    /// tree (see `crate::maintain`); `false` recomputes the whole batch
    /// from the mutated database on every delta — the correctness
    /// baseline the property tests compare the incremental path against.
    pub delta_maintain: bool,
    /// Code-count threshold above which dense group scatters radix-
    /// partition their codes into cache-sized buckets before writing
    /// ([`crate::group::GroupIndex::add_codes_multi_partitioned`]): spaces
    /// at or under this many codes scatter directly; larger ones bucket
    /// by `code / scatter_partition_groups` so each pass touches one
    /// L2-sized window of the payload matrix instead of thrashing the
    /// whole thing. Defaults to [`default_scatter_partition_groups`]
    /// (`FDB_SCATTER_PARTITION` env override).
    pub scatter_partition_groups: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            specialize: true,
            share: true,
            threads: default_threads(),
            dense_limit: crate::group::DEFAULT_DENSE_GROUPS,
            backend: EngineChoice::Auto,
            view_cache_bytes: crate::viewcache::DEFAULT_VIEW_CACHE_BYTES,
            vectorize: true,
            morsel_rows: crate::morsel::DEFAULT_MORSEL_ROWS,
            delta_maintain: true,
            scatter_partition_groups: default_scatter_partition_groups(),
        }
    }
}

impl EngineConfig {
    /// A single-threaded configuration with all other toggles on.
    pub fn sequential() -> Self {
        Self { threads: 1, ..Default::default() }
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Default radix-partition threshold for dense group scatters, in codes:
/// one bucket of this many single-slot `f64` payloads is 256 KiB — half a
/// typical L2 — so bucketed scatter passes stay cache-resident even with a
/// second slot or the touch bitmap in play.
pub const DEFAULT_SCATTER_PARTITION_GROUPS: u64 = 1 << 15;

/// The scatter-partition threshold
/// ([`EngineConfig::scatter_partition_groups`] default):
/// `FDB_SCATTER_PARTITION` when set to a positive integer, else
/// [`DEFAULT_SCATTER_PARTITION_GROUPS`]. Read once at first use, like the
/// cache-stripe override.
pub fn default_scatter_partition_groups() -> u64 {
    static N: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("FDB_SCATTER_PARTITION")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SCATTER_PARTITION_GROUPS)
    })
}

/// Merges per-chunk view data additively into `a`.
pub(crate) fn merge_view_data(a: &mut [ViewData], b: Vec<ViewData>) {
    for (va, vb) in a.iter_mut().zip(b) {
        va.merge_from(vb);
    }
}

/// Task parallelism: computes the root's child subtrees on separate
/// workers. `to_compute` is the bottom-up order minus the root and minus
/// any cache-served nodes; already-served entries in `data` (and the
/// per-worker results) are visible to dependent nodes, and every computed
/// node is offered to the view cache via `ctx`.
pub(crate) fn compute_subtrees_parallel(
    plan: &Plan,
    to_compute: &[usize],
    data: &mut [Option<Arc<Vec<ViewData>>>],
    cfg: &EngineConfig,
    ctx: Option<&CacheCtx<'_>>,
) -> Result<(), DataError> {
    let children = plan.nodes[plan.root].children.clone();
    let mut partitions: Vec<Vec<usize>> = children
        .iter()
        .map(|&c| to_compute.iter().copied().filter(|n| plan.subtree[c].contains(n)).collect())
        .collect();
    let shared: &[Option<Arc<Vec<ViewData>>>] = data;
    let poisoned = AtomicBool::new(false);
    type Part = Result<Vec<(usize, Arc<Vec<ViewData>>)>, DataError>;
    let results: Vec<Part> = std::thread::scope(|s| {
        let handles: Vec<_> = partitions
            .drain(..)
            .map(|part| {
                let (cfg, poisoned) = (*cfg, &poisoned);
                s.spawn(move || -> Part {
                    // Cache-served children arrive through the shared
                    // snapshot; locally computed nodes overlay it.
                    let mut local: Vec<Option<Arc<Vec<ViewData>>>> = shared.to_vec();
                    let mut out = Vec::with_capacity(part.len());
                    for &n in &part {
                        if poisoned.load(Ordering::Relaxed) {
                            // A sibling subtree failed: drain cleanly.
                            break;
                        }
                        let views = catch_unwind(AssertUnwindSafe(|| {
                            fault::check("morsel-exec")?;
                            Ok(Arc::new(compute_node(plan, n, &local, &cfg, 0..plan.rels[n].len())))
                        }))
                        .unwrap_or_else(|p| {
                            Err(DataError::WorkerPanic(crate::morsel::panic_message(p)))
                        });
                        let views = match views {
                            Ok(v) => v,
                            Err(e) => {
                                poisoned.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                        };
                        if let Some(ctx) = ctx {
                            ctx.admit(n, &views);
                        }
                        local[n] = Some(Arc::clone(&views));
                        out.push((n, views));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker harness panicked")).collect()
    });
    let mut first_err = None;
    for part in results {
        match part {
            Ok(part) => {
                for (n, d) in part {
                    data[n] = Some(d);
                }
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Domain parallelism: computes the root node over `root_rows` rows split
/// into morsel-sized chunks pulled by `cfg.threads` workers from a shared
/// queue (see [`crate::morsel`]), then combines the per-morsel view
/// partials with a pairwise tree merge ([`crate::morsel::tree_merge`]) on
/// the same workers — the serial coordinator fold was the scaling ceiling
/// once the scans themselves parallelized. The merge tree depends only on
/// the morsel order (never the thread schedule), so the summation stays
/// deterministic; `vectorize = false` keeps the serial left-fold as the
/// row-wise twin for the merge-association A/B.
pub(crate) fn compute_root_chunked(
    plan: &Plan,
    data: &[Option<Arc<Vec<ViewData>>>],
    cfg: &EngineConfig,
    root_rows: usize,
) -> Result<Vec<ViewData>, DataError> {
    let morsels =
        crate::morsel::plan_morsels(root_rows, cfg.morsel_rows, cfg.threads.min(root_rows));
    let (partials, _stats) =
        crate::morsel::run_stealing(morsels.len(), cfg.threads, |i| -> Result<_, DataError> {
            fault::check("morsel-exec")?;
            Ok(compute_node(plan, plan.root, data, cfg, morsels[i].clone()))
        })?;
    let partials: Vec<Vec<ViewData>> = partials.into_iter().collect::<Result<_, DataError>>()?;
    if cfg.vectorize {
        let acc = crate::morsel::tree_merge(partials, cfg.threads, |a, b| {
            merge_view_data(a, b);
            Ok(())
        })?;
        return Ok(acc.expect("at least one morsel"));
    }
    let mut it = partials.into_iter();
    let mut acc = it.next().expect("at least one morsel");
    for p in it {
        merge_view_data(&mut acc, p);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_everything() {
        let cfg = EngineConfig::default();
        assert!(cfg.specialize && cfg.share);
        assert!(cfg.threads >= 1);
        assert!(cfg.dense_limit > 0);
        assert_eq!(EngineConfig::sequential().threads, 1);
    }

    #[test]
    fn merge_adds_payloads_keywise() {
        use crate::group::KeySpace;
        use crate::plan::GroupSpec;
        let spec = GroupSpec { slots: 2, space: KeySpace::new(&[(0, 3)], 16) };
        for key_space in [None, KeySpace::new(&[(0, 3)], 16)] {
            let mk = |v: f64| -> ViewData {
                let mut vd = ViewData::new(key_space.as_ref());
                let p = vd.entry_mut(&[1], &spec).payload_mut(&[2]);
                p[0] = v;
                p[1] = 2.0 * v;
                vd
            };
            let mut a = vec![mk(1.0)];
            merge_view_data(&mut a, vec![mk(10.0)]);
            assert_eq!(a[0].get(&[1]).unwrap().get(&[2]), Some(&[11.0, 22.0][..]));
            assert!(a[0].get(&[0]).is_none());
        }
    }
}
