//! The layered aggregate-batch engine (LMFAO, §4).
//!
//! Evaluation proceeds bottom-up over a join tree rooted at the fact
//! relation. Each aggregate is decomposed top-down: the restriction of the
//! aggregate to a subtree becomes a *partial aggregate* computed at that
//! subtree's root; a subtree containing none of the aggregate's attributes
//! contributes its join **count** (the rule of §4 "Sharing computation").
//! Identical partial aggregates across the batch are detected by signature
//! and computed once; partials at a node are consolidated into *views* (one
//! per group-by signature) and all views at a node are filled in one shared
//! scan of the relation.
//!
//! Three independently toggleable optimisations reproduce the Figure 6
//! ablation: `specialize` (typed column kernels instead of per-tuple
//! `Value` interpretation), `share` (signature-based deduplication +
//! view consolidation), and `threads` (domain parallelism over the fact
//! relation plus task parallelism over independent subtrees).

use crate::batch::{AggBatch, FilterOp, Fn1};
use fdb_data::{DataError, Database, Relation};
use fdb_factorized::hypergraph::Hypergraph;
use std::collections::{HashMap, HashSet};

/// Engine feature toggles (all on by default).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Use typed column kernels (monomorphized access) instead of generic
    /// per-tuple `Value` interpretation.
    pub specialize: bool,
    /// Deduplicate identical partial aggregates and consolidate views.
    pub share: bool,
    /// Worker threads for domain parallelism at the root (1 = sequential).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { specialize: true, share: true, threads: 1 }
    }
}

/// Result of a batch: one grouped map per aggregate, in batch order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per aggregate: the group-by attributes in key order (sorted names).
    pub groups: Vec<Vec<String>>,
    /// Per aggregate: group key (categorical codes) → aggregate value.
    /// Scalar aggregates use the empty key.
    pub values: Vec<HashMap<Box<[i64]>, f64>>,
}

impl BatchResult {
    /// The scalar value of aggregate `i` (0.0 over the empty join).
    pub fn scalar(&self, i: usize) -> f64 {
        let key: Box<[i64]> = Vec::new().into();
        self.values[i].get(&key).copied().unwrap_or(0.0)
    }

    /// The grouped map of aggregate `i`.
    pub fn grouped(&self, i: usize) -> &HashMap<Box<[i64]>, f64> {
        &self.values[i]
    }
}

// ---------------------------------------------------------------------------
// Plan structures
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SlotPlan {
    /// Local factors: (column, function).
    factors: Vec<(usize, Fn1)>,
    /// Local filter conditions (column, op) — all must pass.
    filter: Vec<(usize, FilterOp)>,
    /// Per node-child (aligned with `NodePlan::children`): the slot index
    /// inside the child view this slot multiplies in.
    child_slots: Vec<usize>,
}

#[derive(Debug)]
struct ViewPlan {
    /// Bubbled group-by attributes, sorted by name.
    group_attrs: Vec<String>,
    /// Local group columns: (position in group key, column in relation).
    local_groups: Vec<(usize, usize)>,
    /// Per node-child: (child view index, mapping (my position, child
    /// position) for the child's group values).
    child_views: Vec<(usize, Vec<(usize, usize)>)>,
    slots: Vec<SlotPlan>,
}

#[derive(Debug)]
struct NodePlan {
    /// Key-to-parent columns in this relation (empty at the root).
    key_cols: Vec<usize>,
    /// Child node (edge) ids.
    children: Vec<usize>,
    /// For each child: the columns *in this relation* holding the child's
    /// key attributes.
    child_key_cols: Vec<Vec<usize>>,
    views: Vec<ViewPlan>,
    /// Signature → (view, slot) registry for sharing.
    slot_registry: HashMap<String, (usize, usize)>,
    /// Group-signature → view registry for consolidation.
    view_registry: HashMap<String, usize>,
}

/// `view key (join key to parent)` → `group values` → `payload per slot`.
type ViewData = HashMap<Box<[i64]>, HashMap<Box<[i64]>, Vec<f64>>>;

struct Plan<'a> {
    rels: Vec<&'a Relation>,
    nodes: Vec<NodePlan>,
    /// Bottom-up processing order (children before parents).
    order: Vec<usize>,
    root: usize,
    /// Attribute → (owning node, column) for non-key attributes.
    owner: HashMap<String, (usize, usize)>,
    /// Per node: the set of nodes in its subtree.
    subtree: Vec<HashSet<usize>>,
}

impl<'a> Plan<'a> {
    fn build(db: &'a Database, relations: &[&str]) -> Result<Self, DataError> {
        let hg = Hypergraph::join_keys_plus(db, relations, &[])?;
        let jt = hg
            .join_tree()
            .ok_or_else(|| DataError::Invalid("cyclic join key graph".into()))?;
        let rels: Vec<&Relation> =
            relations.iter().map(|r| db.get(r)).collect::<Result<_, _>>()?;
        // Root at the largest relation (the fact table).
        let root = (0..rels.len()).max_by_key(|&i| rels[i].len()).unwrap_or(0);
        let jt = jt.rerooted(root);
        let n = relations.len();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let key_attrs: Vec<String> = match jt.parent[i] {
                Some(p) => hg.edges()[i]
                    .vars
                    .iter()
                    .filter(|v| hg.edges()[p].vars.contains(v))
                    .map(|&v| hg.vars()[v].clone())
                    .collect(),
                None => vec![],
            };
            let key_cols: Vec<usize> = key_attrs
                .iter()
                .map(|a| rels[i].schema().require(a))
                .collect::<Result<_, _>>()?;
            nodes.push(NodePlan {
                key_cols,
                children: jt.children(i),
                child_key_cols: vec![],
                views: vec![],
                slot_registry: HashMap::new(),
                view_registry: HashMap::new(),
            });
        }
        // child_key_cols: resolve each child's key attrs inside this node's
        // relation (the attr names are shared by construction).
        for i in 0..n {
            let children = nodes[i].children.clone();
            let mut ckc = Vec::with_capacity(children.len());
            for &c in &children {
                let cols: Vec<usize> = nodes[c]
                    .key_cols
                    .iter()
                    .map(|&cc| {
                        let name = &rels[c].schema().attr(cc).name;
                        rels[i].schema().require(name)
                    })
                    .collect::<Result<_, _>>()?;
                ckc.push(cols);
            }
            nodes[i].child_key_cols = ckc;
        }
        // Bottom-up order from the GYO/reroot order (leaves first).
        let order = jt.order.clone();
        // Attribute ownership: non-key attributes appear in exactly one
        // relation.
        let mut owner: HashMap<String, (usize, usize)> = HashMap::new();
        for (i, rel) in rels.iter().enumerate() {
            for (ci, a) in rel.schema().attrs().iter().enumerate() {
                if hg.var_id(&a.name).is_none() {
                    owner.insert(a.name.clone(), (i, ci));
                }
            }
        }
        // Subtree node sets.
        let mut subtree: Vec<HashSet<usize>> = (0..n).map(|i| HashSet::from([i])).collect();
        for &i in &order {
            if let Some(p) = jt.parent[i] {
                let s = subtree[i].clone();
                subtree[p].extend(s);
            }
        }
        Ok(Plan { rels, nodes, order, root, owner, subtree })
    }

    /// Resolves an aggregate attribute, erroring on join keys / unknowns.
    fn resolve(&self, attr: &str) -> Result<(usize, usize), DataError> {
        self.owner.get(attr).copied().ok_or_else(|| {
            DataError::Invalid(format!(
                "aggregate attribute `{attr}` must be a non-join attribute of exactly one relation"
            ))
        })
    }

    /// Decomposes aggregate `agg_idx` at `node`, registering views/slots;
    /// returns `(view, slot)` at this node.
    fn decompose(
        &mut self,
        agg: &crate::batch::Aggregate,
        agg_idx: usize,
        node: usize,
        share: bool,
    ) -> Result<(usize, usize), DataError> {
        // Children first.
        let children = self.nodes[node].children.clone();
        let mut child_results = Vec::with_capacity(children.len());
        for &c in &children {
            child_results.push(self.decompose(agg, agg_idx, c, share)?);
        }
        // Local pieces.
        let mut local_factors: Vec<(usize, Fn1)> = Vec::new();
        for (a, f) in &agg.factors {
            let (n, col) = self.resolve(a)?;
            if n == node {
                local_factors.push((col, *f));
            } else if !self.subtree[node].contains(&n) && !self.subtree[n].contains(&node) {
                // owned elsewhere — fine
            }
        }
        local_factors.sort_by_key(|&(c, f)| (c, f as u8));
        let mut local_filter: Vec<(usize, FilterOp)> = Vec::new();
        for (a, op) in &agg.filter {
            let (n, col) = self.resolve(a)?;
            if n == node {
                local_filter.push((col, op.clone()));
            }
        }
        local_filter.sort_by_key(|(c, _)| *c);
        let mut local_group_attrs: Vec<String> = Vec::new();
        let mut group_attrs: Vec<String> = Vec::new();
        for g in &agg.group_by {
            let (n, _col) = self.resolve(g)?;
            if n == node {
                local_group_attrs.push(g.clone());
            }
            if self.subtree[node].contains(&n) {
                group_attrs.push(g.clone());
            }
        }
        group_attrs.sort();
        group_attrs.dedup();

        // Signatures.
        let mut sig = String::new();
        use std::fmt::Write as _;
        for (c, f) in &local_factors {
            let _ = write!(sig, "f{c}.{};", *f as u8);
        }
        for (c, op) in &local_filter {
            let _ = write!(sig, "w{c}.{op:?};");
        }
        let _ = write!(sig, "g{};", group_attrs.join(","));
        for (v, s) in &child_results {
            let _ = write!(sig, "c{v}.{s};");
        }
        let mut view_sig = format!("g:{}", group_attrs.join(","));
        if !share {
            // No sharing: every aggregate gets private views and slots.
            let _ = write!(sig, "#agg{agg_idx}");
            let _ = write!(view_sig, "#agg{agg_idx}");
        }
        if let Some(&hit) = self.nodes[node].slot_registry.get(&sig) {
            return Ok(hit);
        }
        // Find or create the view.
        let view_idx = match self.nodes[node].view_registry.get(&view_sig) {
            Some(&v) => v,
            None => {
                let local_groups: Vec<(usize, usize)> = local_group_attrs
                    .iter()
                    .map(|g| {
                        let pos = group_attrs.iter().position(|x| x == g).expect("local ⊆ all");
                        let (_, col) = self.owner[g];
                        (pos, col)
                    })
                    .collect();
                // Child view + group mapping per child. The child view for
                // this group signature is the view its (view,slot) result
                // lives in — recorded in child_results.
                let mut child_views = Vec::with_capacity(children.len());
                for (pos, &c) in children.iter().enumerate() {
                    let (cv, _) = child_results[pos];
                    let mapping: Vec<(usize, usize)> = self.nodes[c].views[cv]
                        .group_attrs
                        .iter()
                        .enumerate()
                        .map(|(cpos, g)| {
                            let mypos =
                                group_attrs.iter().position(|x| x == g).expect("child ⊆ all");
                            (mypos, cpos)
                        })
                        .collect();
                    child_views.push((cv, mapping));
                }
                let v = ViewPlan {
                    group_attrs: group_attrs.clone(),
                    local_groups,
                    child_views,
                    slots: vec![],
                };
                self.nodes[node].views.push(v);
                let idx = self.nodes[node].views.len() - 1;
                self.nodes[node].view_registry.insert(view_sig, idx);
                idx
            }
        };
        // Consistency: a shared view must agree on which child views feed it.
        debug_assert!(self.nodes[node].views[view_idx]
            .child_views
            .iter()
            .zip(&child_results)
            .all(|((cv, _), (rv, _))| cv == rv));
        let slot = SlotPlan {
            factors: local_factors,
            filter: local_filter,
            child_slots: child_results.iter().map(|&(_, s)| s).collect(),
        };
        self.nodes[node].views[view_idx].slots.push(slot);
        let slot_idx = self.nodes[node].views[view_idx].slots.len() - 1;
        self.nodes[node].slot_registry.insert(sig, (view_idx, slot_idx));
        Ok((view_idx, slot_idx))
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Typed column accessor — the "specialisation" fast path.
enum Col<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
}

impl<'a> Col<'a> {
    #[inline]
    fn get(&self, row: usize) -> f64 {
        match self {
            Col::F(v) => v[row],
            Col::I(v) => v[row] as f64,
        }
    }

    #[inline]
    fn get_int(&self, row: usize) -> i64 {
        match self {
            Col::F(v) => v[row] as i64,
            Col::I(v) => v[row],
        }
    }
}

#[inline]
fn filter_pass(op: &FilterOp, x_f: f64, x_i: i64) -> bool {
    match op {
        FilterOp::Ge(t) => x_f >= *t,
        FilterOp::Lt(t) => x_f < *t,
        FilterOp::Eq(v) => x_i == *v,
        FilterOp::Ne(v) => x_i != *v,
        FilterOp::In(vs) => vs.binary_search(&x_i).is_ok(),
    }
}

fn compute_node(
    plan: &Plan<'_>,
    node: usize,
    child_data: &[Option<Vec<ViewData>>],
    cfg: &EngineConfig,
    rows: std::ops::Range<usize>,
) -> Vec<ViewData> {
    let np = &plan.nodes[node];
    let rel = plan.rels[node];
    let cols: Vec<Col<'_>> = (0..rel.schema().arity())
        .map(|c| {
            if rel.schema().attr(c).ty.is_int_backed() {
                Col::I(rel.int_col(c))
            } else {
                Col::F(rel.f64_col(c))
            }
        })
        .collect();
    let mut out: Vec<ViewData> = np.views.iter().map(|_| ViewData::new()).collect();
    let nchildren = np.children.len();
    // Distinct (child position, child view) lookups across all views: each
    // is fetched once per row and shared by every view needing it.
    let mut lookup_specs: Vec<(usize, usize)> = Vec::new();
    let view_lookups: Vec<Vec<usize>> = np
        .views
        .iter()
        .map(|vp| {
            vp.child_views
                .iter()
                .enumerate()
                .map(|(cpos, &(cv, _))| {
                    match lookup_specs.iter().position(|&ls| ls == (cpos, cv)) {
                        Some(i) => i,
                        None => {
                            lookup_specs.push((cpos, cv));
                            lookup_specs.len() - 1
                        }
                    }
                })
                .collect()
        })
        .collect();
    // Hash-free accumulators for scalar views (empty key, no group-bys) —
    // the bulk of a covariance batch at the root.
    let scalar_view: Vec<bool> = np
        .views
        .iter()
        .map(|vp| np.key_cols.is_empty() && vp.group_attrs.is_empty())
        .collect();
    let mut scalar_payloads: Vec<Vec<f64>> = np
        .views
        .iter()
        .enumerate()
        .map(|(vi, vp)| if scalar_view[vi] { vec![0.0; vp.slots.len()] } else { vec![] })
        .collect();
    // Reused per-row buffers: the hot loop allocates only on first
    // insertion of a new key.
    let mut child_keys: Vec<Vec<i64>> = vec![Vec::new(); nchildren];
    let mut key_buf: Vec<i64> = Vec::new();
    let mut gkey_buf: Vec<i64> = Vec::new();
    let mut fetched: Vec<Option<*const HashMap<Box<[i64]>, Vec<f64>>>> =
        vec![None; lookup_specs.len()];
    for row in rows {
        // Generic (unspecialized) mode materializes the tuple first — the
        // per-tuple interpretation overhead LMFAO's code generation removes.
        let generic_row: Option<Vec<fdb_data::Value>> =
            if cfg.specialize { None } else { Some(rel.row_vec(row)) };
        let getf = |c: usize| -> f64 {
            match &generic_row {
                None => cols[c].get(row),
                Some(r) => r[c].as_f64(),
            }
        };
        let geti = |c: usize| -> i64 {
            match &generic_row {
                None => cols[c].get_int(row),
                Some(r) => r[c].as_int(),
            }
        };
        // Row keys, once per child and once to the parent.
        for (cpos, buf) in child_keys.iter_mut().enumerate() {
            buf.clear();
            buf.extend(np.child_key_cols[cpos].iter().map(|&c| geti(c)));
        }
        key_buf.clear();
        key_buf.extend(np.key_cols.iter().map(|&c| geti(c)));
        // Fetch each distinct child view once. Raw pointers sidestep the
        // borrow of `child_data` across the mutable `out` uses below; the
        // maps live in `child_data`, which is untouched for this node.
        for (li, &(cpos, cv)) in lookup_specs.iter().enumerate() {
            let data = child_data[np.children[cpos]].as_ref().expect("child computed first");
            fetched[li] = data[cv]
                .get(child_keys[cpos].as_slice())
                .map(|m| m as *const HashMap<Box<[i64]>, Vec<f64>>);
        }
        'views: for (vi, vp) in np.views.iter().enumerate() {
            // Resolve this view's child entries; a missing partner kills
            // the row's contribution to this view.
            let mut entries: Vec<&HashMap<Box<[i64]>, Vec<f64>>> =
                Vec::with_capacity(nchildren);
            for &li in &view_lookups[vi] {
                match fetched[li] {
                    // SAFETY: points into `child_data`, alive and unaliased
                    // by the writes to `out`/`scalar_payloads`.
                    Some(p) => entries.push(unsafe { &*p }),
                    None => continue 'views,
                }
            }
            let group_len = vp.group_attrs.len();
            // Fast path: every child contributes exactly one group entry
            // (always true for scalar views) — no cross product needed.
            if entries.iter().all(|m| m.len() == 1) {
                gkey_buf.clear();
                gkey_buf.resize(group_len, 0);
                for &(pos, col) in &vp.local_groups {
                    gkey_buf[pos] = geti(col);
                }
                let mut single: [&Vec<f64>; 8] = [&EMPTY_PAYLOAD; 8];
                debug_assert!(nchildren <= 8, "widen the buffer for deeper trees");
                for (cpos, m) in entries.iter().enumerate() {
                    let (gvals, pay) = m.iter().next().expect("len 1");
                    for &(mypos, cpos_g) in &vp.child_views[cpos].1 {
                        gkey_buf[mypos] = gvals[cpos_g];
                    }
                    single[cpos] = pay;
                }
                let payload: &mut Vec<f64> = if scalar_view[vi] {
                    &mut scalar_payloads[vi]
                } else {
                    lookup_payload(&mut out[vi], &key_buf, &gkey_buf, vp.slots.len())
                };
                'slots: for (si, slot) in vp.slots.iter().enumerate() {
                    for (c, op) in &slot.filter {
                        if !filter_pass(op, getf(*c), geti(*c)) {
                            continue 'slots;
                        }
                    }
                    let mut v = 1.0;
                    for &(c, f) in &slot.factors {
                        v *= f.apply(getf(c));
                    }
                    for (cpos, _) in entries.iter().enumerate() {
                        v *= single[cpos][slot.child_slots[cpos]];
                    }
                    payload[si] += v;
                }
                continue 'views;
            }
            // General path: cross product of child group entries.
            let entry_lists: Vec<Vec<(&Box<[i64]>, &Vec<f64>)>> =
                entries.iter().map(|m| m.iter().collect()).collect();
            let mut idx = vec![0usize; nchildren];
            loop {
                gkey_buf.clear();
                gkey_buf.resize(group_len, 0);
                for &(pos, col) in &vp.local_groups {
                    gkey_buf[pos] = geti(col);
                }
                for (cpos, list) in entry_lists.iter().enumerate() {
                    let (gvals, _) = list[idx[cpos]];
                    for &(mypos, cpos_g) in &vp.child_views[cpos].1 {
                        gkey_buf[mypos] = gvals[cpos_g];
                    }
                }
                // Accumulate all slots for this combination.
                let payload: &mut Vec<f64> = if scalar_view[vi] {
                    &mut scalar_payloads[vi]
                } else {
                    lookup_payload(&mut out[vi], &key_buf, &gkey_buf, vp.slots.len())
                };
                'slots: for (si, slot) in vp.slots.iter().enumerate() {
                    for (c, op) in &slot.filter {
                        if !filter_pass(op, getf(*c), geti(*c)) {
                            continue 'slots;
                        }
                    }
                    let mut v = 1.0;
                    for &(c, f) in &slot.factors {
                        v *= f.apply(getf(c));
                    }
                    for (cpos, list) in entry_lists.iter().enumerate() {
                        let (_, pay) = list[idx[cpos]];
                        v *= pay[slot.child_slots[cpos]];
                    }
                    payload[si] += v;
                }
                // Advance the multi-index.
                let mut d = 0;
                loop {
                    if d == nchildren {
                        break;
                    }
                    idx[d] += 1;
                    if idx[d] < entry_lists[d].len() {
                        break;
                    }
                    idx[d] = 0;
                    d += 1;
                }
                if d == nchildren {
                    break;
                }
            }
        }
    }
    // Fold the hash-free scalar accumulators into the map representation.
    for (vi, payload) in scalar_payloads.into_iter().enumerate() {
        if scalar_view[vi] {
            let empty_key: Box<[i64]> = Vec::new().into();
            out[vi].entry(empty_key.clone()).or_default().insert(empty_key, payload);
        }
    }
    out
}

static EMPTY_PAYLOAD: Vec<f64> = Vec::new();

/// Finds (or inserts zero-initialized) the payload vector for
/// `(key, gkey)`, cloning the key buffers only on first insertion.
#[inline]
fn lookup_payload<'m>(
    view: &'m mut ViewData,
    key: &[i64],
    gkey: &[i64],
    slots: usize,
) -> &'m mut Vec<f64> {
    if !view.contains_key(key) {
        view.insert(key.into(), HashMap::new());
    }
    let groups = view.get_mut(key).expect("ensured above");
    if !groups.contains_key(gkey) {
        groups.insert(gkey.into(), vec![0.0; slots]);
    }
    groups.get_mut(gkey).expect("ensured above")
}

fn merge_view_data(a: &mut Vec<ViewData>, b: Vec<ViewData>) {
    for (va, vb) in a.iter_mut().zip(b) {
        for (key, groups) in vb {
            let ga = va.entry(key).or_default();
            for (gkey, payload) in groups {
                match ga.get_mut(&gkey) {
                    Some(p) => {
                        for (x, y) in p.iter_mut().zip(&payload) {
                            *x += *y;
                        }
                    }
                    None => {
                        ga.insert(gkey, payload);
                    }
                }
            }
        }
    }
}

/// Computes all nodes of `subtree_order` sequentially (bottom-up).
fn compute_subtree(
    plan: &Plan<'_>,
    order: &[usize],
    data: &mut Vec<Option<Vec<ViewData>>>,
    cfg: &EngineConfig,
) {
    for &n in order {
        let out = compute_node(plan, n, data, cfg, 0..plan.rels[n].len());
        data[n] = Some(out);
    }
}

/// Runs an aggregate batch over the natural join of `relations`.
pub fn run_batch(
    db: &Database,
    relations: &[&str],
    batch: &AggBatch,
    cfg: &EngineConfig,
) -> Result<BatchResult, DataError> {
    let mut plan = Plan::build(db, relations)?;
    let root = plan.root;
    // Decompose every aggregate from the root.
    let mut agg_slots = Vec::with_capacity(batch.aggs.len());
    for (i, agg) in batch.aggs.iter().enumerate() {
        agg_slots.push(plan.decompose(agg, i, root, cfg.share)?);
    }
    let plan = plan; // freeze
    let mut data: Vec<Option<Vec<ViewData>>> = plan.rels.iter().map(|_| None).collect();

    // Non-root nodes bottom-up; root children subtrees are independent and
    // can run task-parallel.
    let non_root: Vec<usize> = plan.order.iter().copied().filter(|&n| n != root).collect();
    if cfg.threads > 1 && plan.nodes[root].children.len() > 1 {
        // Partition non-root order into per-root-child subtrees.
        let children = plan.nodes[root].children.clone();
        let mut partitions: Vec<Vec<usize>> = children
            .iter()
            .map(|&c| non_root.iter().copied().filter(|n| plan.subtree[c].contains(n)).collect())
            .collect();
        let results: Vec<Vec<(usize, Vec<ViewData>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .drain(..)
                .map(|part| {
                    let plan_ref = &plan;
                    let cfg = *cfg;
                    s.spawn(move || {
                        let mut local: Vec<Option<Vec<ViewData>>> =
                            plan_ref.rels.iter().map(|_| None).collect();
                        for &n in &part {
                            let out =
                                compute_node(plan_ref, n, &local, &cfg, 0..plan_ref.rels[n].len());
                            local[n] = Some(out);
                        }
                        part.iter().map(|&n| (n, local[n].take().expect("set"))).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        for part in results {
            for (n, d) in part {
                data[n] = Some(d);
            }
        }
    } else {
        compute_subtree(&plan, &non_root, &mut data, cfg);
    }

    // Root: domain parallelism over row chunks.
    let root_rows = plan.rels[root].len();
    let root_data = if cfg.threads > 1 && root_rows > 4096 {
        let t = cfg.threads.min(root_rows);
        let chunk = root_rows.div_ceil(t);
        let partials: Vec<Vec<ViewData>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..t)
                .map(|k| {
                    let plan_ref = &plan;
                    let data_ref = &data;
                    let cfg = *cfg;
                    s.spawn(move || {
                        let lo = k * chunk;
                        let hi = ((k + 1) * chunk).min(root_rows);
                        compute_node(plan_ref, root, data_ref, &cfg, lo..hi)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        let mut it = partials.into_iter();
        let mut acc = it.next().expect("at least one chunk");
        for p in it {
            merge_view_data(&mut acc, p);
        }
        acc
    } else {
        compute_node(&plan, root, &data, cfg, 0..root_rows)
    };

    // Extract results.
    let empty_key: Box<[i64]> = Vec::new().into();
    let mut groups = Vec::with_capacity(batch.aggs.len());
    let mut values = Vec::with_capacity(batch.aggs.len());
    for &(vi, si) in &agg_slots {
        let vp = &plan.nodes[root].views[vi];
        groups.push(vp.group_attrs.clone());
        let mut map: HashMap<Box<[i64]>, f64> = HashMap::new();
        if let Some(entries) = root_data[vi].get(&empty_key) {
            for (gkey, payload) in entries {
                if payload[si] != 0.0 {
                    map.insert(gkey.clone(), payload[si]);
                }
            }
        }
        values.push(map);
    }
    Ok(BatchResult { groups, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Aggregate;
    use fdb_data::Value;
    use fdb_query::{eval_agg, natural_join_all, AggQuery, Predicate, ScalarExpr};

    fn tiny_retailer() -> (Database, Vec<&'static str>) {
        let ds = fdb_datasets::retailer(fdb_datasets::RetailerConfig::tiny());
        (ds.db, vec!["Inventory", "Location", "Census", "Item", "Weather"])
    }

    /// Translates one of our aggregates into the classical engine's form.
    fn as_query(agg: &Aggregate) -> AggQuery {
        let expr = if agg.factors.is_empty() {
            ScalarExpr::One
        } else {
            ScalarExpr::Mul(
                agg.factors
                    .iter()
                    .flat_map(|(a, f)| match f {
                        Fn1::Ident => vec![ScalarExpr::Col(a.clone())],
                        Fn1::Square => {
                            vec![ScalarExpr::Col(a.clone()), ScalarExpr::Col(a.clone())]
                        }
                    })
                    .collect(),
            )
        };
        let mut q = AggQuery {
            group_by: agg.group_by.clone(),
            expr,
            filter: None,
        };
        if !agg.filter.is_empty() {
            let preds: Vec<Predicate> = agg
                .filter
                .iter()
                .map(|(a, op)| match op {
                    FilterOp::Ge(t) => Predicate::Ge(a.clone(), *t),
                    FilterOp::Lt(t) => Predicate::Lt(a.clone(), *t),
                    FilterOp::Eq(v) => Predicate::Eq(a.clone(), Value::Int(*v)),
                    FilterOp::Ne(v) => Predicate::Ne(a.clone(), Value::Int(*v)),
                    FilterOp::In(vs) => Predicate::In(a.clone(), vs.clone()),
                })
                .collect();
            q.filter = Some(Predicate::And(preds));
        }
        q
    }

    /// Compares LMFAO against the classical engine on the materialized join.
    fn check_batch(db: &Database, rels: &[&str], batch: &AggBatch, cfg: &EngineConfig) {
        let got = run_batch(db, rels, batch, cfg).unwrap();
        let flat = natural_join_all(db, rels).unwrap();
        for (i, agg) in batch.aggs.iter().enumerate() {
            let expect = eval_agg(&flat, &as_query(agg)).unwrap();
            // Expected keys are in agg.group_by order; ours in sorted order.
            let perm: Vec<usize> = got.groups[i]
                .iter()
                .map(|g| agg.group_by.iter().position(|x| x == g).expect("same set"))
                .collect();
            let mut expect_mapped: HashMap<Box<[i64]>, f64> = HashMap::new();
            for (k, v) in &expect {
                let mapped: Box<[i64]> =
                    perm.iter().map(|&p| k[p].as_int()).collect();
                if *v != 0.0 {
                    expect_mapped.insert(mapped, *v);
                }
            }
            let gotmap = got.grouped(i);
            assert_eq!(
                gotmap.len(),
                expect_mapped.len(),
                "agg {i} ({agg:?}): group count mismatch"
            );
            for (k, v) in gotmap {
                let e = expect_mapped.get(k).copied().unwrap_or(f64::NAN);
                assert!(
                    (v - e).abs() <= 1e-6 * (1.0 + e.abs()),
                    "agg {i} ({agg:?}) key {k:?}: got {v}, expect {e}"
                );
            }
        }
    }

    #[test]
    fn covariance_batch_matches_classical_engine() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "maxtemp", "population", "inventoryunits"],
            &["rain", "category"],
        );
        check_batch(&db, &rels, &batch, &EngineConfig::default());
    }

    #[test]
    fn unshared_and_unspecialized_agree() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "inventoryunits"],
            &["rain", "categoryCluster"],
        );
        for cfg in [
            EngineConfig { specialize: false, share: false, threads: 1 },
            EngineConfig { specialize: true, share: false, threads: 1 },
            EngineConfig { specialize: false, share: true, threads: 1 },
        ] {
            check_batch(&db, &rels, &batch, &cfg);
        }
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "maxtemp", "inventoryunits"],
            &["rain"],
        );
        let seq = run_batch(&db, &rels, &batch, &EngineConfig::default()).unwrap();
        let par = run_batch(
            &db,
            &rels,
            &batch,
            &EngineConfig { threads: 4, ..Default::default() },
        )
        .unwrap();
        for i in 0..batch.len() {
            assert_eq!(seq.groups[i], par.groups[i]);
            for (k, v) in seq.grouped(i) {
                let p = par.grouped(i)[k];
                assert!((v - p).abs() <= 1e-9 * (1.0 + v.abs()), "agg {i}: {v} vs {p}");
            }
        }
    }

    #[test]
    fn filtered_decision_tree_batch_matches() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::decision_node_batch(
            &["prize", "maxtemp"],
            &["rain"],
            "inventoryunits",
            3,
            2,
            |attr, j| match attr {
                "prize" => 5.0 + 10.0 * j as f64,
                _ => 5.0 * j as f64,
            },
        );
        check_batch(&db, &rels, &batch, &EngineConfig::default());
    }

    #[test]
    fn cross_branch_categorical_pairs() {
        // category (Item) × rain (Weather): group attrs from different
        // subtrees exercise the cross-product path.
        let (db, rels) = tiny_retailer();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count().by(&["category", "rain"]));
        batch.push(Aggregate::sum("inventoryunits").by(&["category", "rain"]));
        check_batch(&db, &rels, &batch, &EngineConfig::default());
    }

    #[test]
    fn sharing_reduces_slot_count() {
        let (db, rels) = tiny_retailer();
        let batch = crate::batchgen::covariance_batch(
            &["prize", "maxtemp", "population", "inventoryunits"],
            &["rain", "category"],
        );
        let count_slots = |share: bool| -> usize {
            let mut plan = Plan::build(&db, &rels).unwrap();
            let root = plan.root;
            for (i, agg) in batch.aggs.iter().enumerate() {
                plan.decompose(agg, i, root, share).unwrap();
            }
            plan.nodes
                .iter()
                .map(|n| n.views.iter().map(|v| v.slots.len()).sum::<usize>())
                .sum()
        };
        let shared = count_slots(true);
        let unshared = count_slots(false);
        assert!(
            shared * 2 < unshared,
            "sharing should cut slots at least 2x: {shared} vs {unshared}"
        );
    }

    #[test]
    fn join_key_as_factor_is_rejected() {
        let (db, rels) = tiny_retailer();
        let mut batch = AggBatch::new();
        batch.push(Aggregate::sum("locn"));
        assert!(run_batch(&db, &rels, &batch, &EngineConfig::default()).is_err());
    }

    #[test]
    fn empty_join_yields_zero_scalars() {
        let (mut db, rels) = tiny_retailer();
        let schema = db.get("Item").unwrap().schema().clone();
        db.add("Item", Relation::new(schema));
        let mut batch = AggBatch::new();
        batch.push(Aggregate::count());
        let res = run_batch(&db, &rels, &batch, &EngineConfig::default()).unwrap();
        assert_eq!(res.scalar(0), 0.0);
    }
}
