//! Resilient serving front door: bounded write queue, backpressure,
//! retry/backoff, and circuit-breaking degradation.
//!
//! [`ServingEngine`](crate::serve::ServingEngine) (§2.10 of DESIGN.md)
//! gives many readers and one writer an epoch-transactional core, but it
//! is a *library*: a slow or failing writer simply blocks callers or
//! surfaces raw errors. The dynamic story of the paper — F-IVM
//! maintenance under a continuous update stream (Kara, Nikolic, Olteanu,
//! Zhang) — needs the system to stay correct **and available** when the
//! stream outruns maintenance or maintenance itself fails. [`FrontDoor`]
//! is that admission layer:
//!
//! * **Bounded queue + group commit.** Producers [`FrontDoor::submit`]
//!   deltas into a bounded queue; a dedicated writer thread drains
//!   whatever has accumulated per wake and **coalesces** consecutive
//!   same-relation deltas ([`Delta::merge_from`]) into one transactional
//!   maintenance pass each — one published epoch per merged batch, so a
//!   burst of `k` single-row updates costs one maintenance pass, not `k`.
//! * **Backpressure, never unbounded waits.** A full queue applies the
//!   configured [`Backpressure`] policy: block (up to a per-submit
//!   deadline — [`DataError::Timeout`]), reject
//!   ([`DataError::Overloaded`]), or shed the oldest queued delta.
//!   Refused submits are never enqueued and never publish an epoch.
//! * **Retry, then degrade, then recover.** Transient batch failures
//!   ([`DataError::Injected`], [`DataError::WorkerPanic`], `Io`) retry
//!   with seeded, deterministic exponential backoff. After
//!   `breaker_threshold` consecutive exhausted batches the circuit
//!   breaker trips: the maintained state degrades to recompute-per-delta
//!   ([`ServingEngine::degrade_to_recompute`] — the same re-prepare path
//!   the transactional wrapper uses), which skips the failing incremental
//!   machinery while staying transactional. After
//!   `breaker_probe_after` successful degraded batches the breaker
//!   half-opens and probes recovery ([`ServingEngine::promote`]); a
//!   successful probe plus one incremental commit closes it again.
//!
//! Throughout all of this, readers keep serving the last *published*
//! epoch — bit-identical to a cold recompute at that epoch, because
//! nothing here weakens the serving core's publish-only-on-success
//! invariant: the front door only decides *when* and *how often* the
//! writer runs, never what it publishes.
//!
//! Fault sites (live with the `fault-injection` feature): `queue-admit`
//! (a submit refused at admission), `writer-drain` (a batch drain failing
//! before touching the engine — transient, so it exercises the retry
//! path), and `breaker-trip` (forces a trip regardless of failure
//! history).

use crate::ir::{AggQuery, BatchResult};
use crate::maintain::MaintainableEngine;
use crate::serve::{EpochDb, ServingEngine, ServingStats};
use fdb_data::{fault, DataError, Database, Delta};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a [`FrontDoor::submit`] does when the bounded queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the writer to free space, up to the submit's deadline
    /// ([`DataError::Timeout`] past it). Lossless under overload.
    #[default]
    Block,
    /// Fail fast with [`DataError::Overloaded`]; the caller owns the
    /// retry policy. Lossless for admitted deltas, lossy for refused ones.
    Reject,
    /// Drop the *oldest* queued (not yet drained) delta to admit the
    /// newest — freshness over completeness, for streams where the latest
    /// update supersedes older ones. Shed deltas never publish.
    ShedOldest,
}

/// Tuning knobs for a [`FrontDoor`]. `Default` is a sensible serving
/// setup: a 64-deep queue, blocking producers with a 5 s deadline,
/// 3 retries from a 200 µs backoff, and a breaker that trips after 3
/// consecutive failed batches and probes after 2 degraded successes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontDoorConfig {
    /// Queue capacity in deltas; `submit` applies backpressure past it.
    pub queue_capacity: usize,
    /// Policy on a full queue.
    pub backpressure: Backpressure,
    /// Default deadline for `Block`-policy submits
    /// ([`FrontDoor::submit_with_deadline`] overrides per call).
    pub submit_timeout: Duration,
    /// Retries per batch after transient failures before the failure
    /// counts against the breaker.
    pub retry_max: u32,
    /// First-retry backoff; doubles per retry (plus deterministic jitter).
    pub backoff_base: Duration,
    /// Seed for the jitter stream — same seed, same fault schedule, same
    /// retry delays: chaos runs reproduce from their seeds alone.
    pub backoff_seed: u64,
    /// Consecutive exhausted batches that trip the breaker.
    pub breaker_threshold: u32,
    /// Successful degraded batches before the breaker half-opens and
    /// probes recovery.
    pub breaker_probe_after: u32,
    /// Group-commit coalescing of consecutive same-relation deltas
    /// (disable to publish one epoch per submitted delta).
    pub coalesce: bool,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            backpressure: Backpressure::Block,
            submit_timeout: Duration::from_secs(5),
            retry_max: 3,
            backoff_base: Duration::from_micros(200),
            backoff_seed: 0xF1D0_F1D0,
            breaker_threshold: 3,
            breaker_probe_after: 2,
            coalesce: true,
        }
    }
}

/// The circuit breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches apply through the incremental maintained state.
    Closed,
    /// Tripped: the maintained state is degraded to recompute-per-delta;
    /// batches still commit transactionally, just without the (failing)
    /// incremental machinery.
    Open,
    /// Enough degraded successes accumulated; the next batch probes
    /// recovery by re-preparing the incremental state.
    HalfOpen,
}

/// Queue state under the shared mutex; condvars do the rest.
struct QueueState {
    deltas: VecDeque<Delta>,
    /// The writer is between a drain and its publishes — the queue may be
    /// empty while batches are still in flight, so `flush` waits on both.
    draining: bool,
    /// Test hook: a paused writer leaves the queue accumulating, making
    /// coalescing deterministic.
    paused: bool,
    closed: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when the writer drains: wakes `Block`-policy producers.
    not_full: Condvar,
    /// Signalled on submit/resume/close: wakes the writer.
    work: Condvar,
    /// Signalled when the writer goes idle with an empty queue: wakes
    /// [`FrontDoor::flush`] callers.
    idle: Condvar,
}

/// Monotonic activity counters shared with the writer thread.
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    coalesced: AtomicU64,
    batches_committed: AtomicU64,
    batches_failed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_probes: AtomicU64,
    breaker_recoveries: AtomicU64,
    /// 0 = Closed, 1 = Open, 2 = HalfOpen.
    breaker_state: AtomicU64,
}

impl Counters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// The resilient admission layer around a [`ServingEngine`]: a bounded
/// delta queue drained by a dedicated coalescing writer thread, with
/// backpressure, deterministic retry/backoff, and a circuit breaker that
/// degrades to recompute mode rather than failing the stream.
///
/// Readers go straight to the serving core ([`FrontDoor::query`] /
/// [`FrontDoor::snapshot`] delegate) and never block on the queue.
/// Dropping the front door closes the queue, drains what was admitted,
/// and joins the writer thread.
pub struct FrontDoor<E: MaintainableEngine + Send + Sync + 'static> {
    serving: Arc<ServingEngine<E>>,
    shared: Arc<Shared>,
    counters: Arc<Counters>,
    cfg: FrontDoorConfig,
    writer: Option<JoinHandle<()>>,
}

impl<E: MaintainableEngine + Send + Sync + 'static> FrontDoor<E> {
    /// Prepares `q` over `db` through `engine` (the one-shot cost of
    /// [`ServingEngine::new`]), publishes the initial epoch, and spawns
    /// the writer thread.
    pub fn new(
        engine: E,
        db: &Database,
        q: &AggQuery,
        cfg: FrontDoorConfig,
    ) -> Result<Self, DataError> {
        let serving = Arc::new(ServingEngine::new(engine, db, q)?);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                deltas: VecDeque::new(),
                draining: false,
                paused: false,
                closed: false,
            }),
            not_full: Condvar::new(),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let counters = Arc::new(Counters::default());
        let writer = {
            let (serving, shared, counters) =
                (Arc::clone(&serving), Arc::clone(&shared), Arc::clone(&counters));
            std::thread::Builder::new()
                .name("fdb-frontdoor-writer".into())
                .spawn(move || writer_loop(&serving, &shared, &counters, cfg))
                .map_err(|e| DataError::Io(e.to_string()))?
        };
        Ok(Self { serving, shared, counters, cfg, writer: Some(writer) })
    }

    /// Submits one delta under the configured policy and default
    /// deadline. `Ok` means *admitted to the queue* — commitment and
    /// publication happen asynchronously on the writer thread (observe
    /// via [`FrontDoor::flush`] + [`FrontDoor::epoch`], or
    /// [`FrontDoor::stats`]). `Err` means the delta was **not** admitted
    /// and will never publish an epoch.
    pub fn submit(&self, delta: Delta) -> Result<(), DataError> {
        self.submit_with_deadline(delta, self.cfg.submit_timeout)
    }

    /// [`FrontDoor::submit`] with an explicit per-submit deadline (only
    /// meaningful under the `Block` policy).
    pub fn submit_with_deadline(&self, delta: Delta, timeout: Duration) -> Result<(), DataError> {
        if let Err(e) = fault::check_err("queue-admit") {
            self.counters.bump(&self.counters.rejected);
            return Err(e);
        }
        let start = Instant::now();
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if st.closed {
                return Err(DataError::Invalid("front door is closed".into()));
            }
            if st.deltas.len() < self.cfg.queue_capacity {
                break;
            }
            match self.cfg.backpressure {
                Backpressure::Reject => {
                    self.counters.bump(&self.counters.rejected);
                    return Err(DataError::Overloaded { capacity: self.cfg.queue_capacity });
                }
                Backpressure::ShedOldest => {
                    st.deltas.pop_front();
                    self.counters.bump(&self.counters.shed);
                    break;
                }
                Backpressure::Block => {
                    let elapsed = start.elapsed();
                    if elapsed >= timeout {
                        self.counters.bump(&self.counters.timed_out);
                        return Err(DataError::Timeout { waited_ms: elapsed.as_millis() as u64 });
                    }
                    let (guard, _) = self
                        .shared
                        .not_full
                        .wait_timeout(st, timeout - elapsed)
                        .unwrap_or_else(|p| p.into_inner());
                    st = guard;
                }
            }
        }
        st.deltas.push_back(delta);
        self.counters.bump(&self.counters.submitted);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Blocks until every currently admitted delta has been drained *and*
    /// resolved (committed or dropped) — the quiescence point tests and
    /// graceful shutdown key on. Implicitly resumes a paused writer.
    pub fn flush(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        st.paused = false;
        self.shared.work.notify_one();
        while !st.deltas.is_empty() || st.draining {
            st = self.shared.idle.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Test hook: stop the writer from draining so submits accumulate
    /// (deterministic coalescing). [`FrontDoor::resume`] or
    /// [`FrontDoor::flush`] restarts it; closing overrides it.
    pub fn pause(&self) {
        self.shared.state.lock().unwrap_or_else(|p| p.into_inner()).paused = true;
    }

    /// Restarts a paused writer.
    pub fn resume(&self) {
        self.shared.state.lock().unwrap_or_else(|p| p.into_inner()).paused = false;
        self.shared.work.notify_one();
    }

    /// The wrapped serving core, for direct reader access (sharing it
    /// across reader threads is exactly [`ServingEngine`]'s contract).
    pub fn serving(&self) -> &Arc<ServingEngine<E>> {
        &self.serving
    }

    /// Delegates to [`ServingEngine::query`]: evaluates against the last
    /// *published* epoch — unaffected by queued, retrying, or failed
    /// batches.
    pub fn query(&self) -> Result<(u64, BatchResult), DataError> {
        self.serving.query()
    }

    /// Delegates to [`ServingEngine::snapshot`].
    pub fn snapshot(&self) -> Arc<EpochDb> {
        self.serving.snapshot()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.serving.epoch()
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        match self.counters.breaker_state.load(Ordering::Relaxed) {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            _ => BreakerState::HalfOpen,
        }
    }

    /// Serving counters plus the front door's queue/retry/breaker fields.
    pub fn stats(&self) -> ServingStats {
        let queued =
            self.shared.state.lock().unwrap_or_else(|p| p.into_inner()).deltas.len() as u64;
        let c = &self.counters;
        ServingStats {
            queued,
            submitted: c.submitted.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            batches_committed: c.batches_committed.load(Ordering::Relaxed),
            batches_failed: c.batches_failed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            breaker_trips: c.breaker_trips.load(Ordering::Relaxed),
            breaker_probes: c.breaker_probes.load(Ordering::Relaxed),
            breaker_recoveries: c.breaker_recoveries.load(Ordering::Relaxed),
            ..self.serving.stats()
        }
    }

    /// Closes the queue (subsequent submits fail), drains everything
    /// already admitted, joins the writer thread, and returns the final
    /// stats plus the serving core — which keeps answering reads at the
    /// last published epoch for as long as the caller holds it.
    pub fn close(mut self) -> (ServingStats, Arc<ServingEngine<E>>) {
        self.shutdown();
        let queued =
            self.shared.state.lock().unwrap_or_else(|p| p.into_inner()).deltas.len() as u64;
        let mut stats = self.stats();
        stats.queued = queued;
        (stats, Arc::clone(&self.serving))
    }

    fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            st.closed = true;
            st.paused = false;
        }
        self.shared.work.notify_all();
        self.shared.not_full.notify_all();
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

impl<E: MaintainableEngine + Send + Sync + 'static> Drop for FrontDoor<E> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The writer thread: wait for admitted work, drain the whole queue,
/// coalesce, and commit one epoch per merged batch — retrying, tripping,
/// degrading, and probing as configured.
fn writer_loop<E: MaintainableEngine + Send + Sync>(
    serving: &ServingEngine<E>,
    shared: &Shared,
    counters: &Counters,
    cfg: FrontDoorConfig,
) {
    let mut breaker = Breaker::new();
    // Monotone sequence over backoff draws: deterministic jitter without
    // ambient randomness.
    let mut backoff_seq = 0u64;
    loop {
        let drained: Vec<Delta> = {
            let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            while !st.closed && (st.paused || st.deltas.is_empty()) {
                st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if st.deltas.is_empty() {
                // Closed with nothing left: graceful exit.
                st.draining = false;
                shared.idle.notify_all();
                return;
            }
            st.draining = true;
            let drained = st.deltas.drain(..).collect();
            shared.not_full.notify_all();
            drained
        };

        for group in coalesce(drained, cfg.coalesce) {
            apply_group(serving, counters, &cfg, &mut breaker, group, &mut backoff_seq);
        }

        let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
        st.draining = false;
        if st.deltas.is_empty() {
            shared.idle.notify_all();
        }
    }
}

/// Groups consecutive same-relation deltas (the group-commit batches).
/// Order across groups — and therefore across relations — is preserved.
fn coalesce(drained: Vec<Delta>, on: bool) -> Vec<Vec<Delta>> {
    let mut groups: Vec<Vec<Delta>> = Vec::new();
    for d in drained {
        match groups.last_mut() {
            Some(g) if on && g[0].relation == d.relation => g.push(d),
            _ => groups.push(vec![d]),
        }
    }
    groups
}

/// Merges one group and commits it as a single batch. A *permanent*
/// failure of a multi-delta batch (validation-class errors: the rollback
/// already happened, retrying cannot help) re-applies the constituents
/// individually so one poison-pill delta cannot take its coalesced
/// neighbors down with it.
fn apply_group<E: MaintainableEngine + Send + Sync>(
    serving: &ServingEngine<E>,
    counters: &Counters,
    cfg: &FrontDoorConfig,
    breaker: &mut Breaker,
    group: Vec<Delta>,
    backoff_seq: &mut u64,
) {
    let mut merged = group[0].clone();
    for d in &group[1..] {
        merged.merge_from(d).expect("coalesce only groups same-relation deltas");
    }
    match apply_one(serving, counters, cfg, breaker, &merged, backoff_seq) {
        Ok(()) => {
            counters.bump(&counters.batches_committed);
            counters.coalesced.fetch_add(group.len() as u64 - 1, Ordering::Relaxed);
        }
        Err(e) if group.len() > 1 && !is_transient(&e) => {
            for d in &group {
                match apply_one(serving, counters, cfg, breaker, d, backoff_seq) {
                    Ok(()) => counters.bump(&counters.batches_committed),
                    Err(_) => counters.bump(&counters.batches_failed),
                }
            }
        }
        Err(_) => counters.bump(&counters.batches_failed),
    }
}

/// One batch through retry + breaker. `Ok` means committed and published
/// (exactly one epoch); `Err` means rolled back and dropped.
fn apply_one<E: MaintainableEngine + Send + Sync>(
    serving: &ServingEngine<E>,
    counters: &Counters,
    cfg: &FrontDoorConfig,
    breaker: &mut Breaker,
    delta: &Delta,
    backoff_seq: &mut u64,
) -> Result<(), DataError> {
    // Chaos lever: force a trip regardless of failure history.
    if breaker.state == BreakerState::Closed && fault::trip("breaker-trip") {
        breaker.trip(serving, counters);
    }
    let probing = breaker.state == BreakerState::HalfOpen;
    if probing {
        counters.bump(&counters.breaker_probes);
        if serving.promote().is_ok() {
            // Tentatively closed; only this batch committing incrementally
            // confirms the recovery.
            breaker.set(BreakerState::Closed, counters);
        } else {
            // Still broken: stay degraded, start the probe count over.
            breaker.degraded_successes = 0;
            breaker.set(BreakerState::Open, counters);
        }
    }
    let mut attempt = 0u32;
    loop {
        let applied =
            fault::check_err("writer-drain").and_then(|()| serving.apply_delta(delta).map(drop));
        match applied {
            Ok(()) => {
                breaker.on_success(cfg, counters, probing);
                return Ok(());
            }
            Err(e) if is_transient(&e) => {
                if attempt < cfg.retry_max {
                    attempt += 1;
                    counters.bump(&counters.retries);
                    *backoff_seq += 1;
                    std::thread::sleep(backoff_delay(cfg, attempt, *backoff_seq));
                    continue;
                }
                // Retries exhausted: count against the breaker; if that
                // (or a half-open relapse) just degraded us, give the
                // batch one degraded attempt so it is not lost.
                let was_closed = breaker.state == BreakerState::Closed;
                breaker.on_exhausted(serving, cfg, counters, probing);
                if was_closed && breaker.state == BreakerState::Open {
                    return fault::check_err("writer-drain")
                        .and_then(|()| serving.apply_delta(delta).map(drop))
                        .inspect(|()| breaker.on_success(cfg, counters, false));
                }
                return Err(e);
            }
            // Permanent (validation-class): rolled back, never published;
            // retrying cannot change the outcome and the breaker is about
            // *maintenance* health, so it does not count.
            Err(e) => return Err(e),
        }
    }
}

/// Transient failures are worth retrying: injected faults, contained
/// worker panics, and I/O hiccups. Validation-class errors are permanent.
fn is_transient(e: &DataError) -> bool {
    matches!(e, DataError::Injected(_) | DataError::WorkerPanic(_) | DataError::Io(_))
}

/// Exponential backoff with deterministic jitter: `base * 2^(attempt-1)`
/// plus up to 50% drawn from a splitmix64 stream keyed by the configured
/// seed and the draw sequence number.
fn backoff_delay(cfg: &FrontDoorConfig, attempt: u32, seq: u64) -> Duration {
    let exp = cfg.backoff_base.saturating_mul(1u32 << (attempt - 1).min(16));
    let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
    let jitter = splitmix64(cfg.backoff_seed.wrapping_add(seq)) % (nanos / 2 + 1);
    exp + Duration::from_nanos(jitter)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The breaker state machine, owned by the writer thread. Transitions
/// are driven by batch outcomes (not wall-clock), so chaos schedules
/// replay deterministically:
///
/// ```text
///            threshold consecutive exhausted batches
///   Closed ────────────────────────────────────────────▶ Open (degraded)
///      ▲                                                   │
///      │ probe re-prepares AND the                         │ probe_after
///      │ next batch commits incrementally                  │ degraded
///      │                                                   ▼ successes
///      └─────────────────────────────────────────────── HalfOpen
///                 (a failed probe or relapse falls back to Open)
/// ```
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    degraded_successes: u32,
}

impl Breaker {
    fn new() -> Self {
        Self { state: BreakerState::Closed, consecutive_failures: 0, degraded_successes: 0 }
    }

    fn set(&mut self, state: BreakerState, counters: &Counters) {
        self.state = state;
        let code = match state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        counters.breaker_state.store(code, Ordering::Relaxed);
    }

    fn trip<E: MaintainableEngine + Send + Sync>(
        &mut self,
        serving: &ServingEngine<E>,
        counters: &Counters,
    ) {
        serving.degrade_to_recompute();
        self.consecutive_failures = 0;
        self.degraded_successes = 0;
        counters.bump(&counters.breaker_trips);
        self.set(BreakerState::Open, counters);
    }

    fn on_success(&mut self, cfg: &FrontDoorConfig, counters: &Counters, probing: bool) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                if probing {
                    // The probe re-prepared and this batch committed
                    // incrementally: recovery confirmed.
                    counters.bump(&counters.breaker_recoveries);
                }
            }
            BreakerState::Open => {
                self.degraded_successes += 1;
                if self.degraded_successes >= cfg.breaker_probe_after {
                    self.set(BreakerState::HalfOpen, counters);
                }
            }
            BreakerState::HalfOpen => {}
        }
    }

    fn on_exhausted<E: MaintainableEngine + Send + Sync>(
        &mut self,
        serving: &ServingEngine<E>,
        cfg: &FrontDoorConfig,
        counters: &Counters,
        probing: bool,
    ) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if probing || self.consecutive_failures >= cfg.breaker_threshold {
                    self.trip(serving, counters);
                }
            }
            // A degraded batch failing anyway (e.g. injected right at the
            // delta layer): stay open, restart the probe count.
            BreakerState::Open => self.degraded_successes = 0,
            BreakerState::HalfOpen => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FlatEngine;
    use crate::batch::{AggBatch, Aggregate};
    use fdb_data::{AttrType, Relation, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)]));
        for (k, x) in [(1, 1.0), (2, 2.0), (3, 3.0)] {
            r.push_row(&[Value::Int(k), Value::F64(x)]).unwrap();
        }
        db.add("R", r);
        db
    }

    fn sum_query() -> AggQuery {
        let mut batch = AggBatch::new();
        batch.push(Aggregate::sum("x"));
        batch.push(Aggregate::count());
        AggQuery::new(&["R"], batch)
    }

    fn row(k: i64, x: f64) -> Vec<Value> {
        vec![Value::Int(k), Value::F64(x)]
    }

    #[test]
    fn coalesces_a_paused_burst_into_one_epoch() {
        let fd = FrontDoor::new(FlatEngine, &db(), &sum_query(), FrontDoorConfig::default())
            .expect("front door");
        let e0 = fd.epoch();
        fd.pause();
        for k in 0..5 {
            fd.submit(Delta::insert("R", row(10 + k, 1.0))).unwrap();
        }
        fd.flush();
        let s = fd.stats();
        assert_eq!(fd.epoch(), e0 + 1, "five same-relation deltas, one group commit");
        assert_eq!((s.submitted, s.batches_committed, s.coalesced), (5, 1, 4));
        assert_eq!(fd.query().unwrap().1.scalar(1), 8.0);
    }

    #[test]
    fn coalescing_off_publishes_one_epoch_per_delta() {
        let cfg = FrontDoorConfig { coalesce: false, ..Default::default() };
        let fd = FrontDoor::new(FlatEngine, &db(), &sum_query(), cfg).unwrap();
        let e0 = fd.epoch();
        fd.pause();
        for k in 0..4 {
            fd.submit(Delta::insert("R", row(20 + k, 1.0))).unwrap();
        }
        fd.flush();
        assert_eq!(fd.epoch(), e0 + 4);
        assert_eq!(fd.stats().coalesced, 0);
    }

    #[test]
    fn reject_policy_fails_fast_and_never_publishes_refused_deltas() {
        let cfg = FrontDoorConfig {
            queue_capacity: 2,
            backpressure: Backpressure::Reject,
            ..Default::default()
        };
        let fd = FrontDoor::new(FlatEngine, &db(), &sum_query(), cfg).unwrap();
        let e0 = fd.epoch();
        fd.pause();
        fd.submit(Delta::insert("R", row(10, 1.0))).unwrap();
        fd.submit(Delta::insert("R", row(11, 1.0))).unwrap();
        let err = fd.submit(Delta::insert("R", row(12, 1.0))).unwrap_err();
        assert!(matches!(err, DataError::Overloaded { capacity: 2 }));
        fd.flush();
        assert_eq!(fd.epoch(), e0 + 1, "the refused delta never became an epoch");
        assert_eq!(fd.query().unwrap().1.scalar(1), 5.0, "only the two admitted rows landed");
        let s = fd.stats();
        assert_eq!((s.rejected, s.submitted), (1, 2));
    }

    #[test]
    fn shed_oldest_drops_the_stalest_queued_delta() {
        let cfg = FrontDoorConfig {
            queue_capacity: 2,
            backpressure: Backpressure::ShedOldest,
            ..Default::default()
        };
        let fd = FrontDoor::new(FlatEngine, &db(), &sum_query(), cfg).unwrap();
        fd.pause();
        fd.submit(Delta::insert("R", row(10, 10.0))).unwrap();
        fd.submit(Delta::insert("R", row(11, 11.0))).unwrap();
        fd.submit(Delta::insert("R", row(12, 12.0))).unwrap();
        fd.flush();
        let (_, r) = fd.query().unwrap();
        assert_eq!(r.scalar(0), 6.0 + 11.0 + 12.0, "k=10 was shed, never applied");
        assert_eq!(fd.stats().shed, 1);
    }

    #[test]
    fn block_policy_times_out_at_the_deadline() {
        let cfg = FrontDoorConfig {
            queue_capacity: 1,
            submit_timeout: Duration::from_millis(40),
            ..Default::default()
        };
        let fd = FrontDoor::new(FlatEngine, &db(), &sum_query(), cfg).unwrap();
        fd.pause();
        fd.submit(Delta::insert("R", row(10, 1.0))).unwrap();
        let err = fd.submit(Delta::insert("R", row(11, 1.0))).unwrap_err();
        assert!(matches!(err, DataError::Timeout { .. }));
        assert_eq!(fd.stats().timed_out, 1);
        fd.flush();
        assert_eq!(fd.query().unwrap().1.scalar(1), 4.0);
    }

    #[test]
    fn blocked_producers_progress_as_the_writer_drains() {
        let cfg = FrontDoorConfig {
            queue_capacity: 1,
            submit_timeout: Duration::from_secs(30),
            ..Default::default()
        };
        let fd = FrontDoor::new(FlatEngine, &db(), &sum_query(), cfg).unwrap();
        std::thread::scope(|s| {
            let fd = &fd;
            for t in 0..3 {
                s.spawn(move || {
                    for k in 0..10 {
                        fd.submit(Delta::insert("R", row(100 * t + k, 1.0))).unwrap();
                    }
                });
            }
        });
        fd.flush();
        let s = fd.stats();
        assert_eq!(s.submitted, 30);
        assert_eq!(s.batches_committed + s.coalesced, 30, "every admitted delta resolved");
        assert_eq!(fd.query().unwrap().1.scalar(1), 33.0);
        assert_eq!(s.queued, 0);
    }

    #[test]
    fn poison_pill_in_a_merged_batch_does_not_sink_its_neighbors() {
        let fd =
            FrontDoor::new(FlatEngine, &db(), &sum_query(), FrontDoorConfig::default()).unwrap();
        let e0 = fd.epoch();
        fd.pause();
        fd.submit(Delta::insert("R", row(10, 1.0))).unwrap();
        // Deleting a row that does not exist: permanent validation error.
        fd.submit(Delta::delete("R", row(99, 99.0))).unwrap();
        fd.submit(Delta::insert("R", row(11, 1.0))).unwrap();
        fd.flush();
        let s = fd.stats();
        assert_eq!(s.batches_failed, 1, "only the poison pill dropped");
        assert_eq!(s.batches_committed, 2, "its neighbors re-applied individually");
        assert_eq!(fd.epoch(), e0 + 2);
        assert_eq!(fd.query().unwrap().1.scalar(1), 5.0);
    }

    #[test]
    fn close_drains_admitted_deltas_and_keeps_serving_reads() {
        let fd =
            FrontDoor::new(FlatEngine, &db(), &sum_query(), FrontDoorConfig::default()).unwrap();
        fd.pause();
        for k in 0..3 {
            fd.submit(Delta::insert("R", row(50 + k, 1.0))).unwrap();
        }
        let (stats, serving) = fd.close();
        assert_eq!(stats.queued, 0, "close drains before returning");
        assert_eq!(stats.batches_committed, 1);
        assert_eq!(serving.query().unwrap().1.scalar(1), 6.0);
    }

    #[test]
    fn closed_front_door_refuses_submits() {
        let fd =
            FrontDoor::new(FlatEngine, &db(), &sum_query(), FrontDoorConfig::default()).unwrap();
        let serving = Arc::clone(fd.serving());
        drop(fd);
        assert_eq!(serving.epoch(), 0);
        // A second front door over the same core also closes cleanly —
        // and while one is closed, submitting through it errors.
        let fd =
            FrontDoor::new(FlatEngine, &db(), &sum_query(), FrontDoorConfig::default()).unwrap();
        {
            let mut st = fd.shared.state.lock().unwrap();
            st.closed = true;
        }
        let err = fd.submit(Delta::insert("R", row(1, 1.0))).unwrap_err();
        assert!(matches!(err, DataError::Invalid(_)));
    }

    #[test]
    fn backoff_is_deterministic_in_the_seed_and_bounded() {
        let cfg = FrontDoorConfig::default();
        for (attempt, seq) in [(1u32, 1u64), (2, 2), (3, 3), (8, 9)] {
            let a = backoff_delay(&cfg, attempt, seq);
            let b = backoff_delay(&cfg, attempt, seq);
            assert_eq!(a, b, "same seed+sequence, same delay");
            let exp = cfg.backoff_base.saturating_mul(1 << (attempt - 1).min(16));
            assert!(a >= exp && a <= exp + exp / 2 + Duration::from_nanos(1));
        }
        let other = FrontDoorConfig { backoff_seed: 99, ..cfg };
        assert_ne!(
            backoff_delay(&cfg, 3, 7),
            backoff_delay(&other, 3, 7),
            "different seeds draw different jitter"
        );
    }

    #[test]
    fn coalesce_groups_only_consecutive_same_relation_runs() {
        let d = |rel: &str| Delta::insert(rel, row(1, 1.0));
        let groups = coalesce(vec![d("R"), d("R"), d("S"), d("R")], true);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 1, 1], "S breaks the run; order is preserved");
        assert_eq!(coalesce(vec![d("R"), d("R")], false).len(), 2);
    }
}
