//! Morsel-driven work scheduling.
//!
//! One-thread-per-partition parallelism serializes on skew: the worker that
//! drew the expensive partition finishes last while its peers idle. The fix
//! (Leis et al.'s morsel-driven model, adopted here for both the root-scan
//! split and [`crate::ShardedEngine`]) is to cut the work into many more
//! fixed-size row-range *morsels* than workers and let workers pull the
//! next unclaimed morsel from a shared counter. No unit is ever pinned to a
//! thread, so a heavy morsel delays only itself; everything else is stolen
//! by whoever is free.
//!
//! Results are returned **in morsel order**, so downstream merges (which
//! sum f64 payloads) stay deterministic regardless of which worker ran
//! which morsel.

//! **Panic containment.** Worker closures run under `catch_unwind`: a
//! panicking unit poisons the queue (peers drain cleanly after their
//! current unit), the scoped threads all join, and the panic surfaces as
//! a structured [`fdb_data::DataError::WorkerPanic`] instead of aborting
//! the process. See [`contain`] for the single-closure form engines use
//! for degraded retries.

use fdb_data::DataError;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default rows per morsel (the [`crate::EngineConfig::morsel_rows`]
/// default): big enough to amortize per-morsel plan probes, small enough
/// that a skewed range splits across many work units.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Number of morsels for `rows` rows: enough units that every chunk stays
/// near `morsel_rows` rows, but at least `min_units` (typically the worker
/// count) so all workers engage, and never more units than rows.
pub fn morsel_count(rows: usize, morsel_rows: usize, min_units: usize) -> usize {
    if rows == 0 {
        return 1;
    }
    rows.div_ceil(morsel_rows.max(1)).max(min_units.max(1)).min(rows)
}

/// Splits `rows` into [`morsel_count`] contiguous, balanced row ranges.
pub fn plan_morsels(rows: usize, morsel_rows: usize, min_units: usize) -> Vec<Range<usize>> {
    let m = morsel_count(rows, morsel_rows, min_units);
    (0..m).map(|k| (rows * k / m)..(rows * (k + 1) / m)).collect()
}

/// How a [`run_stealing`] call distributed its work — recorded by
/// [`crate::ShardedEngine`] so tests and benchmarks can confirm the
/// stealing actually engaged (morsels > workers) on skewed inputs.
#[derive(Debug, Clone)]
pub struct MorselStats {
    /// Worker threads that participated.
    pub workers: usize,
    /// Work units dispatched.
    pub morsels: usize,
    /// Units completed per worker (sums to `morsels`).
    pub per_worker: Vec<usize>,
}

/// Stringifies a caught panic payload (the common `&str` / `String`
/// payloads verbatim, anything else generically).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panic containment: a panic becomes
/// [`DataError::WorkerPanic`] instead of unwinding into the caller. The
/// single-closure form of [`run_stealing`]'s discipline — engines use it
/// for degraded (unsharded) retries and the maintenance wrapper for the
/// whole incremental-apply step.
pub(crate) fn contain<T>(f: impl FnOnce() -> T) -> Result<T, DataError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| DataError::WorkerPanic(panic_message(p)))
}

/// Runs `work(i)` for every `i < units` on up to `workers` scoped threads,
/// each pulling the next unit index from a shared atomic counter — the
/// degenerate (and contention-free) form of work stealing: there are no
/// per-worker queues to steal *from* because no unit is ever assigned ahead
/// of time. Returns results in unit order plus the dispatch stats.
///
/// Panics inside `work` are contained: the first one poisons the queue
/// (every other worker finishes its current unit and stops pulling), all
/// threads join, and the call returns
/// `Err(`[`DataError::WorkerPanic`]`)` carrying the panic message.
pub fn run_stealing<T: Send>(
    units: usize,
    workers: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Result<(Vec<T>, MorselStats), DataError> {
    let w = workers.clamp(1, units.max(1));
    let mut per_worker = vec![0usize; w];
    let mut slots: Vec<Option<T>> = (0..units).map(|_| None).collect();
    if w <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(contain(|| work(i))?);
        }
        per_worker[0] = units;
    } else {
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let parts: Vec<Result<Vec<(usize, T)>, String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..w)
                .map(|_| {
                    let (next, work, poisoned) = (&next, &work, &poisoned);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            if poisoned.load(Ordering::Relaxed) {
                                // A peer panicked: drain cleanly — stop
                                // pulling, keep what we computed.
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= units {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| work(i))) {
                                Ok(t) => mine.push((i, t)),
                                Err(p) => {
                                    poisoned.store(true, Ordering::Relaxed);
                                    return Err(panic_message(p));
                                }
                            }
                        }
                        Ok(mine)
                    })
                })
                .collect();
            // The worker closures contain every `work` panic, so joins
            // only fail on unwinds the runtime itself raised (OOM aborts
            // never unwind) — nothing recoverable to translate.
            handles.into_iter().map(|h| h.join().expect("worker harness panicked")).collect()
        });
        let mut first_panic = None;
        for (wi, part) in parts.into_iter().enumerate() {
            match part {
                Ok(part) => {
                    per_worker[wi] = part.len();
                    for (i, t) in part {
                        slots[i] = Some(t);
                    }
                }
                Err(msg) => first_panic = first_panic.or(Some(msg)),
            }
        }
        if let Some(msg) = first_panic {
            return Err(DataError::WorkerPanic(msg));
        }
    }
    let out = slots.into_iter().map(|s| s.expect("every unit dispatched")).collect();
    Ok((out, MorselStats { workers: w, morsels: units, per_worker }))
}

/// Pairwise (tree) reduction of per-morsel partials: round by round,
/// partial `2i+1` merges into partial `2i` (an odd tail carries over), the
/// pairs of each round running on up to `workers` stolen-work threads via
/// [`run_stealing`]. Replaces the coordinator's serial left-fold, which
/// serialized the whole merge on one thread — with `k` partials the
/// critical path drops from `k − 1` sequential merges to `⌈log₂ k⌉`
/// rounds.
///
/// **Determinism.** The merge *tree* depends only on the partial count and
/// their unit order — never on `workers` or on which thread ran which pair
/// — so float summation is reproducible for a given morsel plan (the same
/// discipline as [`run_stealing`]'s unit-order results). The association
/// differs from the serial fold's, so sums can differ from it by rounding;
/// for exactly-representable (integer-valued) payloads the two are
/// identical — the property `tests` hold the engines to.
///
/// Panics inside `merge` are contained per [`run_stealing`]'s discipline
/// and surface as [`DataError::WorkerPanic`]. Returns `None` for an empty
/// input.
pub(crate) fn tree_merge<T: Send>(
    mut parts: Vec<T>,
    workers: usize,
    merge: impl Fn(&mut T, T) -> Result<(), DataError> + Sync,
) -> Result<Option<T>, DataError> {
    while parts.len() > 1 {
        let odd = if parts.len() % 2 == 1 { parts.pop() } else { None };
        let pairs: Vec<std::sync::Mutex<Option<(T, T)>>> = {
            let mut it = parts.drain(..);
            let mut ps = Vec::new();
            while let (Some(a), Some(b)) = (it.next(), it.next()) {
                ps.push(std::sync::Mutex::new(Some((a, b))));
            }
            ps
        };
        let (merged, _stats) = run_stealing(pairs.len(), workers, |i| -> Result<T, DataError> {
            let (mut a, b) = pairs[i]
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .expect("each pair merged once");
            merge(&mut a, b)?;
            Ok(a)
        })?;
        parts = merged.into_iter().collect::<Result<Vec<T>, DataError>>()?;
        parts.extend(odd);
    }
    Ok(parts.pop())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_plan_covers_rows_exactly() {
        for rows in [0usize, 1, 5, 100, 4096, 10_000] {
            for (mr, mu) in [(1, 1), (7, 3), (4096, 4), (100_000, 2)] {
                let plan = plan_morsels(rows, mr, mu);
                assert_eq!(plan.len(), morsel_count(rows, mr, mu));
                assert_eq!(plan[0].start, 0);
                assert_eq!(plan.last().unwrap().end, rows);
                for w in plan.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                if rows > 0 {
                    assert!(plan.len() >= mu.min(rows), "workers engaged");
                    assert!(plan.iter().all(|r| !r.is_empty()), "no empty morsels");
                }
            }
        }
        // Row-count cap: single-row inputs cannot split further.
        assert_eq!(plan_morsels(1, 1, 8), vec![0..1]);
        assert_eq!(plan_morsels(0, 4096, 4), vec![0..0]);
    }

    #[test]
    fn stealing_returns_unit_order_and_accounts_all_work() {
        for workers in [1usize, 2, 3, 8] {
            let (out, stats) = run_stealing(37, workers, |i| i * i).unwrap();
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.morsels, 37);
            assert_eq!(stats.workers, workers.min(37));
            assert_eq!(stats.per_worker.iter().sum::<usize>(), 37);
        }
        // More workers than units: extra workers are not spawned.
        let (out, stats) = run_stealing(2, 16, |i| i).unwrap();
        assert_eq!(out, vec![0, 1]);
        assert_eq!(stats.workers, 2);
        // Zero units still terminates.
        let (out, stats) = run_stealing(0, 4, |i| i).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 0);
    }

    #[test]
    fn a_panicking_unit_surfaces_as_err_not_abort() {
        // Parallel: the panic is contained, peers drain, the scope joins.
        for workers in [1usize, 2, 4] {
            let err = run_stealing(16, workers, |i| {
                if i == 3 {
                    panic!("unit {i} exploded");
                }
                i
            })
            .unwrap_err();
            let DataError::WorkerPanic(msg) = err else { panic!("expected WorkerPanic") };
            assert!(msg.contains("unit 3 exploded"), "payload preserved: {msg}");
        }
        // `contain` gives the same translation for a single closure.
        assert!(
            matches!(contain(|| panic!("boom")), Err(DataError::WorkerPanic(m)) if m == "boom")
        );
        assert_eq!(contain(|| 7).unwrap(), 7);
    }

    #[test]
    fn tree_merge_matches_serial_fold_and_is_worker_independent() {
        // Integer-valued payloads: f64 addition is exact, so the tree
        // association must reproduce the serial fold bit for bit.
        let parts = |k: usize| -> Vec<Vec<f64>> {
            (0..k).map(|i| vec![i as f64, (i * i % 7) as f64]).collect()
        };
        let add = |a: &mut Vec<f64>, b: Vec<f64>| -> Result<(), DataError> {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            Ok(())
        };
        for k in [1usize, 2, 3, 5, 8, 17] {
            let mut serial = parts(k).into_iter();
            let mut want = serial.next().unwrap();
            for p in serial {
                add(&mut want, p).unwrap();
            }
            for workers in [1usize, 2, 4] {
                let got = tree_merge(parts(k), workers, add).unwrap().unwrap();
                assert_eq!(got, want, "k={k} workers={workers}");
            }
        }
        assert!(tree_merge(Vec::<i32>::new(), 4, |_, _| Ok(())).unwrap().is_none());
    }

    #[test]
    fn tree_merge_contains_errors_and_panics() {
        let err =
            tree_merge(vec![1i32, 2, 3], 2, |_, _| Err(DataError::Invalid("merge refused".into())))
                .unwrap_err();
        assert!(matches!(err, DataError::Invalid(_)));
        let err = tree_merge(vec![1i32, 2, 3, 4], 2, |a, _| {
            if *a == 3 {
                panic!("pair exploded");
            }
            Ok(())
        })
        .unwrap_err();
        let DataError::WorkerPanic(msg) = err else { panic!("expected WorkerPanic") };
        assert!(msg.contains("pair exploded"), "{msg}");
    }

    #[test]
    fn a_heavy_unit_does_not_serialize_its_peers() {
        // With 2 workers and one slow unit, the fast worker must drain the
        // remaining units: the slow worker completes exactly one.
        let (_, stats) = run_stealing(8, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            i
        })
        .unwrap();
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 8);
        // One worker took the heavy unit; on a multi-core host the other
        // drains the queue meanwhile. Either way nobody deadlocks and all
        // units are accounted for — the scheduling-shape assertion lives in
        // the sharded skew regression test.
        assert_eq!(stats.per_worker.len(), 2);
    }
}
