//! Variable orders (d-trees) for factorized representations.
//!
//! A variable order is a forest over the query's variables such that the
//! attributes of every relation lie along one root-to-leaf path. Each
//! variable carries its *dependency set* `dep(x)`: the ancestors on which
//! the subtree rooted at `x` depends (the adornments of Figure 8 — e.g.
//! `price` depends on `item` only, not on `dish`, which is what lets the
//! f-rep cache price subtrees across dishes).

use crate::hypergraph::{Hypergraph, JoinTree};
use std::collections::BTreeSet;

/// A node of a variable order.
#[derive(Debug, Clone)]
pub struct VoNode {
    /// Hypergraph variable id.
    pub var: usize,
    /// Parent node index in the [`VarOrder`], if any.
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
    /// Dependency set: ancestor *variable ids* the subtree at this node
    /// depends on, ascending.
    pub dep: Vec<usize>,
}

/// A variable order (forest) over a query's variables.
#[derive(Debug, Clone)]
pub struct VarOrder {
    nodes: Vec<VoNode>,
    roots: Vec<usize>,
}

impl VarOrder {
    /// Builds a variable order for an acyclic query from a rooted join
    /// tree: relations are visited top-down; each relation's not-yet-placed
    /// variables are chained below the current path tip, so every
    /// relation's variables lie on a root-to-leaf path by construction.
    pub fn from_join_tree(hg: &Hypergraph, jt: &JoinTree) -> VarOrder {
        let mut vo = VarOrder { nodes: Vec::new(), roots: Vec::new() };
        let Some(root) = jt.root else {
            return vo;
        };
        let mut placed: Vec<Option<usize>> = vec![None; hg.num_vars()]; // var -> node idx
        vo.visit_edge(hg, jt, root, None, &mut placed);
        vo.compute_deps(hg);
        vo
    }

    fn visit_edge(
        &mut self,
        hg: &Hypergraph,
        jt: &JoinTree,
        edge: usize,
        tip: Option<usize>,
        placed: &mut Vec<Option<usize>>,
    ) {
        let mut tip = tip;
        for &v in &hg.edges()[edge].vars {
            if placed[v].is_none() {
                let idx = self.nodes.len();
                self.nodes.push(VoNode { var: v, parent: tip, children: Vec::new(), dep: vec![] });
                match tip {
                    Some(p) => self.nodes[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                placed[v] = Some(idx);
                tip = Some(idx);
            } else {
                // Already on the path above (join-tree connectivity
                // guarantees this); keep the deeper tip.
                let node = placed[v].expect("just checked");
                tip = Some(deeper(self, tip, node));
            }
        }
        for child in jt.children(edge) {
            self.visit_edge(hg, jt, child, tip, placed);
        }
    }

    /// dep(x) = anc(x) ∩ (vars co-occurring with x in some edge ∪ deps of
    /// x's children), computed bottom-up.
    fn compute_deps(&mut self, hg: &Hypergraph) {
        // Depth-first post-order without recursion on self-borrow issues.
        let order = self.post_order();
        for &n in &order {
            let anc: BTreeSet<usize> = self.ancestors(n).into_iter().collect();
            let mut need: BTreeSet<usize> = BTreeSet::new();
            let var = self.nodes[n].var;
            for e in hg.edges() {
                if e.vars.contains(&var) {
                    need.extend(e.vars.iter().copied());
                }
            }
            for &c in &self.nodes[n].children.clone() {
                need.extend(self.nodes[c].dep.iter().copied());
            }
            need.remove(&var);
            self.nodes[n].dep = need.intersection(&anc).copied().collect();
        }
    }

    /// Builds a *linear* variable order (a single chain). Every relation's
    /// attribute set trivially lies on the one path, so chains serve
    /// arbitrary — including cyclic — queries: this is the variable order
    /// of the classical LeapFrog TrieJoin, with worst-case-optimal
    /// guarantees governed by the fractional edge cover (§3.2).
    pub fn chain(hg: &Hypergraph, vars_in_order: &[usize]) -> VarOrder {
        let mut vo = VarOrder { nodes: Vec::new(), roots: Vec::new() };
        let mut tip: Option<usize> = None;
        for &v in vars_in_order {
            let idx = vo.nodes.len();
            vo.nodes.push(VoNode { var: v, parent: tip, children: Vec::new(), dep: vec![] });
            match tip {
                Some(p) => vo.nodes[p].children.push(idx),
                None => vo.roots.push(idx),
            }
            tip = Some(idx);
        }
        vo.compute_deps(hg);
        vo
    }

    /// Node indices in post-order (children before parents).
    pub fn post_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<(usize, bool)> = self.roots.iter().rev().map(|&r| (r, false)).collect();
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                out.push(n);
            } else {
                stack.push((n, true));
                for &c in self.nodes[n].children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// Node indices in pre-order (parents before children).
    pub fn pre_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The variable ids of the ancestors of node `n`, root first.
    pub fn ancestors(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[n].parent;
        while let Some(p) = cur {
            out.push(self.nodes[p].var);
            cur = self.nodes[p].parent;
        }
        out.reverse();
        out
    }

    /// All nodes.
    pub fn nodes(&self) -> &[VoNode] {
        &self.nodes
    }

    /// Root node indices.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The node index holding variable `var`.
    pub fn node_of_var(&self, var: usize) -> Option<usize> {
        self.nodes.iter().position(|n| n.var == var)
    }

    /// Depth of node `n` (roots have depth 0).
    pub fn depth(&self, n: usize) -> usize {
        let mut d = 0;
        let mut cur = self.nodes[n].parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.nodes[p].parent;
        }
        d
    }

    /// For a hyperedge, its variables sorted by depth in this order — the
    /// sort key a relation needs before trie-style evaluation. Returns
    /// `None` if the edge's variables do not lie on one root-to-leaf path.
    pub fn path_vars(&self, edge_vars: &[usize]) -> Option<Vec<usize>> {
        let mut nodes: Vec<usize> =
            edge_vars.iter().map(|&v| self.node_of_var(v)).collect::<Option<_>>()?;
        nodes.sort_by_key(|&n| self.depth(n));
        // Verify chain: each node must be an ancestor-or-self of the next.
        for w in nodes.windows(2) {
            let (shallow, deep) = (w[0], w[1]);
            let mut cur = Some(deep);
            let mut ok = false;
            while let Some(c) = cur {
                if c == shallow {
                    ok = true;
                    break;
                }
                cur = self.nodes[c].parent;
            }
            if !ok {
                return None;
            }
        }
        Some(nodes.into_iter().map(|n| self.nodes[n].var).collect())
    }
}

fn deeper(vo: &VarOrder, a: Option<usize>, b: usize) -> usize {
    match a {
        None => b,
        Some(a) => {
            if vo.depth(a) >= vo.depth(b) {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Schema};

    fn schema(names: &[&str]) -> Schema {
        Schema::of(&names.iter().map(|n| (*n, AttrType::Int)).collect::<Vec<_>>())
    }

    /// The paper's Figure 7/8 query: Orders(customer, day, dish),
    /// Dish(dish, item), Items(item, price).
    fn dish_hypergraph() -> Hypergraph {
        let orders = schema(&["customer", "day", "dish"]);
        let dish = schema(&["dish", "item"]);
        let items = schema(&["item", "price"]);
        Hypergraph::from_schemas(&[("Orders", &orders), ("Dish", &dish), ("Items", &items)])
    }

    #[test]
    fn dish_example_variable_order_and_deps() {
        let hg = dish_hypergraph();
        let jt = hg.join_tree().unwrap();
        let vo = VarOrder::from_join_tree(&hg, &jt);
        assert_eq!(vo.nodes().len(), 5);
        // Every relation's vars must lie on a root-to-leaf path.
        for e in hg.edges() {
            assert!(vo.path_vars(&e.vars).is_some(), "edge {} off-path", e.name);
        }
        // price must depend on item only — not on dish (Figure 8).
        let price = hg.var_id("price").unwrap();
        let item = hg.var_id("item").unwrap();
        let pn = vo.node_of_var(price).unwrap();
        assert_eq!(vo.nodes()[pn].dep, vec![item]);
        // customer depends on dish only; day depends on {dish, customer}.
        let customer = hg.var_id("customer").unwrap();
        let cn = vo.node_of_var(customer).unwrap();
        let dish = hg.var_id("dish").unwrap();
        let day = hg.var_id("day").unwrap();
        assert_eq!(vo.nodes()[cn].dep, vec![dish]);
        let dn = vo.node_of_var(day).unwrap();
        let mut expect = vec![customer, dish];
        expect.sort_unstable();
        assert_eq!(vo.nodes()[dn].dep, expect);
    }

    #[test]
    fn orders_are_consistent() {
        let hg = dish_hypergraph();
        let jt = hg.join_tree().unwrap();
        let vo = VarOrder::from_join_tree(&hg, &jt);
        let post = vo.post_order();
        let pre = vo.pre_order();
        assert_eq!(post.len(), 5);
        assert_eq!(pre.len(), 5);
        // Parents precede children in pre-order, follow them in post-order.
        for (i, &n) in pre.iter().enumerate() {
            if let Some(p) = vo.nodes()[n].parent {
                assert!(pre[..i].contains(&p));
            }
        }
        for (i, &n) in post.iter().enumerate() {
            for &c in &vo.nodes()[n].children {
                assert!(post[..i].contains(&c));
            }
        }
    }

    #[test]
    fn path_vars_rejects_branching_sets() {
        let hg = dish_hypergraph();
        // Root the join tree at Dish (the paper's Figure 8 order): price and
        // customer then live on different branches under item: no path.
        let jt = hg.join_tree().unwrap().rerooted(1);
        let vo = VarOrder::from_join_tree(&hg, &jt);
        let price = hg.var_id("price").unwrap();
        let customer = hg.var_id("customer").unwrap();
        assert!(vo.path_vars(&[price, customer]).is_none());
        // But dish/item/price (the Dish ∪ Items attrs) do lie on a path.
        let dish = hg.var_id("dish").unwrap();
        let item = hg.var_id("item").unwrap();
        assert_eq!(vo.path_vars(&[price, dish, item]), Some(vec![dish, item, price]));
    }

    #[test]
    fn star_schema_order_places_fact_chain_first() {
        let f = schema(&["a", "b", "m"]);
        let d1 = schema(&["a", "x"]);
        let d2 = schema(&["b", "y"]);
        let hg = Hypergraph::from_schemas(&[("F", &f), ("D1", &d1), ("D2", &d2)]);
        let jt = hg.join_tree().unwrap();
        // Root the tree at the fact table for a retail-style order.
        let fact_idx = 0;
        let jt = jt.rerooted(fact_idx);
        let vo = VarOrder::from_join_tree(&hg, &jt);
        assert_eq!(vo.nodes().len(), 5);
        for e in hg.edges() {
            assert!(vo.path_vars(&e.vars).is_some());
        }
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use fdb_data::{AttrType, Schema};

    #[test]
    fn chain_order_serves_cyclic_triangle() {
        let s =
            |ns: &[&str]| Schema::of(&ns.iter().map(|n| (*n, AttrType::Int)).collect::<Vec<_>>());
        let (r, t, u) = (s(&["a", "b"]), s(&["b", "c"]), s(&["a", "c"]));
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &t), ("T", &u)]);
        let vo = VarOrder::chain(&hg, &[0, 1, 2]);
        assert_eq!(vo.nodes().len(), 3);
        for e in hg.edges() {
            assert!(vo.path_vars(&e.vars).is_some(), "edge {} must lie on the chain", e.name);
        }
        // Deps on a chain include co-occurring ancestors.
        let c = hg.var_id("c").unwrap();
        let cn = vo.node_of_var(c).unwrap();
        assert_eq!(vo.nodes()[cn].dep.len(), 2); // c co-occurs with both a and b
    }
}
