//! Width measures of queries (paper §3.2).
//!
//! * [`frac_edge_cover`] — the fractional edge cover number ρ*, solved
//!   *exactly* by enumerating the vertices of the covering LP (the query
//!   shapes in the paper have a handful of relations, so vertex enumeration
//!   beats hand-rolling a general simplex in both simplicity and
//!   trustworthiness). Also returns the optimal weights, from which
//!   [`agm_bound`] computes the AGM output-size bound Π |Rₑ|^{wₑ}.
//! * [`fhtw`] — fractional hypertree width: 1 for acyclic queries; for
//!   small cyclic queries, minimum over elimination orders of the maximum
//!   bag ρ* (exact for the paper's shapes: triangle 1.5, ℓ-cycles);
//!   a min-fill greedy upper bound beyond the exhaustive limit.
//! * [`fo_width`] — the factorization width of a variable order:
//!   `max over nodes x of ρ*({x} ∪ dep(x))`, the measure governing
//!   factorized result size (Olteanu & Závodný).

use crate::hypergraph::Hypergraph;
use crate::order::VarOrder;

const EPS: f64 = 1e-9;

/// Solves `min Σ w_e  s.t.  ∀ v ∈ targets: Σ_{e ∋ v} w_e ≥ 1, w ≥ 0` by
/// vertex enumeration. Returns `(ρ*, weights)`; `None` if some target
/// variable is uncovered (infeasible) or the instance exceeds the
/// exhaustive-enumeration limit.
pub fn frac_edge_cover(hg: &Hypergraph, targets: &[usize]) -> Option<(f64, Vec<f64>)> {
    let ne = hg.edges().len();
    if targets.is_empty() {
        return Some((0.0, vec![0.0; ne]));
    }
    // Infeasible if a target is in no edge.
    for &v in targets {
        if !hg.edges().iter().any(|e| e.vars.contains(&v)) {
            return None;
        }
    }
    // Constraint rows: one per target (cover, >= 1), one per edge (w_e >= 0).
    // row = (coefficients over the ne unknowns, rhs)
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(targets.len() + ne);
    for &v in targets {
        let coeffs: Vec<f64> =
            hg.edges().iter().map(|e| if e.vars.contains(&v) { 1.0 } else { 0.0 }).collect();
        rows.push((coeffs, 1.0));
    }
    for e in 0..ne {
        let mut coeffs = vec![0.0; ne];
        coeffs[e] = 1.0;
        rows.push((coeffs, 0.0));
    }
    let m = rows.len();
    if binomial(m, ne) > 2_000_000 {
        return None; // caller falls back to a heuristic
    }
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut combo: Vec<usize> = (0..ne).collect();
    loop {
        if let Some(w) = solve_square(&rows, &combo, ne) {
            if rows.iter().all(|(c, b)| dot(c, &w) >= *b - EPS) && w.iter().all(|&x| x >= -EPS) {
                let obj: f64 = w.iter().sum();
                if best.as_ref().is_none_or(|(o, _)| obj < o - EPS) {
                    best = Some((obj, w));
                }
            }
        }
        if !next_combination(&mut combo, m) {
            break;
        }
    }
    best
}

fn binomial(n: usize, k: usize) -> u128 {
    let mut acc: u128 = 1;
    for i in 0..k.min(n) {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > u128::MAX / 64 {
            return u128::MAX;
        }
    }
    acc
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves the square system formed by the selected constraint rows (taken
/// as equalities) via Gaussian elimination; `None` if singular.
fn solve_square(rows: &[(Vec<f64>, f64)], combo: &[usize], n: usize) -> Option<Vec<f64>> {
    let mut a: Vec<Vec<f64>> = combo.iter().map(|&i| rows[i].0.clone()).collect();
    let mut b: Vec<f64> = combo.iter().map(|&i| rows[i].1).collect();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < EPS {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        for r in 0..n {
            if r != col && a[r][col].abs() > 0.0 {
                let f = a[r][col] / p;
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

/// Advances `combo` to the next k-combination of `0..m`; false when done.
fn next_combination(combo: &mut [usize], m: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < m - (k - i) {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// The AGM output-size bound Π |Rₑ|^{wₑ} with optimal fractional cover
/// weights over all variables. `sizes[e]` is the cardinality of edge `e`.
pub fn agm_bound(hg: &Hypergraph, sizes: &[usize]) -> Option<f64> {
    let all: Vec<usize> = (0..hg.num_vars()).collect();
    let (_, w) = frac_edge_cover(hg, &all)?;
    Some(w.iter().zip(sizes).map(|(&we, &n)| (n.max(1) as f64).powf(we)).product())
}

/// Fractional hypertree width. Exact (1.0) for acyclic queries; for cyclic
/// queries with at most `EXHAUSTIVE_VARS` variables, the minimum over all
/// elimination orders of the maximum bag ρ*; otherwise a min-fill greedy
/// upper bound.
pub fn fhtw(hg: &Hypergraph) -> Option<f64> {
    if hg.edges().is_empty() {
        return Some(0.0);
    }
    if hg.is_acyclic() {
        return Some(1.0);
    }
    const EXHAUSTIVE_VARS: usize = 7;
    let n = hg.num_vars();
    let vars: Vec<usize> = (0..n).collect();
    if n <= EXHAUSTIVE_VARS {
        let mut best: Option<f64> = None;
        permute(&vars, &mut |perm| {
            if let Some(w) = elimination_width(hg, perm) {
                if best.is_none_or(|b| w < b - EPS) {
                    best = Some(w);
                }
            }
        });
        best
    } else {
        // Min-fill greedy order: a standard, good upper bound.
        let order = min_fill_order(hg);
        elimination_width(hg, &order)
    }
}

/// Max bag ρ* along an elimination order (bags from primal-graph
/// elimination; each bag's ρ* is computed in the original hypergraph).
fn elimination_width(hg: &Hypergraph, order: &[usize]) -> Option<f64> {
    let n = hg.num_vars();
    let mut adj = vec![vec![false; n]; n];
    for e in hg.edges() {
        for (i, &u) in e.vars.iter().enumerate() {
            for &v in &e.vars[i + 1..] {
                adj[u][v] = true;
                adj[v][u] = true;
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut width: f64 = 0.0;
    for &v in order {
        let nbrs: Vec<usize> = (0..n).filter(|&u| !eliminated[u] && u != v && adj[v][u]).collect();
        let mut bag = nbrs.clone();
        bag.push(v);
        let (rho, _) = frac_edge_cover(&hg.induced(&bag), &bag)?;
        width = width.max(rho);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
        eliminated[v] = true;
    }
    Some(width)
}

fn min_fill_order(hg: &Hypergraph) -> Vec<usize> {
    let n = hg.num_vars();
    let mut adj = vec![vec![false; n]; n];
    for e in hg.edges() {
        for (i, &u) in e.vars.iter().enumerate() {
            for &v in &e.vars[i + 1..] {
                adj[u][v] = true;
                adj[v][u] = true;
            }
        }
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        // Pick the variable whose elimination adds the fewest fill edges.
        let (&v, _) = remaining
            .iter()
            .map(|&v| {
                let nbrs: Vec<usize> =
                    remaining.iter().copied().filter(|&u| u != v && adj[v][u]).collect();
                let fill = nbrs
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| nbrs[i + 1..].iter().filter(|&&b| !adj[a][b]).count())
                    .sum::<usize>();
                (v, fill)
            })
            .collect::<Vec<_>>()
            .iter()
            .min_by_key(|(_, f)| *f)
            .map(|(v, f)| (v, *f))
            .expect("remaining non-empty");
        let nbrs: Vec<usize> = remaining.iter().copied().filter(|&u| u != v && adj[v][u]).collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
        remaining.retain(|&u| u != v);
        order.push(v);
    }
    order
}

fn permute(items: &[usize], f: &mut impl FnMut(&[usize])) {
    let mut items = items.to_vec();
    let n = items.len();
    permute_rec(&mut items, 0, n, f);
}

fn permute_rec(items: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
    if k == n {
        f(items);
        return;
    }
    for i in k..n {
        items.swap(k, i);
        permute_rec(items, k + 1, n, f);
        items.swap(k, i);
    }
}

/// The factorization width of a variable order:
/// `max over nodes x of ρ*({x} ∪ dep(x))`. Acyclic queries admit orders of
/// width 1 — linear-time aggregates (paper §2.1 "our execution strategy
/// takes time linear in the input data").
pub fn fo_width(hg: &Hypergraph, vo: &VarOrder) -> Option<f64> {
    let mut width: f64 = 0.0;
    for node in vo.nodes() {
        let mut set = node.dep.clone();
        set.push(node.var);
        let (rho, _) = frac_edge_cover(&hg.induced(&set), &set)?;
        width = width.max(rho);
    }
    Some(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Schema};

    fn schema(names: &[&str]) -> Schema {
        Schema::of(&names.iter().map(|n| (*n, AttrType::Int)).collect::<Vec<_>>())
    }

    fn triangle() -> Hypergraph {
        let (r, s, t) = (schema(&["a", "b"]), schema(&["b", "c"]), schema(&["a", "c"]));
        Hypergraph::from_schemas(&[("R", &r), ("S", &s), ("T", &t)])
    }

    #[test]
    fn triangle_fractional_cover_is_three_halves() {
        let hg = triangle();
        let (rho, w) = frac_edge_cover(&hg, &[0, 1, 2]).unwrap();
        assert!((rho - 1.5).abs() < 1e-6, "ρ* = {rho}");
        assert!(w.iter().all(|&x| (x - 0.5).abs() < 1e-6));
    }

    #[test]
    fn triangle_agm_bound_is_n_to_1_5() {
        let hg = triangle();
        let bound = agm_bound(&hg, &[100, 100, 100]).unwrap();
        assert!((bound - 100f64.powf(1.5)).abs() / bound < 1e-6);
    }

    #[test]
    fn triangle_fhtw_is_three_halves() {
        let hg = triangle();
        let w = fhtw(&hg).unwrap();
        assert!((w - 1.5).abs() < 1e-6, "fhtw = {w}");
    }

    #[test]
    fn path_query_widths_are_one() {
        let (r, s, t) = (schema(&["a", "b"]), schema(&["b", "c"]), schema(&["c", "d"]));
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s), ("T", &t)]);
        assert_eq!(fhtw(&hg), Some(1.0));
        let jt = hg.join_tree().unwrap();
        let vo = VarOrder::from_join_tree(&hg, &jt);
        let w = fo_width(&hg, &vo).unwrap();
        assert!((w - 1.0).abs() < 1e-6, "s(VO) = {w}");
    }

    #[test]
    fn star_cover_counts_satellites() {
        // F(a,b,c), D1(a,x), D2(b,y): covering x and y forces w_D1=w_D2=1;
        // covering c forces w_F=1 → ρ* = 3.
        let f = schema(&["a", "b", "c"]);
        let d1 = schema(&["a", "x"]);
        let d2 = schema(&["b", "y"]);
        let hg = Hypergraph::from_schemas(&[("F", &f), ("D1", &d1), ("D2", &d2)]);
        let all: Vec<usize> = (0..hg.num_vars()).collect();
        let (rho, _) = frac_edge_cover(&hg, &all).unwrap();
        assert!((rho - 3.0).abs() < 1e-6);
        // But the *factorization width* of a fact-rooted order is 1.
        let jt = hg.join_tree().unwrap().rerooted(0);
        let vo = VarOrder::from_join_tree(&hg, &jt);
        assert!((fo_width(&hg, &vo).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn four_cycle_fhtw_is_two() {
        let r = schema(&["a", "b"]);
        let s = schema(&["b", "c"]);
        let t = schema(&["c", "d"]);
        let u = schema(&["d", "a"]);
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s), ("T", &t), ("U", &u)]);
        let w = fhtw(&hg).unwrap();
        assert!((w - 2.0).abs() < 1e-6, "fhtw = {w}");
    }

    #[test]
    fn infeasible_when_variable_uncovered() {
        let r = schema(&["a"]);
        let hg = Hypergraph::from_schemas(&[("R", &r)]);
        // Target var id 0 is covered; an out-of-range var id is not.
        assert!(frac_edge_cover(&hg, &[0]).is_some());
        let hg2 = {
            let (r, s) = (schema(&["a", "b"]), schema(&["c", "d"]));
            Hypergraph::from_schemas(&[("R", &r), ("S", &s)])
        };
        // Restrict edges away then ask for a missing var.
        let induced = hg2.induced(&[0]);
        assert!(frac_edge_cover(&induced, &[2]).is_none());
    }

    #[test]
    fn empty_targets_cost_zero() {
        let hg = triangle();
        let (rho, w) = frac_edge_cover(&hg, &[]).unwrap();
        assert_eq!(rho, 0.0);
        assert_eq!(w, vec![0.0; 3]);
    }
}
