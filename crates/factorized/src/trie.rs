//! Sorted-column search primitives used by the leapfrog evaluator.
//!
//! Relations sorted lexicographically by their variable-order path behave
//! as tries; within a parent-bound range, the next attribute's column is a
//! sorted run the evaluator intersects with its peers via galloping seeks
//! (LeapFrog TrieJoin's core move, §3.2 / Veldhuizen's LFTJ).

/// First index in `[from, end)` with `col[idx] >= target`, by exponential
/// probing followed by binary search — O(log distance), which is what makes
/// leapfrog intersection output-sensitive.
#[inline]
pub fn seek(col: &[i64], from: usize, end: usize, target: i64) -> usize {
    debug_assert!(from <= end && end <= col.len());
    if from >= end || col[from] >= target {
        return from;
    }
    // Exponential probe: find a bracket [lo, hi) with col[lo] < target.
    let mut step = 1;
    let mut lo = from;
    let mut hi = from + 1;
    while hi < end && col[hi] < target {
        lo = hi;
        step *= 2;
        hi = (hi + step).min(end);
    }
    // Binary search in (lo, hi].
    lo + 1 + col[lo + 1..hi.min(end)].partition_point(|&x| x < target)
}

/// End of the run of equal values starting at `from` (requires
/// `from < end`), again by galloping.
#[inline]
pub fn run_end(col: &[i64], from: usize, end: usize) -> usize {
    let v = col[from];
    seek(col, from, end, v + 1).min(end)
}

/// Leapfrog intersection over several sorted column ranges: repeatedly
/// aligns all cursors on the next common value and yields
/// `(value, per-input run ranges)` through the callback. Returns early if
/// the callback returns `false`.
pub fn leapfrog_intersect(
    cols: &[&[i64]],
    ranges: &[std::ops::Range<usize>],
    mut on_match: impl FnMut(i64, &[std::ops::Range<usize>]) -> bool,
) {
    let k = cols.len();
    debug_assert_eq!(k, ranges.len());
    if k == 0 {
        return;
    }
    let mut pos: Vec<usize> = ranges.iter().map(|r| r.start).collect();
    if pos.iter().zip(ranges).any(|(&p, r)| p >= r.end) {
        return;
    }
    let mut runs: Vec<std::ops::Range<usize>> = vec![0..0; k];
    'outer: loop {
        // Candidate: the max of current values.
        let mut candidate = i64::MIN;
        for i in 0..k {
            let v = cols[i][pos[i]];
            if v > candidate {
                candidate = v;
            }
        }
        // Align all cursors on the candidate (may raise it).
        let mut aligned = 0;
        let mut i = 0;
        while aligned < k {
            let p = seek(cols[i], pos[i], ranges[i].end, candidate);
            if p >= ranges[i].end {
                break 'outer;
            }
            pos[i] = p;
            if cols[i][p] > candidate {
                candidate = cols[i][p];
                aligned = 1;
            } else {
                aligned += 1;
            }
            i = (i + 1) % k;
        }
        // All cursors sit on `candidate`: compute runs and report.
        for i in 0..k {
            runs[i] = pos[i]..run_end(cols[i], pos[i], ranges[i].end);
        }
        if !on_match(candidate, &runs) {
            return;
        }
        // Advance everyone past the run.
        for i in 0..k {
            pos[i] = runs[i].end;
            if pos[i] >= ranges[i].end {
                break 'outer;
            }
        }
    }
}

/// Batched `k = 1` specialization of [`leapfrog_intersect`]: one linear
/// pass collecting every `(value, run)` of a single sorted column range
/// into flat buffers, with no callback dispatch, no cursor rotation, and
/// no per-match modular arithmetic. This is the leaf shape of a snowflake
/// join (one relation owns the variable), which dominates the evaluator's
/// intersections.
pub fn collect_runs(
    col: &[i64],
    range: std::ops::Range<usize>,
    vals: &mut Vec<i64>,
    runs: &mut Vec<std::ops::Range<usize>>,
) {
    let mut i = range.start;
    while i < range.end {
        let e = run_end(col, i, range.end);
        vals.push(col[i]);
        runs.push(i..e);
        i = e;
    }
}

/// Batched `k = 2` specialization of [`leapfrog_intersect`]: a two-pointer
/// merge with galloping skips ([`seek`]) on whichever side is behind,
/// pushing `(value, run_a, run_b)` per match — `runs` grows by two ranges
/// per value, matching the generic evaluator's flattened layout.
pub fn collect_pair(
    a: &[i64],
    ra: std::ops::Range<usize>,
    b: &[i64],
    rb: std::ops::Range<usize>,
    vals: &mut Vec<i64>,
    runs: &mut Vec<std::ops::Range<usize>>,
) {
    let (mut i, mut j) = (ra.start, rb.start);
    while i < ra.end && j < rb.end {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i = seek(a, i, ra.end, y);
        } else if y < x {
            j = seek(b, j, rb.end, x);
        } else {
            let ea = run_end(a, i, ra.end);
            let eb = run_end(b, j, rb.end);
            vals.push(x);
            runs.push(i..ea);
            runs.push(j..eb);
            i = ea;
            j = eb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seek_finds_lower_bound() {
        let col = [1i64, 3, 3, 5, 9, 12];
        assert_eq!(seek(&col, 0, 6, 0), 0);
        assert_eq!(seek(&col, 0, 6, 3), 1);
        assert_eq!(seek(&col, 0, 6, 4), 3);
        assert_eq!(seek(&col, 0, 6, 12), 5);
        assert_eq!(seek(&col, 0, 6, 13), 6);
        assert_eq!(seek(&col, 2, 4, 3), 2);
        assert_eq!(seek(&col, 4, 4, 1), 4); // empty range
    }

    #[test]
    fn run_end_spans_duplicates() {
        let col = [2i64, 2, 2, 4];
        assert_eq!(run_end(&col, 0, 4), 3);
        assert_eq!(run_end(&col, 3, 4), 4);
        assert_eq!(run_end(&col, 0, 2), 2); // clipped by range
    }

    #[test]
    fn intersect_two_columns() {
        let a = [1i64, 2, 2, 4, 6];
        let b = [2i64, 4, 4, 5];
        let mut got = Vec::new();
        leapfrog_intersect(&[&a, &b], &[0..5, 0..4], |v, runs| {
            got.push((v, runs[0].clone(), runs[1].clone()));
            true
        });
        assert_eq!(got, vec![(2, 1..3, 0..1), (4, 3..4, 1..3)]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = [1i64, 3, 5];
        let b = [2i64, 4, 6];
        let mut count = 0;
        leapfrog_intersect(&[&a, &b], &[0..3, 0..3], |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, 0);
    }

    #[test]
    fn intersect_single_column_yields_runs() {
        let a = [7i64, 7, 9];
        let mut got = Vec::new();
        leapfrog_intersect(&[&a], &[0..3], |v, runs| {
            got.push((v, runs[0].clone()));
            true
        });
        assert_eq!(got, vec![(7, 0..2), (9, 2..3)]);
    }

    #[test]
    fn early_exit_stops_iteration() {
        let a = [1i64, 2, 3];
        let mut got = 0;
        leapfrog_intersect(&[&a], &[0..3], |_, _| {
            got += 1;
            false
        });
        assert_eq!(got, 1);
    }

    proptest! {
        /// The batched 1- and 2-way collectors fill exactly the buffers the
        /// generic leapfrog callback would have — values and flattened runs.
        #[test]
        fn batched_collectors_match_generic_leapfrog(
            mut a in proptest::collection::vec(0i64..25, 0..40),
            mut b in proptest::collection::vec(0i64..25, 0..40),
        ) {
            a.sort_unstable();
            b.sort_unstable();
            // k = 1 over `a`.
            let (mut vals, mut runs) = (Vec::new(), Vec::new());
            collect_runs(&a, 0..a.len(), &mut vals, &mut runs);
            let (mut gvals, mut gruns) = (Vec::new(), Vec::new());
            leapfrog_intersect(&[&a], &[0..a.len()], |v, rs| {
                gvals.push(v);
                gruns.extend_from_slice(rs);
                true
            });
            prop_assert_eq!(&vals, &gvals);
            prop_assert_eq!(&runs, &gruns);
            // k = 2 over `a`, `b`.
            let (mut vals, mut runs) = (Vec::new(), Vec::new());
            collect_pair(&a, 0..a.len(), &b, 0..b.len(), &mut vals, &mut runs);
            let (mut gvals, mut gruns) = (Vec::new(), Vec::new());
            leapfrog_intersect(&[&a, &b], &[0..a.len(), 0..b.len()], |v, rs| {
                gvals.push(v);
                gruns.extend_from_slice(rs);
                true
            });
            prop_assert_eq!(&vals, &gvals);
            prop_assert_eq!(&runs, &gruns);
        }

        #[test]
        fn intersection_matches_set_semantics(
            mut a in proptest::collection::vec(0i64..30, 0..40),
            mut b in proptest::collection::vec(0i64..30, 0..40),
            mut c in proptest::collection::vec(0i64..30, 0..40),
        ) {
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            let mut got = Vec::new();
            leapfrog_intersect(
                &[&a, &b, &c],
                &[0..a.len(), 0..b.len(), 0..c.len()],
                |v, _| { got.push(v); true },
            );
            use std::collections::BTreeSet;
            let sa: BTreeSet<_> = a.iter().copied().collect();
            let sb: BTreeSet<_> = b.iter().copied().collect();
            let sc: BTreeSet<_> = c.iter().copied().collect();
            let expect: Vec<i64> =
                sa.intersection(&sb).copied().collect::<BTreeSet<_>>()
                  .intersection(&sc).copied().collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn seek_matches_partition_point(
            mut col in proptest::collection::vec(-20i64..20, 1..50),
            target in -25i64..25,
        ) {
            col.sort_unstable();
            let got = seek(&col, 0, col.len(), target);
            let expect = col.partition_point(|&x| x < target);
            prop_assert_eq!(got, expect);
        }
    }
}
