//! Explicit factorized representations (f-representations), Figures 7–10.
//!
//! An f-rep is a DAG of unions (over a variable's values) and products
//! (over conditionally independent branches), modelled on a variable order.
//! Subtrees whose dependency set repeats are *cached* and shared — in the
//! paper's example the price subtree under `item = bun` is built once and
//! referenced from both `burger` and `hotdog` (§5.1).
//!
//! This module favours clarity over speed: it materializes the
//! representation (values are generic [`Value`]s), counts its size in
//! values, enumerates the flat result, and evaluates ring aggregates in one
//! pass with sharing-aware memoization. The fused evaluator in [`crate::eval`]
//! is the high-performance path that never materializes anything.

use crate::hypergraph::Hypergraph;
use crate::order::VarOrder;
use fdb_data::{DataError, Database, Relation, Schema, Value};
use fdb_ring::Semiring;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::Range;
use std::rc::Rc;

/// A node of a factorized representation.
#[derive(Debug)]
pub enum FNode {
    /// A union over the values of `var`; each value carries one product
    /// branch per child of `var` in the variable order.
    Union {
        /// Hypergraph variable id.
        var: usize,
        /// `(value, child branches)` in ascending value order.
        entries: Vec<(Value, Vec<Rc<FNode>>)>,
    },
}

/// A factorized representation of a natural join.
pub struct FRep {
    hg: Hypergraph,
    vo: VarOrder,
    roots: Vec<Rc<FNode>>,
}

struct Builder<'a> {
    vo: &'a VarOrder,
    /// Per relation: one `Vec<Value>` column per key level (VO-depth order).
    cols: Vec<Vec<Vec<Value>>>,
    /// Per VO node: participating `(relation, level)` pairs.
    parts_at: Vec<Vec<(usize, usize)>>,
    /// Cache: `(node, dep-value key) -> shared subtree`.
    cache: HashMap<(usize, Vec<Value>), Rc<FNode>>,
    /// Current binding per variable (used to form dep keys).
    binding: Vec<Option<Value>>,
}

impl FRep {
    /// Builds the f-rep of the natural join of `relations` over the
    /// join-tree variable order. Every attribute becomes a variable, as in
    /// Figure 8 (set semantics: duplicate rows collapse).
    pub fn build(db: &Database, relations: &[&str]) -> Result<FRep, DataError> {
        let hg = Hypergraph::natural_join(db, relations)?;
        let jt = hg
            .join_tree()
            .ok_or_else(|| DataError::Invalid("cyclic query: no join tree".into()))?;
        let vo = VarOrder::from_join_tree(&hg, &jt);
        Self::build_with_order(db, relations, hg, vo)
    }

    /// Builds over an explicit variable order (must cover all attributes).
    pub fn build_with_order(
        db: &Database,
        relations: &[&str],
        hg: Hypergraph,
        vo: VarOrder,
    ) -> Result<FRep, DataError> {
        let nn = vo.nodes().len();
        let mut cols: Vec<Vec<Vec<Value>>> = Vec::with_capacity(relations.len());
        let mut parts_at: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nn];
        for (ri, &rname) in relations.iter().enumerate() {
            let rel = db.get(rname)?;
            let path = vo.path_vars(&hg.edges()[ri].vars).ok_or_else(|| {
                DataError::Invalid(format!("relation `{rname}` off-path in variable order"))
            })?;
            let col_idx: Vec<usize> = path
                .iter()
                .map(|&v| rel.schema().require(&hg.vars()[v]))
                .collect::<Result<_, _>>()?;
            let sorted = rel.sorted_by(&col_idx);
            let rel_cols: Vec<Vec<Value>> = col_idx
                .iter()
                .map(|&c| (0..sorted.len()).map(|r| sorted.value(r, c)).collect())
                .collect();
            for (level, &v) in path.iter().enumerate() {
                let node = vo.node_of_var(v).expect("path var has node");
                parts_at[node].push((ri, level));
            }
            cols.push(rel_cols);
        }
        let mut b = Builder {
            vo: &vo,
            cols,
            parts_at,
            cache: HashMap::new(),
            binding: vec![None; hg.num_vars()],
        };
        let mut ranges: Vec<Range<usize>> =
            b.cols.iter().map(|c| 0..c.first().map(Vec::len).unwrap_or(0)).collect();
        let roots: Vec<Rc<FNode>> =
            vo.roots().to_vec().into_iter().map(|r| b.build_node(r, &mut ranges)).collect();
        Ok(FRep { hg, vo, roots })
    }

    /// The hypergraph (variable names live here).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hg
    }

    /// The variable order this representation is modelled on.
    pub fn var_order(&self) -> &VarOrder {
        &self.vo
    }

    /// Number of *values* in the representation, counting shared (cached)
    /// subtrees once — the paper's size measure for f-reps.
    pub fn size_values(&self) -> usize {
        let mut seen: HashSet<*const FNode> = HashSet::new();
        self.roots.iter().map(|r| count_values(r, &mut seen)).sum()
    }

    /// Number of values *without* sharing (as if caches were expanded).
    pub fn size_values_unshared(&self) -> usize {
        self.roots.iter().map(count_values_unshared).sum()
    }

    /// Enumerates the flat join result. Output schema: variables in
    /// pre-order of the variable order.
    pub fn enumerate(&self) -> Result<Relation, DataError> {
        let pre = self.vo.pre_order();
        let attrs: Vec<fdb_data::Attribute> = pre
            .iter()
            .map(|&n| {
                let var = self.vo.nodes()[n].var;
                // Type: Int unless any relation holds it as Double.
                fdb_data::Attribute::new(self.hg.vars()[var].clone(), fdb_data::AttrType::Int)
            })
            .collect();
        // Correct types by probing actual values during emission; start with
        // a Value-row buffer and build rows generically.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let var_slot: HashMap<usize, usize> =
            pre.iter().enumerate().map(|(i, &n)| (self.vo.nodes()[n].var, i)).collect();
        let mut current: Vec<Option<Value>> = vec![None; pre.len()];
        enumerate_product(&self.roots, &self.vo, &var_slot, &mut current, &mut rows);
        // Infer column types from first row (fall back to Int).
        let attrs: Vec<fdb_data::Attribute> = attrs
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let ty = rows
                    .first()
                    .map(|r| {
                        if r[i].is_int() {
                            fdb_data::AttrType::Int
                        } else {
                            fdb_data::AttrType::Double
                        }
                    })
                    .unwrap_or(fdb_data::AttrType::Int);
                fdb_data::Attribute::new(a.name, ty)
            })
            .collect();
        Relation::from_rows(Schema::new(attrs)?, rows)
    }

    /// Evaluates a sum-product aggregate over the representation in one
    /// bottom-up pass (Figure 9), memoizing shared subtrees so cached
    /// computation is also shared.
    pub fn eval<S: Semiring>(
        &self,
        ring: &S,
        var_lift: &mut dyn FnMut(usize, Value) -> S::Elem,
    ) -> S::Elem {
        let mut memo: HashMap<*const FNode, S::Elem> = HashMap::new();
        let mut acc = ring.one();
        for r in &self.roots {
            let v = eval_node(r, ring, var_lift, &mut memo);
            acc = ring.mul(&acc, &v);
        }
        acc
    }
}

fn eval_node<S: Semiring>(
    node: &Rc<FNode>,
    ring: &S,
    var_lift: &mut dyn FnMut(usize, Value) -> S::Elem,
    memo: &mut HashMap<*const FNode, S::Elem>,
) -> S::Elem {
    let key = Rc::as_ptr(node);
    if let Some(v) = memo.get(&key) {
        return v.clone();
    }
    let FNode::Union { var, entries } = node.as_ref();
    let mut total = ring.zero();
    for (value, children) in entries {
        let mut acc = var_lift(*var, *value);
        for c in children {
            let sub = eval_node(c, ring, var_lift, memo);
            acc = ring.mul(&acc, &sub);
        }
        ring.add_assign(&mut total, &acc);
    }
    memo.insert(key, total.clone());
    total
}

fn count_values(node: &Rc<FNode>, seen: &mut HashSet<*const FNode>) -> usize {
    if !seen.insert(Rc::as_ptr(node)) {
        return 0; // shared subtree counted once
    }
    let FNode::Union { entries, .. } = node.as_ref();
    entries
        .iter()
        .map(|(_, children)| 1 + children.iter().map(|c| count_values(c, seen)).sum::<usize>())
        .sum()
}

fn count_values_unshared(node: &Rc<FNode>) -> usize {
    let FNode::Union { entries, .. } = node.as_ref();
    entries
        .iter()
        .map(|(_, children)| 1 + children.iter().map(count_values_unshared).sum::<usize>())
        .sum()
}

#[allow(clippy::only_used_in_recursion)]
fn enumerate_product(
    branches: &[Rc<FNode>],
    vo: &VarOrder,
    var_slot: &HashMap<usize, usize>,
    current: &mut Vec<Option<Value>>,
    rows: &mut Vec<Vec<Value>>,
) {
    // Cross product over independent branches, then emit when all slots of
    // this sub-forest are filled. We recurse branch by branch.
    fn rec(
        branches: &[Rc<FNode>],
        idx: usize,
        vo: &VarOrder,
        var_slot: &HashMap<usize, usize>,
        current: &mut Vec<Option<Value>>,
        rows: &mut Vec<Vec<Value>>,
        emit: &mut dyn FnMut(&mut Vec<Option<Value>>, &mut Vec<Vec<Value>>),
    ) {
        if idx == branches.len() {
            emit(current, rows);
            return;
        }
        let FNode::Union { var, entries } = branches[idx].as_ref();
        let slot = var_slot[var];
        for (value, children) in entries {
            current[slot] = Some(*value);
            rec(children, 0, vo, var_slot, current, rows, &mut |cur, rws| {
                rec(branches, idx + 1, vo, var_slot, cur, rws, &mut *emit);
            });
            current[slot] = None;
        }
    }
    rec(branches, 0, vo, var_slot, current, rows, &mut |cur, rws| {
        // All variables on every path are bound exactly when every slot that
        // belongs to this assignment is Some; unfilled slots cannot remain
        // because the forest covers all variables.
        let row: Vec<Value> =
            cur.iter().map(|v| v.expect("all variables bound at emission")).collect();
        rws.push(row);
    });
}

impl<'a> Builder<'a> {
    fn build_node(&mut self, node: usize, ranges: &mut Vec<Range<usize>>) -> Rc<FNode> {
        let var = self.vo.nodes()[node].var;
        let parts = self.parts_at[node].clone();
        debug_assert!(!parts.is_empty(), "variable {var} in no relation");
        // Distinct candidate values: intersection of participants' values
        // within current ranges.
        let mut iter = parts.iter();
        let first = iter.next().expect("non-empty");
        let mut candidates: BTreeSet<Value> =
            self.cols[first.0][first.1][ranges[first.0].clone()].iter().copied().collect();
        for &(ri, level) in iter {
            let vals: BTreeSet<Value> =
                self.cols[ri][level][ranges[ri].clone()].iter().copied().collect();
            candidates = candidates.intersection(&vals).copied().collect();
        }
        let children_nodes = self.vo.nodes()[node].children.clone();
        let mut entries = Vec::with_capacity(candidates.len());
        for value in candidates {
            // Narrow each participant's range to the run of `value`.
            let saved: Vec<Range<usize>> =
                parts.iter().map(|&(ri, _)| ranges[ri].clone()).collect();
            for &(ri, level) in &parts {
                let col = &self.cols[ri][level];
                let r = ranges[ri].clone();
                let lo = r.start + col[r.clone()].partition_point(|v| *v < value);
                let hi = r.start + col[r.clone()].partition_point(|v| *v <= value);
                ranges[ri] = lo..hi;
            }
            self.binding[var] = Some(value);
            let mut branches = Vec::with_capacity(children_nodes.len());
            let mut dead = false;
            for &c in &children_nodes {
                let sub = self.build_child_cached(c, ranges);
                match sub {
                    Some(s) => branches.push(s),
                    None => {
                        dead = true;
                        break;
                    }
                }
            }
            self.binding[var] = None;
            for (&(ri, _), old) in parts.iter().zip(saved) {
                ranges[ri] = old;
            }
            if !dead {
                entries.push((value, branches));
            }
        }
        Rc::new(FNode::Union { var, entries })
    }

    /// Builds (or reuses) the subtree for child node `c` keyed on its
    /// dependency-set values. Returns `None` if the subtree is empty
    /// (no matching values — the parent entry must be dropped).
    fn build_child_cached(
        &mut self,
        c: usize,
        ranges: &mut Vec<Range<usize>>,
    ) -> Option<Rc<FNode>> {
        let dep = self.vo.nodes()[c].dep.clone();
        let key: Vec<Value> =
            dep.iter().map(|&v| self.binding[v].expect("dep var bound above")).collect();
        if let Some(hit) = self.cache.get(&(c, key.clone())) {
            let FNode::Union { entries, .. } = hit.as_ref();
            if entries.is_empty() {
                return None;
            }
            return Some(Rc::clone(hit));
        }
        let built = self.build_node(c, ranges);
        let empty = {
            let FNode::Union { entries, .. } = built.as_ref();
            entries.is_empty()
        };
        self.cache.insert((c, key), Rc::clone(&built));
        if empty {
            None
        } else {
            Some(built)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::AttrType;
    use fdb_ring::{F64Ring, I64Ring, KeyedRing};

    /// The paper's Figure 7 database: Orders, Dish, Items.
    pub fn dish_db() -> Database {
        let mut db = Database::new();
        // Dictionary-encode the strings deterministically.
        // customers: Elise=0, Steve=1, Joe=2; days: Monday=0, Friday=1;
        // dishes: burger=0, hotdog=1; items: patty=0, onion=1, bun=2, sausage=3.
        let orders = Relation::from_rows(
            Schema::of(&[
                ("customer", AttrType::Categorical),
                ("day", AttrType::Categorical),
                ("dish", AttrType::Categorical),
            ]),
            vec![
                vec![Value::Int(0), Value::Int(0), Value::Int(0)], // Elise Monday burger
                vec![Value::Int(0), Value::Int(1), Value::Int(0)], // Elise Friday burger
                vec![Value::Int(1), Value::Int(1), Value::Int(1)], // Steve Friday hotdog
                vec![Value::Int(2), Value::Int(1), Value::Int(1)], // Joe Friday hotdog
            ],
        )
        .unwrap();
        let dish = Relation::from_rows(
            Schema::of(&[("dish", AttrType::Categorical), ("item", AttrType::Categorical)]),
            vec![
                vec![Value::Int(0), Value::Int(0)], // burger patty
                vec![Value::Int(0), Value::Int(1)], // burger onion
                vec![Value::Int(0), Value::Int(2)], // burger bun
                vec![Value::Int(1), Value::Int(2)], // hotdog bun
                vec![Value::Int(1), Value::Int(1)], // hotdog onion
                vec![Value::Int(1), Value::Int(3)], // hotdog sausage
            ],
        )
        .unwrap();
        let items = Relation::from_rows(
            Schema::of(&[("item", AttrType::Categorical), ("price", AttrType::Double)]),
            vec![
                vec![Value::Int(0), Value::F64(6.0)], // patty 6
                vec![Value::Int(1), Value::F64(2.0)], // onion 2
                vec![Value::Int(2), Value::F64(2.0)], // bun 2
                vec![Value::Int(3), Value::F64(4.0)], // sausage 4
            ],
        )
        .unwrap();
        db.add("Orders", orders);
        db.add("Dish", dish);
        db.add("Items", items);
        db
    }

    #[test]
    fn figure7_join_has_12_tuples_60_values() {
        let db = dish_db();
        let frep = FRep::build(&db, &["Orders", "Dish", "Items"]).unwrap();
        let flat = frep.enumerate().unwrap();
        assert_eq!(flat.len(), 12, "natural join of Figure 7 has 12 tuples");
        assert_eq!(flat.len() * flat.schema().arity(), 60, "60 values flat");
    }

    #[test]
    fn figure8_factorized_size_beats_flat_and_input() {
        let db = dish_db();
        // The paper's Figure 8 order has dish at the root: reroot the join
        // tree at the Dish relation (edge index 1).
        let rels = ["Orders", "Dish", "Items"];
        let hg = Hypergraph::natural_join(&db, &rels).unwrap();
        let jt = hg.join_tree().unwrap().rerooted(1);
        let vo = VarOrder::from_join_tree(&hg, &jt);
        let frep = FRep::build_with_order(&db, &rels, hg, vo).unwrap();
        let shared = frep.size_values();
        let unshared = frep.size_values_unshared();
        // Input relations hold 4*3 + 6*2 + 4*2 = 32 values; flat join 60.
        // The dish-rooted order reaches 19 values with caching — the same
        // size as the paper's hand-drawn Figure 8 representation.
        assert_eq!(shared, 19);
        assert_eq!(unshared, 35);
        assert!(shared < 32, "factorization must beat the input");
        assert!(unshared < 60, "even unshared beats the flat join");
    }

    #[test]
    fn default_order_roots_at_items_giving_21_values() {
        // GYO happens to root the join tree at Items; that order is valid
        // but 2 values larger — variable orders matter (§5.1).
        let db = dish_db();
        let frep = FRep::build(&db, &["Orders", "Dish", "Items"]).unwrap();
        assert_eq!(frep.size_values(), 21);
    }

    #[test]
    fn figure9_count_aggregate_is_12() {
        let db = dish_db();
        let frep = FRep::build(&db, &["Orders", "Dish", "Items"]).unwrap();
        let count = frep.eval(&I64Ring, &mut |_, _| 1);
        assert_eq!(count, 12);
    }

    #[test]
    fn figure9_sum_price_group_by_dish() {
        let db = dish_db();
        let frep = FRep::build(&db, &["Orders", "Dish", "Items"]).unwrap();
        let hg = frep.hypergraph();
        let dish = hg.var_id("dish").unwrap();
        let price = hg.var_id("price").unwrap();
        let ring = KeyedRing::new(F64Ring, 1);
        let got = frep.eval(&ring, &mut |var, value| {
            if var == dish {
                ring.tag(0, value, 1.0)
            } else if var == price {
                ring.scalar(value.as_f64())
            } else {
                ring.one()
            }
        });
        // Paper: 20 * f(burger) + 16 * f(hotdog).
        let burger: Box<[Value]> = vec![Value::Int(0)].into();
        let hotdog: Box<[Value]> = vec![Value::Int(1)].into();
        assert_eq!(got.get(&burger).copied(), Some(20.0));
        assert_eq!(got.get(&hotdog).copied(), Some(16.0));
    }

    #[test]
    fn figure9_total_sum_price() {
        let db = dish_db();
        let frep = FRep::build(&db, &["Orders", "Dish", "Items"]).unwrap();
        let hg = frep.hypergraph();
        let price = hg.var_id("price").unwrap();
        let total = frep.eval(&F64Ring, &mut |var, value| {
            if var == price {
                value.as_f64()
            } else {
                1.0
            }
        });
        assert_eq!(total, 36.0); // 20 + 16
    }

    #[test]
    fn enumerate_matches_eval_count_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let mut db = Database::new();
            let mut r = Relation::new(Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int)]));
            let mut s = Relation::new(Schema::of(&[("b", AttrType::Int), ("c", AttrType::Int)]));
            for _ in 0..rng.gen_range(0..20) {
                r.push_row(&[Value::Int(rng.gen_range(0..5)), Value::Int(rng.gen_range(0..5))])
                    .unwrap();
            }
            for _ in 0..rng.gen_range(0..20) {
                s.push_row(&[Value::Int(rng.gen_range(0..5)), Value::Int(rng.gen_range(0..5))])
                    .unwrap();
            }
            // Set semantics: dedup via sort + manual distinct.
            db.add("R", dedup(&r));
            db.add("S", dedup(&s));
            let frep = FRep::build(&db, &["R", "S"]).unwrap();
            let flat = frep.enumerate().unwrap();
            let count = frep.eval(&I64Ring, &mut |_, _| 1);
            assert_eq!(flat.len() as i64, count);
        }
    }

    fn dedup(r: &Relation) -> Relation {
        let mut seen = std::collections::HashSet::new();
        r.filter(|row| seen.insert(row.to_vec()))
    }
}
