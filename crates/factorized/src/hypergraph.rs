//! Query hypergraphs, GYO acyclicity, and join trees.
//!
//! A natural-join query is a hypergraph: variables are attribute names,
//! hyperedges are the relations' attribute sets. α-acyclicity is decided by
//! the classical GYO ear-removal procedure, which simultaneously yields a
//! join tree — the backbone along which LMFAO decomposes aggregate batches
//! (§4 "Sharing computation") and F-IVM builds its view trees.

use fdb_data::{DataError, Database, Schema};
use std::collections::HashMap;

/// A hyperedge: one relation of the query.
#[derive(Debug, Clone)]
pub struct HyperEdge {
    /// Relation name (key into the [`Database`]).
    pub name: String,
    /// Variable ids covered by this relation, ascending.
    pub vars: Vec<usize>,
}

/// A join-query hypergraph.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    vars: Vec<String>,
    edges: Vec<HyperEdge>,
}

impl Hypergraph {
    /// Builds the hypergraph of the natural join of `relations` in `db`.
    /// Variables are attribute names; equal names join.
    pub fn natural_join(db: &Database, relations: &[&str]) -> Result<Self, DataError> {
        let mut vars: Vec<String> = Vec::new();
        let mut var_ids: HashMap<String, usize> = HashMap::new();
        let mut edges = Vec::with_capacity(relations.len());
        for &rname in relations {
            let rel = db.get(rname)?;
            let mut evars: Vec<usize> = rel
                .schema()
                .names()
                .map(|a| {
                    *var_ids.entry(a.to_string()).or_insert_with(|| {
                        vars.push(a.to_string());
                        vars.len() - 1
                    })
                })
                .collect();
            evars.sort_unstable();
            edges.push(HyperEdge { name: rname.to_string(), vars: evars });
        }
        Ok(Self { vars, edges })
    }

    /// Builds a hypergraph directly from `(relation name, schema)` pairs.
    pub fn from_schemas(schemas: &[(&str, &Schema)]) -> Self {
        let mut vars: Vec<String> = Vec::new();
        let mut var_ids: HashMap<String, usize> = HashMap::new();
        let edges = schemas
            .iter()
            .map(|(name, schema)| {
                let mut evars: Vec<usize> = schema
                    .names()
                    .map(|a| {
                        *var_ids.entry(a.to_string()).or_insert_with(|| {
                            vars.push(a.to_string());
                            vars.len() - 1
                        })
                    })
                    .collect();
                evars.sort_unstable();
                HyperEdge { name: name.to_string(), vars: evars }
            })
            .collect();
        Self { vars, edges }
    }

    /// Builds the *join-key hypergraph*: variables are only the attributes
    /// shared by at least two of `relations`, plus any explicitly listed
    /// `extra` attributes (e.g. group-by attributes). All such variables
    /// must be int-backed — the fast evaluator's trie kernels require it.
    /// Remaining attributes stay relation-private payload.
    pub fn join_keys_plus(
        db: &Database,
        relations: &[&str],
        extra: &[&str],
    ) -> Result<Self, DataError> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let mut schemas = Vec::with_capacity(relations.len());
        for &rname in relations {
            let rel = db.get(rname)?;
            schemas.push((rname, rel.schema().clone()));
            for a in rel.schema().names() {
                *counts.entry(a).or_insert(0) += 1;
            }
        }
        let keep =
            |name: &str| counts.get(name).copied().unwrap_or(0) >= 2 || extra.contains(&name);
        let mut vars: Vec<String> = Vec::new();
        let mut var_ids: HashMap<String, usize> = HashMap::new();
        let mut edges = Vec::with_capacity(relations.len());
        for (rname, schema) in &schemas {
            let mut evars = Vec::new();
            for attr in schema.attrs() {
                if keep(&attr.name) {
                    if !attr.ty.is_int_backed() {
                        return Err(DataError::Invalid(format!(
                            "join/group-by attribute `{}` must be int-backed",
                            attr.name
                        )));
                    }
                    let id = *var_ids.entry(attr.name.clone()).or_insert_with(|| {
                        vars.push(attr.name.clone());
                        vars.len() - 1
                    });
                    evars.push(id);
                }
            }
            evars.sort_unstable();
            edges.push(HyperEdge { name: rname.to_string(), vars: evars });
        }
        Ok(Self { vars, edges })
    }

    /// Variable names, indexed by variable id.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[HyperEdge] {
        &self.edges
    }

    /// The variable id of `name`.
    pub fn var_id(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Ids of edges containing variable `v`.
    pub fn edges_with_var(&self, v: usize) -> Vec<usize> {
        self.edges.iter().enumerate().filter(|(_, e)| e.vars.contains(&v)).map(|(i, _)| i).collect()
    }

    /// GYO ear removal. Returns a [`JoinTree`] if the query is α-acyclic,
    /// `None` otherwise (e.g. the triangle query).
    pub fn join_tree(&self) -> Option<JoinTree> {
        let n = self.edges.len();
        if n == 0 {
            return Some(JoinTree { parent: vec![], root: None, order: vec![] });
        }
        let mut alive: Vec<bool> = vec![true; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut removal_order: Vec<usize> = Vec::with_capacity(n);
        let mut remaining = n;
        loop {
            if remaining == 1 {
                let root = alive.iter().position(|&a| a).expect("one edge remains");
                removal_order.push(root);
                return Some(JoinTree { parent, root: Some(root), order: removal_order });
            }
            let mut progressed = false;
            'ears: for e in 0..n {
                if !alive[e] {
                    continue;
                }
                // Shared vars of e: vars also in another alive edge.
                let shared: Vec<usize> = self.edges[e]
                    .vars
                    .iter()
                    .copied()
                    .filter(|&v| {
                        (0..n).any(|o| o != e && alive[o] && self.edges[o].vars.contains(&v))
                    })
                    .collect();
                // e is an ear if some alive witness w covers all shared vars.
                for w in 0..n {
                    if w == e || !alive[w] {
                        continue;
                    }
                    if shared.iter().all(|v| self.edges[w].vars.contains(v)) {
                        alive[e] = false;
                        parent[e] = Some(w);
                        removal_order.push(e);
                        remaining -= 1;
                        progressed = true;
                        break 'ears;
                    }
                }
            }
            if !progressed {
                return None; // cyclic
            }
        }
    }

    /// True iff the query is α-acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.join_tree().is_some()
    }

    /// The sub-hypergraph induced by a variable subset: edges are restricted
    /// to `keep`, empty restrictions dropped. Used by the width measures.
    pub fn induced(&self, keep: &[usize]) -> Hypergraph {
        let edges = self
            .edges
            .iter()
            .filter_map(|e| {
                let vars: Vec<usize> =
                    e.vars.iter().copied().filter(|v| keep.contains(v)).collect();
                if vars.is_empty() {
                    None
                } else {
                    Some(HyperEdge { name: e.name.clone(), vars })
                }
            })
            .collect();
        Hypergraph { vars: self.vars.clone(), edges }
    }
}

/// A rooted join tree over the edges of an acyclic hypergraph.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Parent edge id of each edge (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// The root edge id (`None` only for the empty query).
    pub root: Option<usize>,
    /// GYO removal order (leaves first, root last) — reversing it gives a
    /// top-down order.
    pub order: Vec<usize>,
}

impl JoinTree {
    /// Children of edge `e`.
    pub fn children(&self, e: usize) -> Vec<usize> {
        self.parent.iter().enumerate().filter(|(_, p)| **p == Some(e)).map(|(i, _)| i).collect()
    }

    /// Re-roots the tree at edge `new_root` (LMFAO roots different
    /// aggregates at different nodes — §4).
    pub fn rerooted(&self, new_root: usize) -> JoinTree {
        let n = self.parent.len();
        // Build adjacency, then BFS from the new root.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (c, p) in self.parent.iter().enumerate() {
            if let Some(p) = *p {
                adj[c].push(p);
                adj[p].push(c);
            }
        }
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from([new_root]);
        seen[new_root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        order.reverse(); // leaves first
        JoinTree { parent, root: Some(new_root), order }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::AttrType;

    fn schema(names: &[&str]) -> Schema {
        Schema::of(&names.iter().map(|n| (*n, AttrType::Int)).collect::<Vec<_>>())
    }

    #[test]
    fn path_query_is_acyclic() {
        // R(a,b) ⋈ S(b,c) ⋈ T(c,d)
        let (r, s, t) = (schema(&["a", "b"]), schema(&["b", "c"]), schema(&["c", "d"]));
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s), ("T", &t)]);
        assert_eq!(hg.num_vars(), 4);
        let jt = hg.join_tree().expect("path is acyclic");
        let root = jt.root.unwrap();
        // The tree must be connected: exactly one root, two parented edges.
        assert_eq!(jt.parent.iter().filter(|p| p.is_none()).count(), 1);
        assert_eq!(jt.children(root).len() + usize::from(jt.parent[root].is_some()), 1);
    }

    #[test]
    fn triangle_is_cyclic() {
        let (r, s, t) = (schema(&["a", "b"]), schema(&["b", "c"]), schema(&["a", "c"]));
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s), ("T", &t)]);
        assert!(hg.join_tree().is_none());
        assert!(!hg.is_acyclic());
    }

    #[test]
    fn star_query_join_tree_roots_anywhere() {
        // Fact(a,b,c) with dims D1(a,x), D2(b,y), D3(c,z)
        let f = schema(&["a", "b", "c"]);
        let d1 = schema(&["a", "x"]);
        let d2 = schema(&["b", "y"]);
        let d3 = schema(&["c", "z"]);
        let hg = Hypergraph::from_schemas(&[("F", &f), ("D1", &d1), ("D2", &d2), ("D3", &d3)]);
        let jt = hg.join_tree().expect("star is acyclic");
        // Re-rooting preserves node count and reaches every edge.
        for root in 0..4 {
            let rr = jt.rerooted(root);
            assert_eq!(rr.root, Some(root));
            assert_eq!(rr.order.len(), 4);
            assert_eq!(rr.parent[root], None);
        }
    }

    #[test]
    fn cyclic_four_cycle_detected() {
        let r = schema(&["a", "b"]);
        let s = schema(&["b", "c"]);
        let t = schema(&["c", "d"]);
        let u = schema(&["d", "a"]);
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s), ("T", &t), ("U", &u)]);
        assert!(!hg.is_acyclic());
    }

    #[test]
    fn induced_subgraph_drops_empty_edges() {
        let (r, s) = (schema(&["a", "b"]), schema(&["c", "d"]));
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s)]);
        let sub = hg.induced(&[0, 1]);
        assert_eq!(sub.edges().len(), 1);
        assert_eq!(sub.edges()[0].name, "R");
    }

    #[test]
    fn single_edge_and_empty_queries() {
        let r = schema(&["a", "b"]);
        let hg = Hypergraph::from_schemas(&[("R", &r)]);
        let jt = hg.join_tree().unwrap();
        assert_eq!(jt.root, Some(0));
        let empty = Hypergraph::from_schemas(&[]);
        assert!(empty.join_tree().unwrap().root.is_none());
    }

    #[test]
    fn edges_with_var_and_lookup() {
        let (r, s) = (schema(&["a", "b"]), schema(&["b", "c"]));
        let hg = Hypergraph::from_schemas(&[("R", &r), ("S", &s)]);
        let b = hg.var_id("b").unwrap();
        assert_eq!(hg.edges_with_var(b), vec![0, 1]);
        assert_eq!(hg.var_id("zzz"), None);
    }
}
