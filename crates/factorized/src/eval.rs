//! The fused factorized evaluator (paper §5.1).
//!
//! Joins and aggregates are fused: one recursion over the variable order
//! intersects the sorted relations' current ranges on each variable
//! (leapfrog), multiplies the independent branches' results, and sums over
//! the variable's values — all in an arbitrary (semi)ring. The factorized
//! join is never materialized.
//!
//! For acyclic queries with a join-tree-derived variable order this runs in
//! time `O(N · polylog N)` — linear in the input, not the output (§2.1) —
//! and with the count ring it *is* a worst-case-optimal join counter.
//! [`materialize_join`] enumerates the flat join result from the same
//! recursion for the baselines that need the data matrix.

use crate::hypergraph::Hypergraph;
use crate::order::VarOrder;
use crate::trie::leapfrog_intersect;
use fdb_data::{DataError, Database, Relation, Schema, SortCache, Value};
use fdb_ring::{I64Ring, Semiring};
use std::ops::Range;
use std::sync::Arc;

/// A join query prepared for repeated factorized evaluation: the key-graph,
/// a variable order, and each relation sorted by its root-to-leaf path.
///
/// Sorted views are normally served by the global
/// [`SortCache`](fdb_data::SortCache) — preparing the same (unmutated)
/// relations with the same variable order a second time reuses the sorted
/// copies instead of re-sorting, which is what keeps per-tree-node CART
/// batches from paying the sort bill at every node.
pub struct EvalSpec {
    hg: Hypergraph,
    vo: VarOrder,
    rels: Vec<Arc<Relation>>,
    /// Per relation: schema column index of each key level (VO-depth order).
    key_cols: Vec<Vec<usize>>,
    /// Per VO node: `(relation index, level)` of participating relations.
    parts_at: Vec<Vec<(usize, usize)>>,
    /// Per VO node: relations whose deepest key level is this node.
    deepest_at: Vec<Vec<usize>>,
    /// Relations with no key variables at all (pure cross product).
    free_rels: Vec<usize>,
    /// Use the batched 1-/2-way intersection collectors of [`crate::trie`]
    /// where a node's arity allows; `false` pins the generic callback
    /// leapfrog — the scalar baseline arm of the kernel A/B.
    vectorize: bool,
}

/// Reusable per-variable-order-node buffers of the leapfrog recursion: the
/// matches found at the node and the ranges saved while narrowing. One set
/// lives per node for the whole recursion — no per-visit allocation.
#[derive(Default, Clone)]
struct NodeScratch {
    /// Matching values at this node.
    vals: Vec<i64>,
    /// Per match, `parts` run ranges, flattened contiguously.
    runs: Vec<Range<usize>>,
    /// The `parts` ranges saved across one match's recursion.
    saved: Vec<Range<usize>>,
    /// Current `parts` ranges handed to the leapfrog.
    cur: Vec<Range<usize>>,
}

impl EvalSpec {
    /// Prepares the natural join of `relations` for evaluation. Join
    /// variables are the attributes shared by ≥ 2 relations plus `extra`
    /// (group-by attributes). Fails if the key-graph is cyclic.
    pub fn new(db: &Database, relations: &[&str], extra: &[&str]) -> Result<Self, DataError> {
        Self::new_with_cache(db, relations, extra, Some(SortCache::global()))
    }

    /// [`EvalSpec::new`] with an explicit sort-cache choice: `None` always
    /// re-sorts (the perf-regression baseline).
    pub fn new_with_cache(
        db: &Database,
        relations: &[&str],
        extra: &[&str],
        cache: Option<&SortCache>,
    ) -> Result<Self, DataError> {
        let hg = Hypergraph::join_keys_plus(db, relations, extra)?;
        let jt = hg.join_tree().ok_or_else(|| {
            DataError::Invalid("cyclic join: materialize a hypertree bag first".into())
        })?;
        let vo = VarOrder::from_join_tree(&hg, &jt);
        Self::with_order_cached(db, relations, hg, vo, cache)
    }

    /// Prepares with an explicit hypergraph + variable order (used by
    /// benchmarks that control the order; `hg` must stem from the same
    /// relation list).
    pub fn with_order(
        db: &Database,
        relations: &[&str],
        hg: Hypergraph,
        vo: VarOrder,
    ) -> Result<Self, DataError> {
        Self::with_order_cached(db, relations, hg, vo, Some(SortCache::global()))
    }

    /// [`EvalSpec::with_order`] with an explicit sort-cache choice.
    pub fn with_order_cached(
        db: &Database,
        relations: &[&str],
        hg: Hypergraph,
        vo: VarOrder,
        cache: Option<&SortCache>,
    ) -> Result<Self, DataError> {
        let nn = vo.nodes().len();
        let mut rels = Vec::with_capacity(relations.len());
        let mut key_cols = Vec::with_capacity(relations.len());
        let mut parts_at: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nn];
        let mut deepest_at: Vec<Vec<usize>> = vec![Vec::new(); nn];
        let mut free_rels = Vec::new();
        for (ri, &rname) in relations.iter().enumerate() {
            let rel = db.get(rname)?;
            let evars = &hg.edges()[ri].vars;
            let path = vo.path_vars(evars).ok_or_else(|| {
                DataError::Invalid(format!("relation `{rname}` is off-path in the variable order"))
            })?;
            let cols: Vec<usize> = path
                .iter()
                .map(|&v| rel.schema().require(&hg.vars()[v]))
                .collect::<Result<_, _>>()?;
            // Key variables must be integer-backed: a `Double` join or
            // group-by attribute is a type-confused query and surfaces
            // here as a typed error instead of panicking inside the
            // leapfrog's column access (`level_cols`).
            for &c in &cols {
                rel.try_int_col(c)?;
            }
            let sorted = match cache {
                Some(c) => c.sorted_by(rel, &cols),
                None => Arc::new(rel.sorted_by(&cols)),
            };
            if path.is_empty() {
                free_rels.push(ri);
            } else {
                for (level, &v) in path.iter().enumerate() {
                    let node = vo.node_of_var(v).expect("path var has a node");
                    parts_at[node].push((ri, level));
                }
                let last = vo.node_of_var(*path.last().expect("non-empty")).expect("node");
                deepest_at[last].push(ri);
            }
            rels.push(sorted);
            key_cols.push(cols);
        }
        Ok(Self { hg, vo, rels, key_cols, parts_at, deepest_at, free_rels, vectorize: true })
    }

    /// Toggles the batched intersection collectors (on by default); see
    /// the `vectorize` field. The factorized engine's baseline-hash
    /// configuration switches this off.
    pub fn set_vectorize(&mut self, on: bool) {
        self.vectorize = on;
    }

    /// Per VO node, the key column slices of its participating relations —
    /// precomputed once per evaluation so the recursion allocates nothing.
    fn level_cols(&self) -> Vec<Vec<&[i64]>> {
        self.parts_at
            .iter()
            .map(|parts| {
                parts
                    .iter()
                    .map(|&(ri, level)| self.rels[ri].int_col(self.key_cols[ri][level]))
                    .collect()
            })
            .collect()
    }

    /// Runs the leapfrog at `node` over the current ranges, filling the
    /// node's scratch buffers with the matching values and runs.
    fn collect_matches(
        &self,
        node: usize,
        ranges: &[Range<usize>],
        cols_at: &[Vec<&[i64]>],
        scratch: &mut [NodeScratch],
    ) {
        let parts = &self.parts_at[node];
        let s = &mut scratch[node];
        s.cur.clear();
        s.cur.extend(parts.iter().map(|&(ri, _)| ranges[ri].clone()));
        s.vals.clear();
        s.runs.clear();
        let NodeScratch { vals, runs, cur, .. } = s;
        // The 1- and 2-relation shapes dominate snowflake joins; their
        // batched collectors fill the buffers directly, skipping the
        // generic leapfrog's callback dispatch and cursor rotation.
        if self.vectorize {
            match cols_at[node].as_slice() {
                [col] => {
                    crate::trie::collect_runs(col, cur[0].clone(), vals, runs);
                    return;
                }
                [a, b] => {
                    crate::trie::collect_pair(a, cur[0].clone(), b, cur[1].clone(), vals, runs);
                    return;
                }
                _ => {}
            }
        }
        leapfrog_intersect(&cols_at[node], cur, |v, rs| {
            vals.push(v);
            runs.extend_from_slice(rs);
            true
        });
    }

    /// The key hypergraph.
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hg
    }

    /// The variable order.
    pub fn var_order(&self) -> &VarOrder {
        &self.vo
    }

    /// The `i`-th relation, sorted by its variable-order path.
    pub fn relation(&self, i: usize) -> &Relation {
        &self.rels[i]
    }

    /// The schema column index of `attr` in relation `i`.
    pub fn col_index(&self, i: usize, attr: &str) -> Result<usize, DataError> {
        self.rels[i].schema().require(attr)
    }

    /// Evaluates the sum-product over the join in `ring`.
    ///
    /// * `var_lift(var_id, value)` is multiplied in once per distinct value
    ///   of each variable (e.g. group-by tagging, a feature of the key).
    /// * `leaf_lift(rel_idx, rows)` is multiplied in once per relation once
    ///   all its key variables are bound, over its matching row range —
    ///   this is where payload (`Double`) columns are aggregated.
    pub fn eval<S, FV, FL>(&self, ring: &S, mut var_lift: FV, mut leaf_lift: FL) -> S::Elem
    where
        S: Semiring,
        FV: FnMut(usize, i64) -> S::Elem,
        FL: FnMut(usize, Range<usize>) -> S::Elem,
    {
        let mut ranges: Vec<Range<usize>> = self.rels.iter().map(|r| 0..r.len()).collect();
        let cols_at = self.level_cols();
        let mut scratch = vec![NodeScratch::default(); self.vo.nodes().len()];
        let mut acc = ring.one();
        for &f in &self.free_rels {
            acc = ring.mul(&acc, &leaf_lift(f, 0..self.rels[f].len()));
        }
        for &root in self.vo.roots() {
            let sub = self.eval_node(
                root,
                &mut ranges,
                &cols_at,
                &mut scratch,
                ring,
                &mut var_lift,
                &mut leaf_lift,
            );
            acc = ring.mul(&acc, &sub);
        }
        acc
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_node<S, FV, FL>(
        &self,
        node: usize,
        ranges: &mut Vec<Range<usize>>,
        cols_at: &[Vec<&[i64]>],
        scratch: &mut Vec<NodeScratch>,
        ring: &S,
        var_lift: &mut FV,
        leaf_lift: &mut FL,
    ) -> S::Elem
    where
        S: Semiring,
        FV: FnMut(usize, i64) -> S::Elem,
        FL: FnMut(usize, Range<usize>) -> S::Elem,
    {
        let var = self.vo.nodes()[node].var;
        let parts = &self.parts_at[node];
        let np = parts.len();
        debug_assert!(np > 0, "every key variable is in some relation");
        let mut total = ring.zero();
        // Leapfrog over the participating relations' current ranges into
        // this node's scratch (the recursion needs `ranges` mutable, so
        // matches are collected first — bounded by the distinct values).
        // A node's buffers are refilled only by its own next visit, which
        // cannot happen while this invocation iterates them: recursion
        // descends strictly into child nodes.
        self.collect_matches(node, ranges, cols_at, scratch);
        for mi in 0..scratch[node].vals.len() {
            let v = scratch[node].vals[mi];
            // Narrow ranges, saving old ones in the node scratch.
            {
                let s = &mut scratch[node];
                s.saved.clear();
                for (pi, &(ri, _)) in parts.iter().enumerate() {
                    s.saved.push(ranges[ri].clone());
                    ranges[ri] = s.runs[mi * np + pi].clone();
                }
            }
            let mut acc = var_lift(var, v);
            for &ri in &self.deepest_at[node] {
                acc = ring.mul(&acc, &leaf_lift(ri, ranges[ri].clone()));
            }
            for ci in 0..self.vo.nodes()[node].children.len() {
                let c = self.vo.nodes()[node].children[ci];
                let sub = self.eval_node(c, ranges, cols_at, scratch, ring, var_lift, leaf_lift);
                if ring.is_zero(&sub) {
                    acc = ring.zero();
                    break;
                }
                acc = ring.mul(&acc, &sub);
            }
            ring.add_assign(&mut total, &acc);
            let s = &mut scratch[node];
            for (pi, &(ri, _)) in parts.iter().enumerate() {
                ranges[ri] = s.saved[pi].clone();
            }
        }
        total
    }

    /// The join cardinality (bag semantics), without materialization.
    pub fn count(&self) -> i64 {
        self.eval(
            &I64Ring,
            |_, _| 1,
            |ri, rows| {
                let _ = ri;
                rows.len() as i64
            },
        )
    }
}

/// Convenience: prepares and evaluates in one call.
pub fn eval_acyclic<S, FV, FL>(
    db: &Database,
    relations: &[&str],
    extra: &[&str],
    ring: &S,
    var_lift: FV,
    leaf_lift: FL,
) -> Result<S::Elem, DataError>
where
    S: Semiring,
    FV: FnMut(usize, i64) -> S::Elem,
    FL: FnMut(usize, Range<usize>) -> S::Elem,
{
    let spec = EvalSpec::new(db, relations, extra)?;
    Ok(spec.eval(ring, var_lift, leaf_lift))
}

/// Materializes the flat natural join via the same trie recursion (an
/// LFTJ-style worst-case-optimal join). The output schema lists the key
/// variables first (in variable-order pre-order), then each relation's
/// payload attributes in relation order.
pub fn materialize_join(db: &Database, relations: &[&str]) -> Result<Relation, DataError> {
    let spec = EvalSpec::new(db, relations, &[])?;
    let hg = &spec.hg;
    // Output schema: key vars, then payload columns per relation.
    let mut attrs = Vec::new();
    let pre = spec.vo.pre_order();
    let var_cols: Vec<usize> = pre.iter().map(|&n| spec.vo.nodes()[n].var).collect();
    for &v in &var_cols {
        // Find the attribute type from any relation carrying it.
        let name = &hg.vars()[v];
        let (ri, _) = spec.parts_at[spec.vo.node_of_var(v).expect("node")][0];
        let ci = spec.rels[ri].schema().require(name)?;
        attrs.push(spec.rels[ri].schema().attr(ci).clone());
    }
    // Payload columns: every attribute that is not a key variable.
    let mut payload_cols: Vec<(usize, usize)> = Vec::new(); // (rel, col)
    for (ri, rel) in spec.rels.iter().enumerate() {
        for (ci, a) in rel.schema().attrs().iter().enumerate() {
            if hg.var_id(&a.name).is_none() {
                payload_cols.push((ri, ci));
                attrs.push(a.clone());
            }
        }
    }
    let schema = Schema::new(attrs)?;
    let mut out = Relation::new(schema);
    let nvars = var_cols.len();
    let mut key_vals: Vec<i64> = vec![0; nvars];
    // Recursion identical to eval, but emitting tuples at the bottom.
    let mut ranges: Vec<Range<usize>> = spec.rels.iter().map(|r| 0..r.len()).collect();
    let cols_at = spec.level_cols();
    let mut scratch = vec![NodeScratch::default(); spec.vo.nodes().len()];
    emit_rec(
        &spec,
        &pre,
        0,
        &mut ranges,
        &cols_at,
        &mut scratch,
        &mut key_vals,
        &payload_cols,
        &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn emit_rec(
    spec: &EvalSpec,
    pre: &[usize],
    depth: usize,
    ranges: &mut Vec<Range<usize>>,
    cols_at: &[Vec<&[i64]>],
    scratch: &mut Vec<NodeScratch>,
    key_vals: &mut Vec<i64>,
    payload_cols: &[(usize, usize)],
    out: &mut Relation,
) -> Result<(), DataError> {
    if depth == pre.len() {
        // All keys bound: cross product of the relations' final ranges.
        let mut row: Vec<Value> = key_vals.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>();
        row.resize(out.schema().arity(), Value::Int(0));
        emit_cross(spec, payload_cols, key_vals.len(), ranges, &mut row, 0, out)?;
        return Ok(());
    }
    // NOTE: the pre-order visits the variable order as a *path-consistent*
    // sequence only for linear orders; for branching orders the recursion
    // below still narrows correctly because each relation participates at
    // its own variables regardless of visit order, and pre-order guarantees
    // parents are bound before children.
    let node = pre[depth];
    let parts = &spec.parts_at[node];
    let np = parts.len();
    spec.collect_matches(node, ranges, cols_at, scratch);
    for mi in 0..scratch[node].vals.len() {
        let v = scratch[node].vals[mi];
        {
            let s = &mut scratch[node];
            s.saved.clear();
            for (pi, &(ri, _)) in parts.iter().enumerate() {
                s.saved.push(ranges[ri].clone());
                ranges[ri] = s.runs[mi * np + pi].clone();
            }
        }
        key_vals[depth] = v;
        emit_rec(spec, pre, depth + 1, ranges, cols_at, scratch, key_vals, payload_cols, out)?;
        let s = &mut scratch[node];
        for (pi, &(ri, _)) in parts.iter().enumerate() {
            ranges[ri] = s.saved[pi].clone();
        }
    }
    Ok(())
}

fn emit_cross(
    spec: &EvalSpec,
    payload_cols: &[(usize, usize)],
    key_arity: usize,
    ranges: &[Range<usize>],
    row: &mut Vec<Value>,
    rel_idx: usize,
    out: &mut Relation,
) -> Result<(), DataError> {
    if rel_idx == spec.rels.len() {
        out.push_row(row)?;
        return Ok(());
    }
    let my_cols: Vec<(usize, usize)> = payload_cols
        .iter()
        .enumerate()
        .filter(|(_, (ri, _))| *ri == rel_idx)
        .map(|(k, (_, ci))| (key_arity + k, *ci))
        .collect();
    if my_cols.is_empty() {
        // This relation contributes multiplicity only.
        for _ in ranges[rel_idx].clone() {
            emit_cross(spec, payload_cols, key_arity, ranges, row, rel_idx + 1, out)?;
        }
        return Ok(());
    }
    for r in ranges[rel_idx].clone() {
        for &(slot, ci) in &my_cols {
            row[slot] = spec.rels[rel_idx].value(r, ci);
        }
        emit_cross(spec, payload_cols, key_arity, ranges, row, rel_idx + 1, out)?;
    }
    Ok(())
}

// Re-export seek/run_end so downstream crates (LMFAO views) can reuse them
// without depending on the trie module path.
pub use crate::trie::{run_end as trie_run_end, seek as trie_seek};

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Schema};
    use fdb_ring::{F64Ring, KeyedRing};

    /// R(a, b), S(b, c), T(c, x: f64)
    fn path_db() -> Database {
        let mut db = Database::new();
        db.add(
            "R",
            Relation::from_rows(
                Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int)]),
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(10)],
                    vec![Value::Int(3), Value::Int(20)],
                ],
            )
            .unwrap(),
        );
        db.add(
            "S",
            Relation::from_rows(
                Schema::of(&[("b", AttrType::Int), ("c", AttrType::Int)]),
                vec![
                    vec![Value::Int(10), Value::Int(100)],
                    vec![Value::Int(10), Value::Int(200)],
                    vec![Value::Int(20), Value::Int(100)],
                    vec![Value::Int(30), Value::Int(300)],
                ],
            )
            .unwrap(),
        );
        db.add(
            "T",
            Relation::from_rows(
                Schema::of(&[("c", AttrType::Int), ("x", AttrType::Double)]),
                vec![
                    vec![Value::Int(100), Value::F64(1.5)],
                    vec![Value::Int(100), Value::F64(2.5)],
                    vec![Value::Int(200), Value::F64(4.0)],
                ],
            )
            .unwrap(),
        );
        db
    }

    /// Brute-force expected rows of R ⋈ S ⋈ T as (a, b, c, x).
    fn brute_join(db: &Database) -> Vec<(i64, i64, i64, f64)> {
        let (r, s, t) = (db.get("R").unwrap(), db.get("S").unwrap(), db.get("T").unwrap());
        let mut rows = Vec::new();
        for i in 0..r.len() {
            for j in 0..s.len() {
                for k in 0..t.len() {
                    let (a, b1) = (r.int_col(0)[i], r.int_col(1)[i]);
                    let (b2, c1) = (s.int_col(0)[j], s.int_col(1)[j]);
                    let (c2, x) = (t.int_col(0)[k], t.f64_col(1)[k]);
                    if b1 == b2 && c1 == c2 {
                        rows.push((a, b1, c1, x));
                    }
                }
            }
        }
        rows
    }

    #[test]
    fn count_matches_brute_force() {
        let db = path_db();
        let spec = EvalSpec::new(&db, &["R", "S", "T"], &[]).unwrap();
        assert_eq!(spec.count(), brute_join(&db).len() as i64);
    }

    #[test]
    fn sum_over_payload_matches_brute_force() {
        let db = path_db();
        let spec = EvalSpec::new(&db, &["R", "S", "T"], &[]).unwrap();
        let xcol = spec.col_index(2, "x").unwrap();
        let got = spec.eval(
            &F64Ring,
            |_, _| 1.0,
            |ri, rows| {
                if ri == 2 {
                    rows.map(|r| spec.relation(2).f64_col(xcol)[r]).sum()
                } else {
                    rows.len() as f64
                }
            },
        );
        let expect: f64 = brute_join(&db).iter().map(|&(_, _, _, x)| x).sum();
        assert!((got - expect).abs() < 1e-9, "got {got}, expect {expect}");
    }

    #[test]
    fn grouped_sum_by_key_variable() {
        // SUM(x) GROUP BY a, via the keyed ring.
        let db = path_db();
        let spec = EvalSpec::new(&db, &["R", "S", "T"], &["a"]).unwrap();
        let hg = spec.hypergraph();
        let a_var = hg.var_id("a").unwrap();
        let ring = KeyedRing::new(F64Ring, 1);
        let xcol = spec.col_index(2, "x").unwrap();
        let got = spec.eval(
            &ring,
            |var, v| {
                if var == a_var {
                    ring.tag(0, Value::Int(v), 1.0)
                } else {
                    ring.one()
                }
            },
            |ri, rows| {
                let total = if ri == 2 {
                    rows.map(|r| spec.relation(2).f64_col(xcol)[r]).sum()
                } else {
                    rows.len() as f64
                };
                ring.scalar(total)
            },
        );
        // Brute-force grouped sums.
        let mut expect: std::collections::BTreeMap<i64, f64> = Default::default();
        for (a, _, _, x) in brute_join(&db) {
            *expect.entry(a).or_default() += x;
        }
        for (a, x) in &expect {
            let key: Box<[Value]> = vec![Value::Int(*a)].into();
            let got_x = got.get(&key).copied().unwrap_or(0.0);
            assert!((got_x - x).abs() < 1e-9, "group {a}: {got_x} vs {x}");
        }
        assert_eq!(got.len(), expect.len());
    }

    #[test]
    fn materialized_join_matches_brute_force() {
        let db = path_db();
        let joined = materialize_join(&db, &["R", "S", "T"]).unwrap();
        let mut expect = brute_join(&db);
        let (ai, bi, ci, xi) = (
            joined.schema().require("a").unwrap(),
            joined.schema().require("b").unwrap(),
            joined.schema().require("c").unwrap(),
            joined.schema().require("x").unwrap(),
        );
        let mut got: Vec<(i64, i64, i64, f64)> = (0..joined.len())
            .map(|r| {
                (
                    joined.value(r, ai).as_int(),
                    joined.value(r, bi).as_int(),
                    joined.value(r, ci).as_int(),
                    joined.value(r, xi).as_f64(),
                )
            })
            .collect();
        got.sort_by(|p, q| p.partial_cmp(q).unwrap());
        expect.sort_by(|p, q| p.partial_cmp(q).unwrap());
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut db = path_db();
        db.add("S", Relation::new(Schema::of(&[("b", AttrType::Int), ("c", AttrType::Int)])));
        let spec = EvalSpec::new(&db, &["R", "S", "T"], &[]).unwrap();
        assert_eq!(spec.count(), 0);
    }

    #[test]
    fn double_join_key_is_a_typed_error_not_a_panic() {
        // Two relations sharing a `Double` attribute make it a join
        // variable; preparation must reject it as a DataError (the
        // leapfrog walks integer key columns only).
        let mut db = Database::new();
        db.add(
            "R",
            Relation::from_rows(
                Schema::of(&[("k", AttrType::Double), ("a", AttrType::Int)]),
                vec![vec![Value::F64(1.0), Value::Int(1)]],
            )
            .unwrap(),
        );
        db.add(
            "S",
            Relation::from_rows(
                Schema::of(&[("k", AttrType::Double), ("b", AttrType::Int)]),
                vec![vec![Value::F64(1.0), Value::Int(2)]],
            )
            .unwrap(),
        );
        let err = match EvalSpec::new(&db, &["R", "S"], &[]) {
            Ok(_) => panic!("double join key must be rejected"),
            Err(e) => e,
        };
        // The hypergraph rejects it first (`Invalid`); the spec's own
        // `try_int_col` guard would report `TypeMismatch` if a caller
        // bypassed that (e.g. `with_order` with a hand-built order).
        assert!(
            matches!(
                &err,
                DataError::Invalid(m) if m.contains('k'))
                || matches!(&err, DataError::TypeMismatch { attribute, .. } if attribute == "k"),
            "expected a typed error naming `k`, got {err:?}"
        );
    }

    #[test]
    fn cyclic_query_rejected() {
        let mut db = Database::new();
        let sch = |a: &str, b: &str| Schema::of(&[(a, AttrType::Int), (b, AttrType::Int)]);
        for (n, s) in [("R", sch("a", "b")), ("S", sch("b", "c")), ("T", sch("a", "c"))] {
            db.add(n, Relation::from_rows(s, vec![vec![Value::Int(1), Value::Int(1)]]).unwrap());
        }
        assert!(EvalSpec::new(&db, &["R", "S", "T"], &[]).is_err());
    }
}
