//! # fdb-factorized
//!
//! Factorized databases (paper §3.1–§3.2, §5.1): the representation system
//! and query evaluation machinery that LMFAO and F-IVM build upon.
//!
//! * [`hypergraph`] — query hypergraphs, GYO acyclicity, join trees.
//! * [`order`] — variable orders (d-trees) with dependency sets, derived
//!   from join trees of acyclic queries.
//! * [`width`] — width measures: fractional edge cover number ρ* (with the
//!   AGM size bound), fractional hypertree width, and the factorization
//!   width of a variable order. Solved exactly for the small query shapes
//!   the paper discusses via vertex enumeration of the covering LP.
//! * [`trie`] — sorted-column trie views and leapfrog (gallop) seeks.
//! * [`eval`] — the fused evaluator: worst-case-optimal multiway join plus
//!   ring aggregation in one recursion over the variable order, without
//!   materializing the join ("the operators for join and aggregates can be
//!   fused", §5.1); also LFTJ-style full join materialization.
//! * [`frep`] — explicit factorized representations with d-tree caching:
//!   build, count values, enumerate, and aggregate over them (Figures 7–10).

pub mod eval;
pub mod frep;
pub mod hypergraph;
pub mod order;
pub mod trie;
pub mod width;

pub use eval::{eval_acyclic, materialize_join, EvalSpec};
pub use frep::{FNode, FRep};
pub use hypergraph::{Hypergraph, JoinTree};
pub use order::{VarOrder, VoNode};
pub use width::{agm_bound, fhtw, fo_width, frac_edge_cover};
