//! # fdb-ivm
//!
//! Incremental maintenance of learning aggregates under data updates
//! (paper §3.1 "Additive inverse", Figure 4 right).
//!
//! Inserts and deletes are tuples with multiplicity `+1` / `-1`; the ring's
//! additive inverse treats both uniformly. Three maintenance strategies
//! over the same shared base storage:
//!
//! * [`FoIvm`] — **first-order IVM** (classical delta processing): no
//!   materialized intermediates; each update joins the delta tuple against
//!   all other base relations and updates every aggregate separately.
//! * [`HoIvm`] — **higher-order IVM** (delta processing with intermediate
//!   views, DBToaster-style): one materialized view tree *per aggregate*;
//!   updates propagate along root-paths, but nothing is shared across the
//!   aggregates of the batch.
//! * [`Fivm`] — **F-IVM**: one factorized view tree whose payloads live in
//!   the covariance ring, sharing the maintenance of all `(1+n+n(n+1)/2)`
//!   aggregates inside one ring element (§5.2).
//!
//! [`FivmEngine`] additionally exposes F-IVM through the unified
//! `fdb_core::Engine` trait for covariance-shaped batches, so the
//! cross-engine agreement tests can hold it to the same contract as the
//! flat, factorized, and LMFAO backends.

pub mod base;
pub mod engine;
pub mod foivm;
pub mod hoivm;
pub mod maintain;
pub mod viewtree;

pub use base::{StreamDb, Update};
pub use engine::FivmEngine;
pub use foivm::FoIvm;
pub use hoivm::HoIvm;
pub use maintain::{CovMaintainer, IvmStrategy};
pub use viewtree::{Fivm, TreeShape, ViewTree};
