//! Higher-order IVM: delta processing with materialized intermediate
//! views, but **one view tree per aggregate** — no sharing across the
//! batch. This is the middle strategy of Figure 4 (right): it beats
//! first-order IVM by avoiding delta-join recomputation, and loses to
//! F-IVM by maintaining `1 + n + n(n+1)/2` separate trees where F-IVM
//! maintains one ring-valued tree.

use crate::base::{StreamDb, Update};
use crate::viewtree::{Lift, TreeShape, ViewTree};
use fdb_data::Value;
use fdb_ring::{CovTriple, F64Ring};
use std::sync::Arc;

/// The factor list of one scalar aggregate: `(attribute, power)` with
/// power 1 or 2.
type Factors = Vec<(String, u32)>;

/// Higher-order IVM maintainer of the covariance aggregates.
pub struct HoIvm {
    n: usize,
    trees: Vec<ViewTree<F64Ring>>,
}

impl HoIvm {
    /// Builds one scalar view tree per covariance aggregate over the
    /// `continuous` attributes.
    pub fn new(shape: Arc<TreeShape>, continuous: &[&str]) -> Self {
        let n = continuous.len();
        let mut aggs: Vec<Factors> = Vec::new();
        aggs.push(vec![]); // SUM(1)
        for a in continuous {
            aggs.push(vec![(a.to_string(), 1)]);
        }
        for i in 0..n {
            for j in i..n {
                if i == j {
                    aggs.push(vec![(continuous[i].to_string(), 2)]);
                } else {
                    aggs.push(vec![(continuous[i].to_string(), 1), (continuous[j].to_string(), 1)]);
                }
            }
        }
        let trees = aggs
            .iter()
            .map(|factors| {
                let lifts: Vec<Lift<f64>> = shape
                    .schemas
                    .iter()
                    .map(|schema| {
                        // The factors owned by this relation.
                        let mine: Vec<(usize, u32)> = factors
                            .iter()
                            .filter_map(|(a, p)| schema.index_of(a).map(|c| (c, *p)))
                            .collect();
                        let lift: Lift<f64> = Arc::new(move |tuple: &[Value]| {
                            mine.iter().map(|&(c, p)| tuple[c].as_f64().powi(p as i32)).product()
                        });
                        lift
                    })
                    .collect();
                ViewTree::new(Arc::clone(&shape), F64Ring, lifts)
            })
            .collect();
        Self { n, trees }
    }

    /// Applies an update to every per-aggregate tree. Malformed updates
    /// are rejected up front (all trees share one shape, so validation
    /// fails before the first tree mutates — see
    /// [`ViewTree::apply`]).
    pub fn apply(&mut self, db: &StreamDb, up: &Update) -> Result<(), fdb_data::DataError> {
        for tree in &mut self.trees {
            tree.apply(db, up)?;
        }
        Ok(())
    }

    /// Assembles the maintained values into a covariance triple.
    pub fn result(&self) -> CovTriple {
        let n = self.n;
        let c = self.trees[0].result();
        let s: Vec<f64> = (0..n).map(|i| self.trees[1 + i].result()).collect();
        let mut q = vec![0.0; n * (n + 1) / 2];
        let mut t = 1 + n;
        for i in 0..n {
            for j in i..n {
                // Tree order is (i, j) with j >= i; triple storage is
                // lower-triangular (row j, col i).
                q[j * (j + 1) / 2 + i] = self.trees[t].result();
                t += 1;
            }
        }
        CovTriple { c, s: s.into(), q: q.into() }
    }

    /// Total ring operations across all trees (cost proxy).
    pub fn ring_ops(&self) -> u64 {
        self.trees.iter().map(|t| t.ring_ops).sum()
    }

    /// Number of maintained trees (`1 + n + n(n+1)/2`).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewtree::Fivm;
    use fdb_data::{AttrType, Schema};
    use rand::{Rng, SeedableRng};

    fn shape3() -> (Arc<TreeShape>, Vec<Schema>) {
        let r = Schema::of(&[("a", AttrType::Int), ("x", AttrType::Double)]);
        let s = Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int), ("y", AttrType::Double)]);
        let t = Schema::of(&[("b", AttrType::Int), ("z", AttrType::Double)]);
        let schemas = vec![r, s, t];
        let shape = TreeShape::build(schemas.clone(), &["R", "S", "T"], 1).unwrap();
        (Arc::new(shape), schemas)
    }

    #[test]
    fn tree_count_formula() {
        let (shape, _) = shape3();
        let ho = HoIvm::new(shape, &["x", "y", "z"]);
        assert_eq!(ho.tree_count(), 1 + 3 + 6);
    }

    #[test]
    fn hoivm_agrees_with_fivm_on_random_stream() {
        let (shape, schemas) = shape3();
        let mut db = StreamDb::new(schemas);
        shape.register_indices(&mut db);
        let mut ho = HoIvm::new(Arc::clone(&shape), &["x", "y", "z"]);
        let mut fi = Fivm::new(Arc::clone(&shape), &["x", "y", "z"]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let rel = rng.gen_range(0..3usize);
            let tuple: Vec<Value> = match rel {
                0 => vec![Value::Int(rng.gen_range(0..3)), Value::F64(rng.gen_range(0..4) as f64)],
                1 => vec![
                    Value::Int(rng.gen_range(0..3)),
                    Value::Int(rng.gen_range(0..3)),
                    Value::F64(rng.gen_range(0..4) as f64),
                ],
                _ => vec![Value::Int(rng.gen_range(0..3)), Value::F64(rng.gen_range(0..4) as f64)],
            };
            let up = Update::insert(rel, tuple);
            db.apply(&up).unwrap();
            ho.apply(&db, &up).unwrap();
            fi.apply(&db, &up).unwrap();
        }
        let (a, b) = (ho.result(), fi.result());
        assert!((a.c - b.c).abs() < 1e-6);
        for i in 0..3 {
            assert!((a.s[i] - b.s[i]).abs() < 1e-6);
            for j in 0..3 {
                assert!(
                    (a.q_at(i, j) - b.q_at(i, j)).abs() < 1e-6,
                    "moment ({i},{j}): {} vs {}",
                    a.q_at(i, j),
                    b.q_at(i, j)
                );
            }
        }
        // And F-IVM must be doing far fewer ring operations than the
        // unshared per-aggregate trees — the Figure 4 (right) effect.
        assert!(fi.ring_ops() * 3 < ho.ring_ops(), "{} vs {}", fi.ring_ops(), ho.ring_ops());
    }
}
