//! The unified front door of the IVM strategies: [`Database`] catalogs in,
//! [`Delta`] batches through, covariance triples out.
//!
//! The maintainers themselves ([`FoIvm`], [`HoIvm`], [`Fivm`]) run over
//! the crate's internal streaming storage ([`StreamDb`]: append-only
//! `(tuple, mult)` rows with hash indices on join keys — the index
//! structure delta propagation probes). [`CovMaintainer`] hides that
//! machinery behind the same data types the batch engines consume: it is
//! constructed from a `Database` (streaming any rows the catalog already
//! holds) and fed `Delta`s, so benches, examples, and the
//! `MaintainableEngine` adapter in [`crate::engine`] never touch the
//! legacy `StreamDb`/`Update` API.

use crate::base::{StreamDb, Update};
use crate::foivm::FoIvm;
use crate::hoivm::HoIvm;
use crate::viewtree::{Fivm, TreeShape};
use fdb_data::{DataError, Database, Delta, Schema};
use fdb_ring::CovTriple;
use std::sync::Arc;

/// Which maintenance strategy a [`CovMaintainer`] runs (Figure 4 right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IvmStrategy {
    /// First-order IVM: per-aggregate delta queries, nothing materialized.
    FirstOrder,
    /// Higher-order IVM: one scalar view tree per aggregate.
    HigherOrder,
    /// F-IVM: one covariance-ring view tree for the whole triple.
    Fivm,
}

impl IvmStrategy {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IvmStrategy::FirstOrder => "first-order IVM",
            IvmStrategy::HigherOrder => "higher-order IVM",
            IvmStrategy::Fivm => "F-IVM",
        }
    }
}

enum Inner {
    Fo(FoIvm),
    Ho(HoIvm),
    Fi(Fivm),
}

/// A covariance-triple maintainer over a natural join, maintained under
/// [`Delta`] batches.
pub struct CovMaintainer {
    names: Vec<String>,
    sdb: StreamDb,
    inner: Inner,
}

impl CovMaintainer {
    /// Builds a maintainer for the natural join of `names` over `db`'s
    /// schemas, maintaining the covariance triple of the `continuous`
    /// attributes, and streams every row `db` currently holds (an empty
    /// catalog starts the stream from zero — the Figure 4 setup). The
    /// view tree is rooted at relation index `root`.
    pub fn new(
        db: &Database,
        names: &[&str],
        root: usize,
        continuous: &[&str],
        strategy: IvmStrategy,
    ) -> Result<Self, DataError> {
        let schemas: Vec<Schema> = names
            .iter()
            .map(|n| Ok(db.get(n)?.schema().clone()))
            .collect::<Result<_, DataError>>()?;
        let shape = Arc::new(TreeShape::build(schemas.clone(), names, root)?);
        let mut sdb = StreamDb::new(schemas);
        shape.register_indices(&mut sdb);
        if strategy == IvmStrategy::FirstOrder {
            FoIvm::register_indices(&shape, &mut sdb);
        }
        let inner = match strategy {
            IvmStrategy::FirstOrder => Inner::Fo(FoIvm::new(Arc::clone(&shape), continuous)),
            IvmStrategy::HigherOrder => Inner::Ho(HoIvm::new(Arc::clone(&shape), continuous)),
            IvmStrategy::Fivm => Inner::Fi(Fivm::new(Arc::clone(&shape), continuous)?),
        };
        let mut this = Self { names: names.iter().map(|s| s.to_string()).collect(), sdb, inner };
        for (ri, name) in names.iter().enumerate() {
            let rel = db.get(name)?;
            for r in 0..rel.len() {
                this.apply_update(Update::insert(ri, rel.row_vec(r)))?;
            }
        }
        Ok(this)
    }

    fn apply_update(&mut self, up: Update) -> Result<(), DataError> {
        self.sdb.apply(&up)?;
        match &mut self.inner {
            Inner::Fo(fo) => fo.apply(&self.sdb, &up),
            Inner::Ho(ho) => ho.apply(&self.sdb, &up),
            Inner::Fi(fi) => fi.apply(&self.sdb, &up),
        }
    }

    /// Folds one delta batch into the maintained triple. The relation
    /// must be part of the join ([`DataError::UnknownRelation`]
    /// otherwise). Application is **atomic like
    /// [`Database::apply_delta`]**: every row of the batch is validated
    /// against the relation's schema before the first one touches any
    /// view, so a rejected batch leaves the maintainer exactly where it
    /// was — it cannot silently diverge from a ground-truth database
    /// that rejected the same delta.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<(), DataError> {
        let ri = self
            .names
            .iter()
            .position(|n| *n == delta.relation)
            .ok_or_else(|| DataError::UnknownRelation(delta.relation.clone()))?;
        let ups: Vec<Update> = delta
            .rows()
            .iter()
            .map(|(row, mult)| Update { rel: ri, tuple: row.clone(), mult: *mult })
            .collect();
        for up in &ups {
            crate::base::validate_update(self.sdb.schemas(), up)?;
        }
        for up in ups {
            self.apply_update(up)?;
        }
        Ok(())
    }

    /// The maintained covariance triple.
    pub fn triple(&self) -> CovTriple {
        match &self.inner {
            Inner::Fo(fo) => fo.result(),
            Inner::Ho(ho) => ho.result(),
            Inner::Fi(fi) => fi.result(),
        }
    }

    /// Ring operations performed so far (cost proxy; `None` for the
    /// first-order strategy, which performs no ring operations).
    pub fn ring_ops(&self) -> Option<u64> {
        match &self.inner {
            Inner::Fo(_) => None,
            Inner::Ho(ho) => Some(ho.ring_ops()),
            Inner::Fi(fi) => Some(fi.ring_ops()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::{AttrType, Relation, Value};

    /// R(a, x) ⋈ S(a, b, y) ⋈ T(b, z).
    fn db() -> Database {
        let mut db = Database::new();
        db.add("R", Relation::new(Schema::of(&[("a", AttrType::Int), ("x", AttrType::Double)])));
        db.add(
            "S",
            Relation::new(Schema::of(&[
                ("a", AttrType::Int),
                ("b", AttrType::Int),
                ("y", AttrType::Double),
            ])),
        );
        db.add("T", Relation::new(Schema::of(&[("b", AttrType::Int), ("z", AttrType::Double)])));
        db
    }

    #[test]
    fn strategies_agree_under_delta_stream() {
        let db = db();
        let names = ["R", "S", "T"];
        let cont = ["x", "y", "z"];
        let mut maints: Vec<CovMaintainer> =
            [IvmStrategy::FirstOrder, IvmStrategy::HigherOrder, IvmStrategy::Fivm]
                .into_iter()
                .map(|s| CovMaintainer::new(&db, &names, 1, &cont, s).unwrap())
                .collect();
        let deltas = [
            Delta::insert("R", vec![Value::Int(0), Value::F64(1.0)]),
            Delta::insert("S", vec![Value::Int(0), Value::Int(0), Value::F64(2.0)]),
            Delta::insert("T", vec![Value::Int(0), Value::F64(3.0)]),
            Delta::new("R")
                .with_insert(vec![Value::Int(0), Value::F64(4.0)])
                .with_delete(vec![Value::Int(0), Value::F64(1.0)]),
        ];
        for d in &deltas {
            for m in &mut maints {
                m.apply_delta(d).unwrap();
            }
        }
        let base = maints[0].triple();
        assert_eq!(base.c, 1.0, "one join tuple survives");
        for m in &maints[1..] {
            let t = m.triple();
            assert!((t.c - base.c).abs() < 1e-9);
            for i in 0..3 {
                assert!((t.s[i] - base.s[i]).abs() < 1e-9);
            }
        }
        assert!(maints[0].ring_ops().is_none());
        assert!(maints[2].ring_ops().unwrap() > 0);
    }

    #[test]
    fn non_empty_catalog_is_streamed_at_construction() {
        let mut db = db();
        db.apply_delta(&Delta::insert("R", vec![Value::Int(1), Value::F64(2.0)])).unwrap();
        db.apply_delta(&Delta::insert("S", vec![Value::Int(1), Value::Int(2), Value::F64(3.0)]))
            .unwrap();
        db.apply_delta(&Delta::insert("T", vec![Value::Int(2), Value::F64(4.0)])).unwrap();
        let m = CovMaintainer::new(&db, &["R", "S", "T"], 1, &["x", "y", "z"], IvmStrategy::Fivm)
            .unwrap();
        assert_eq!(m.triple().c, 1.0);
    }

    #[test]
    fn malformed_deltas_are_rejected() {
        let db = db();
        let mut m =
            CovMaintainer::new(&db, &["R", "S", "T"], 1, &["x", "y", "z"], IvmStrategy::Fivm)
                .unwrap();
        let unknown = Delta::insert("Nope", vec![Value::Int(1)]);
        assert!(matches!(m.apply_delta(&unknown), Err(DataError::UnknownRelation(_))));
        let bad_arity = Delta::insert("R", vec![Value::Int(1)]);
        assert!(matches!(m.apply_delta(&bad_arity), Err(DataError::ArityMismatch { .. })));
        let bad_type = Delta::insert("R", vec![Value::F64(1.0), Value::F64(1.0)]);
        assert!(matches!(m.apply_delta(&bad_type), Err(DataError::TypeMismatch { .. })));
        assert_eq!(m.triple().c, 0.0, "rejected updates never touch the views");
    }

    #[test]
    fn batch_rejection_is_atomic() {
        // A batch whose *second* row is malformed must not half-apply:
        // the maintainer would otherwise diverge forever from a
        // ground-truth database that rejected the same delta atomically.
        let db = db();
        let mut m =
            CovMaintainer::new(&db, &["R", "S", "T"], 1, &["x", "y", "z"], IvmStrategy::Fivm)
                .unwrap();
        // One valid join tuple to make the triple non-trivial.
        for d in [
            Delta::insert("R", vec![Value::Int(0), Value::F64(1.0)]),
            Delta::insert("S", vec![Value::Int(0), Value::Int(0), Value::F64(2.0)]),
            Delta::insert("T", vec![Value::Int(0), Value::F64(3.0)]),
        ] {
            m.apply_delta(&d).unwrap();
        }
        let before = m.triple();
        let bad = Delta::new("R")
            .with_insert(vec![Value::Int(1), Value::F64(5.0)])
            .with_insert(vec![Value::Int(1)]); // arity mismatch
        assert!(m.apply_delta(&bad).is_err());
        let after = m.triple();
        assert_eq!(after.c, before.c, "no row of the rejected batch was applied");
        assert_eq!(after.s, before.s);
    }
}
