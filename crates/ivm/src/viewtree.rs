//! Factorized view trees with ring payloads (F-IVM, §3.1/§5.2).
//!
//! One view per join-tree node, keyed by the node's connection attributes
//! to its parent, with payloads in an arbitrary ring. A delta at relation
//! `m` updates `V_m` directly and then propagates along the root path: at
//! each ancestor the delta joins (via hash indices) the ancestor's base
//! tuples and its *other* children's current views — never recomputing a
//! subtree from scratch.
//!
//! With the covariance ring this maintains the entire covariance matrix in
//! one tree ([`Fivm`]); with scalar rings it is the building block of the
//! per-aggregate trees of higher-order IVM.

use crate::base::{StreamDb, Update};
use fdb_data::{DataError, Database, Schema, Value};
use fdb_factorized::hypergraph::Hypergraph;
use fdb_ring::{CovRing, CovTriple, Ring};
use std::collections::HashMap;
use std::sync::Arc;

/// The static shape of a join tree over a set of relation schemas,
/// shareable across many [`ViewTree`]s.
#[derive(Debug, Clone)]
pub struct TreeShape {
    /// Relation schemas (node order).
    pub schemas: Vec<Schema>,
    /// Parent node per node.
    pub parent: Vec<Option<usize>>,
    /// Children per node.
    pub children: Vec<Vec<usize>>,
    /// Key-to-parent columns per node (empty at the root).
    pub key_cols: Vec<Vec<usize>>,
    /// For node `n`, child position `i`: the columns *in n's schema*
    /// holding child `i`'s key attributes.
    pub child_key_cols: Vec<Vec<Vec<usize>>>,
    /// Root node.
    pub root: usize,
}

impl TreeShape {
    /// Builds the shape directly from a [`Database`] catalog — the
    /// unified-front-door constructor: schemas come from the named
    /// relations, so the shape matches what the batch engines plan over.
    pub fn from_database(
        db: &Database,
        names: &[&str],
        root_hint: usize,
    ) -> Result<Self, DataError> {
        let schemas: Vec<Schema> = names
            .iter()
            .map(|n| Ok(db.get(n)?.schema().clone()))
            .collect::<Result<_, DataError>>()?;
        Self::build(schemas, names, root_hint)
    }

    /// Builds the shape from relation schemas: join-key hypergraph, GYO
    /// join tree, rooted at `root_hint` (or edge 0).
    pub fn build(
        schemas: Vec<Schema>,
        names: &[&str],
        root_hint: usize,
    ) -> Result<Self, DataError> {
        // Reuse the factorized crate's machinery through a scratch Database.
        let mut db = Database::new();
        for (name, schema) in names.iter().zip(&schemas) {
            db.add(*name, fdb_data::Relation::new(schema.clone()));
        }
        let hg = Hypergraph::join_keys_plus(&db, names, &[])?;
        let jt = hg
            .join_tree()
            .ok_or_else(|| DataError::Invalid("cyclic join key graph".into()))?
            .rerooted(root_hint);
        let n = schemas.len();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut key_cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            parent[i] = jt.parent[i];
            if let Some(p) = jt.parent[i] {
                children[p].push(i);
                key_cols[i] = hg.edges()[i]
                    .vars
                    .iter()
                    .filter(|v| hg.edges()[p].vars.contains(v))
                    .map(|&v| schemas[i].require(&hg.vars()[v]))
                    .collect::<Result<_, _>>()?;
            }
        }
        let mut child_key_cols: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n];
        for i in 0..n {
            for &c in &children[i] {
                let cols: Vec<usize> = key_cols[c]
                    .iter()
                    .map(|&cc| schemas[i].require(&schemas[c].attr(cc).name))
                    .collect::<Result<_, _>>()?;
                child_key_cols[i].push(cols);
            }
        }
        Ok(Self { schemas, parent, children, key_cols, child_key_cols, root: jt.root.unwrap_or(0) })
    }

    /// Registers on `db` every index the propagation needs: for each
    /// non-root node `m`, its parent's rows indexed by `m`'s key attrs.
    pub fn register_indices(&self, db: &mut StreamDb) {
        for m in 0..self.schemas.len() {
            if let Some(p) = self.parent[m] {
                let pos = self.children[p].iter().position(|&c| c == m).expect("child of parent");
                db.register_index(p, self.child_key_cols[p][pos].clone());
            }
        }
    }
}

/// A lift function: tuple → ring element (per relation).
pub type Lift<E> = Arc<dyn Fn(&[Value]) -> E + Send + Sync>;

/// A maintained view tree with payloads in ring `R`.
pub struct ViewTree<R: Ring> {
    ring: R,
    shape: Arc<TreeShape>,
    lifts: Vec<Lift<R::Elem>>,
    views: Vec<HashMap<Box<[i64]>, R::Elem>>,
    /// Count of ring operations performed (a cost proxy for experiments).
    pub ring_ops: u64,
}

impl<R: Ring> ViewTree<R> {
    /// An empty view tree.
    pub fn new(shape: Arc<TreeShape>, ring: R, lifts: Vec<Lift<R::Elem>>) -> Self {
        assert_eq!(lifts.len(), shape.schemas.len());
        let views = shape.schemas.iter().map(|_| HashMap::new()).collect();
        Self { ring, shape, lifts, views, ring_ops: 0 }
    }

    fn key_of(&self, node: usize, tuple: &[Value]) -> Box<[i64]> {
        self.shape.key_cols[node].iter().map(|&c| tuple[c].as_int()).collect()
    }

    /// Applies an update. The update must already be present in `db`
    /// (apply to [`StreamDb`] first, then to each maintainer).
    ///
    /// Malformed updates — a relation index outside the tree, a tuple
    /// whose arity or value types disagree with the relation's schema, a
    /// multiplicity other than `±1` — are rejected with a [`DataError`]
    /// *before* any view is touched, so a failed apply never leaves the
    /// tree partially updated.
    pub fn apply(&mut self, db: &StreamDb, up: &Update) -> Result<(), DataError> {
        crate::base::validate_update(&self.shape.schemas, up)?;
        let m = up.rel;
        let t = &up.tuple;
        // δV_m = ±lift(t) × Π_c V_c(t[key_c])
        let mut delta = (self.lifts[m])(t);
        if up.mult < 0 {
            delta = self.ring.neg(&delta);
        }
        let mut dead = false;
        for (cpos, &c) in self.shape.children[m].iter().enumerate() {
            let key: Box<[i64]> =
                self.shape.child_key_cols[m][cpos].iter().map(|&cc| t[cc].as_int()).collect();
            match self.views[c].get(&key) {
                Some(v) => {
                    delta = self.ring.mul(&delta, v);
                    self.ring_ops += 1;
                }
                None => {
                    dead = true;
                    break;
                }
            }
        }
        let mut deltas: HashMap<Box<[i64]>, R::Elem> = HashMap::new();
        if !dead {
            deltas.insert(self.key_of(m, t), delta);
        }
        self.absorb(m, &deltas);
        // Propagate to the root.
        let mut cur = m;
        while let Some(p) = self.shape.parent[cur] {
            if deltas.is_empty() {
                return Ok(());
            }
            let cur_pos =
                self.shape.children[p].iter().position(|&c| c == cur).expect("tree child");
            let probe_cols = &self.shape.child_key_cols[p][cur_pos];
            let mut next: HashMap<Box<[i64]>, R::Elem> = HashMap::new();
            for (key, d) in &deltas {
                for &row in db.lookup(p, probe_cols, key) {
                    let (tp, mult) = &db.rows(p)[row];
                    let mut elem = (self.lifts[p])(tp);
                    if *mult < 0 {
                        elem = self.ring.neg(&elem);
                    }
                    elem = self.ring.mul(&elem, d);
                    self.ring_ops += 1;
                    let mut dead = false;
                    for (cpos, &c) in self.shape.children[p].iter().enumerate() {
                        if cpos == cur_pos {
                            continue;
                        }
                        let ck: Box<[i64]> = self.shape.child_key_cols[p][cpos]
                            .iter()
                            .map(|&cc| tp[cc].as_int())
                            .collect();
                        match self.views[c].get(&ck) {
                            Some(v) => {
                                elem = self.ring.mul(&elem, v);
                                self.ring_ops += 1;
                            }
                            None => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if dead {
                        continue;
                    }
                    let pkey = self.key_of(p, tp);
                    match next.get_mut(&pkey) {
                        Some(acc) => {
                            self.ring.add_assign(acc, &elem);
                            self.ring_ops += 1;
                        }
                        None => {
                            next.insert(pkey, elem);
                        }
                    }
                }
            }
            self.absorb(p, &next);
            deltas = next;
            cur = p;
        }
        Ok(())
    }

    fn absorb(&mut self, node: usize, deltas: &HashMap<Box<[i64]>, R::Elem>) {
        for (k, d) in deltas {
            match self.views[node].get_mut(k) {
                Some(v) => {
                    self.ring.add_assign(v, d);
                    self.ring_ops += 1;
                    if self.ring.is_zero(v) {
                        self.views[node].remove(k);
                    }
                }
                None => {
                    if !self.ring.is_zero(d) {
                        self.views[node].insert(k.clone(), d.clone());
                    }
                }
            }
        }
    }

    /// The maintained aggregate: the root view's value (zero if empty).
    pub fn result(&self) -> R::Elem {
        let empty: Box<[i64]> = Vec::new().into();
        self.views[self.shape.root].get(&empty).cloned().unwrap_or_else(|| self.ring.zero())
    }
}

/// F-IVM: a single view tree over the covariance ring maintaining count,
/// sums, and second moments of all continuous features at once.
pub struct Fivm {
    tree: ViewTree<CovRing>,
}

impl Fivm {
    /// Builds an F-IVM maintainer for `continuous` attributes (each owned
    /// by exactly one relation; the paper's feature sets satisfy this).
    pub fn new(shape: Arc<TreeShape>, continuous: &[&str]) -> Result<Self, DataError> {
        let ring = CovRing::new(continuous.len());
        let mut lifts: Vec<Lift<CovTriple>> = Vec::with_capacity(shape.schemas.len());
        for schema in &shape.schemas {
            let mine: Vec<(usize, usize)> = continuous
                .iter()
                .enumerate()
                .filter_map(|(gi, a)| schema.index_of(a).map(|ci| (gi, ci)))
                .collect();
            lifts.push(Arc::new(move |tuple: &[Value]| {
                let idx: Vec<usize> = mine.iter().map(|&(gi, _)| gi).collect();
                let vals: Vec<f64> = mine.iter().map(|&(_, ci)| tuple[ci].as_f64()).collect();
                ring.lift_sparse(&idx, &vals)
            }));
        }
        Ok(Self { tree: ViewTree::new(shape, ring, lifts) })
    }

    /// Applies an update (after it was applied to the [`StreamDb`]).
    /// Malformed updates return `Err` without touching any view
    /// (see [`ViewTree::apply`]).
    pub fn apply(&mut self, db: &StreamDb, up: &Update) -> Result<(), DataError> {
        self.tree.apply(db, up)
    }

    /// The maintained covariance triple.
    pub fn result(&self) -> CovTriple {
        self.tree.result()
    }

    /// Ring operations performed so far (cost proxy).
    pub fn ring_ops(&self) -> u64 {
        self.tree.ring_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::AttrType;

    /// R(a, x) ⋈ S(a, b, y) ⋈ T(b, z): path with payloads everywhere.
    pub fn shape3() -> (Arc<TreeShape>, Vec<Schema>) {
        let r = Schema::of(&[("a", AttrType::Int), ("x", AttrType::Double)]);
        let s = Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int), ("y", AttrType::Double)]);
        let t = Schema::of(&[("b", AttrType::Int), ("z", AttrType::Double)]);
        let schemas = vec![r, s, t];
        let shape = TreeShape::build(schemas.clone(), &["R", "S", "T"], 1).expect("acyclic path");
        (Arc::new(shape), schemas)
    }

    #[test]
    fn shape_roots_and_keys() {
        let (shape, _) = shape3();
        assert_eq!(shape.root, 1);
        assert_eq!(shape.parent[0], Some(1));
        assert_eq!(shape.parent[2], Some(1));
        assert!(shape.key_cols[1].is_empty());
        assert_eq!(shape.key_cols[0], vec![0]); // R keyed by a
        assert_eq!(shape.key_cols[2], vec![0]); // T keyed by b
    }

    #[test]
    fn fivm_matches_bruteforce_on_random_stream() {
        use rand::{Rng, SeedableRng};
        let (shape, schemas) = shape3();
        let mut db = StreamDb::new(schemas);
        shape.register_indices(&mut db);
        let mut fivm = Fivm::new(Arc::clone(&shape), &["x", "y", "z"]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut history: Vec<Update> = Vec::new();
        for step in 0..300 {
            let up = if step % 7 == 6 && !history.is_empty() {
                // Delete a random previously inserted tuple.
                loop {
                    let i = rng.gen_range(0..history.len());
                    if history[i].mult == 1 {
                        history[i].mult = 0; // mark consumed
                        break Update {
                            rel: history[i].rel,
                            tuple: history[i].tuple.clone(),
                            mult: -1,
                        };
                    }
                }
            } else {
                let rel = rng.gen_range(0..3usize);
                let tuple: Vec<Value> = match rel {
                    0 => vec![
                        Value::Int(rng.gen_range(0..4)),
                        Value::F64(rng.gen_range(0..5) as f64),
                    ],
                    1 => vec![
                        Value::Int(rng.gen_range(0..4)),
                        Value::Int(rng.gen_range(0..4)),
                        Value::F64(rng.gen_range(0..5) as f64),
                    ],
                    _ => vec![
                        Value::Int(rng.gen_range(0..4)),
                        Value::F64(rng.gen_range(0..5) as f64),
                    ],
                };
                let up = Update::insert(rel, tuple);
                history.push(up.clone());
                up
            };
            db.apply(&up).unwrap();
            fivm.apply(&db, &up).unwrap();
        }
        // Brute force over materialized relations.
        let (r, s, t) = (db.materialize(0), db.materialize(1), db.materialize(2));
        let mut count = 0.0;
        let mut sums = [0.0f64; 3];
        let mut q = [[0.0f64; 3]; 3];
        for i in 0..r.len() {
            for j in 0..s.len() {
                for k in 0..t.len() {
                    if r.int_col(0)[i] == s.int_col(0)[j] && s.int_col(1)[j] == t.int_col(0)[k] {
                        let x = [r.f64_col(1)[i], s.f64_col(2)[j], t.f64_col(1)[k]];
                        count += 1.0;
                        for a in 0..3 {
                            sums[a] += x[a];
                            for b in 0..3 {
                                q[a][b] += x[a] * x[b];
                            }
                        }
                    }
                }
            }
        }
        let res = fivm.result();
        assert!((res.c - count).abs() < 1e-6, "count {} vs {}", res.c, count);
        for a in 0..3 {
            assert!((res.s[a] - sums[a]).abs() < 1e-6);
            for b in 0..3 {
                assert!((res.q_at(a, b) - q[a][b]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_stream_result_is_zero() {
        let (shape, _) = shape3();
        let fivm = Fivm::new(shape, &["x", "y", "z"]).unwrap();
        let r = fivm.result();
        assert_eq!(r.c, 0.0);
    }
}
