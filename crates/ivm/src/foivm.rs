//! First-order IVM: classical delta processing with no materialized
//! intermediates — and, crucially, **no sharing across the batch**: each
//! of the `1 + n + n(n+1)/2` covariance aggregates evaluates its *own*
//! delta query per update (index nested loops along the join tree),
//! exactly as a classical engine maintains 937 independent materialized
//! aggregates. This is the slowest strategy of Figure 4 (right); the gap
//! to F-IVM is the shared maintenance the paper attributes the difference
//! to.

use crate::base::{StreamDb, Update};
use crate::viewtree::TreeShape;
use fdb_data::Value;
use fdb_ring::CovTriple;
use std::sync::Arc;

/// One hop of the delta-join walk: visit `node`, probing its `probe_cols`
/// index with the values of `from_cols` of the already-bound `from` node.
#[derive(Debug, Clone)]
struct Hop {
    node: usize,
    from: usize,
    probe_cols: Vec<usize>,
    from_cols: Vec<usize>,
}

/// First-order IVM maintainer of the covariance aggregates.
pub struct FoIvm {
    shape: Arc<TreeShape>,
    /// Per relation: `(global feature index, column)` of owned features.
    features: Vec<Vec<(usize, usize)>>,
    n: usize,
    /// Pre-computed walk orders, one per possible delta relation.
    walks: Vec<Vec<Hop>>,
    count: f64,
    sums: Vec<f64>,
    q: Vec<f64>,
}

impl FoIvm {
    /// Builds the maintainer; `continuous` attributes each live in exactly
    /// one relation.
    pub fn new(shape: Arc<TreeShape>, continuous: &[&str]) -> Self {
        let n = continuous.len();
        let features: Vec<Vec<(usize, usize)>> = shape
            .schemas
            .iter()
            .map(|schema| {
                continuous
                    .iter()
                    .enumerate()
                    .filter_map(|(gi, a)| schema.index_of(a).map(|c| (gi, c)))
                    .collect()
            })
            .collect();
        let nrel = shape.schemas.len();
        let walks = (0..nrel).map(|start| Self::walk_order(&shape, start)).collect();
        Self {
            shape,
            features,
            n,
            walks,
            count: 0.0,
            sums: vec![0.0; n],
            q: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// BFS over the (undirected) join tree from `start`, recording the
    /// index probes each hop needs.
    fn walk_order(shape: &TreeShape, start: usize) -> Vec<Hop> {
        let nrel = shape.schemas.len();
        let mut seen = vec![false; nrel];
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut hops = Vec::with_capacity(nrel - 1);
        while let Some(u) = queue.pop_front() {
            // Tree children of u.
            for (cpos, &c) in shape.children[u].iter().enumerate() {
                if !seen[c] {
                    seen[c] = true;
                    hops.push(Hop {
                        node: c,
                        from: u,
                        probe_cols: shape.key_cols[c].clone(),
                        from_cols: shape.child_key_cols[u][cpos].clone(),
                    });
                    queue.push_back(c);
                }
            }
            // Tree parent of u.
            if let Some(p) = shape.parent[u] {
                if !seen[p] {
                    seen[p] = true;
                    let upos = shape.children[p].iter().position(|&c| c == u).expect("child link");
                    hops.push(Hop {
                        node: p,
                        from: u,
                        probe_cols: shape.child_key_cols[p][upos].clone(),
                        from_cols: shape.key_cols[u].clone(),
                    });
                    queue.push_back(p);
                }
            }
        }
        hops
    }

    /// Registers all indices the delta walks probe (call once, before the
    /// stream starts, together with [`TreeShape::register_indices`]).
    pub fn register_indices(shape: &TreeShape, db: &mut StreamDb) {
        for start in 0..shape.schemas.len() {
            for hop in Self::walk_order(shape, start) {
                db.register_index(hop.node, hop.probe_cols.clone());
            }
        }
    }

    /// Applies an update (after it was applied to the [`StreamDb`]):
    /// one delta-query evaluation *per aggregate* (no sharing).
    /// Malformed updates (bad relation index, arity, or multiplicity)
    /// return `Err` before any aggregate is touched.
    pub fn apply(&mut self, db: &StreamDb, up: &Update) -> Result<(), fdb_data::DataError> {
        crate::base::validate_update(&self.shape.schemas, up)?;
        let walk = self.walks[up.rel].clone();
        let nrel = self.shape.schemas.len();
        let n = self.n;
        // Aggregate 0 is the count; 1..=n the sums; then the pairs (i, j),
        // j <= i, in lower-triangular order.
        let naggs = 1 + n + n * (n + 1) / 2;
        for agg in 0..naggs {
            let mut bound: Vec<Option<&[Value]>> = vec![None; nrel];
            bound[up.rel] = Some(&up.tuple);
            let mut feat = vec![0.0f64; n];
            let mut acc = 0.0;
            self.expand(db, &walk, 0, &mut bound, up.mult as f64, &mut feat, agg, &mut acc);
            if agg == 0 {
                self.count += acc;
            } else if agg <= n {
                self.sums[agg - 1] += acc;
            } else {
                self.q[agg - 1 - n] += acc;
            }
        }
        Ok(())
    }

    /// The factor value of aggregate `agg` on feature vector `feat`.
    #[inline]
    fn agg_value(&self, agg: usize, feat: &[f64]) -> f64 {
        let n = self.n;
        if agg == 0 {
            1.0
        } else if agg <= n {
            feat[agg - 1]
        } else {
            // Lower-triangular pair index -> (i, j).
            let mut t = agg - 1 - n;
            let mut i = 0;
            while t > i {
                t -= i + 1;
                i += 1;
            }
            feat[i] * feat[t]
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn expand<'a>(
        &mut self,
        db: &'a StreamDb,
        walk: &[Hop],
        depth: usize,
        bound: &mut Vec<Option<&'a [Value]>>,
        weight: f64,
        feat: &mut Vec<f64>,
        agg: usize,
        acc: &mut f64,
    ) {
        if depth == walk.len() {
            // A full match of THIS aggregate's delta query.
            for node in 0..bound.len() {
                let t = bound[node].expect("all nodes bound");
                for &(gi, c) in &self.features[node] {
                    feat[gi] = t[c].as_f64();
                }
            }
            *acc += weight * self.agg_value(agg, feat);
            return;
        }
        let hop = &walk[depth];
        let from_tuple = bound[hop.from].expect("walk binds parents first");
        let key: Box<[i64]> = hop.from_cols.iter().map(|&c| from_tuple[c].as_int()).collect();
        // Clone out the row list to keep borrows simple; delta fanouts are
        // the dominant cost here by design.
        let rows: Vec<usize> = db.lookup(hop.node, &hop.probe_cols, &key).to_vec();
        for row in rows {
            let (t, m) = &db.rows(hop.node)[row];
            // SAFETY-free reborrow: tie the tuple's lifetime to `db`.
            bound[hop.node] = Some(t.as_ref());
            self.expand(db, walk, depth + 1, bound, weight * *m as f64, feat, agg, acc);
        }
        bound[hop.node] = None;
    }

    /// The maintained covariance triple.
    pub fn result(&self) -> CovTriple {
        CovTriple { c: self.count, s: self.sums.clone().into(), q: self.q.clone().into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewtree::Fivm;
    use fdb_data::{AttrType, Schema};
    use rand::{Rng, SeedableRng};

    fn shape3() -> (Arc<TreeShape>, Vec<Schema>) {
        let r = Schema::of(&[("a", AttrType::Int), ("x", AttrType::Double)]);
        let s = Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int), ("y", AttrType::Double)]);
        let t = Schema::of(&[("b", AttrType::Int), ("z", AttrType::Double)]);
        let schemas = vec![r, s, t];
        let shape = TreeShape::build(schemas.clone(), &["R", "S", "T"], 1).unwrap();
        (Arc::new(shape), schemas)
    }

    #[test]
    fn foivm_agrees_with_fivm_with_deletes() {
        let (shape, schemas) = shape3();
        let mut db = StreamDb::new(schemas);
        shape.register_indices(&mut db);
        FoIvm::register_indices(&shape, &mut db);
        let mut fo = FoIvm::new(Arc::clone(&shape), &["x", "y", "z"]);
        let mut fi = Fivm::new(Arc::clone(&shape), &["x", "y", "z"]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut inserted: Vec<Update> = Vec::new();
        for step in 0..250 {
            let up = if step % 9 == 8 && !inserted.is_empty() {
                let i = rng.gen_range(0..inserted.len());
                let prev = inserted.swap_remove(i);
                Update { rel: prev.rel, tuple: prev.tuple, mult: -1 }
            } else {
                let rel = rng.gen_range(0..3usize);
                let tuple: Vec<Value> = match rel {
                    0 => vec![
                        Value::Int(rng.gen_range(0..3)),
                        Value::F64(rng.gen_range(0..4) as f64),
                    ],
                    1 => vec![
                        Value::Int(rng.gen_range(0..3)),
                        Value::Int(rng.gen_range(0..3)),
                        Value::F64(rng.gen_range(0..4) as f64),
                    ],
                    _ => vec![
                        Value::Int(rng.gen_range(0..3)),
                        Value::F64(rng.gen_range(0..4) as f64),
                    ],
                };
                let up = Update::insert(rel, tuple);
                inserted.push(up.clone());
                up
            };
            db.apply(&up).unwrap();
            fo.apply(&db, &up).unwrap();
            fi.apply(&db, &up).unwrap();
        }
        let (a, b) = (fo.result(), fi.result());
        assert!((a.c - b.c).abs() < 1e-6, "count {} vs {}", a.c, b.c);
        for i in 0..3 {
            assert!((a.s[i] - b.s[i]).abs() < 1e-6);
            for j in 0..=i {
                assert!((a.q_at(i, j) - b.q_at(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn walk_orders_cover_all_relations() {
        let (shape, _) = shape3();
        for start in 0..3 {
            let w = FoIvm::walk_order(&shape, start);
            assert_eq!(w.len(), 2);
            let mut seen = vec![start];
            for hop in &w {
                assert!(seen.contains(&hop.from), "hop from unbound node");
                seen.push(hop.node);
            }
        }
    }
}
