//! Shared base storage for the IVM strategies: multiset relations under a
//! stream of keyed updates, with hash indices on join keys.

use fdb_data::{DataError, Schema, Value};
use std::collections::HashMap;

/// One update: a tuple for a relation with multiplicity `+1` (insert) or
/// `-1` (delete).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Relation index (position in the [`StreamDb`] schema list).
    pub rel: usize,
    /// The tuple.
    pub tuple: Box<[Value]>,
    /// `+1` or `-1`.
    pub mult: i64,
}

impl Update {
    /// An insert.
    pub fn insert(rel: usize, tuple: Vec<Value>) -> Self {
        Self { rel, tuple: tuple.into(), mult: 1 }
    }

    /// A delete.
    pub fn delete(rel: usize, tuple: Vec<Value>) -> Self {
        Self { rel, tuple: tuple.into(), mult: -1 }
    }
}

/// Validates an update against the maintainer's schema list: the
/// relation index must be in range, the tuple's arity and per-column
/// value types must match, and the multiplicity must be `±1`. One
/// helper shared by every apply path ([`StreamDb::apply`],
/// `ViewTree::apply`, `FoIvm::apply`) so the checks cannot drift apart.
pub(crate) fn validate_update(schemas: &[Schema], up: &Update) -> Result<(), DataError> {
    let Some(schema) = schemas.get(up.rel) else {
        return Err(DataError::Invalid(format!(
            "update targets relation index {}, but the maintainer spans {} relations",
            up.rel,
            schemas.len()
        )));
    };
    if up.tuple.len() != schema.arity() {
        return Err(DataError::ArityMismatch { expected: schema.arity(), got: up.tuple.len() });
    }
    for (c, v) in up.tuple.iter().enumerate() {
        let attr = schema.attr(c);
        if attr.ty.is_int_backed() != v.is_int() {
            return Err(DataError::TypeMismatch {
                attribute: attr.name.clone(),
                expected: if attr.ty.is_int_backed() { "Int" } else { "F64" },
                got: format!("{v:?}"),
            });
        }
    }
    if up.mult != 1 && up.mult != -1 {
        return Err(DataError::Invalid("multiplicity must be +1 or -1".into()));
    }
    Ok(())
}

/// Multiset relations under updates, shared by all maintenance strategies.
/// Rows are append-only `(tuple, mult)` pairs; hash indices map join-key
/// values to row positions.
pub struct StreamDb {
    schemas: Vec<Schema>,
    rows: Vec<Vec<(Box<[Value]>, i64)>>,
    /// `(relation, key columns)` → key values → row indices.
    indices: HashMap<(usize, Vec<usize>), HashMap<Box<[i64]>, Vec<usize>>>,
}

impl StreamDb {
    /// An empty database over the given relation schemas.
    pub fn new(schemas: Vec<Schema>) -> Self {
        let rows = schemas.iter().map(|_| Vec::new()).collect();
        Self { schemas, rows, indices: HashMap::new() }
    }

    /// The relation schemas.
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// Registers a hash index on `(rel, cols)`; idempotent. All indices
    /// must be registered before the first update.
    pub fn register_index(&mut self, rel: usize, cols: Vec<usize>) {
        self.indices.entry((rel, cols)).or_default();
    }

    /// Applies an update: appends the row and maintains the indices.
    /// Updates naming a relation outside the schema list, rows of the
    /// wrong arity or value types, and multiplicities other than `±1`
    /// are rejected before anything is stored.
    pub fn apply(&mut self, up: &Update) -> Result<(), DataError> {
        validate_update(&self.schemas, up)?;
        let idx = self.rows[up.rel].len();
        self.rows[up.rel].push((up.tuple.clone(), up.mult));
        for ((rel, cols), index) in self.indices.iter_mut() {
            if *rel == up.rel {
                let key: Box<[i64]> = cols.iter().map(|&c| up.tuple[c].as_int()).collect();
                index.entry(key).or_default().push(idx);
            }
        }
        Ok(())
    }

    /// Rows of relation `rel` as `(tuple, mult)` pairs.
    pub fn rows(&self, rel: usize) -> &[(Box<[Value]>, i64)] {
        &self.rows[rel]
    }

    /// Row indices of `rel` whose `cols` values equal `key`. The index must
    /// have been registered.
    pub fn lookup(&self, rel: usize, cols: &[usize], key: &[i64]) -> &[usize] {
        static EMPTY: [usize; 0] = [];
        self.indices
            .get(&(rel, cols.to_vec()))
            .and_then(|m| m.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&EMPTY)
    }

    /// Materializes relation `rel` (net multiplicities; deleted tuples
    /// dropped) — used by tests to cross-check against batch recomputation.
    pub fn materialize(&self, rel: usize) -> fdb_data::Relation {
        let mut mults: HashMap<&Box<[Value]>, i64> = HashMap::new();
        for (t, m) in &self.rows[rel] {
            *mults.entry(t).or_insert(0) += m;
        }
        let mut out = fdb_data::Relation::new(self.schemas[rel].clone());
        for (t, m) in mults {
            assert!(m >= 0, "net negative multiplicity");
            for _ in 0..m {
                out.push_row(t).expect("schema matches");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_data::AttrType;

    fn schema() -> Schema {
        Schema::of(&[("k", AttrType::Int), ("x", AttrType::Double)])
    }

    #[test]
    fn apply_and_lookup() {
        let mut db = StreamDb::new(vec![schema()]);
        db.register_index(0, vec![0]);
        db.apply(&Update::insert(0, vec![Value::Int(5), Value::F64(1.0)])).unwrap();
        db.apply(&Update::insert(0, vec![Value::Int(5), Value::F64(2.0)])).unwrap();
        db.apply(&Update::insert(0, vec![Value::Int(7), Value::F64(3.0)])).unwrap();
        assert_eq!(db.lookup(0, &[0], &[5]), &[0, 1]);
        assert_eq!(db.lookup(0, &[0], &[7]), &[2]);
        assert_eq!(db.lookup(0, &[0], &[9]), &[] as &[usize]);
    }

    #[test]
    fn deletes_cancel_in_materialize() {
        let mut db = StreamDb::new(vec![schema()]);
        let t = vec![Value::Int(1), Value::F64(1.0)];
        db.apply(&Update::insert(0, t.clone())).unwrap();
        db.apply(&Update::insert(0, t.clone())).unwrap();
        db.apply(&Update::delete(0, t)).unwrap();
        assert_eq!(db.materialize(0).len(), 1);
    }

    #[test]
    fn invalid_updates_rejected() {
        let mut db = StreamDb::new(vec![schema()]);
        assert!(db.apply(&Update::insert(0, vec![Value::Int(1)])).is_err());
        let mut up = Update::insert(0, vec![Value::Int(1), Value::F64(0.0)]);
        up.mult = 3;
        assert!(db.apply(&up).is_err());
    }
}
